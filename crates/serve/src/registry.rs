//! The model registry: owns the trained [`ServingModel`] generations and
//! swaps in retrained models without dropping in-flight queries.
//!
//! Queries clone an `Arc<TrainedModel>` under a momentary read lock and
//! keep using it for their whole lifetime — a swap only changes what the
//! *next* query sees. Training runs are serialized by a dedicated mutex
//! (held across the whole fit, which can take hundreds of milliseconds)
//! so concurrent reload triggers cannot train the same generation twice;
//! the read path never touches that mutex.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use llmpilot_core::{
    CharacterizationDataset, CoreError, LatencyConstraints, PredictorConfig, ServingModel,
};
use llmpilot_obs::Recorder;

/// One immutable trained model plus its provenance.
#[derive(Debug)]
pub struct TrainedModel {
    /// The query-ready model.
    pub serving: ServingModel,
    /// Generation of the dataset it was trained on.
    pub dataset_generation: u64,
    /// Monotone model generation (bumps on every successful swap).
    pub model_generation: u64,
}

/// Thread-safe owner of the live model.
#[derive(Debug)]
pub struct ModelRegistry {
    live: RwLock<Option<Arc<TrainedModel>>>,
    train_lock: Mutex<()>,
    next_generation: AtomicU64,
    constraints: LatencyConstraints,
    config: PredictorConfig,
    recorder: Recorder,
}

impl ModelRegistry {
    /// An empty registry; `constraints` and `config` apply to every
    /// (re)training run.
    pub fn new(constraints: LatencyConstraints, config: PredictorConfig) -> Self {
        Self {
            live: RwLock::new(None),
            train_lock: Mutex::new(()),
            next_generation: AtomicU64::new(1),
            constraints,
            config,
            recorder: Recorder::disabled(),
        }
    }

    /// Record every (re)training run on `recorder` (`serve.retrain` spans
    /// with the GBDT phase spans nested beneath).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The live model, if one has been trained. Cheap `Arc` clone.
    pub fn current(&self) -> Option<Arc<TrainedModel>> {
        self.live.read().expect("model registry lock poisoned").clone()
    }

    /// Train on `dataset` and swap the result in as the live model.
    /// Returns the new model generation. If a model for
    /// `dataset_generation` (or newer) was already swapped in by a racing
    /// caller, the redundant fit is skipped and that model's generation is
    /// returned. On training failure the previous model keeps serving.
    pub fn train_and_swap(
        &self,
        dataset: &CharacterizationDataset,
        dataset_generation: u64,
    ) -> Result<u64, CoreError> {
        let _serialize = self.train_lock.lock().expect("model registry train lock poisoned");
        if let Some(live) = self.current() {
            if live.dataset_generation >= dataset_generation {
                return Ok(live.model_generation);
            }
        }
        let mut retrain_span =
            self.recorder.span("serve.retrain").arg("dataset_generation", dataset_generation);
        let serving =
            ServingModel::train_traced(dataset, &self.constraints, &self.config, &self.recorder)?;
        let model_generation = self.next_generation.fetch_add(1, Ordering::Relaxed);
        retrain_span.set_arg("model_generation", model_generation);
        let trained = Arc::new(TrainedModel { serving, dataset_generation, model_generation });
        *self.live.write().expect("model registry lock poisoned") = Some(trained);
        Ok(model_generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpilot_core::{online_predictor_config, PerfRow, RecommendationRequest};

    fn dataset(llms: &[&str]) -> CharacterizationDataset {
        let mut rows = Vec::new();
        for llm in llms {
            for users in [1u32, 2, 4, 8, 16] {
                rows.push(PerfRow {
                    llm: (*llm).into(),
                    profile: "1xA100-80GB".into(),
                    users,
                    ttft_s: 0.05 * f64::from(users),
                    nttft_s: 0.0002 * f64::from(users),
                    itl_s: 0.004 * f64::from(users),
                    throughput: 50.0 * f64::from(users),
                });
            }
        }
        CharacterizationDataset { rows, ..Default::default() }
    }

    fn registry() -> ModelRegistry {
        ModelRegistry::new(LatencyConstraints::paper_defaults(), online_predictor_config())
    }

    #[test]
    fn trains_swaps_and_serves() {
        let reg = registry();
        assert!(reg.current().is_none());
        let g1 = reg.train_and_swap(&dataset(&["Llama-2-7b"]), 1).unwrap();
        assert_eq!(g1, 1);
        let live = reg.current().unwrap();
        assert_eq!(live.dataset_generation, 1);
        assert!(live
            .serving
            .recommend("Llama-2-13b", &RecommendationRequest::paper_defaults())
            .is_ok());
    }

    #[test]
    fn same_dataset_generation_trains_once() {
        let reg = registry();
        let ds = dataset(&["Llama-2-7b"]);
        assert_eq!(reg.train_and_swap(&ds, 1).unwrap(), 1);
        assert_eq!(reg.train_and_swap(&ds, 1).unwrap(), 1);
        assert_eq!(reg.current().unwrap().model_generation, 1);
    }

    #[test]
    fn newer_dataset_bumps_model_generation_and_old_arcs_stay_valid() {
        let reg = registry();
        reg.train_and_swap(&dataset(&["Llama-2-7b"]), 1).unwrap();
        let old = reg.current().unwrap();
        let g2 = reg.train_and_swap(&dataset(&["Llama-2-7b", "Llama-2-13b"]), 2).unwrap();
        assert_eq!(g2, 2);
        // The in-flight query's model is untouched by the swap.
        assert_eq!(old.model_generation, 1);
        assert_eq!(reg.current().unwrap().model_generation, 2);
    }

    #[test]
    fn failed_training_keeps_previous_model() {
        let reg = registry();
        reg.train_and_swap(&dataset(&["Llama-2-7b"]), 1).unwrap();
        let bad = CharacterizationDataset::default(); // empty → training fails
        assert!(reg.train_and_swap(&bad, 2).is_err());
        assert_eq!(reg.current().unwrap().model_generation, 1);
    }
}
