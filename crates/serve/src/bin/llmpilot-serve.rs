//! `llmpilot-serve` — the online GPU-recommendation daemon.
//!
//! ```text
//! llmpilot-serve --data perf.csv [--addr 127.0.0.1:8008] [--workers 4]
//!                [--queue 128] [--cache 4096] [--watch-secs 2]
//! ```
//!
//! Endpoints: `GET /recommend?model=NAME&users=N&ttft=MS&itl=MS`,
//! `POST /reload`, `GET /metrics`, `GET /healthz`.

use std::collections::HashMap;
use std::process::exit;
use std::time::Duration;

use llmpilot_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: llmpilot-serve --data FILE [--addr HOST:PORT] [--workers N]\n       \
         [--queue N] [--cache N] [--watch-secs S]"
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            eprintln!("unexpected argument {:?}", args[i]);
            usage();
        };
        if i + 1 >= args.len() {
            eprintln!("missing value for --{key}");
            usage();
        }
        flags.insert(key.to_string(), args[i + 1].clone());
        i += 2;
    }
    flags
}

fn numeric_flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
    check: impl Fn(&T) -> bool,
    constraint: &str,
) -> T {
    match flags.get(key) {
        None => default,
        Some(raw) => match raw.parse::<T>() {
            Ok(v) if check(&v) => v,
            _ => {
                eprintln!("--{key} must be {constraint}, got {raw:?}");
                usage()
            }
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args);
    let Some(data) = flags.get("data") else {
        eprintln!("missing required --data");
        usage()
    };

    let mut config = ServeConfig::new(data);
    if let Some(addr) = flags.get("addr") {
        config.addr = addr.clone();
    }
    config.workers = numeric_flag(&flags, "workers", config.workers, |&v| v >= 1, "at least 1");
    config.queue_capacity =
        numeric_flag(&flags, "queue", config.queue_capacity, |&v| v >= 1, "at least 1");
    config.cache_capacity =
        numeric_flag(&flags, "cache", config.cache_capacity, |_| true, "a non-negative count");
    let watch_secs: f64 = numeric_flag(
        &flags,
        "watch-secs",
        2.0,
        |&v| v.is_finite() && v >= 0.0,
        "a non-negative number of seconds",
    );
    config.watch_interval =
        if watch_secs > 0.0 { Some(Duration::from_secs_f64(watch_secs)) } else { None };

    eprintln!("loading dataset and training the initial model...");
    let handle = Server::start(config).unwrap_or_else(|e| {
        eprintln!("llmpilot-serve failed to start: {e}");
        exit(1)
    });
    println!("llmpilot-serve listening on http://{}", handle.addr());
    println!("  GET  /recommend?model=NAME&users=N&ttft=MS&itl=MS");
    println!("  POST /reload");
    println!("  GET  /metrics");
    println!("  GET  /healthz");
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
