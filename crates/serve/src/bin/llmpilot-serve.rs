//! `llmpilot-serve` — the online GPU-recommendation daemon.
//!
//! ```text
//! llmpilot-serve --data perf.csv [--addr 127.0.0.1:8008] [--workers 4]
//!                [--queue 128] [--cache 4096] [--watch-secs 2]
//!                [--trace-out trace.json] [--trace-summary]
//! ```
//!
//! Endpoints: `GET /recommend?model=NAME&users=N&ttft=MS&itl=MS`,
//! `POST /reload`, `GET /metrics`, `GET /healthz`.

use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use llmpilot_cli::Command;
use llmpilot_obs::Recorder;
use llmpilot_serve::{ServeConfig, Server};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = Command::new("llmpilot-serve", "the online GPU-recommendation daemon");
    let data = cmd.required::<String>("data", "FILE", "characterization dataset CSV");
    let addr = cmd.flag("addr", "HOST:PORT", "listen address", "127.0.0.1:8008".to_string());
    let workers =
        cmd.flag_checked("workers", "N", "worker threads", 4usize, |v| *v >= 1, "at least 1");
    let queue = cmd.flag_checked(
        "queue",
        "N",
        "admission queue capacity",
        128usize,
        |v| *v >= 1,
        "at least 1",
    );
    let cache = cmd.flag("cache", "N", "response cache capacity", 4096usize);
    let watch_secs = cmd.flag_checked(
        "watch-secs",
        "S",
        "dataset mtime watch interval (0 disables)",
        2.0f64,
        |v| v.is_finite() && *v >= 0.0,
        "a non-negative number of seconds",
    );
    let trace_out = cmd.optional::<PathBuf>(
        "trace-out",
        "FILE",
        "write a Chrome trace_event JSON at graceful shutdown",
    );
    let trace_summary = cmd.switch("trace-summary", "print a span summary at graceful shutdown");
    let p = cmd.parse_or_exit(&args);

    let data = p.get(&data);
    let mut config = ServeConfig::new(&data);
    config.addr = p.get(&addr);
    config.workers = p.get(&workers);
    config.queue_capacity = p.get(&queue);
    config.cache_capacity = p.get(&cache);
    let watch_secs = p.get(&watch_secs);
    config.watch_interval =
        if watch_secs > 0.0 { Some(Duration::from_secs_f64(watch_secs)) } else { None };
    config.trace_out = p.get(&trace_out);
    config.trace_summary = p.get(&trace_summary);
    if config.trace_out.is_some() || config.trace_summary {
        config.recorder = Recorder::enabled();
    }

    eprintln!("loading dataset and training the initial model...");
    let handle = Server::start(config).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1)
    });
    println!("llmpilot-serve listening on http://{}", handle.addr());
    println!("  GET  /recommend?model=NAME&users=N&ttft=MS&itl=MS");
    println!("  POST /reload");
    println!("  GET  /metrics");
    println!("  GET  /healthz");
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
