//! A small LRU cache for recommendation responses.
//!
//! Keys include the dataset and model generations, so entries computed
//! against a superseded model can never be served after a hot reload —
//! they simply stop being hit and age out.
//!
//! The implementation is a `HashMap` plus a monotone access tick; on
//! overflow the least-recently-used entry is found by a linear scan.
//! Capacities here are a few thousand entries, so the scan is a handful
//! of microseconds — far below the cost of the recommendation search a
//! hit avoids — and the map stays a single allocation-friendly structure.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded least-recently-used map.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, (V, u64)>,
    capacity: usize,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Create a cache holding at most `capacity` entries (0 disables it).
    pub fn new(capacity: usize) -> Self {
        Self { map: HashMap::with_capacity(capacity.min(4096)), capacity, tick: 0 }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, t)| {
            *t = tick;
            v.clone()
        })
    }

    /// Insert `key → value`, evicting the least-recently-used entry when
    /// the cache is full.
    pub fn put(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (_, t))| *t).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (value, self.tick));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let mut c: LruCache<u32, &'static str> = LruCache::new(2);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        c.put(1, "a");
        assert_eq!(c.get(&1), Some("a"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        assert_eq!(c.get(&1), Some(10)); // refresh 1; 2 is now LRU
        c.put(3, 30);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinserting_a_present_key_does_not_evict() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.put(1, 11);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), Some(20));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.put(1, 10);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }
}
