//! A minimal, allocation-bounded HTTP/1.1 layer.
//!
//! The build environment is fully offline, so there is no hyper/tokio:
//! this module implements exactly the subset the recommendation daemon
//! needs — request parsing with hard limits on line, header and body
//! sizes (a malicious peer can never make the parser allocate more than
//! [`Limits`] allows or panic), percent-decoded query strings, and a
//! response writer. Connections are plain blocking [`std::net::TcpStream`]s;
//! keep-alive is supported by calling [`parse_request`] in a loop.

use std::io::{BufRead, Read, Write};

/// Hard upper bounds the parser enforces on incoming requests.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Longest accepted request/header line, bytes (excluding CRLF).
    pub max_line_bytes: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum accepted `Content-Length`, bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self { max_line_bytes: 8 * 1024, max_headers: 64, max_body_bytes: 64 * 1024 }
    }
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Transport-level read failure (includes idle keep-alive timeouts).
    Io(std::io::ErrorKind),
    /// The peer closed the connection mid-request.
    Truncated,
    /// A line, the header block, or the body exceeded [`Limits`].
    TooLarge(&'static str),
    /// Syntactically invalid request.
    Malformed(String),
    /// Syntactically valid but unsupported (e.g. `Transfer-Encoding`).
    Unsupported(&'static str),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(kind) => write!(f, "read error: {kind:?}"),
            ParseError::Truncated => write!(f, "connection closed mid-request"),
            ParseError::TooLarge(what) => write!(f, "{what} exceeds the configured limit"),
            ParseError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            ParseError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl ParseError {
    /// The HTTP status code this error maps to (0 when the connection
    /// should be dropped without a response, e.g. an idle timeout).
    pub fn status(&self) -> u16 {
        match self {
            ParseError::Io(_) => 0,
            ParseError::Truncated => 400,
            ParseError::TooLarge("body") => 413,
            ParseError::TooLarge(_) => 431,
            ParseError::Malformed(_) => 400,
            ParseError::Unsupported(_) => 501,
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (before `?`).
    pub path: String,
    /// Percent-decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter named `key`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// First header named `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Read one line terminated by `\n` (optionally `\r\n`), enforcing `max`.
/// Returns `Ok(None)` on clean EOF before any byte.
fn read_line(reader: &mut impl BufRead, max: usize) -> Result<Option<String>, ParseError> {
    let mut buf: Vec<u8> = Vec::new();
    // `take` caps how much a hostile peer can make us buffer for one line:
    // the limit plus room for the terminator.
    let mut limited = reader.take(max as u64 + 2);
    let n = limited.read_until(b'\n', &mut buf).map_err(|e| ParseError::Io(e.kind()))?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        return if buf.len() >= max {
            Err(ParseError::TooLarge("request line or header"))
        } else {
            Err(ParseError::Truncated)
        };
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    if buf.len() > max {
        return Err(ParseError::TooLarge("request line or header"));
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| ParseError::Malformed("non-UTF-8 bytes in request head".into()))
}

/// Decode `%XX` escapes and `+` (space) in a query component. Invalid
/// escapes are passed through literally rather than rejected.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Split a request target into path and decoded query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let pairs = query
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect();
    (path.to_string(), pairs)
}

/// Parse one HTTP/1.x request from `reader`. Returns `Ok(None)` when the
/// peer closed the connection cleanly before sending anything (normal end
/// of a keep-alive session). Never panics, whatever the input bytes.
pub fn parse_request(
    reader: &mut impl BufRead,
    limits: &Limits,
) -> Result<Option<Request>, ParseError> {
    let Some(request_line) = read_line(reader, limits.max_line_bytes)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ').filter(|s| !s.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(ParseError::Malformed(format!("bad request line {request_line:?}"))),
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Malformed(format!("bad method {method:?}")));
    }
    if !(version == "HTTP/1.1" || version == "HTTP/1.0") {
        return Err(ParseError::Malformed(format!("bad HTTP version {version:?}")));
    }
    if !target.starts_with('/') {
        return Err(ParseError::Malformed(format!("bad request target {target:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, limits.max_line_bytes)?.ok_or(ParseError::Truncated)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(ParseError::TooLarge("header count"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed(format!("bad header line {line:?}")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(ParseError::Unsupported("Transfer-Encoding"));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ParseError::Malformed(format!("bad Content-Length {v:?}")))?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(ParseError::TooLarge("body"));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ParseError::Truncated
            } else {
                ParseError::Io(e.kind())
            }
        })?;
    }

    let (path, query) = parse_target(target);
    Ok(Some(Request { method: method.to_string(), path, query, headers, body }))
}

/// An outgoing HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

/// Reason phrase for the status codes the daemon emits.
fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            reason: reason_for(status),
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            reason: reason_for(status),
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Append a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serialize the response (status line, headers, body) to `w`.
    /// `keep_alive` picks the `Connection` header.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Escape a string for embedding in a JSON string literal. Delegates to
/// the shared [`llmpilot_obs::json::escape`] so every JSON emitter in the
/// workspace agrees on one escaping.
pub fn json_escape(s: &str) -> String {
    llmpilot_obs::json::escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, ParseError> {
        parse_request(&mut Cursor::new(bytes.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_a_simple_get() {
        let req = parse(b"GET /recommend?model=Llama-2-7b&users=200 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/recommend");
        assert_eq!(req.query_param("model"), Some("Llama-2-7b"));
        assert_eq!(req.query_param("users"), Some("200"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_percent_and_plus_escapes() {
        let req = parse(b"GET /r?model=bigcode%2Fstarcoder&note=a+b%20c HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.query_param("model"), Some("bigcode/starcoder"));
        assert_eq!(req.query_param("note"), Some("a b c"));
    }

    #[test]
    fn invalid_percent_escapes_pass_through() {
        assert_eq!(percent_decode("a%ZZb%"), "a%ZZb%");
        assert_eq!(percent_decode("%2"), "%2");
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse(b"POST /reload HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(parse(b"").unwrap(), None);
    }

    #[test]
    fn truncated_requests_error() {
        assert_eq!(parse(b"GET / HTTP/1.1\r\nHost:"), Err(ParseError::Truncated));
        assert_eq!(parse(b"GET / HTTP/1.1\r\n"), Err(ParseError::Truncated));
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ParseError::Truncated)
        );
    }

    #[test]
    fn malformed_requests_error() {
        assert!(matches!(parse(b"banana\r\n\r\n"), Err(ParseError::Malformed(_))));
        assert!(matches!(parse(b"get / HTTP/1.1\r\n\r\n"), Err(ParseError::Malformed(_))));
        assert!(matches!(parse(b"GET / SPDY/3\r\n\r\n"), Err(ParseError::Malformed(_))));
        assert!(matches!(parse(b"GET x HTTP/1.1\r\n\r\n"), Err(ParseError::Malformed(_))));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(parse(b"GET /\xff\xfe HTTP/1.1\r\n\r\n"), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn oversized_inputs_are_bounded() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(10_000));
        assert_eq!(
            parse(long_line.as_bytes()),
            Err(ParseError::TooLarge("request line or header"))
        );

        let mut many_headers = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            many_headers.push_str(&format!("x-h{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        assert_eq!(parse(many_headers.as_bytes()), Err(ParseError::TooLarge("header count")));

        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n"),
            Err(ParseError::TooLarge("body"))
        );
    }

    #[test]
    fn transfer_encoding_is_unsupported() {
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ParseError::Unsupported("Transfer-Encoding"))
        );
    }

    #[test]
    fn parse_error_statuses() {
        assert_eq!(ParseError::Truncated.status(), 400);
        assert_eq!(ParseError::TooLarge("body").status(), 413);
        assert_eq!(ParseError::TooLarge("header count").status(), 431);
        assert_eq!(ParseError::Malformed("x".into()).status(), 400);
        assert_eq!(ParseError::Unsupported("x").status(), 501);
        assert_eq!(ParseError::Io(std::io::ErrorKind::TimedOut).status(), 0);
    }

    #[test]
    fn response_serializes() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .with_header("Retry-After", "1")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn keep_alive_sessions_parse_back_to_back_requests() {
        let bytes = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec();
        let mut cursor = Cursor::new(bytes);
        let limits = Limits::default();
        let first = parse_request(&mut cursor, &limits).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        let second = parse_request(&mut cursor, &limits).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert!(!second.keep_alive());
        assert_eq!(parse_request(&mut cursor, &limits).unwrap(), None);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain/name-1.2"), "plain/name-1.2");
    }
}
