//! The hot-reloadable characterization-dataset store.
//!
//! The live dataset is held as an `Arc<CharacterizationDataset>` behind an
//! `RwLock`; readers take the lock only long enough to clone the `Arc`, so
//! a reload never blocks in-flight queries and a query never observes a
//! half-written dataset. A reload parses and validates the *candidate*
//! file entirely outside the lock — an invalid file leaves the previous
//! generation serving.

use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};
use std::time::SystemTime;

use llmpilot_core::{CharacterizationDataset, CoreError};

/// Outcome of a reload attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReloadOutcome {
    /// Whether the dataset content actually changed (generation bumped).
    pub changed: bool,
    /// The generation now serving.
    pub generation: u64,
}

#[derive(Debug)]
struct StoreState {
    dataset: Arc<CharacterizationDataset>,
    generation: u64,
    mtime: Option<SystemTime>,
}

/// Thread-safe owner of the live characterization dataset.
#[derive(Debug)]
pub struct DatasetStore {
    path: PathBuf,
    state: RwLock<StoreState>,
}

impl DatasetStore {
    /// Load, parse and validate the dataset at `path`. Fails (rather than
    /// serving garbage) when the file is missing, malformed, or empty.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, CoreError> {
        let path = path.into();
        let (dataset, mtime) = Self::read(&path)?;
        Ok(Self {
            path,
            state: RwLock::new(StoreState { dataset: Arc::new(dataset), generation: 1, mtime }),
        })
    }

    /// The file this store reloads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn read(path: &Path) -> Result<(CharacterizationDataset, Option<SystemTime>), CoreError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CoreError::Io(format!("{}: {e}", path.display())))?;
        let dataset = CharacterizationDataset::from_csv(&text)?;
        dataset.validate()?;
        if dataset.is_empty() {
            return Err(CoreError::InsufficientData(format!(
                "{}: dataset has no measurement rows",
                path.display()
            )));
        }
        let mtime = std::fs::metadata(path).and_then(|m| m.modified()).ok();
        Ok((dataset, mtime))
    }

    /// The live dataset and its generation. Cheap: clones one `Arc` under
    /// a momentary read lock.
    pub fn snapshot(&self) -> (Arc<CharacterizationDataset>, u64) {
        let state = self.state.read().expect("dataset store lock poisoned");
        (Arc::clone(&state.dataset), state.generation)
    }

    /// The live generation number.
    pub fn generation(&self) -> u64 {
        self.state.read().expect("dataset store lock poisoned").generation
    }

    /// Re-read the backing file and atomically swap the dataset in if its
    /// content changed. On any error the previous dataset keeps serving.
    pub fn reload(&self) -> Result<ReloadOutcome, CoreError> {
        let (candidate, mtime) = Self::read(&self.path)?;
        let mut state = self.state.write().expect("dataset store lock poisoned");
        state.mtime = mtime;
        if *state.dataset == candidate {
            return Ok(ReloadOutcome { changed: false, generation: state.generation });
        }
        state.dataset = Arc::new(candidate);
        state.generation += 1;
        Ok(ReloadOutcome { changed: true, generation: state.generation })
    }

    /// [`Self::reload`], but only if the file's mtime moved since the last
    /// (re)load — the cheap polling check used by the file watcher.
    pub fn reload_if_modified(&self) -> Result<ReloadOutcome, CoreError> {
        let on_disk = std::fs::metadata(&self.path).and_then(|m| m.modified()).ok();
        let (recorded, generation) = {
            let state = self.state.read().expect("dataset store lock poisoned");
            (state.mtime, state.generation)
        };
        if on_disk.is_some() && on_disk != recorded {
            self.reload()
        } else {
            Ok(ReloadOutcome { changed: false, generation })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpilot_core::PerfRow;

    fn row(llm: &str, users: u32, itl_s: f64) -> PerfRow {
        PerfRow {
            llm: llm.into(),
            profile: "1xA100-40GB".into(),
            users,
            ttft_s: 0.1,
            nttft_s: 0.001,
            itl_s,
            throughput: 100.0,
        }
    }

    fn write_csv(path: &Path, rows: Vec<PerfRow>) {
        let ds = CharacterizationDataset { rows, ..Default::default() };
        std::fs::write(path, ds.to_csv()).unwrap();
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("llmpilot-store-{tag}-{}.csv", std::process::id()))
    }

    #[test]
    fn open_snapshot_and_reload() {
        let path = temp_path("basic");
        write_csv(&path, vec![row("Llama-2-7b", 1, 0.02)]);
        let store = DatasetStore::open(&path).unwrap();
        let (ds, generation) = store.snapshot();
        assert_eq!(generation, 1);
        assert_eq!(ds.len(), 1);

        // Unchanged content: no generation bump.
        let outcome = store.reload().unwrap();
        assert_eq!(outcome, ReloadOutcome { changed: false, generation: 1 });

        // Changed content: atomically swapped, generation bumped. The old
        // snapshot Arc keeps the superseded dataset alive for its holders.
        write_csv(&path, vec![row("Llama-2-7b", 1, 0.02), row("Llama-2-13b", 1, 0.03)]);
        let outcome = store.reload().unwrap();
        assert_eq!(outcome, ReloadOutcome { changed: true, generation: 2 });
        assert_eq!(store.snapshot().0.len(), 2);
        assert_eq!(ds.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_reload_keeps_previous_generation() {
        let path = temp_path("invalid");
        write_csv(&path, vec![row("Llama-2-7b", 1, 0.02)]);
        let store = DatasetStore::open(&path).unwrap();

        std::fs::write(&path, "llm,profile,users\ngarbage").unwrap();
        assert!(store.reload().is_err());
        let (ds, generation) = store.snapshot();
        assert_eq!(generation, 1);
        assert_eq!(ds.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_missing_empty_and_invalid_files() {
        assert!(matches!(DatasetStore::open("/no/such/file.csv"), Err(CoreError::Io(_))));

        let path = temp_path("empty");
        std::fs::write(&path, "llm,profile,users,ttft_s,nttft_s,itl_s,throughput\n").unwrap();
        assert!(matches!(DatasetStore::open(&path), Err(CoreError::InsufficientData(_))));

        write_csv(&path, vec![row("not-a-catalog-llm", 1, 0.02)]);
        assert!(matches!(DatasetStore::open(&path), Err(CoreError::Parse(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reload_if_modified_detects_mtime_changes() {
        let path = temp_path("mtime");
        write_csv(&path, vec![row("Llama-2-7b", 1, 0.02)]);
        let store = DatasetStore::open(&path).unwrap();
        assert!(!store.reload_if_modified().unwrap().changed);

        // A rewrite within the filesystem's mtime resolution can be missed
        // by a pure mtime check, so keep rewriting (each write refreshes
        // the mtime) until the watcher-style check observes the change.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            write_csv(&path, vec![row("Llama-2-7b", 1, 0.02), row("Llama-2-7b", 2, 0.04)]);
            let outcome = store.reload_if_modified().unwrap();
            if outcome.changed {
                assert_eq!(outcome.generation, 2);
                break;
            }
            assert!(std::time::Instant::now() < deadline, "mtime change never observed");
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        std::fs::remove_file(&path).ok();
    }
}
