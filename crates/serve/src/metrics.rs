//! Service metrics, exported in Prometheus text exposition format.
//!
//! Everything is a lock-free atomic: counters are monotonically
//! increasing, gauges are last-write-wins, and the request-latency
//! histogram is an HDR [`Histogram`] (log-linear buckets, ≤1% relative
//! error), rendered both as classic cumulative Prometheus buckets at the
//! [`LATENCY_BUCKETS_S`] bounds and as p50/p95/p99/p999 quantile gauges.
//! A scrape renders the whole registry with relaxed loads — values may be
//! a few nanoseconds apart, which Prometheus semantics explicitly allow.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use llmpilot_obs::hist::Histogram;

/// Histogram bucket upper bounds, seconds.
pub const LATENCY_BUCKETS_S: [f64; 12] =
    [0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0];

/// Quantiles exported as gauges from the latency histogram.
const LATENCY_QUANTILES: [(f64, &str); 4] =
    [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99"), (0.999, "0.999")];

/// Routes the daemon distinguishes in its request counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /recommend`.
    Recommend,
    /// `POST /reload`.
    Reload,
    /// `GET /metrics`.
    Metrics,
    /// `GET /healthz`.
    Health,
    /// Anything else (404s, parse errors, …).
    Other,
}

impl Route {
    const ALL: [Route; 5] =
        [Route::Recommend, Route::Reload, Route::Metrics, Route::Health, Route::Other];

    fn label(self) -> &'static str {
        match self {
            Route::Recommend => "recommend",
            Route::Reload => "reload",
            Route::Metrics => "metrics",
            Route::Health => "healthz",
            Route::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Route::Recommend => 0,
            Route::Reload => 1,
            Route::Metrics => 2,
            Route::Health => 3,
            Route::Other => 4,
        }
    }
}

/// The daemon's metric registry.
#[derive(Debug, Default)]
pub struct Metrics {
    requests_by_route: [AtomicU64; 5],
    responses_by_class: [AtomicU64; 5], // 1xx..5xx
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    queue_depth: AtomicU64,
    queue_rejected: AtomicU64,
    connections_total: AtomicU64,
    dataset_generation: AtomicU64,
    model_generation: AtomicU64,
    reloads: AtomicU64,
    retrains_ok: AtomicU64,
    retrains_failed: AtomicU64,
    latency: Histogram,
    latency_sum_us: AtomicU64,
    trace_spans: AtomicU64,
}

impl Metrics {
    /// Fresh registry with all series at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one request on `route`.
    pub fn record_request(&self, route: Route) {
        self.requests_by_route[route.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Count one response with the given status code.
    pub fn record_response(&self, status: u16) {
        let class = (status / 100).clamp(1, 5) as usize - 1;
        self.responses_by_class[class].fetch_add(1, Ordering::Relaxed);
    }

    /// Count a recommendation-cache lookup.
    pub fn record_cache(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Observe one request's service latency.
    pub fn record_latency(&self, elapsed: Duration) {
        self.latency.record_secs(elapsed.as_secs_f64());
        self.latency_sum_us.fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
    }

    /// A connection was admitted to the worker queue.
    pub fn record_enqueued(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
        self.connections_total.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker dequeued a connection.
    pub fn record_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A connection was turned away because the queue was full.
    pub fn record_rejected(&self) {
        self.queue_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A dataset reload succeeded (`generation` is the new value).
    pub fn record_reload(&self, generation: u64) {
        self.reloads.fetch_add(1, Ordering::Relaxed);
        self.dataset_generation.store(generation, Ordering::Relaxed);
    }

    /// Record the outcome of a (re)training run.
    pub fn record_retrain(&self, ok: bool, model_generation: u64) {
        if ok {
            self.retrains_ok.fetch_add(1, Ordering::Relaxed);
            self.model_generation.store(model_generation, Ordering::Relaxed);
        } else {
            self.retrains_failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Set the dataset-generation gauge (used at startup).
    pub fn set_dataset_generation(&self, generation: u64) {
        self.dataset_generation.store(generation, Ordering::Relaxed);
    }

    /// Set the trace-span gauge (total spans recorded by the daemon's
    /// tracing recorder; stays 0 when tracing is disabled).
    pub fn set_trace_spans(&self, spans: u64) {
        self.trace_spans.store(spans, Ordering::Relaxed);
    }

    /// Total requests observed on one route.
    pub fn requests(&self, route: Route) -> u64 {
        self.requests_by_route[route.index()].load(Ordering::Relaxed)
    }

    /// Cache `(hits, misses)`.
    pub fn cache_counts(&self) -> (u64, u64) {
        (self.cache_hits.load(Ordering::Relaxed), self.cache_misses.load(Ordering::Relaxed))
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Connections rejected by admission control.
    pub fn rejected(&self) -> u64 {
        self.queue_rejected.load(Ordering::Relaxed)
    }

    /// Render the registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        let g = |v: &AtomicU64| v.load(Ordering::Relaxed);

        out.push_str("# HELP llmpilot_requests_total Requests received, by route.\n");
        out.push_str("# TYPE llmpilot_requests_total counter\n");
        for route in Route::ALL {
            let _ = writeln!(
                out,
                "llmpilot_requests_total{{route=\"{}\"}} {}",
                route.label(),
                self.requests(route)
            );
        }

        out.push_str("# HELP llmpilot_responses_total Responses sent, by status class.\n");
        out.push_str("# TYPE llmpilot_responses_total counter\n");
        for (i, v) in self.responses_by_class.iter().enumerate() {
            let _ = writeln!(out, "llmpilot_responses_total{{class=\"{}xx\"}} {}", i + 1, g(v));
        }

        out.push_str("# HELP llmpilot_cache_requests_total Recommendation cache lookups.\n");
        out.push_str("# TYPE llmpilot_cache_requests_total counter\n");
        let _ = writeln!(
            out,
            "llmpilot_cache_requests_total{{result=\"hit\"}} {}",
            g(&self.cache_hits)
        );
        let _ = writeln!(
            out,
            "llmpilot_cache_requests_total{{result=\"miss\"}} {}",
            g(&self.cache_misses)
        );

        out.push_str("# HELP llmpilot_queue_depth Connections waiting for a worker.\n");
        out.push_str("# TYPE llmpilot_queue_depth gauge\n");
        let _ = writeln!(out, "llmpilot_queue_depth {}", g(&self.queue_depth));

        out.push_str(
            "# HELP llmpilot_queue_rejected_total Connections refused with 503 (queue full).\n",
        );
        out.push_str("# TYPE llmpilot_queue_rejected_total counter\n");
        let _ = writeln!(out, "llmpilot_queue_rejected_total {}", g(&self.queue_rejected));

        out.push_str("# HELP llmpilot_connections_total Connections admitted.\n");
        out.push_str("# TYPE llmpilot_connections_total counter\n");
        let _ = writeln!(out, "llmpilot_connections_total {}", g(&self.connections_total));

        out.push_str("# HELP llmpilot_dataset_generation Generation of the live dataset.\n");
        out.push_str("# TYPE llmpilot_dataset_generation gauge\n");
        let _ = writeln!(out, "llmpilot_dataset_generation {}", g(&self.dataset_generation));

        out.push_str("# HELP llmpilot_model_generation Generation of the live model.\n");
        out.push_str("# TYPE llmpilot_model_generation gauge\n");
        let _ = writeln!(out, "llmpilot_model_generation {}", g(&self.model_generation));

        out.push_str("# HELP llmpilot_trace_spans_total Spans recorded by the tracing recorder.\n");
        out.push_str("# TYPE llmpilot_trace_spans_total counter\n");
        let _ = writeln!(out, "llmpilot_trace_spans_total {}", g(&self.trace_spans));

        out.push_str("# HELP llmpilot_reloads_total Successful dataset reloads.\n");
        out.push_str("# TYPE llmpilot_reloads_total counter\n");
        let _ = writeln!(out, "llmpilot_reloads_total {}", g(&self.reloads));

        out.push_str("# HELP llmpilot_retrains_total Model retraining runs, by outcome.\n");
        out.push_str("# TYPE llmpilot_retrains_total counter\n");
        let _ = writeln!(
            out,
            "llmpilot_retrains_total{{outcome=\"success\"}} {}",
            g(&self.retrains_ok)
        );
        let _ = writeln!(
            out,
            "llmpilot_retrains_total{{outcome=\"failure\"}} {}",
            g(&self.retrains_failed)
        );

        out.push_str(
            "# HELP llmpilot_request_duration_seconds Service latency of handled requests.\n",
        );
        out.push_str("# TYPE llmpilot_request_duration_seconds histogram\n");
        // Cumulative buckets at the classic bounds, backed by the HDR
        // histogram: `count_le` counts every sample recorded at or below
        // each bound (to the histogram's ≤1% value resolution).
        let count = self.latency.count();
        for ub in LATENCY_BUCKETS_S {
            let le = self.latency.count_le((ub * 1e9).round() as u64);
            let _ = writeln!(out, "llmpilot_request_duration_seconds_bucket{{le=\"{ub}\"}} {le}");
        }
        let _ = writeln!(out, "llmpilot_request_duration_seconds_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(
            out,
            "llmpilot_request_duration_seconds_sum {}",
            g(&self.latency_sum_us) as f64 / 1e6
        );
        let _ = writeln!(out, "llmpilot_request_duration_seconds_count {count}");

        out.push_str(
            "# HELP llmpilot_request_latency_quantile_seconds Service latency tail quantiles \
             (HDR histogram, <=1% relative error).\n",
        );
        out.push_str("# TYPE llmpilot_request_latency_quantile_seconds gauge\n");
        for (q, label) in LATENCY_QUANTILES {
            let _ = writeln!(
                out,
                "llmpilot_request_latency_quantile_seconds{{quantile=\"{label}\"}} {}",
                self.latency.quantile(q) as f64 / 1e9
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let m = Metrics::new();
        m.record_request(Route::Recommend);
        m.record_request(Route::Recommend);
        m.record_request(Route::Metrics);
        m.record_response(200);
        m.record_response(404);
        m.record_cache(true);
        m.record_cache(false);
        m.record_enqueued();
        m.record_reload(2);
        m.record_retrain(true, 3);
        m.record_retrain(false, 0);
        m.record_latency(Duration::from_micros(300));
        m.record_latency(Duration::from_secs(5));

        assert_eq!(m.requests(Route::Recommend), 2);
        assert_eq!(m.cache_counts(), (1, 1));
        assert_eq!(m.queue_depth(), 1);
        m.record_dequeued();
        assert_eq!(m.queue_depth(), 0);

        let text = m.render();
        assert!(text.contains("llmpilot_requests_total{route=\"recommend\"} 2"));
        assert!(text.contains("llmpilot_requests_total{route=\"metrics\"} 1"));
        assert!(text.contains("llmpilot_responses_total{class=\"2xx\"} 1"));
        assert!(text.contains("llmpilot_responses_total{class=\"4xx\"} 1"));
        assert!(text.contains("llmpilot_cache_requests_total{result=\"hit\"} 1"));
        assert!(text.contains("llmpilot_dataset_generation 2"));
        assert!(text.contains("llmpilot_model_generation 3"));
        assert!(text.contains("llmpilot_retrains_total{outcome=\"failure\"} 1"));
        assert!(text.contains("llmpilot_request_duration_seconds_count 2"));
        assert!(text.contains("llmpilot_request_duration_seconds_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.record_latency(Duration::from_micros(50)); // <= 0.0001
        m.record_latency(Duration::from_micros(400)); // <= 0.0005
        let text = m.render();
        assert!(text.contains("llmpilot_request_duration_seconds_bucket{le=\"0.0001\"} 1"));
        assert!(text.contains("llmpilot_request_duration_seconds_bucket{le=\"0.0005\"} 2"));
        assert!(text.contains("llmpilot_request_duration_seconds_bucket{le=\"1\"} 2"));
        // Each bucket count never decreases as the bound grows.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("llmpilot_request_duration_seconds_bucket"))
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert_eq!(counts.len(), LATENCY_BUCKETS_S.len() + 1);
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn latency_quantile_gauges_are_accurate_and_ordered() {
        let m = Metrics::new();
        // 1..=1000 µs uniformly: p50 ≈ 500 µs, p99 ≈ 990 µs.
        for us in 1..=1000u64 {
            m.record_latency(Duration::from_micros(us));
        }
        let text = m.render();
        let q = |label: &str| -> f64 {
            let needle =
                format!("llmpilot_request_latency_quantile_seconds{{quantile=\"{label}\"}}");
            text.lines()
                .find(|l| l.starts_with(&needle))
                .unwrap_or_else(|| panic!("missing {needle} in {text}"))
                .split_whitespace()
                .last()
                .unwrap()
                .parse()
                .unwrap()
        };
        let (p50, p95, p99, p999) = (q("0.5"), q("0.95"), q("0.99"), q("0.999"));
        assert!((p50 - 500e-6).abs() / 500e-6 < 0.01, "p50 = {p50}");
        assert!((p99 - 990e-6).abs() / 990e-6 < 0.01, "p99 = {p99}");
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p999);
    }
}
