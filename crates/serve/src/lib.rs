#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # llmpilot-serve
//!
//! The online half of LLM-Pilot as a long-running service: a
//! multi-threaded GPU-recommendation daemon over the characterization
//! dataset. Where the offline binaries answer one query and exit, this
//! crate keeps a trained [`llmpilot_core::ServingModel`] resident, serves
//! `GET /recommend` queries from a worker pool with an LRU response
//! cache, hot-reloads the dataset (via `POST /reload` or an mtime
//! watcher) with atomic `Arc` swaps, retrains the predictor in the
//! background on dataset change, applies admission control under
//! overload (`503` + `Retry-After`), and exposes Prometheus metrics on
//! `GET /metrics`.
//!
//! The build environment is fully offline, so the HTTP layer ([`http`])
//! is hand-rolled on `std::net` — no tokio/hyper — with hard limits on
//! request sizes.
//!
//! ```text
//! GET  /recommend?model=Llama-2-13b&users=200&ttft=100&itl=50
//! POST /reload
//! GET  /metrics
//! GET  /healthz
//! ```

pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod store;

pub use cache::LruCache;
pub use client::{http_request, ClientResponse, HttpClient};
pub use http::{parse_request, Limits, ParseError, Request, Response};
pub use metrics::{Metrics, Route};
pub use registry::{ModelRegistry, TrainedModel};
pub use server::{ServeConfig, ServeError, Server, ServerHandle};
pub use store::{DatasetStore, ReloadOutcome};
