//! The recommendation daemon: a multi-threaded TCP server wiring the
//! dataset store, model registry, response cache and metrics behind the
//! hand-rolled HTTP layer.
//!
//! Concurrency model: one acceptor thread pushes connections into a
//! bounded queue (`std::sync::mpsc::sync_channel`); `workers` threads pop
//! and drive connections (keep-alive aware). When the queue is full the
//! acceptor answers `503` with `Retry-After` itself — admission control
//! costs one small write, never a worker. An optional watcher thread
//! polls the dataset file's mtime and retrains in the background on
//! change. Shutdown drains: the acceptor stops, the queue's sender drops,
//! workers finish their in-flight connections and exit, and every thread
//! is joined.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use llmpilot_core::{
    online_predictor_config, CoreError, LatencyConstraints, PredictorConfig, RecommendationRequest,
};
use llmpilot_obs::events::EventSink;
use llmpilot_obs::json::JsonWriter;
use llmpilot_obs::{ArgValue, Recorder};

use crate::cache::LruCache;
use crate::http::{parse_request, Limits, Request, Response};
use crate::metrics::{Metrics, Route};
use crate::registry::ModelRegistry;
use crate::store::DatasetStore;

/// Errors starting or running the daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Dataset or training failure.
    Core(CoreError),
    /// Socket-level failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "{e}"),
            ServeError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Characterization-dataset CSV to serve from (and hot-reload).
    pub data_path: PathBuf,
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded connection-queue capacity (admission control threshold).
    pub queue_capacity: usize,
    /// Response-cache capacity, entries (0 disables caching).
    pub cache_capacity: usize,
    /// Poll interval of the dataset-file watcher; `None` disables watching
    /// (reloads then only happen via `POST /reload`).
    pub watch_interval: Option<Duration>,
    /// SLA used for the Eq.-(4) training weights.
    pub train_constraints: LatencyConstraints,
    /// Predictor configuration for (re)training.
    pub predictor: PredictorConfig,
    /// HTTP parser limits.
    pub limits: Limits,
    /// Per-connection read timeout (bounds idle keep-alive sessions).
    pub read_timeout: Duration,
    /// Maximum requests served on one keep-alive connection.
    pub max_requests_per_connection: u32,
    /// Observability sink: request handling and retraining record spans
    /// here. Disabled by default; every response carries an `X-Trace-Id`
    /// header regardless.
    pub recorder: Recorder,
    /// Write a Chrome-trace JSON snapshot of the recorder here on graceful
    /// shutdown (`None` disables; meaningless unless `recorder` is
    /// enabled).
    pub trace_out: Option<PathBuf>,
    /// Print a hierarchical span summary to stderr at shutdown.
    pub trace_summary: bool,
    /// JSONL telemetry stream: startup, hot reloads, and retrains are
    /// appended here as versioned events. Disabled by default.
    pub events: EventSink,
}

impl ServeConfig {
    /// Sensible defaults for serving `data_path`.
    pub fn new(data_path: impl Into<PathBuf>) -> Self {
        Self {
            data_path: data_path.into(),
            addr: "127.0.0.1:8008".into(),
            workers: 4,
            queue_capacity: 128,
            cache_capacity: 4096,
            watch_interval: Some(Duration::from_secs(2)),
            train_constraints: LatencyConstraints::paper_defaults(),
            predictor: online_predictor_config(),
            limits: Limits::default(),
            read_timeout: Duration::from_secs(5),
            max_requests_per_connection: 10_000,
            recorder: Recorder::disabled(),
            trace_out: None,
            trace_summary: false,
            events: EventSink::disabled(),
        }
    }
}

/// The per-pod user counts `𝕌` the query path searches (paper defaults).
fn default_user_grid() -> Vec<u32> {
    (0..8).map(|i| 1u32 << i).collect()
}

type CacheKey = (String, u32, u64, u64, u64, u64);

/// Shared state of the running daemon.
struct Ctx {
    store: DatasetStore,
    registry: ModelRegistry,
    metrics: Metrics,
    cache: Mutex<LruCache<CacheKey, String>>,
    config: ServeConfig,
    shutdown: AtomicBool,
    /// Monotone request ids, issued even when tracing is disabled so every
    /// response carries a usable `X-Trace-Id`.
    next_trace_id: AtomicU64,
}

/// Handle to a running daemon; dropping it does NOT stop the server —
/// call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's metric registry (for embedding tests/benchmarks).
    pub fn metrics(&self) -> &Metrics {
        &self.ctx.metrics
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// connections, join every thread.
    pub fn shutdown(self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept` with one throwaway
        // connection; it checks the flag before queueing anything.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads {
            let _ = t.join();
        }
        if self.ctx.config.trace_out.is_some() || self.ctx.config.trace_summary {
            let trace = self.ctx.config.recorder.snapshot();
            if let Some(path) = &self.ctx.config.trace_out {
                let json = llmpilot_obs::chrome::to_chrome_json(&trace);
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("warning: failed to write trace to {path:?}: {e}");
                }
            }
            if self.ctx.config.trace_summary {
                eprint!("{}", llmpilot_obs::summary::summarize(&trace));
            }
        }
    }
}

/// The llmpilot-serve daemon.
pub struct Server;

impl Server {
    /// Load the dataset, train the initial model (blocking), bind the
    /// listener and spin up the acceptor/worker/watcher threads.
    pub fn start(config: ServeConfig) -> Result<ServerHandle, ServeError> {
        let store = DatasetStore::open(&config.data_path)?;
        let registry = ModelRegistry::new(config.train_constraints, config.predictor.clone())
            .with_recorder(config.recorder.clone());
        let metrics = Metrics::new();

        let (dataset, generation) = store.snapshot();
        let model_generation = registry.train_and_swap(&dataset, generation)?;
        metrics.set_dataset_generation(generation);
        metrics.record_retrain(true, model_generation);

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let cache = Mutex::new(LruCache::new(config.cache_capacity));
        let ctx = Arc::new(Ctx {
            store,
            registry,
            metrics,
            cache,
            config,
            shutdown: AtomicBool::new(false),
            next_trace_id: AtomicU64::new(1),
        });

        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(ctx.config.queue_capacity);
        let rx = Arc::new(Mutex::new(rx));

        let mut threads = Vec::new();
        for i in 0..ctx.config.workers.max(1) {
            let ctx = Arc::clone(&ctx);
            let rx = Arc::clone(&rx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("llmpilot-worker-{i}"))
                    .spawn(move || worker_loop(&ctx, &rx))
                    .map_err(ServeError::Io)?,
            );
        }

        {
            let ctx = Arc::clone(&ctx);
            threads.push(
                std::thread::Builder::new()
                    .name("llmpilot-acceptor".into())
                    .spawn(move || acceptor_loop(&ctx, &listener, tx))
                    .map_err(ServeError::Io)?,
            );
        }

        if ctx.config.watch_interval.is_some() {
            let ctx = Arc::clone(&ctx);
            threads.push(
                std::thread::Builder::new()
                    .name("llmpilot-watcher".into())
                    .spawn(move || watcher_loop(&ctx))
                    .map_err(ServeError::Io)?,
            );
        }

        ctx.config.events.emit(
            "serve.started",
            &[
                ("addr", ArgValue::Str(addr.to_string())),
                ("workers", ArgValue::U64(ctx.config.workers as u64)),
                ("dataset_generation", ArgValue::U64(generation)),
                ("model_generation", ArgValue::U64(model_generation)),
            ],
        );
        Ok(ServerHandle { addr, ctx, threads })
    }
}

/// Append a reload/retrain outcome to the telemetry stream. `source` is
/// `"watch"` (mtime watcher) or `"reload"` (`POST /reload`).
fn emit_reload_event(ctx: &Ctx, source: &str, ok: bool, generation: u64, model_generation: u64) {
    ctx.config.events.emit(
        if ok { "serve.reloaded" } else { "serve.retrain_failed" },
        &[
            ("source", ArgValue::Str(source.to_string())),
            ("dataset_generation", ArgValue::U64(generation)),
            ("model_generation", ArgValue::U64(model_generation)),
        ],
    );
}

/// Accept connections and queue them; answer 503 when the queue is full.
/// Owns the channel sender: when this returns, workers drain and exit.
fn acceptor_loop(ctx: &Ctx, listener: &TcpListener, tx: SyncSender<TcpStream>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match tx.try_send(stream) {
            Ok(()) => ctx.metrics.record_enqueued(),
            Err(TrySendError::Full(mut stream)) => {
                ctx.metrics.record_rejected();
                ctx.metrics.record_response(503);
                let trace_id = ctx.next_trace_id.fetch_add(1, Ordering::Relaxed);
                let resp =
                    Response::json(503, "{\"error\":\"server overloaded, retry later\"}".into())
                        .with_header("Retry-After", "1")
                        .with_header("X-Trace-Id", format!("{trace_id:08x}"));
                let _ = resp.write_to(&mut stream, false);
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

/// Pop connections off the queue and serve them until the sender drops.
fn worker_loop(ctx: &Ctx, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Take the receiver lock only to pop; release before serving so
        // other workers keep draining the queue.
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match stream {
            Ok(stream) => {
                ctx.metrics.record_dequeued();
                handle_connection(ctx, stream);
            }
            Err(_) => return, // sender dropped: shutdown drain complete
        }
    }
}

/// Poll the dataset file's mtime; reload + retrain in the background on
/// change. Errors (mid-write partial files, invalid data) leave the
/// previous generation serving and are retried next tick.
fn watcher_loop(ctx: &Ctx) {
    let interval = ctx.config.watch_interval.unwrap_or(Duration::from_secs(2));
    let tick = Duration::from_millis(50);
    let mut elapsed = Duration::ZERO;
    while !ctx.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        elapsed += tick;
        if elapsed < interval {
            continue;
        }
        elapsed = Duration::ZERO;
        if let Ok(outcome) = ctx.store.reload_if_modified() {
            if outcome.changed {
                ctx.metrics.record_reload(outcome.generation);
                let (dataset, generation) = ctx.store.snapshot();
                match ctx.registry.train_and_swap(&dataset, generation) {
                    Ok(model_generation) => {
                        ctx.metrics.record_retrain(true, model_generation);
                        emit_reload_event(ctx, "watch", true, generation, model_generation);
                    }
                    Err(_) => {
                        ctx.metrics.record_retrain(false, 0);
                        emit_reload_event(ctx, "watch", false, generation, 0);
                    }
                }
            }
        }
    }
}

/// Serve one (possibly keep-alive) connection.
fn handle_connection(ctx: &Ctx, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ctx.config.read_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut served: u32 = 0;
    loop {
        match parse_request(&mut reader, &ctx.config.limits) {
            Ok(None) => return, // peer closed cleanly
            Ok(Some(request)) => {
                served += 1;
                let trace_id = ctx.next_trace_id.fetch_add(1, Ordering::Relaxed);
                let started = Instant::now();
                let response = {
                    let mut span = ctx
                        .config
                        .recorder
                        .span("serve.request")
                        .arg("trace_id", trace_id)
                        .arg("method", request.method.clone())
                        .arg("path", request.path.clone());
                    let response = route(ctx, &request);
                    span.set_arg("status", u64::from(response.status));
                    response
                };
                let response = response.with_header("X-Trace-Id", format!("{trace_id:08x}"));
                ctx.metrics.record_response(response.status);
                ctx.metrics.record_latency(started.elapsed());
                let keep_alive = request.keep_alive()
                    && served < ctx.config.max_requests_per_connection
                    && !ctx.shutdown.load(Ordering::SeqCst);
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(e) => {
                let status = e.status();
                if status != 0 {
                    let trace_id = ctx.next_trace_id.fetch_add(1, Ordering::Relaxed);
                    ctx.metrics.record_request(Route::Other);
                    ctx.metrics.record_response(status);
                    let body = error_body(&e.to_string());
                    let _ = Response::json(status, body)
                        .with_header("X-Trace-Id", format!("{trace_id:08x}"))
                        .write_to(&mut writer, false);
                }
                return;
            }
        }
    }
}

/// Dispatch one parsed request.
fn route(ctx: &Ctx, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/recommend") => {
            ctx.metrics.record_request(Route::Recommend);
            handle_recommend(ctx, request)
        }
        ("POST", "/reload") => {
            ctx.metrics.record_request(Route::Reload);
            handle_reload(ctx)
        }
        ("GET", "/metrics") => {
            ctx.metrics.record_request(Route::Metrics);
            ctx.metrics.set_trace_spans(ctx.config.recorder.spans_recorded());
            Response::text(200, ctx.metrics.render())
        }
        ("GET", "/healthz") => {
            ctx.metrics.record_request(Route::Health);
            let ready = ctx.registry.current().is_some();
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("ready");
            w.bool(ready);
            w.end_object();
            Response::json(if ready { 200 } else { 503 }, w.finish())
        }
        ("GET" | "POST", _) => {
            ctx.metrics.record_request(Route::Other);
            Response::json(404, "{\"error\":\"no such endpoint\"}".into())
        }
        _ => {
            ctx.metrics.record_request(Route::Other);
            Response::json(405, "{\"error\":\"method not allowed\"}".into())
        }
    }
}

/// `{"error": msg}` rendered through the shared JSON writer.
fn error_body(msg: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("error");
    w.string(msg);
    w.end_object();
    w.finish()
}

/// Parse a positive float query parameter.
fn float_param(request: &Request, key: &str, default: f64) -> Result<f64, Response> {
    match request.query_param(key) {
        None => Ok(default),
        Some(raw) => match raw.parse::<f64>() {
            Ok(v) if v.is_finite() && v > 0.0 => Ok(v),
            _ => Err(Response::json(
                400,
                error_body(&format!("{key} must be a positive number, got {raw}")),
            )),
        },
    }
}

/// `GET /recommend?model=NAME&users=N&ttft=MS&itl=MS`.
fn handle_recommend(ctx: &Ctx, request: &Request) -> Response {
    let Some(model_name) = request.query_param("model") else {
        return Response::json(400, "{\"error\":\"missing required query param: model\"}".into());
    };
    let users = match request.query_param("users") {
        None => 200u32,
        Some(raw) => match raw.parse::<u32>() {
            Ok(v) if (1..=10_000_000).contains(&v) => v,
            _ => {
                return Response::json(
                    400,
                    error_body(&format!("users must be an integer in [1, 1e7], got {raw}")),
                )
            }
        },
    };
    let nttft_ms = match float_param(request, "ttft", 100.0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let itl_ms = match float_param(request, "itl", 50.0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };

    let Some(trained) = ctx.registry.current() else {
        return Response::json(503, "{\"error\":\"model not trained yet\"}".into())
            .with_header("Retry-After", "1");
    };
    let dataset_generation = ctx.store.generation();

    let key: CacheKey = (
        model_name.to_string(),
        users,
        (nttft_ms * 1e3) as u64, // microsecond resolution
        (itl_ms * 1e3) as u64,
        dataset_generation,
        trained.model_generation,
    );
    if let Ok(mut cache) = ctx.cache.lock() {
        if let Some(body) = cache.get(&key) {
            ctx.metrics.record_cache(true);
            return Response::json(200, body).with_header("X-Cache", "hit");
        }
    }
    ctx.metrics.record_cache(false);

    let req = RecommendationRequest {
        total_users: users,
        constraints: LatencyConstraints { nttft_s: nttft_ms / 1e3, itl_s: itl_ms / 1e3 },
        user_grid: default_user_grid(),
    };
    match trained.serving.recommend(model_name, &req) {
        Ok(rec) => {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("llm");
            w.string(model_name);
            w.key("profile");
            w.string(&rec.profile);
            w.key("pods");
            w.u64(rec.pods as u64);
            w.key("u_max");
            w.u64(rec.u_max as u64);
            w.key("cost_per_hour");
            // Keep the historical 4-decimal rendering of the dollar figure.
            w.raw(&format!("{:.4}", rec.cost_per_hour));
            w.key("dataset_generation");
            w.u64(dataset_generation);
            w.key("model_generation");
            w.u64(trained.model_generation);
            w.end_object();
            let body = w.finish();
            if let Ok(mut cache) = ctx.cache.lock() {
                cache.put(key, body.clone());
            }
            Response::json(200, body).with_header("X-Cache", "miss")
        }
        Err(CoreError::Parse(msg)) => Response::json(400, error_body(&msg)),
        Err(CoreError::NoFeasibleRecommendation) => {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("error");
            w.string("no GPU profile satisfies the requirements");
            w.key("dataset_generation");
            w.u64(dataset_generation);
            w.key("model_generation");
            w.u64(trained.model_generation);
            w.end_object();
            Response::json(404, w.finish())
        }
        Err(e) => Response::json(500, error_body(&e.to_string())),
    }
}

/// `POST /reload`: force a dataset re-read; on change, retrain before
/// responding (queries on other workers keep using the old model until
/// the swap). Returns the generations now live.
fn handle_reload(ctx: &Ctx) -> Response {
    match ctx.store.reload() {
        Ok(outcome) => {
            if outcome.changed {
                ctx.metrics.record_reload(outcome.generation);
                let (dataset, generation) = ctx.store.snapshot();
                match ctx.registry.train_and_swap(&dataset, generation) {
                    Ok(model_generation) => {
                        ctx.metrics.record_retrain(true, model_generation);
                        emit_reload_event(ctx, "reload", true, generation, model_generation);
                    }
                    Err(e) => {
                        ctx.metrics.record_retrain(false, 0);
                        emit_reload_event(ctx, "reload", false, generation, 0);
                        return Response::json(500, error_body(&format!("retraining failed: {e}")));
                    }
                }
            }
            let model_generation = ctx.registry.current().map_or(0, |m| m.model_generation);
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("reloaded");
            w.bool(outcome.changed);
            w.key("dataset_generation");
            w.u64(outcome.generation);
            w.key("model_generation");
            w.u64(model_generation);
            w.end_object();
            Response::json(200, w.finish())
        }
        Err(e) => Response::json(
            400,
            error_body(&format!("reload rejected, previous dataset still serving: {e}")),
        ),
    }
}
