//! A minimal blocking HTTP/1.1 client for tests and the load-generation
//! benchmark. Supports keep-alive: one [`HttpClient`] issues any number of
//! sequential requests over a single connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One keep-alive HTTP connection.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A parsed response: status code, headers (lowercased names) and body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First header named `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

impl HttpClient {
    /// Connect to `addr`.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let writer = stream.try_clone()?;
        Ok(Self { reader: BufReader::new(stream), writer })
    }

    /// Issue one request and read the full response.
    pub fn request(&mut self, method: &str, target: &str) -> std::io::Result<ClientResponse> {
        write!(
            self.writer,
            "{method} {target} HTTP/1.1\r\nHost: llmpilot\r\nConnection: keep-alive\r\n\r\n"
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let status_line = self.read_line()?;
        let status =
            status_line.split(' ').nth(1).and_then(|s| s.parse::<u16>().ok()).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "bad Content-Length")
                    })?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse { status, headers, body })
    }
}

/// One-shot convenience: connect, issue a single request, close.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    target: &str,
) -> std::io::Result<ClientResponse> {
    HttpClient::connect(addr)?.request(method, target)
}
