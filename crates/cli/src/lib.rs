#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Typed command-line flag parsing for the LLM-Pilot binaries.
//!
//! Both `llm-pilot` and `llmpilot-serve` used to hand-roll
//! `HashMap<String, String>` flag maps with per-call-site `parse().expect`
//! plumbing. This crate replaces that with *declared* flags:
//!
//! ```
//! use llmpilot_cli::Command;
//!
//! let mut cmd = Command::new("demo", "demonstrate typed flags");
//! let out = cmd.required::<String>("out", "FILE", "output path");
//! let users = cmd.flag("users", "N", "number of users", 200u32);
//! let verbose = cmd.switch("verbose", "print more");
//! let args: Vec<String> = vec!["--out".into(), "x.csv".into(), "--verbose".into()];
//! let parsed = cmd.parse(&args).unwrap();
//! assert_eq!(parsed.get(&out), "x.csv");
//! assert_eq!(parsed.get(&users), 200);
//! assert!(parsed.get(&verbose));
//! ```
//!
//! Each [`Command`] generates its own `--help` text; unknown flags,
//! missing values, and failed parses/validations are reported as
//! [`CliError::Usage`], which [`Command::parse_or_exit`] turns into the
//! conventional exit code 2 (`--help` exits 0).

use std::any::Any;
use std::fmt::Display;
use std::marker::PhantomData;
use std::str::FromStr;

/// A typed handle to a declared flag; index into the command's spec table.
pub struct Flag<T> {
    index: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for Flag<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Flag<T> {}

enum Kind {
    /// `--name VALUE`
    Value,
    /// `--name` (boolean presence)
    Switch,
}

type ParseFn = Box<dyn Fn(&str) -> Result<Box<dyn Any>, String>>;
type DefaultFn = Box<dyn Fn() -> Box<dyn Any>>;

struct FlagSpec {
    name: &'static str,
    value_name: &'static str,
    help: String,
    kind: Kind,
    required: bool,
    default_text: Option<String>,
    parse: ParseFn,
    default: Option<DefaultFn>,
}

/// Errors surfaced by [`Command::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help`/`-h` was given; the caller should print help and exit 0.
    Help,
    /// A usage error; the caller should print it and exit 2.
    Usage(String),
}

impl Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Help => write!(f, "help requested"),
            CliError::Usage(msg) => write!(f, "{msg}"),
        }
    }
}

/// One subcommand: its declared flags and generated help.
pub struct Command {
    name: String,
    about: String,
    specs: Vec<FlagSpec>,
    max_positionals: usize,
    positional_doc: String,
}

impl Command {
    /// A new command. `name` is the full invocation prefix shown in usage
    /// lines (e.g. `"llm-pilot characterize"`).
    pub fn new(name: impl Into<String>, about: impl Into<String>) -> Self {
        Command {
            name: name.into(),
            about: about.into(),
            specs: Vec::new(),
            max_positionals: 0,
            positional_doc: String::new(),
        }
    }

    /// Allow up to `max` positional arguments, documented as `doc`.
    pub fn positionals(&mut self, max: usize, doc: impl Into<String>) {
        self.max_positionals = max;
        self.positional_doc = doc.into();
    }

    fn push<T>(&mut self, spec: FlagSpec) -> Flag<T> {
        assert!(self.specs.iter().all(|s| s.name != spec.name), "duplicate flag --{}", spec.name);
        self.specs.push(spec);
        Flag { index: self.specs.len() - 1, _marker: PhantomData }
    }

    /// An optional `--name VALUE` flag with a default.
    pub fn flag<T>(
        &mut self,
        name: &'static str,
        value_name: &'static str,
        help: impl Into<String>,
        default: T,
    ) -> Flag<T>
    where
        T: FromStr + Display + Clone + 'static,
    {
        self.flag_checked(name, value_name, help, default, |_| true, "")
    }

    /// An optional `--name VALUE` flag with a default and a validity
    /// `check`; rejected values report the violated `constraint`.
    pub fn flag_checked<T>(
        &mut self,
        name: &'static str,
        value_name: &'static str,
        help: impl Into<String>,
        default: T,
        check: impl Fn(&T) -> bool + 'static,
        constraint: &str,
    ) -> Flag<T>
    where
        T: FromStr + Display + Clone + 'static,
    {
        let mut help = help.into();
        if !constraint.is_empty() {
            help.push_str(&format!(" (must be {constraint})"));
        }
        let constraint = constraint.to_string();
        let flag_name = name;
        self.push(FlagSpec {
            name,
            value_name,
            help,
            kind: Kind::Value,
            required: false,
            default_text: Some(default.to_string()),
            parse: Box::new(move |raw| {
                let value: T =
                    raw.parse().map_err(|_| format!("invalid value for --{flag_name}: {raw:?}"))?;
                if !check(&value) {
                    return Err(format!("--{flag_name} must be {constraint}, got {raw:?}"));
                }
                Ok(Box::new(value))
            }),
            default: Some(Box::new(move || Box::new(default.clone()))),
        })
    }

    /// A required `--name VALUE` flag.
    pub fn required<T>(
        &mut self,
        name: &'static str,
        value_name: &'static str,
        help: impl Into<String>,
    ) -> Flag<T>
    where
        T: FromStr + Clone + 'static,
    {
        let flag_name = name;
        self.push(FlagSpec {
            name,
            value_name,
            help: help.into(),
            kind: Kind::Value,
            required: true,
            default_text: None,
            parse: Box::new(move |raw| {
                let value: T =
                    raw.parse().map_err(|_| format!("invalid value for --{flag_name}: {raw:?}"))?;
                Ok(Box::new(value))
            }),
            default: None,
        })
    }

    /// An optional `--name VALUE` flag with no default: parses to
    /// `Some(value)` when given, `None` otherwise.
    pub fn optional<T>(
        &mut self,
        name: &'static str,
        value_name: &'static str,
        help: impl Into<String>,
    ) -> Flag<Option<T>>
    where
        T: FromStr + Clone + 'static,
    {
        let flag_name = name;
        self.push(FlagSpec {
            name,
            value_name,
            help: help.into(),
            kind: Kind::Value,
            required: false,
            default_text: None,
            parse: Box::new(move |raw| {
                let value: T =
                    raw.parse().map_err(|_| format!("invalid value for --{flag_name}: {raw:?}"))?;
                Ok(Box::new(Some(value)))
            }),
            default: Some(Box::new(|| Box::new(None::<T>))),
        })
    }

    /// A boolean `--name` switch (true when present).
    pub fn switch(&mut self, name: &'static str, help: impl Into<String>) -> Flag<bool> {
        self.push(FlagSpec {
            name,
            value_name: "",
            help: help.into(),
            kind: Kind::Switch,
            required: false,
            default_text: None,
            parse: Box::new(|_| Ok(Box::new(true))),
            default: Some(Box::new(|| Box::new(false))),
        })
    }

    /// The generated help text for this command.
    pub fn help(&self) -> String {
        let mut out = format!("{} — {}\n\n", self.name, self.about);
        out.push_str(&format!("usage: {} [flags]", self.name));
        if self.max_positionals > 0 {
            out.push_str(&format!(" {}", self.positional_doc));
        }
        out.push_str("\n\nflags:\n");
        let mut rows: Vec<(String, &str)> = Vec::new();
        for spec in &self.specs {
            let left = match spec.kind {
                Kind::Switch => format!("--{}", spec.name),
                Kind::Value => format!("--{} {}", spec.name, spec.value_name),
            };
            rows.push((left, &spec.help));
        }
        rows.push(("--help".to_string(), "show this help"));
        let width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (i, (left, help)) in rows.iter().enumerate() {
            out.push_str(&format!("  {left:<width$}  {help}"));
            if let Some(spec) = self.specs.get(i) {
                if spec.required {
                    out.push_str(" (required)");
                } else if let Some(d) = &spec.default_text {
                    out.push_str(&format!(" [default: {d}]"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// The one-line usage hint appended to usage errors.
    fn usage_hint(&self) -> String {
        format!("run `{} --help` for usage", self.name)
    }

    /// Parse `args` (everything after the subcommand word).
    pub fn parse(&self, args: &[String]) -> Result<Parsed, CliError> {
        let mut values: Vec<Option<Box<dyn Any>>> = self.specs.iter().map(|_| None).collect();
        let mut positionals = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let token = &args[i];
            if token == "--help" || token == "-h" {
                return Err(CliError::Help);
            }
            let name = token
                .strip_prefix("--")
                .or_else(|| token.strip_prefix('-').filter(|_| token.len() > 1));
            match name {
                Some(name) => {
                    let Some(idx) = self.specs.iter().position(|s| s.name == name) else {
                        return Err(CliError::Usage(format!("unknown flag {token}")));
                    };
                    let spec = &self.specs[idx];
                    let raw = match spec.kind {
                        Kind::Switch => "",
                        Kind::Value => {
                            i += 1;
                            match args.get(i) {
                                Some(raw) => raw.as_str(),
                                None => {
                                    return Err(CliError::Usage(format!(
                                        "missing value for --{name}"
                                    )))
                                }
                            }
                        }
                    };
                    values[idx] = Some((spec.parse)(raw).map_err(CliError::Usage)?);
                    i += 1;
                }
                None => {
                    positionals.push(token.clone());
                    i += 1;
                }
            }
        }
        if positionals.len() > self.max_positionals {
            return Err(CliError::Usage(format!(
                "unexpected argument {:?}",
                positionals[self.max_positionals]
            )));
        }
        let mut filled = Vec::with_capacity(values.len());
        for (value, spec) in values.into_iter().zip(&self.specs) {
            match value {
                Some(v) => filled.push(v),
                None => match &spec.default {
                    Some(default) => filled.push(default()),
                    None => {
                        return Err(CliError::Usage(format!("missing required --{}", spec.name)))
                    }
                },
            }
        }
        Ok(Parsed { values: filled, positionals })
    }

    /// [`Command::parse`], mapping `--help` to exit 0 and usage errors to
    /// an `error: …` line plus exit 2.
    pub fn parse_or_exit(&self, args: &[String]) -> Parsed {
        match self.parse(args) {
            Ok(parsed) => parsed,
            Err(CliError::Help) => {
                print!("{}", self.help());
                std::process::exit(0)
            }
            Err(CliError::Usage(msg)) => {
                eprintln!("error: {msg}");
                eprintln!("{}", self.usage_hint());
                std::process::exit(2)
            }
        }
    }
}

/// The parsed flag values of one invocation.
pub struct Parsed {
    values: Vec<Box<dyn Any>>,
    positionals: Vec<String>,
}

impl Parsed {
    /// The value of a declared flag. Panics only on a mismatched
    /// `Flag` handle from a *different* `Command` (a programming error).
    pub fn get<T: Clone + 'static>(&self, flag: &Flag<T>) -> T {
        self.values[flag.index]
            .downcast_ref::<T>()
            .expect("Flag handle used with a foreign Command")
            .clone()
    }

    /// Positional (non-flag) arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    #[test]
    fn typed_defaults_required_and_switches() {
        let mut cmd = Command::new("t", "test");
        let out = cmd.required::<String>("out", "FILE", "output");
        let n = cmd.flag("n", "N", "count", 10u32);
        let v = cmd.switch("verbose", "more");
        let llm = cmd.optional::<String>("llm", "NAME", "restrict");
        let p = cmd.parse(&args(&["--out", "x.csv", "--verbose"])).unwrap();
        assert_eq!(p.get(&out), "x.csv");
        assert_eq!(p.get(&n), 10);
        assert!(p.get(&v));
        assert_eq!(p.get(&llm), None);
        let p = cmd.parse(&args(&["--out", "y", "--n", "3", "--llm", "z"])).unwrap();
        assert_eq!(p.get(&n), 3);
        assert_eq!(p.get(&llm), Some("z".to_string()));
    }

    #[test]
    fn single_dash_matches_by_name() {
        let mut cmd = Command::new("t", "test");
        let n = cmd.flag("n", "N", "count", 1u32);
        let p = cmd.parse(&args(&["-n", "5"])).unwrap();
        assert_eq!(p.get(&n), 5);
    }

    #[test]
    fn unknown_flag_missing_value_and_missing_required_are_usage_errors() {
        let mut cmd = Command::new("t", "test");
        let _out = cmd.required::<String>("out", "FILE", "output");
        assert!(matches!(
            cmd.parse(&args(&["--nope", "1"])),
            Err(CliError::Usage(msg)) if msg.contains("unknown flag --nope")
        ));
        assert!(matches!(
            cmd.parse(&args(&["--out"])),
            Err(CliError::Usage(msg)) if msg.contains("missing value")
        ));
        assert!(matches!(
            cmd.parse(&args(&[])),
            Err(CliError::Usage(msg)) if msg.contains("missing required --out")
        ));
    }

    #[test]
    fn checked_flags_report_the_constraint() {
        let mut cmd = Command::new("t", "test");
        let _p = cmd.flag_checked(
            "prob",
            "P",
            "probability",
            0.0f64,
            |v| (0.0..=1.0).contains(v),
            "a probability in [0, 1]",
        );
        assert!(matches!(
            cmd.parse(&args(&["--prob", "1.5"])),
            Err(CliError::Usage(msg)) if msg.contains("a probability in [0, 1]")
        ));
        assert!(matches!(
            cmd.parse(&args(&["--prob", "abc"])),
            Err(CliError::Usage(msg)) if msg.contains("invalid value")
        ));
        assert!(cmd.parse(&args(&["--prob", "0.5"])).is_ok());
    }

    #[test]
    fn help_lists_every_flag_with_defaults() {
        let mut cmd = Command::new("llm-pilot demo", "a demo");
        let _a = cmd.required::<String>("out", "FILE", "output path");
        let _b = cmd.flag("duration", "SECS", "virtual seconds", 120.0f64);
        let _c = cmd.switch("trace-summary", "print span summary");
        assert!(matches!(cmd.parse(&args(&["--help"])), Err(CliError::Help)));
        let help = cmd.help();
        assert!(help.contains("llm-pilot demo"));
        assert!(help.contains("--out FILE"));
        assert!(help.contains("(required)"));
        assert!(help.contains("[default: 120]"));
        assert!(help.contains("--trace-summary"));
    }

    #[test]
    fn positionals_are_bounded() {
        let mut cmd = Command::new("t", "test");
        cmd.positionals(1, "ACTION");
        let p = cmd.parse(&args(&["fit"])).unwrap();
        assert_eq!(p.positionals(), ["fit"]);
        assert!(matches!(cmd.parse(&args(&["fit", "extra"])), Err(CliError::Usage(_))));
        let strict = Command::new("s", "strict");
        assert!(matches!(strict.parse(&args(&["stray"])), Err(CliError::Usage(_))));
    }

    #[test]
    fn last_occurrence_wins_and_negative_numbers_are_not_flags() {
        let mut cmd = Command::new("t", "test");
        let n = cmd.flag("n", "N", "count", 1i64);
        let p = cmd.parse(&args(&["--n", "2", "--n", "7"])).unwrap();
        assert_eq!(p.get(&n), 7);
        // A lone "-" is positional, not a flag.
        let mut cmd2 = Command::new("t2", "test");
        cmd2.positionals(1, "WORD");
        let p = cmd2.parse(&args(&["-"])).unwrap();
        assert_eq!(p.positionals(), ["-"]);
    }
}
