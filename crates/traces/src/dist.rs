//! Small, dependency-free sampling distributions used by the trace
//! generator (and re-used by the workload crate's tests).
//!
//! Only `rand`'s core RNG is used; the distributions themselves (normal via
//! Box–Muller, log-normal, categorical, Zipf) are implemented here.

use rand::Rng;

/// Standard normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Log-normal sample: `exp(N(mu, sigma))`.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Clamp a float into `[lo, hi]` and round it to the nearest integer ≥ lo.
pub fn clamp_round(x: f64, lo: u32, hi: u32) -> u32 {
    let clamped = x.max(lo as f64).min(hi as f64);
    (clamped.round() as u32).clamp(lo, hi)
}

/// Weighted categorical sampler over `0..weights.len()`.
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Build from non-negative weights (at least one must be positive).
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "categorical needs at least one weight");
        assert!(weights.iter().all(|&w| w >= 0.0), "weights must be non-negative");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|&w| {
                acc += w / total;
                acc
            })
            .collect();
        Self { cumulative }
    }

    /// Draw an index with probability proportional to its weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative weights are finite"))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether there are zero categories (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Zipf-distributed sampler over `1..=n` with exponent `s`: used for
/// user-activity skew (a few users send most requests).
#[derive(Debug, Clone)]
pub struct Zipf {
    categorical: Categorical,
}

impl Zipf {
    /// Build a Zipf(n, s) sampler.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1);
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        Self { categorical: Categorical::new(&weights) }
    }

    /// Draw a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.categorical.sample(rng) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn log_normal_is_positive_and_skewed() {
        let mut r = rng();
        let samples: Vec<f64> = (0..10_000).map(|_| log_normal(&mut r, 5.0, 1.0)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        // Log-normals are right-skewed: mean > median.
        assert!(mean > median);
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let mut r = rng();
        let c = Categorical::new(&[1.0, 3.0, 6.0]);
        let mut counts = [0usize; 3];
        for _ in 0..60_000 {
            counts[c.sample(&mut r)] += 1;
        }
        assert!((counts[0] as f64 / 60_000.0 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / 60_000.0 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / 60_000.0 - 0.6).abs() < 0.01);
    }

    #[test]
    fn categorical_zero_weight_category_never_drawn() {
        let mut r = rng();
        let c = Categorical::new(&[0.0, 1.0]);
        for _ in 0..1_000 {
            assert_eq!(c.sample(&mut r), 1);
        }
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut r = rng();
        let z = Zipf::new(100, 1.2);
        let mut counts = vec![0usize; 101];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[1] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn clamp_round_respects_bounds() {
        assert_eq!(clamp_round(-5.0, 1, 10), 1);
        assert_eq!(clamp_round(3.4, 1, 10), 3);
        assert_eq!(clamp_round(3.6, 1, 10), 4);
        assert_eq!(clamp_round(99.0, 1, 10), 10);
        assert_eq!(clamp_round(f64::NAN.max(1.0), 1, 10), 1);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_categorical_panics() {
        let _ = Categorical::new(&[]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
