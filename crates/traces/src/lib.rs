#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # llmpilot-traces
//!
//! Synthetic production-trace generation and analytics for LLM inference
//! requests — the substitute for the paper's proprietary 17.3M-request
//! trace collection (Table II). Requests are drawn from latent-correlated
//! task archetypes so the joint parameter structure the paper measures
//! (Fig. 3) is present; every record carries a ground-truth latency label
//! for the Sec. III-A importance study.

pub mod analysis;
pub mod archetype;
pub mod csv;
pub mod dist;
pub mod generator;
pub mod latency_model;
pub mod record;

pub use analysis::{correlation_matrix, spearman, summarize, EmpiricalCdf, TraceSummary};
pub use archetype::{default_archetypes, Archetype, RequestParams};
pub use csv::{csv_header, from_csv, to_csv};
pub use generator::{TraceGenerator, TraceGeneratorConfig, PAPER_HORIZON_S};
pub use latency_model::LatencyModel;
pub use record::{DecodingMethod, Param, TraceDataset, TraceRecord, NUM_AUX_PARAMS};
