//! CSV import/export of trace collections — the interchange format for
//! moving request logs in and out of the toolchain (the paper's traces are
//! a table of exactly this shape).

use crate::record::{DecodingMethod, Param, TraceDataset, TraceRecord, NUM_AUX_PARAMS};

/// The CSV header: identity/time columns, then every [`Param`] column, then
/// the latency label.
pub fn csv_header() -> String {
    let mut cols = vec!["user_id".to_string(), "llm_id".to_string(), "timestamp_s".to_string()];
    cols.extend(Param::all().iter().map(|p| p.name()));
    cols.push("latency_s".to_string());
    cols.join(",")
}

/// Serialize a trace collection to CSV.
pub fn to_csv(ds: &TraceDataset) -> String {
    use std::fmt::Write as _;
    let params = Param::all();
    let mut out = csv_header();
    out.push('\n');
    for r in &ds.records {
        write!(out, "{},{},{}", r.user_id, r.llm_id, r.timestamp_s).expect("write to String");
        for p in &params {
            write!(out, ",{}", p.value(r)).expect("write to String");
        }
        writeln!(out, ",{}", r.latency_s).expect("write to String");
    }
    out
}

/// Parse a trace collection from the CSV produced by [`to_csv`].
pub fn from_csv(text: &str) -> Result<TraceDataset, String> {
    let params = Param::all();
    let expected_fields = 3 + params.len() + 1;
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty input")?;
    if header != csv_header() {
        return Err("unexpected CSV header".to_string());
    }

    let mut records = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != expected_fields {
            return Err(format!(
                "line {}: expected {} fields, found {}",
                lineno + 2,
                expected_fields,
                fields.len()
            ));
        }
        let mut idx = 0usize;
        let mut next = || {
            let f = fields[idx];
            idx += 1;
            f
        };
        let parse_err = |what: &str, raw: &str| format!("line {}: bad {what}: {raw:?}", lineno + 2);

        let user_id: u32 = next().parse().map_err(|_| parse_err("user_id", fields[0]))?;
        let llm_id: u16 = next().parse().map_err(|_| parse_err("llm_id", fields[1]))?;
        let timestamp_s: f64 = next().parse().map_err(|_| parse_err("timestamp_s", fields[2]))?;

        let mut values = Vec::with_capacity(params.len());
        for p in &params {
            let raw = next();
            let v: f64 = raw.parse().map_err(|_| parse_err(&p.name(), raw))?;
            values.push(v);
        }
        let raw = next();
        let latency_s: f64 = raw.parse().map_err(|_| parse_err("latency_s", raw))?;

        let get = |p: Param| -> f64 {
            values[params.iter().position(|&q| q == p).expect("param present")]
        };
        let mut aux = [0.0f32; NUM_AUX_PARAMS];
        for (i, a) in aux.iter_mut().enumerate() {
            *a = get(Param::Aux(i as u8)) as f32;
        }
        records.push(TraceRecord {
            user_id,
            llm_id,
            timestamp_s,
            input_tokens: get(Param::InputTokens) as u32,
            output_tokens: get(Param::OutputTokens) as u32,
            batch_size: get(Param::BatchSize) as u32,
            decoding_method: DecodingMethod::from_code(get(Param::DecodingMethod)),
            temperature: get(Param::Temperature),
            top_k: get(Param::TopK) as u32,
            top_p: get(Param::TopP),
            typical_p: get(Param::TypicalP),
            repetition_penalty: get(Param::RepetitionPenalty),
            length_penalty: get(Param::LengthPenalty),
            max_new_tokens: get(Param::MaxNewTokens) as u32,
            min_new_tokens: get(Param::MinNewTokens) as u32,
            stop_sequences: get(Param::StopSequences) as u32,
            truncate_input_tokens: get(Param::TruncateInput) as u32,
            streaming: get(Param::Streaming) > 0.5,
            aux,
            latency_s,
        });
    }
    Ok(TraceDataset::new(records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceGenerator, TraceGeneratorConfig};

    fn dataset() -> TraceDataset {
        TraceGenerator::new(TraceGeneratorConfig {
            num_requests: 500,
            seed: 71,
            ..TraceGeneratorConfig::default()
        })
        .generate()
    }

    #[test]
    fn header_has_all_columns() {
        let header = csv_header();
        let cols: Vec<&str> = header.split(',').collect();
        assert_eq!(cols.len(), 3 + Param::all().len() + 1);
        assert_eq!(cols[0], "user_id");
        assert!(cols.contains(&"input_tokens"));
        assert!(cols.contains(&"aux_20"));
        assert_eq!(*cols.last().unwrap(), "latency_s");
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let original = dataset();
        let text = to_csv(&original);
        let parsed = from_csv(&text).expect("parse back");
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.records.iter().zip(&parsed.records) {
            assert_eq!(a.user_id, b.user_id);
            assert_eq!(a.llm_id, b.llm_id);
            assert_eq!(a.input_tokens, b.input_tokens);
            assert_eq!(a.output_tokens, b.output_tokens);
            assert_eq!(a.batch_size, b.batch_size);
            assert_eq!(a.decoding_method, b.decoding_method);
            assert_eq!(a.streaming, b.streaming);
            assert!((a.temperature - b.temperature).abs() < 1e-12);
            assert!((a.latency_s - b.latency_s).abs() < 1e-12);
            for (x, y) in a.aux.iter().zip(&b.aux) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(from_csv("").is_err());
        assert!(from_csv("wrong,header\n").is_err());
        let good = to_csv(&dataset());
        let mut lines: Vec<&str> = good.lines().collect();
        lines[1] = "1,2,3"; // too few fields
        assert!(from_csv(&lines.join("\n")).is_err());
    }

    #[test]
    fn empty_dataset_round_trips() {
        let text = to_csv(&TraceDataset::default());
        let parsed = from_csv(&text).unwrap();
        assert!(parsed.is_empty());
    }
}
