//! Trace records: one entry per inference request, mirroring the structure
//! of the paper's production traces (Table II) — user id, timestamp, the
//! request parameters (token counts, batch size and 33 additional
//! TGIS-style decoding parameters) and the measured end-to-end latency.

/// Token-sampling strategy of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodingMethod {
    /// Deterministic argmax decoding.
    Greedy,
    /// Temperature/top-k/top-p sampling.
    Sample,
    /// Beam search.
    BeamSearch,
}

impl DecodingMethod {
    /// Numeric code for analyses and binning.
    pub fn code(self) -> f64 {
        match self {
            DecodingMethod::Greedy => 0.0,
            DecodingMethod::Sample => 1.0,
            DecodingMethod::BeamSearch => 2.0,
        }
    }

    /// Decode a numeric code back into a method (rounded, clamped).
    pub fn from_code(code: f64) -> Self {
        match code.round() as i64 {
            i64::MIN..=0 => DecodingMethod::Greedy,
            1 => DecodingMethod::Sample,
            _ => DecodingMethod::BeamSearch,
        }
    }
}

/// Number of auxiliary request knobs beyond the named ones, chosen so a
/// record carries 33 parameters in addition to the token counts and batch
/// size — matching the paper's Table II.
pub const NUM_AUX_PARAMS: usize = 21;

/// One production-trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Anonymous user identifier.
    pub user_id: u32,
    /// Which LLM the request targeted (index into the platform's catalog).
    pub llm_id: u16,
    /// Seconds since the start of the trace-collection window.
    pub timestamp_s: f64,
    /// Prompt length in tokens.
    pub input_tokens: u32,
    /// Generated output length in tokens.
    pub output_tokens: u32,
    /// Client-side batch size (1–5 in the production traces).
    pub batch_size: u32,
    /// Token-sampling strategy.
    pub decoding_method: DecodingMethod,
    /// Sampling temperature.
    pub temperature: f64,
    /// Top-k cutoff (0 = disabled).
    pub top_k: u32,
    /// Nucleus-sampling cutoff.
    pub top_p: f64,
    /// Typical-decoding cutoff.
    pub typical_p: f64,
    /// Repetition penalty.
    pub repetition_penalty: f64,
    /// Beam-search length penalty.
    pub length_penalty: f64,
    /// Requested generation cap.
    pub max_new_tokens: u32,
    /// Requested generation floor.
    pub min_new_tokens: u32,
    /// Number of stop sequences attached to the request.
    pub stop_sequences: u32,
    /// Prompt-truncation limit requested by the client (0 = none).
    pub truncate_input_tokens: u32,
    /// Whether the response was streamed token-by-token.
    pub streaming: bool,
    /// Remaining auxiliary request knobs (flags, penalties, formatting
    /// options) that production requests carry but that barely move latency.
    pub aux: [f32; NUM_AUX_PARAMS],
    /// Measured end-to-end latency of the request, seconds.
    pub latency_s: f64,
}

/// A named column of the trace table. `Aux(i)` addresses the i-th auxiliary
/// knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Param {
    /// Prompt tokens.
    InputTokens,
    /// Output tokens.
    OutputTokens,
    /// Client-side batch size.
    BatchSize,
    /// Decoding method code.
    DecodingMethod,
    /// Sampling temperature.
    Temperature,
    /// Top-k cutoff.
    TopK,
    /// Top-p cutoff.
    TopP,
    /// Typical-p cutoff.
    TypicalP,
    /// Repetition penalty.
    RepetitionPenalty,
    /// Length penalty.
    LengthPenalty,
    /// Generation cap.
    MaxNewTokens,
    /// Generation floor.
    MinNewTokens,
    /// Stop-sequence count.
    StopSequences,
    /// Prompt truncation limit.
    TruncateInput,
    /// Streaming flag (0/1).
    Streaming,
    /// Auxiliary knob `0..NUM_AUX_PARAMS`.
    Aux(u8),
}

impl Param {
    /// Every column of the trace table.
    pub fn all() -> Vec<Param> {
        let mut v = vec![
            Param::InputTokens,
            Param::OutputTokens,
            Param::BatchSize,
            Param::DecodingMethod,
            Param::Temperature,
            Param::TopK,
            Param::TopP,
            Param::TypicalP,
            Param::RepetitionPenalty,
            Param::LengthPenalty,
            Param::MaxNewTokens,
            Param::MinNewTokens,
            Param::StopSequences,
            Param::TruncateInput,
            Param::Streaming,
        ];
        for i in 0..NUM_AUX_PARAMS {
            v.push(Param::Aux(i as u8));
        }
        v
    }

    /// The parameters the paper's Fig. 3 correlates and its importance study
    /// ranks: token counts, batch size and the token-sampling parameters.
    pub fn core() -> Vec<Param> {
        vec![
            Param::InputTokens,
            Param::OutputTokens,
            Param::BatchSize,
            Param::DecodingMethod,
            Param::Temperature,
            Param::TopK,
            Param::TopP,
            Param::RepetitionPenalty,
        ]
    }

    /// Number of parameters describing a request beyond the token counts and
    /// batch size (the paper's Table II reports 33).
    pub fn additional_param_count() -> usize {
        Param::all().len() - 3
    }

    /// Column label.
    pub fn name(self) -> String {
        match self {
            Param::InputTokens => "input_tokens".into(),
            Param::OutputTokens => "output_tokens".into(),
            Param::BatchSize => "batch_size".into(),
            Param::DecodingMethod => "decoding_method".into(),
            Param::Temperature => "temperature".into(),
            Param::TopK => "top_k".into(),
            Param::TopP => "top_p".into(),
            Param::TypicalP => "typical_p".into(),
            Param::RepetitionPenalty => "repetition_penalty".into(),
            Param::LengthPenalty => "length_penalty".into(),
            Param::MaxNewTokens => "max_new_tokens".into(),
            Param::MinNewTokens => "min_new_tokens".into(),
            Param::StopSequences => "stop_sequences".into(),
            Param::TruncateInput => "truncate_input".into(),
            Param::Streaming => "streaming".into(),
            Param::Aux(i) => format!("aux_{i:02}"),
        }
    }

    /// Parse a column label produced by [`Self::name`].
    pub fn from_name(name: &str) -> Option<Param> {
        Param::all().into_iter().find(|p| p.name() == name)
    }

    /// Read this column's value from a record.
    pub fn value(self, r: &TraceRecord) -> f64 {
        match self {
            Param::InputTokens => f64::from(r.input_tokens),
            Param::OutputTokens => f64::from(r.output_tokens),
            Param::BatchSize => f64::from(r.batch_size),
            Param::DecodingMethod => r.decoding_method.code(),
            Param::Temperature => r.temperature,
            Param::TopK => f64::from(r.top_k),
            Param::TopP => r.top_p,
            Param::TypicalP => r.typical_p,
            Param::RepetitionPenalty => r.repetition_penalty,
            Param::LengthPenalty => r.length_penalty,
            Param::MaxNewTokens => f64::from(r.max_new_tokens),
            Param::MinNewTokens => f64::from(r.min_new_tokens),
            Param::StopSequences => f64::from(r.stop_sequences),
            Param::TruncateInput => f64::from(r.truncate_input_tokens),
            Param::Streaming => f64::from(u8::from(r.streaming)),
            Param::Aux(i) => f64::from(r.aux[usize::from(i)]),
        }
    }
}

/// An in-memory trace collection with columnar access.
#[derive(Debug, Clone, Default)]
pub struct TraceDataset {
    /// The trace entries, in timestamp order.
    pub records: Vec<TraceRecord>,
}

impl TraceDataset {
    /// Wrap a record list.
    pub fn new(records: Vec<TraceRecord>) -> Self {
        Self { records }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Extract one column as a dense vector.
    pub fn column(&self, param: Param) -> Vec<f64> {
        self.records.iter().map(|r| param.value(r)).collect()
    }

    /// End-to-end latency labels.
    pub fn latencies(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.latency_s).collect()
    }

    /// Approximate serialized size of one record in a CSV/JSON trace dump,
    /// bytes — used for the storage comparison of Sec. V-A (the paper's
    /// 17.3M-request collection occupies 1.6 GB, ≈ 92 bytes per request).
    pub fn bytes_per_record() -> usize {
        92
    }

    /// Approximate on-disk size of this dataset if dumped like the paper's
    /// trace collection, bytes.
    pub fn approx_storage_bytes(&self) -> usize {
        self.len() * Self::bytes_per_record()
    }

    /// Number of distinct users.
    pub fn distinct_users(&self) -> usize {
        let mut ids: Vec<u32> = self.records.iter().map(|r| r.user_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Number of distinct LLMs.
    pub fn distinct_llms(&self) -> usize {
        let mut ids: Vec<u16> = self.records.iter().map(|r| r.llm_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> TraceRecord {
        TraceRecord {
            user_id: 7,
            llm_id: 2,
            timestamp_s: 10.5,
            input_tokens: 100,
            output_tokens: 40,
            batch_size: 2,
            decoding_method: DecodingMethod::Sample,
            temperature: 0.8,
            top_k: 50,
            top_p: 0.95,
            typical_p: 1.0,
            repetition_penalty: 1.1,
            length_penalty: 1.0,
            max_new_tokens: 256,
            min_new_tokens: 1,
            stop_sequences: 1,
            truncate_input_tokens: 0,
            streaming: true,
            aux: [0.5; NUM_AUX_PARAMS],
            latency_s: 2.5,
        }
    }

    #[test]
    fn additional_param_count_is_thirty_three() {
        assert_eq!(Param::additional_param_count(), 33);
    }

    #[test]
    fn all_params_have_unique_names() {
        let names: Vec<String> = Param::all().into_iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn param_values_read_the_right_fields() {
        let r = record();
        assert_eq!(Param::InputTokens.value(&r), 100.0);
        assert_eq!(Param::OutputTokens.value(&r), 40.0);
        assert_eq!(Param::BatchSize.value(&r), 2.0);
        assert_eq!(Param::DecodingMethod.value(&r), 1.0);
        assert_eq!(Param::Streaming.value(&r), 1.0);
        assert_eq!(Param::Aux(3).value(&r), 0.5);
    }

    #[test]
    fn decoding_method_codes_round_trip() {
        for m in [DecodingMethod::Greedy, DecodingMethod::Sample, DecodingMethod::BeamSearch] {
            assert_eq!(DecodingMethod::from_code(m.code()), m);
        }
        assert_eq!(DecodingMethod::from_code(-3.0), DecodingMethod::Greedy);
        assert_eq!(DecodingMethod::from_code(9.0), DecodingMethod::BeamSearch);
    }

    #[test]
    fn dataset_columns_and_counts() {
        let mut r2 = record();
        r2.user_id = 8;
        r2.input_tokens = 200;
        let ds = TraceDataset::new(vec![record(), r2]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.column(Param::InputTokens), vec![100.0, 200.0]);
        assert_eq!(ds.distinct_users(), 2);
        assert_eq!(ds.distinct_llms(), 1);
        assert!(ds.approx_storage_bytes() > 0);
    }

    #[test]
    fn param_names_round_trip() {
        for p in Param::all() {
            assert_eq!(Param::from_name(&p.name()), Some(p));
        }
        assert_eq!(Param::from_name("nonsense"), None);
    }

    #[test]
    fn core_params_are_a_subset_of_all() {
        let all = Param::all();
        for p in Param::core() {
            assert!(all.contains(&p));
        }
    }
}
