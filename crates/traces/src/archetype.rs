//! Task archetypes: latent-correlated request-parameter distributions.
//!
//! The paper's workload analysis (Sec. III-A, Fig. 3) shows that production
//! request parameters are strongly rank-correlated — in particular the
//! numbers of input and output tokens, the batch size and the token-sampling
//! parameters. Real traffic has this structure because requests come from
//! *tasks*: a summarization request has a long prompt and a medium output, a
//! chat turn has a short prompt and sampling enabled, a classification call
//! is greedy with a tiny output, and so on.
//!
//! Each [`Archetype`] couples its parameters through a shared latent "size"
//! variable `z ~ N(0,1)`: a request that is large on one dimension tends to
//! be large on the others, producing the positive rank correlations the
//! paper observes; mixing archetypes adds between-task correlation on top.

use rand::Rng;

use crate::dist::{clamp_round, log_normal, normal, standard_normal, Categorical};
use crate::record::{DecodingMethod, NUM_AUX_PARAMS};

/// Hard bounds of the production traces (Table II).
pub const MAX_INPUT_TOKENS: u32 = 4093;
/// Upper bound on output tokens (Table II).
pub const MAX_OUTPUT_TOKENS: u32 = 1500;
/// Upper bound on client-side batch size (Table II).
pub const MAX_BATCH_SIZE: u32 = 5;

/// The request parameters an archetype samples (everything except identity,
/// timestamp and the latency label).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestParams {
    /// Prompt tokens.
    pub input_tokens: u32,
    /// Output tokens.
    pub output_tokens: u32,
    /// Client-side batch size.
    pub batch_size: u32,
    /// Sampling strategy.
    pub decoding_method: DecodingMethod,
    /// Sampling temperature (0 for greedy).
    pub temperature: f64,
    /// Top-k cutoff (0 when disabled).
    pub top_k: u32,
    /// Top-p cutoff (1.0 when disabled).
    pub top_p: f64,
    /// Typical-p cutoff.
    pub typical_p: f64,
    /// Repetition penalty.
    pub repetition_penalty: f64,
    /// Length penalty (beam search).
    pub length_penalty: f64,
    /// Requested generation cap.
    pub max_new_tokens: u32,
    /// Requested generation floor.
    pub min_new_tokens: u32,
    /// Stop-sequence count.
    pub stop_sequences: u32,
    /// Prompt truncation limit (0 = none).
    pub truncate_input_tokens: u32,
    /// Streamed response?
    pub streaming: bool,
    /// Auxiliary knobs.
    pub aux: [f32; NUM_AUX_PARAMS],
}

/// One task archetype with its parameter distributions.
#[derive(Debug, Clone)]
pub struct Archetype {
    /// Task label.
    pub name: &'static str,
    /// Mixture weight in the overall traffic.
    pub weight: f64,
    /// Log-normal location of the input length.
    pub log_mu_input: f64,
    /// Log-normal scale of the input length.
    pub log_sigma_input: f64,
    /// Log-normal location of the output length.
    pub log_mu_output: f64,
    /// Log-normal scale of the output length.
    pub log_sigma_output: f64,
    /// How strongly the latent size variable moves the input length.
    pub size_coupling_input: f64,
    /// How strongly the latent size variable moves the output length.
    pub size_coupling_output: f64,
    /// How strongly the latent size variable raises the batch size.
    pub batch_coupling: f64,
    /// Probabilities of (greedy, sample, beam) decoding.
    pub decoding_probs: [f64; 3],
    /// Temperature range when sampling.
    pub temperature_range: (f64, f64),
    /// Top-k values used when sampling (0 disables).
    pub top_k_choices: &'static [u32],
    /// Top-p range when sampling.
    pub top_p_range: (f64, f64),
    /// Probability the response is streamed.
    pub p_streaming: f64,
}

impl Archetype {
    /// Draw one request from this archetype.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> RequestParams {
        // Shared latent size: couples input, output and batch size.
        let z = standard_normal(rng);

        let input_tokens = clamp_round(
            log_normal(rng, self.log_mu_input + self.size_coupling_input * z, self.log_sigma_input),
            1,
            MAX_INPUT_TOKENS,
        );
        let output_tokens = clamp_round(
            log_normal(
                rng,
                self.log_mu_output + self.size_coupling_output * z,
                self.log_sigma_output,
            ),
            1,
            MAX_OUTPUT_TOKENS,
        );
        let batch_size = clamp_round(
            1.0 + self.batch_coupling * z.max(0.0) + 0.3 * standard_normal(rng).max(0.0),
            1,
            MAX_BATCH_SIZE,
        );

        let decoding = Categorical::new(&self.decoding_probs);
        let decoding_method = match decoding.sample(rng) {
            0 => DecodingMethod::Greedy,
            1 => DecodingMethod::Sample,
            _ => DecodingMethod::BeamSearch,
        };

        // Sampling knobs are set only when sampling is on — which is what
        // correlates the decoding method with temperature/top-k/top-p in
        // the production traces (Fig. 3).
        let (temperature, top_k, top_p, typical_p) = match decoding_method {
            DecodingMethod::Greedy => (0.0, 0, 1.0, 1.0),
            DecodingMethod::Sample => {
                let (lo, hi) = self.temperature_range;
                let t = lo + (hi - lo) * rng.random::<f64>();
                let k = self.top_k_choices[rng.random_range(0..self.top_k_choices.len())];
                let (plo, phi) = self.top_p_range;
                let p = plo + (phi - plo) * rng.random::<f64>();
                let tp =
                    if rng.random::<f64>() < 0.1 { 0.2 + 0.75 * rng.random::<f64>() } else { 1.0 };
                (t, k, p, tp)
            }
            DecodingMethod::BeamSearch => (0.0, 0, 1.0, 1.0),
        };

        let repetition_penalty = if matches!(decoding_method, DecodingMethod::Sample) {
            1.0 + 0.25 * rng.random::<f64>()
        } else {
            1.0
        };
        let length_penalty = if matches!(decoding_method, DecodingMethod::BeamSearch) {
            0.8 + 0.6 * rng.random::<f64>()
        } else {
            1.0
        };

        // Clients request a cap somewhat above the realized output length.
        let max_new_tokens = clamp_round(
            output_tokens as f64 * (1.1 + 0.9 * rng.random::<f64>()),
            output_tokens,
            2 * MAX_OUTPUT_TOKENS,
        );
        let min_new_tokens = if rng.random::<f64>() < 0.15 {
            clamp_round(output_tokens as f64 * 0.2, 1, output_tokens)
        } else {
            1
        };

        let stop_sequences = if rng.random::<f64>() < 0.3 { rng.random_range(1..=4) } else { 0 };
        let truncate_input_tokens = if rng.random::<f64>() < 0.2 {
            clamp_round(input_tokens as f64 * (1.0 + rng.random::<f64>()), input_tokens, 8192)
        } else {
            0
        };
        let streaming = rng.random::<f64>() < self.p_streaming;

        let mut aux = [0.0f32; NUM_AUX_PARAMS];
        for (i, a) in aux.iter_mut().enumerate() {
            // Mostly-default knobs with occasional user overrides.
            *a = if rng.random::<f64>() < 0.1 {
                normal(rng, 0.5 + 0.02 * i as f64, 0.2) as f32
            } else {
                0.0
            };
        }

        RequestParams {
            input_tokens,
            output_tokens,
            batch_size,
            decoding_method,
            temperature,
            top_k,
            top_p,
            typical_p,
            repetition_penalty,
            length_penalty,
            max_new_tokens,
            min_new_tokens,
            stop_sequences,
            truncate_input_tokens,
            streaming,
            aux,
        }
    }
}

/// The default mixture of six production task archetypes.
pub fn default_archetypes() -> Vec<Archetype> {
    vec![
        Archetype {
            name: "chat",
            weight: 0.30,
            log_mu_input: 5.0,
            log_sigma_input: 0.5,
            log_mu_output: 4.6,
            log_sigma_output: 0.45,
            size_coupling_input: 0.85,
            size_coupling_output: 0.8,
            batch_coupling: 0.45,
            decoding_probs: [0.15, 0.85, 0.0],
            temperature_range: (0.6, 1.1),
            top_k_choices: &[0, 40, 50, 100],
            top_p_range: (0.85, 0.99),
            p_streaming: 0.9,
        },
        Archetype {
            name: "summarization",
            weight: 0.18,
            log_mu_input: 7.2,
            log_sigma_input: 0.35,
            log_mu_output: 5.1,
            log_sigma_output: 0.3,
            size_coupling_input: 0.75,
            size_coupling_output: 0.65,
            batch_coupling: 0.7,
            decoding_probs: [0.6, 0.35, 0.05],
            temperature_range: (0.3, 0.8),
            top_k_choices: &[0, 20, 50],
            top_p_range: (0.8, 0.95),
            p_streaming: 0.3,
        },
        Archetype {
            name: "code_generation",
            weight: 0.17,
            log_mu_input: 6.2,
            log_sigma_input: 0.55,
            log_mu_output: 5.3,
            log_sigma_output: 0.5,
            size_coupling_input: 0.9,
            size_coupling_output: 0.85,
            batch_coupling: 0.5,
            decoding_probs: [0.5, 0.5, 0.0],
            temperature_range: (0.2, 0.8),
            top_k_choices: &[0, 10, 40],
            top_p_range: (0.9, 0.99),
            p_streaming: 0.7,
        },
        Archetype {
            name: "extraction",
            weight: 0.15,
            log_mu_input: 6.8,
            log_sigma_input: 0.4,
            log_mu_output: 3.2,
            log_sigma_output: 0.35,
            size_coupling_input: 0.75,
            size_coupling_output: 0.55,
            batch_coupling: 1.1,
            decoding_probs: [0.9, 0.1, 0.0],
            temperature_range: (0.0, 0.4),
            top_k_choices: &[0, 10],
            top_p_range: (0.9, 1.0),
            p_streaming: 0.05,
        },
        Archetype {
            name: "translation",
            weight: 0.12,
            log_mu_input: 5.6,
            log_sigma_input: 0.4,
            log_mu_output: 5.5,
            log_sigma_output: 0.35,
            size_coupling_input: 0.9,
            size_coupling_output: 0.9,
            batch_coupling: 0.8,
            decoding_probs: [0.35, 0.35, 0.3],
            temperature_range: (0.2, 0.7),
            top_k_choices: &[0, 5, 10],
            top_p_range: (0.85, 0.98),
            p_streaming: 0.1,
        },
        Archetype {
            name: "classification",
            weight: 0.08,
            log_mu_input: 5.4,
            log_sigma_input: 0.5,
            log_mu_output: 1.2,
            log_sigma_output: 0.4,
            size_coupling_input: 0.6,
            size_coupling_output: 0.3,
            batch_coupling: 1.3,
            decoding_probs: [0.97, 0.03, 0.0],
            temperature_range: (0.0, 0.2),
            top_k_choices: &[0],
            top_p_range: (1.0, 1.0),
            p_streaming: 0.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_table2_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for a in default_archetypes() {
            for _ in 0..2_000 {
                let r = a.sample(&mut rng);
                assert!(r.input_tokens >= 1 && r.input_tokens <= MAX_INPUT_TOKENS);
                assert!(r.output_tokens >= 1 && r.output_tokens <= MAX_OUTPUT_TOKENS);
                assert!(r.batch_size >= 1 && r.batch_size <= MAX_BATCH_SIZE);
                assert!(r.max_new_tokens >= r.output_tokens);
                assert!(r.min_new_tokens <= r.output_tokens);
                assert!(r.top_p > 0.0 && r.top_p <= 1.0);
            }
        }
    }

    #[test]
    fn greedy_requests_have_neutral_sampling_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = &default_archetypes()[3]; // extraction: mostly greedy
        for _ in 0..500 {
            let r = a.sample(&mut rng);
            if r.decoding_method == DecodingMethod::Greedy {
                assert_eq!(r.temperature, 0.0);
                assert_eq!(r.top_k, 0);
                assert_eq!(r.top_p, 1.0);
            }
        }
    }

    #[test]
    fn latent_size_couples_input_and_output() {
        // Within one archetype, inputs and outputs must be positively
        // correlated through the latent size variable.
        let mut rng = StdRng::seed_from_u64(3);
        let a = &default_archetypes()[0];
        let samples: Vec<_> = (0..20_000).map(|_| a.sample(&mut rng)).collect();
        let xs: Vec<f64> = samples.iter().map(|r| f64::from(r.input_tokens)).collect();
        let ys: Vec<f64> = samples.iter().map(|r| f64::from(r.output_tokens)).collect();
        let mx = xs.iter().sum::<f64>() / xs.len() as f64;
        let my = ys.iter().sum::<f64>() / ys.len() as f64;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        let pearson = cov / (vx.sqrt() * vy.sqrt());
        assert!(pearson > 0.3, "pearson = {pearson}");
    }

    #[test]
    fn archetype_weights_sum_to_one() {
        let total: f64 = default_archetypes().iter().map(|a| a.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn archetypes_differ_in_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let arch = default_archetypes();
        let mean_out = |a: &Archetype, rng: &mut StdRng| {
            (0..3_000).map(|_| f64::from(a.sample(rng).output_tokens)).sum::<f64>() / 3_000.0
        };
        let chat = mean_out(&arch[0], &mut rng);
        let classification = mean_out(&arch[5], &mut rng);
        assert!(chat > 5.0 * classification, "chat {chat} vs classification {classification}");
    }
}
