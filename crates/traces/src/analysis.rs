//! Trace analytics: Spearman rank correlation (Fig. 3), summary statistics
//! (Table II) and empirical CDFs (Fig. 6).

use std::fmt;

use crate::record::{Param, TraceDataset};

/// Average ranks of a sample (ties receive the mean of their rank range),
/// 1-based like the classical definition.
pub fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite values"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation of two equal-length samples; `NaN` when degenerate.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must have equal length");
    let n = xs.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return f64::NAN;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Spearman's rank correlation coefficient [41 in the paper]: the Pearson
/// correlation of the rank-transformed samples (tie-aware).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&ranks(xs), &ranks(ys))
}

/// Pairwise Spearman correlation matrix over the given trace columns
/// (the paper's Fig. 3).
pub fn correlation_matrix(ds: &TraceDataset, params: &[Param]) -> Vec<Vec<f64>> {
    let columns: Vec<Vec<f64>> = params.iter().map(|&p| ds.column(p)).collect();
    let k = params.len();
    let mut m = vec![vec![0.0; k]; k];
    for i in 0..k {
        m[i][i] = 1.0;
        for j in (i + 1)..k {
            let r = spearman(&columns[i], &columns[j]);
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    m
}

/// Table II-style characteristics of a trace collection.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Collection-window length in days.
    pub period_days: f64,
    /// Number of requests.
    pub num_requests: usize,
    /// Number of distinct users.
    pub num_users: usize,
    /// Number of distinct LLMs.
    pub num_llms: usize,
    /// Input-token range (min, max).
    pub input_token_range: (u32, u32),
    /// Output-token range (min, max).
    pub output_token_range: (u32, u32),
    /// Batch-size range (min, max).
    pub batch_size_range: (u32, u32),
    /// Number of additional request parameters.
    pub additional_params: usize,
}

/// Summarize a trace dataset (the reproduction of Table II).
pub fn summarize(ds: &TraceDataset) -> TraceSummary {
    let horizon = ds.records.iter().map(|r| r.timestamp_s).fold(0.0f64, f64::max);
    let minmax_u32 = |f: &dyn Fn(&crate::record::TraceRecord) -> u32| {
        let mut lo = u32::MAX;
        let mut hi = 0;
        for r in &ds.records {
            let v = f(r);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if ds.is_empty() {
            (0, 0)
        } else {
            (lo, hi)
        }
    };
    TraceSummary {
        period_days: horizon / 86_400.0,
        num_requests: ds.len(),
        num_users: ds.distinct_users(),
        num_llms: ds.distinct_llms(),
        input_token_range: minmax_u32(&|r| r.input_tokens),
        output_token_range: minmax_u32(&|r| r.output_tokens),
        batch_size_range: minmax_u32(&|r| r.batch_size),
        additional_params: Param::additional_param_count(),
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Time period          {:.1} months", self.period_days / 30.0)?;
        writeln!(f, "Number of requests   {}", self.num_requests)?;
        writeln!(f, "Number of users      approx. {}", self.num_users)?;
        writeln!(f, "Number of LLMs       {}", self.num_llms)?;
        writeln!(
            f,
            "Range of tokens      input: {}-{}, output: {}-{}",
            self.input_token_range.0,
            self.input_token_range.1,
            self.output_token_range.0,
            self.output_token_range.1
        )?;
        writeln!(
            f,
            "Batch sizes          {}-{}",
            self.batch_size_range.0, self.batch_size_range.1
        )?;
        write!(f, "Additional params    {}", self.additional_params)
    }
}

/// Empirical cumulative distribution function of a sample.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Build from a sample (NaNs are rejected).
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(values.iter().all(|v| v.is_finite()), "CDF sample must be finite");
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self { sorted: values }
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of the sample ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Quantile `q ∈ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let i = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        self.sorted[i]
    }

    /// Maximum absolute CDF difference against another sample on the union
    /// of their support points (two-sample Kolmogorov–Smirnov statistic):
    /// used to quantify how closely the workload generator reproduces the
    /// empirical marginals (Fig. 6).
    pub fn ks_distance(&self, other: &EmpiricalCdf) -> f64 {
        let mut d = 0.0f64;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceGenerator, TraceGeneratorConfig};

    #[test]
    fn ranks_handle_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[5.0]), vec![1.0]);
    }

    #[test]
    fn spearman_detects_monotone_relations() {
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect(); // monotone, nonlinear
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((spearman(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_near_zero_for_independent() {
        // Deterministic pseudo-random interleaving.
        let xs: Vec<f64> = (0..1000).map(|i| f64::from((i * 7919) % 1000)).collect();
        let ys: Vec<f64> = (0..1000).map(|i| f64::from((i * 104_729) % 1000)).collect();
        assert!(spearman(&xs, &ys).abs() < 0.1);
    }

    #[test]
    fn pearson_degenerate_is_nan() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_nan());
        assert!(pearson(&[1.0], &[2.0]).is_nan());
    }

    #[test]
    fn correlation_matrix_is_symmetric_with_unit_diagonal() {
        let ds = TraceGenerator::new(TraceGeneratorConfig {
            num_requests: 5_000,
            seed: 3,
            ..TraceGeneratorConfig::default()
        })
        .generate();
        let params = Param::core();
        let m = correlation_matrix(&ds, &params);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(*v, m[j][i]);
            }
        }
    }

    #[test]
    fn fig3_structure_tokens_and_batch_correlate() {
        let ds = TraceGenerator::new(TraceGeneratorConfig {
            num_requests: 30_000,
            seed: 4,
            ..TraceGeneratorConfig::default()
        })
        .generate();
        let params = Param::core();
        let m = correlation_matrix(&ds, &params);
        // Indices in Param::core(): 0 input, 1 output, 2 batch, 3 decoding,
        // 4 temperature, 5 top_k, 6 top_p.
        assert!(m[0][1] > 0.2, "input-output rho = {}", m[0][1]);
        assert!(m[3][4].abs() > 0.3, "decoding-temperature rho = {}", m[3][4]);
        // Sampling parameters correlate with each other.
        assert!(m[4][5].abs() > 0.2, "temperature-topk rho = {}", m[4][5]);
    }

    #[test]
    fn summary_matches_generator_config() {
        let ds = TraceGenerator::new(TraceGeneratorConfig {
            num_requests: 10_000,
            num_users: 300,
            num_llms: 24,
            seed: 5,
            ..TraceGeneratorConfig::default()
        })
        .generate();
        let s = summarize(&ds);
        assert_eq!(s.num_requests, 10_000);
        assert_eq!(s.num_llms, 24);
        assert_eq!(s.additional_params, 33);
        assert!(s.period_days > 100.0);
        assert!(s.batch_size_range.1 <= 5);
        assert!(s.input_token_range.1 <= 4093);
        assert!(s.output_token_range.1 <= 1500);
        let text = s.to_string();
        assert!(text.contains("Number of LLMs       24"));
    }

    #[test]
    fn empirical_cdf_eval_and_quantile() {
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(2.0), 0.5);
        assert_eq!(cdf.eval(10.0), 1.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 4.0);
    }

    #[test]
    fn ks_distance_zero_for_identical_samples() {
        let a = EmpiricalCdf::new(vec![1.0, 5.0, 9.0]);
        let b = EmpiricalCdf::new(vec![1.0, 5.0, 9.0]);
        assert_eq!(a.ks_distance(&b), 0.0);
        let c = EmpiricalCdf::new(vec![100.0, 200.0, 300.0]);
        assert_eq!(a.ks_distance(&c), 1.0);
    }
}
