//! Synthetic production-trace generation.
//!
//! Substitutes the paper's proprietary 5.5-month, 17.3M-request trace
//! collection (Table II): requests are drawn from a mixture of task
//! archetypes; users have Zipf-skewed activity, a dominant personal task and
//! a small set of preferred LLMs; timestamps follow a diurnal daily profile
//! over a configurable horizon. Every record is labeled with a ground-truth
//! end-to-end latency (see [`crate::latency_model`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::archetype::{default_archetypes, Archetype};
use crate::dist::{Categorical, Zipf};
use crate::latency_model::LatencyModel;
use crate::record::{TraceDataset, TraceRecord};

/// Seconds in the paper's 5.5-month collection window.
pub const PAPER_HORIZON_S: f64 = 5.5 * 30.0 * 86_400.0;

/// Configuration of a synthetic trace generation run.
#[derive(Debug, Clone)]
pub struct TraceGeneratorConfig {
    /// Number of requests to generate. The paper's collection holds 17.3M;
    /// experiments here default to a smaller corpus with the same structure.
    pub num_requests: usize,
    /// Number of distinct users (paper: ≈ 2500).
    pub num_users: u32,
    /// Number of LLMs hosted on the platform (paper: 24).
    pub num_llms: u16,
    /// Collection-window length, virtual seconds.
    pub horizon_s: f64,
    /// Zipf exponent of per-user activity skew.
    pub user_activity_skew: f64,
    /// Probability a request uses its user's dominant archetype (the rest
    /// draws from the global mixture).
    pub user_task_affinity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceGeneratorConfig {
    fn default() -> Self {
        Self {
            num_requests: 100_000,
            num_users: 2_500,
            num_llms: 24,
            horizon_s: PAPER_HORIZON_S,
            user_activity_skew: 1.1,
            user_task_affinity: 0.8,
            seed: 0xC0FFEE,
        }
    }
}

/// Synthetic trace generator.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: TraceGeneratorConfig,
    archetypes: Vec<Archetype>,
    latency_model: LatencyModel,
}

impl TraceGenerator {
    /// Generator with the default archetype mixture and latency model.
    pub fn new(config: TraceGeneratorConfig) -> Self {
        Self { config, archetypes: default_archetypes(), latency_model: LatencyModel::default() }
    }

    /// Generator with custom archetypes and latency model.
    pub fn with_models(
        config: TraceGeneratorConfig,
        archetypes: Vec<Archetype>,
        latency_model: LatencyModel,
    ) -> Self {
        assert!(!archetypes.is_empty(), "need at least one archetype");
        Self { config, archetypes, latency_model }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TraceGeneratorConfig {
        &self.config
    }

    /// Hour-of-day weights of a typical enterprise platform: traffic ramps
    /// during working hours and thins overnight.
    fn diurnal_weights() -> [f64; 24] {
        let mut w = [0.0f64; 24];
        for (h, wh) in w.iter_mut().enumerate() {
            let x = (h as f64 - 14.0) / 24.0 * std::f64::consts::TAU;
            *wh = 1.0 + 0.85 * x.cos();
        }
        w
    }

    /// Generate the trace dataset. Deterministic for a fixed config.
    pub fn generate(&self) -> TraceDataset {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let user_rank = Zipf::new(cfg.num_users as usize, cfg.user_activity_skew);
        let global_mix =
            Categorical::new(&self.archetypes.iter().map(|a| a.weight).collect::<Vec<_>>());
        let hours = Categorical::new(&Self::diurnal_weights());

        // Per-user dominant archetype and preferred LLM (assigned lazily and
        // deterministically from the user id so memory stays O(users)).
        let mut user_archetype: Vec<Option<u8>> = vec![None; cfg.num_users as usize];
        let mut user_llm: Vec<Option<u16>> = vec![None; cfg.num_users as usize];

        let mut records = Vec::with_capacity(cfg.num_requests);
        for _ in 0..cfg.num_requests {
            let user_id = (user_rank.sample(&mut rng) - 1) as u32;
            let dominant = *user_archetype[user_id as usize]
                .get_or_insert_with(|| global_mix.sample(&mut rng) as u8);
            let preferred_llm = *user_llm[user_id as usize]
                .get_or_insert_with(|| rng.random_range(0..cfg.num_llms));

            let archetype_idx = if rng.random::<f64>() < cfg.user_task_affinity {
                usize::from(dominant)
            } else {
                global_mix.sample(&mut rng)
            };
            let params = self.archetypes[archetype_idx].sample(&mut rng);

            let llm_id = if rng.random::<f64>() < 0.85 {
                preferred_llm
            } else {
                rng.random_range(0..cfg.num_llms)
            };

            // Timestamp: uniform day within the horizon, diurnal hour.
            let day = rng.random_range(0..(cfg.horizon_s / 86_400.0).max(1.0) as u64);
            let hour = hours.sample(&mut rng) as f64;
            let within = rng.random::<f64>() * 3_600.0;
            let timestamp_s = day as f64 * 86_400.0 + hour * 3_600.0 + within;

            let latency_s = self.latency_model.sample_latency(&params, &mut rng);

            records.push(TraceRecord {
                user_id,
                llm_id,
                timestamp_s,
                input_tokens: params.input_tokens,
                output_tokens: params.output_tokens,
                batch_size: params.batch_size,
                decoding_method: params.decoding_method,
                temperature: params.temperature,
                top_k: params.top_k,
                top_p: params.top_p,
                typical_p: params.typical_p,
                repetition_penalty: params.repetition_penalty,
                length_penalty: params.length_penalty,
                max_new_tokens: params.max_new_tokens,
                min_new_tokens: params.min_new_tokens,
                stop_sequences: params.stop_sequences,
                truncate_input_tokens: params.truncate_input_tokens,
                streaming: params.streaming,
                aux: params.aux,
                latency_s,
            });
        }
        records.sort_by(|a, b| a.timestamp_s.partial_cmp(&b.timestamp_s).expect("finite times"));
        TraceDataset::new(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archetype::{MAX_BATCH_SIZE, MAX_INPUT_TOKENS, MAX_OUTPUT_TOKENS};
    use crate::record::Param;

    fn small() -> TraceDataset {
        TraceGenerator::new(TraceGeneratorConfig {
            num_requests: 20_000,
            num_users: 500,
            num_llms: 24,
            seed: 7,
            ..TraceGeneratorConfig::default()
        })
        .generate()
    }

    #[test]
    fn generates_requested_count_sorted_by_time() {
        let ds = small();
        assert_eq!(ds.len(), 20_000);
        assert!(ds.records.windows(2).all(|w| w[0].timestamp_s <= w[1].timestamp_s));
    }

    #[test]
    fn bounds_match_table2() {
        let ds = small();
        for r in &ds.records {
            assert!(r.input_tokens >= 1 && r.input_tokens <= MAX_INPUT_TOKENS);
            assert!(r.output_tokens >= 1 && r.output_tokens <= MAX_OUTPUT_TOKENS);
            assert!(r.batch_size >= 1 && r.batch_size <= MAX_BATCH_SIZE);
            assert!(r.latency_s > 0.0);
            assert!(r.timestamp_s >= 0.0 && r.timestamp_s <= PAPER_HORIZON_S + 86_400.0);
        }
    }

    #[test]
    fn user_population_is_skewed_but_wide() {
        let ds = small();
        let users = ds.distinct_users();
        // Zipf skew: far fewer active users than requests, but a wide base.
        assert!(users > 200, "users = {users}");
        assert!(users <= 500);
        // The most active user sends far more than the median user.
        let mut counts = std::collections::HashMap::new();
        for r in &ds.records {
            *counts.entry(r.user_id).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        let median = {
            let mut v: Vec<_> = counts.values().copied().collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(max > 10 * median, "max {max} median {median}");
    }

    #[test]
    fn all_llms_receive_traffic() {
        let ds = small();
        assert_eq!(ds.distinct_llms(), 24);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.records[0], b.records[0]);
        assert_eq!(a.records[a.len() - 1], b.records[b.len() - 1]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = TraceGenerator::new(TraceGeneratorConfig {
            num_requests: 20_000,
            num_users: 500,
            seed: 8,
            ..TraceGeneratorConfig::default()
        })
        .generate();
        assert_ne!(a.records[0], b.records[0]);
    }

    #[test]
    fn input_output_tokens_positively_correlated() {
        // The headline Fig. 3 structure must survive the full pipeline.
        let ds = small();
        let xs = ds.column(Param::InputTokens);
        let ys = ds.column(Param::OutputTokens);
        let mx = xs.iter().sum::<f64>() / xs.len() as f64;
        let my = ys.iter().sum::<f64>() / ys.len() as f64;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        assert!(cov / (vx.sqrt() * vy.sqrt()) > 0.15);
    }

    #[test]
    fn diurnal_profile_concentrates_daytime_traffic() {
        let ds = small();
        let mut by_hour = [0usize; 24];
        for r in &ds.records {
            let hour = ((r.timestamp_s % 86_400.0) / 3_600.0) as usize % 24;
            by_hour[hour] += 1;
        }
        let afternoon = by_hour[14];
        let night = by_hour[2];
        assert!(afternoon > 2 * night, "14h={afternoon} 02h={night}");
    }
}
