//! Ground-truth end-to-end latency labels for synthetic trace records.
//!
//! The production traces record the measured end-to-end latency of every
//! request; the paper's Sec. III-A importance study fits a random-forest
//! regressor to those latencies (reaching R² ≈ 0.93) and finds the output
//! token count most influential, followed by the input tokens, the batch
//! size and the token-sampling parameters.
//!
//! This module labels synthetic records with a latency that has exactly that
//! dependency structure: a decode term linear in output tokens (dominant), a
//! prefill term linear in input tokens, a batch-size slowdown, second-order
//! effects from the sampling knobs, and multiplicative log-normal noise
//! (queueing, cluster load) sized so a good regressor can reach R² ≈ 0.9.

use rand::Rng;

use crate::archetype::RequestParams;
use crate::dist::log_normal;
use crate::record::DecodingMethod;

/// Coefficients of the latency labeling model.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Seconds per output token (decode, bandwidth-bound) — dominant.
    pub per_output_token_s: f64,
    /// Seconds per input token (prefill, compute-bound).
    pub per_input_token_s: f64,
    /// Fixed overhead per request, seconds.
    pub fixed_s: f64,
    /// Relative slowdown per extra sequence in the client batch.
    pub batch_slowdown: f64,
    /// Log-scale standard deviation of the multiplicative noise.
    pub noise_sigma: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            per_output_token_s: 0.032,
            per_input_token_s: 0.00042,
            fixed_s: 0.12,
            batch_slowdown: 0.18,
            noise_sigma: 0.16,
        }
    }
}

impl LatencyModel {
    /// Relative decode-cost factor of the request's sampling configuration:
    /// greedy is cheapest, sampling adds logits filtering, beam search
    /// multiplies work by the beam.
    pub fn decoding_factor(&self, p: &RequestParams) -> f64 {
        match p.decoding_method {
            DecodingMethod::Greedy => 1.0,
            DecodingMethod::Sample => {
                1.04 + 0.06 * p.temperature
                    + 0.0004 * f64::from(p.top_k)
                    + 0.05 * (1.0 - p.top_p)
                    + 0.08 * (p.repetition_penalty - 1.0)
            }
            DecodingMethod::BeamSearch => 1.6 + 0.1 * (p.length_penalty - 1.0),
        }
    }

    /// Noise-free expected latency of a request, seconds.
    pub fn expected_latency(&self, p: &RequestParams) -> f64 {
        let decode = self.per_output_token_s * f64::from(p.output_tokens) * self.decoding_factor(p);
        let prefill = self.per_input_token_s * f64::from(p.input_tokens);
        let batch = 1.0 + self.batch_slowdown * f64::from(p.batch_size - 1);
        self.fixed_s + (decode + prefill) * batch
    }

    /// Label a request with a noisy latency, seconds.
    pub fn sample_latency<R: Rng + ?Sized>(&self, p: &RequestParams, rng: &mut R) -> f64 {
        self.expected_latency(p) * log_normal(rng, 0.0, self.noise_sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archetype::default_archetypes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base_params() -> RequestParams {
        let mut rng = StdRng::seed_from_u64(9);
        default_archetypes()[0].sample(&mut rng)
    }

    #[test]
    fn output_tokens_dominate_latency() {
        let m = LatencyModel::default();
        let mut p = base_params();
        p.batch_size = 1;
        p.input_tokens = 100;
        p.output_tokens = 100;
        let base = m.expected_latency(&p);
        let mut more_out = p.clone();
        more_out.output_tokens = 200;
        let mut more_in = p.clone();
        more_in.input_tokens = 200;
        let d_out = m.expected_latency(&more_out) - base;
        let d_in = m.expected_latency(&more_in) - base;
        assert!(d_out > 10.0 * d_in, "out {d_out} vs in {d_in}");
    }

    #[test]
    fn batch_size_slows_requests_down() {
        let m = LatencyModel::default();
        let mut p = base_params();
        p.batch_size = 1;
        let one = m.expected_latency(&p);
        p.batch_size = 5;
        let five = m.expected_latency(&p);
        assert!(five > 1.5 * one);
    }

    #[test]
    fn beam_search_is_most_expensive() {
        let m = LatencyModel::default();
        let mut p = base_params();
        p.decoding_method = DecodingMethod::Greedy;
        let greedy = m.decoding_factor(&p);
        p.decoding_method = DecodingMethod::Sample;
        p.temperature = 0.8;
        let sample = m.decoding_factor(&p);
        p.decoding_method = DecodingMethod::BeamSearch;
        let beam = m.decoding_factor(&p);
        assert!(greedy < sample);
        assert!(sample < beam);
    }

    #[test]
    fn noise_is_multiplicative_and_unbiased_in_log() {
        let m = LatencyModel::default();
        let p = base_params();
        let mut rng = StdRng::seed_from_u64(10);
        let expected = m.expected_latency(&p);
        let n = 20_000;
        let mean_log_ratio: f64 =
            (0..n).map(|_| (m.sample_latency(&p, &mut rng) / expected).ln()).sum::<f64>()
                / n as f64;
        assert!(mean_log_ratio.abs() < 0.01, "mean log ratio {mean_log_ratio}");
    }

    #[test]
    fn latencies_are_positive() {
        let m = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(11);
        for a in default_archetypes() {
            for _ in 0..500 {
                let p = a.sample(&mut rng);
                assert!(m.sample_latency(&p, &mut rng) > 0.0);
            }
        }
    }
}
