//! Property-based invariants of the placement solvers.

use proptest::prelude::*;

use llmpilot_placement::{
    solve_exact, solve_greedy, DeploymentOption, GpuInventory, PlacementProblem, Tenant,
};

fn arb_problem() -> impl Strategy<Value = PlacementProblem> {
    let gpu_types = ["A", "B", "C"];
    let inventory = prop::collection::vec(0u32..6, 3).prop_map(move |counts| {
        GpuInventory::from_counts(gpu_types.iter().zip(&counts).map(|(g, &c)| (g.to_string(), c)))
    });
    let option = (0usize..3, 1u32..3, 1u32..4, 1u32..20).prop_map(move |(g, per, pods, cost)| {
        DeploymentOption {
            profile: format!("{per}x{}", gpu_types[g]),
            gpu_type: gpu_types[g].to_string(),
            gpus_per_pod: per,
            pods,
            cost_per_hour: f64::from(cost),
        }
    });
    let tenants = prop::collection::vec(
        prop::collection::vec(option, 0..4)
            .prop_map(|options| Tenant { name: "t".into(), options }),
        1..5,
    );
    (inventory, tenants).prop_map(|(inventory, tenants)| PlacementProblem { inventory, tenants })
}

proptest! {
    /// Both solvers always return feasible placements, and the exact solver
    /// is never beaten by the greedy heuristic.
    #[test]
    fn solvers_are_feasible_and_exact_dominates(problem in arb_problem()) {
        let greedy = solve_greedy(&problem);
        let exact = solve_exact(&problem);
        prop_assert!(greedy.is_feasible(&problem));
        prop_assert!(exact.is_feasible(&problem));
        prop_assert!(!greedy.beats(&exact, &problem));
        // Costs are non-negative and served counts bounded.
        prop_assert!(greedy.total_cost(&problem) >= 0.0);
        prop_assert!(exact.served() <= problem.tenants.len());
    }

    /// Growing the inventory never hurts: the exact solution on a larger
    /// inventory serves at least as many tenants at no greater cost for the
    /// same served count.
    #[test]
    fn more_inventory_never_hurts(problem in arb_problem(), extra in 1u32..4) {
        let exact_small = solve_exact(&problem);
        let mut bigger = problem.clone();
        bigger.inventory.add("A", extra);
        bigger.inventory.add("B", extra);
        bigger.inventory.add("C", extra);
        let exact_big = solve_exact(&bigger);
        prop_assert!(exact_big.served() >= exact_small.served());
        if exact_big.served() == exact_small.served() {
            prop_assert!(
                exact_big.total_cost(&bigger) <= exact_small.total_cost(&problem) + 1e-9
            );
        }
    }
}
