//! The multi-tenant placement problem: each tenant wants one of several
//! viable deployments; all tenants draw from one finite GPU inventory.
//!
//! The objective is lexicographic, matching how a cluster administrator
//! thinks: first serve as many tenants as possible, then minimize the total
//! hourly cost of the chosen deployments.

use crate::inventory::GpuInventory;

/// One viable deployment for a tenant: `pods` pods, each holding
/// `gpus_per_pod` GPUs of `gpu_type`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentOption {
    /// Profile name, e.g. `2xA10-24GB`.
    pub profile: String,
    /// GPU type consumed, e.g. `A10-24GB`.
    pub gpu_type: String,
    /// GPUs per pod.
    pub gpus_per_pod: u32,
    /// Pods needed to satisfy the tenant's SLA and load.
    pub pods: u32,
    /// Total hourly cost of the deployment.
    pub cost_per_hour: f64,
}

impl DeploymentOption {
    /// Total GPUs the option consumes.
    pub fn gpus_needed(&self) -> u32 {
        self.gpus_per_pod * self.pods
    }
}

/// A tenant: a named service with its viable deployment options (already
/// filtered to those satisfying its SLA, e.g. via LLM-Pilot's recommender).
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// Service name.
    pub name: String,
    /// Viable deployments; an empty list means the tenant can never be
    /// served.
    pub options: Vec<DeploymentOption>,
}

/// The problem instance.
#[derive(Debug, Clone)]
pub struct PlacementProblem {
    /// The shared inventory.
    pub inventory: GpuInventory,
    /// The competing tenants.
    pub tenants: Vec<Tenant>,
}

/// A solver's answer: per tenant, the chosen option index (into
/// `tenant.options`) or `None` when left unserved.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// `choices[i]` corresponds to `problem.tenants[i]`.
    pub choices: Vec<Option<usize>>,
}

impl Placement {
    /// Number of served tenants.
    pub fn served(&self) -> usize {
        self.choices.iter().filter(|c| c.is_some()).count()
    }

    /// Total hourly cost of the served tenants.
    pub fn total_cost(&self, problem: &PlacementProblem) -> f64 {
        self.choices
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|j| problem.tenants[i].options[j].cost_per_hour))
            .sum()
    }

    /// Validate against the problem: every choice must exist and the GPU
    /// usage must fit the inventory.
    pub fn is_feasible(&self, problem: &PlacementProblem) -> bool {
        if self.choices.len() != problem.tenants.len() {
            return false;
        }
        let mut inventory = problem.inventory.clone();
        for (i, choice) in self.choices.iter().enumerate() {
            let Some(j) = choice else { continue };
            let Some(option) = problem.tenants[i].options.get(*j) else {
                return false;
            };
            if !inventory.take(&option.gpu_type, option.gpus_needed()) {
                return false;
            }
        }
        true
    }

    /// Lexicographic objective: more served tenants first, then lower cost.
    /// Returns `true` when `self` strictly beats `other`.
    pub fn beats(&self, other: &Placement, problem: &PlacementProblem) -> bool {
        match self.served().cmp(&other.served()) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => {
                self.total_cost(problem) < other.total_cost(problem) - 1e-9
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn option(gpu: &str, per_pod: u32, pods: u32, cost: f64) -> DeploymentOption {
        DeploymentOption {
            profile: format!("{per_pod}x{gpu}"),
            gpu_type: gpu.into(),
            gpus_per_pod: per_pod,
            pods,
            cost_per_hour: cost,
        }
    }

    fn problem() -> PlacementProblem {
        PlacementProblem {
            inventory: GpuInventory::from_counts([("A".into(), 4), ("B".into(), 2)]),
            tenants: vec![
                Tenant {
                    name: "svc1".into(),
                    options: vec![option("A", 1, 2, 2.0), option("B", 1, 1, 5.0)],
                },
                Tenant { name: "svc2".into(), options: vec![option("A", 2, 2, 4.0)] },
                Tenant { name: "svc3".into(), options: vec![] },
            ],
        }
    }

    #[test]
    fn feasibility_checks_inventory() {
        let p = problem();
        // svc1 on A (2 GPUs) + svc2 on A (4 GPUs) = 6 > 4 available.
        let bad = Placement { choices: vec![Some(0), Some(0), None] };
        assert!(!bad.is_feasible(&p));
        // svc1 on B (1 GPU) + svc2 on A (4 GPUs) fits.
        let good = Placement { choices: vec![Some(1), Some(0), None] };
        assert!(good.is_feasible(&p));
        assert_eq!(good.served(), 2);
        assert!((good.total_cost(&p) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_choice_is_infeasible() {
        let p = problem();
        let bad = Placement { choices: vec![Some(7), None, None] };
        assert!(!bad.is_feasible(&p));
        let wrong_len = Placement { choices: vec![None] };
        assert!(!wrong_len.is_feasible(&p));
    }

    #[test]
    fn lexicographic_objective() {
        let p = problem();
        let serve_both = Placement { choices: vec![Some(1), Some(0), None] }; // cost 9
        let serve_one_cheap = Placement { choices: vec![Some(0), None, None] }; // cost 2
        assert!(serve_both.beats(&serve_one_cheap, &p));
        let serve_both_expensive = Placement { choices: vec![Some(1), Some(0), None] };
        assert!(!serve_both.beats(&serve_both_expensive, &p)); // ties don't beat
    }

    #[test]
    fn gpus_needed_multiplies() {
        assert_eq!(option("A", 4, 3, 1.0).gpus_needed(), 12);
    }
}
