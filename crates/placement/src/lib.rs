#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # llmpilot-placement
//!
//! Multi-tenant GPU placement — the LLM-Pilot paper's stated next step
//! ("the multi-tenancy scenario, in which multiple users compete to deploy
//! LLM inference services on the same hardware resources", Sec. VII),
//! implemented on top of the reproduction:
//!
//! * a [`inventory::GpuInventory`] of the cluster's physical
//!   GPUs,
//! * [`problem::Tenant`]s whose viable deployments come from
//!   measured characterization data or LLM-Pilot's performance model
//!   ([`from_dataset`]),
//! * solvers ([`solver`]) optimizing the lexicographic objective
//!   (serve the most tenants, then minimize total cost): a greedy heuristic
//!   with local improvement and an exact branch-and-bound oracle.

pub mod from_dataset;
pub mod inventory;
pub mod problem;
pub mod solver;

pub use from_dataset::{profiles_in_dataset, tenant_from_measurements, tenant_from_predictions};
pub use inventory::GpuInventory;
pub use problem::{DeploymentOption, Placement, PlacementProblem, Tenant};
pub use solver::{solve_exact, solve_greedy};
