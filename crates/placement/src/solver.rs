//! Placement solvers: a fast greedy heuristic with local improvement, and
//! an exact branch-and-bound for small instances (used as the oracle in
//! tests and to quantify the heuristic's gap).

use crate::inventory::GpuInventory;
use crate::problem::{Placement, PlacementProblem};

/// Greedy placement: serve tenants in order of "desperation" (fewest
/// viable options first, then largest minimum GPU need), picking each
/// tenant's cheapest option that still fits; then a local-improvement pass
/// re-checks cheaper options and tries to place unserved tenants.
pub fn solve_greedy(problem: &PlacementProblem) -> Placement {
    let n = problem.tenants.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| {
        let t = &problem.tenants[i];
        let min_gpus = t.options.iter().map(|o| o.gpus_needed()).min().unwrap_or(u32::MAX);
        (t.options.len(), std::cmp::Reverse(min_gpus))
    });

    let mut inventory = problem.inventory.clone();
    let mut choices: Vec<Option<usize>> = vec![None; n];

    let place_cheapest = |i: usize, inventory: &mut GpuInventory| -> Option<usize> {
        let t = &problem.tenants[i];
        let mut best: Option<(usize, f64)> = None;
        for (j, option) in t.options.iter().enumerate() {
            if inventory.fits(&option.gpu_type, option.gpus_needed())
                && best.is_none_or(|(_, c)| option.cost_per_hour < c)
            {
                best = Some((j, option.cost_per_hour));
            }
        }
        let (j, _) = best?;
        let option = &t.options[j];
        assert!(inventory.take(&option.gpu_type, option.gpus_needed()));
        Some(j)
    };

    for &i in &order {
        choices[i] = place_cheapest(i, &mut inventory);
    }

    // Local improvement: for each served tenant, see whether switching to a
    // cheaper option (with its own GPUs released) stays feasible; repeat
    // until a fixed point, then retry unserved tenants.
    let mut improved = true;
    while improved {
        improved = false;
        for (i, choice) in choices.iter_mut().enumerate() {
            let Some(current) = *choice else { continue };
            let current_option = &problem.tenants[i].options[current];
            inventory.give_back(&current_option.gpu_type, current_option.gpus_needed());
            let best = place_cheapest(i, &mut inventory).expect("current option still fits");
            if problem.tenants[i].options[best].cost_per_hour < current_option.cost_per_hour - 1e-9
            {
                improved = true;
            }
            *choice = Some(best);
        }
        for (i, choice) in choices.iter_mut().enumerate() {
            if choice.is_none() {
                if let Some(j) = place_cheapest(i, &mut inventory) {
                    *choice = Some(j);
                    improved = true;
                }
            }
        }
    }

    Placement { choices }
}

/// Exact branch-and-bound: explores option choices per tenant (including
/// "unserved"), pruning on the lexicographic bound. Exponential — intended
/// for small instances (≤ ~12 tenants with a handful of options each).
pub fn solve_exact(problem: &PlacementProblem) -> Placement {
    let n = problem.tenants.len();
    let mut best = solve_greedy(problem); // warm start for pruning
    let mut inventory = problem.inventory.clone();
    let mut choices: Vec<Option<usize>> = vec![None; n];

    fn recurse(
        problem: &PlacementProblem,
        idx: usize,
        inventory: &mut GpuInventory,
        choices: &mut Vec<Option<usize>>,
        served: usize,
        cost: f64,
        best: &mut Placement,
    ) {
        let n = problem.tenants.len();
        if idx == n {
            let candidate = Placement { choices: choices.clone() };
            if candidate.beats(best, problem) {
                *best = candidate;
            }
            return;
        }
        // Bound: even serving every remaining tenant cannot beat `best`.
        let optimistic_served = served + (n - idx);
        let best_served = best.served();
        if optimistic_served < best_served {
            return;
        }
        if optimistic_served == best_served {
            // Tying the served count requires serving *every* remaining
            // tenant, so the final cost is at least `cost` plus each
            // remaining tenant's cheapest option. A remaining tenant with
            // no options makes the tie unreachable outright.
            let mut min_rest = 0.0f64;
            for i in idx..n {
                let cheapest = problem.tenants[i]
                    .options
                    .iter()
                    .map(|o| o.cost_per_hour)
                    .fold(f64::INFINITY, f64::min);
                if !cheapest.is_finite() {
                    return;
                }
                min_rest += cheapest.max(0.0);
            }
            if cost + min_rest >= best.total_cost(problem) - 1e-9 {
                return;
            }
        }

        // Try each option (cheapest first) and the unserved branch.
        let mut option_order: Vec<usize> = (0..problem.tenants[idx].options.len()).collect();
        option_order.sort_by(|&a, &b| {
            problem.tenants[idx].options[a]
                .cost_per_hour
                .total_cmp(&problem.tenants[idx].options[b].cost_per_hour)
        });
        for j in option_order {
            let option = &problem.tenants[idx].options[j];
            if inventory.take(&option.gpu_type, option.gpus_needed()) {
                choices[idx] = Some(j);
                recurse(
                    problem,
                    idx + 1,
                    inventory,
                    choices,
                    served + 1,
                    cost + option.cost_per_hour,
                    best,
                );
                inventory.give_back(&option.gpu_type, option.gpus_needed());
                choices[idx] = None;
            }
        }
        recurse(problem, idx + 1, inventory, choices, served, cost, best);
    }

    recurse(problem, 0, &mut inventory, &mut choices, 0, 0.0, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{DeploymentOption, Tenant};

    fn option(gpu: &str, per_pod: u32, pods: u32, cost: f64) -> DeploymentOption {
        DeploymentOption {
            profile: format!("{per_pod}x{gpu}"),
            gpu_type: gpu.into(),
            gpus_per_pod: per_pod,
            pods,
            cost_per_hour: cost,
        }
    }

    #[test]
    fn greedy_serves_everyone_when_inventory_suffices() {
        let problem = PlacementProblem {
            inventory: GpuInventory::from_counts([("A".into(), 10)]),
            tenants: (0..4)
                .map(|i| Tenant { name: format!("svc{i}"), options: vec![option("A", 1, 2, 2.0)] })
                .collect(),
        };
        let placement = solve_greedy(&problem);
        assert!(placement.is_feasible(&problem));
        assert_eq!(placement.served(), 4);
        assert!((placement.total_cost(&problem) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_respects_scarcity() {
        // svc-picky can only use B; svc-flexible can use A or B. With one B,
        // the picky tenant must get it.
        let problem = PlacementProblem {
            inventory: GpuInventory::from_counts([("A".into(), 2), ("B".into(), 1)]),
            tenants: vec![
                Tenant {
                    name: "flexible".into(),
                    options: vec![option("B", 1, 1, 1.0), option("A", 1, 2, 3.0)],
                },
                Tenant { name: "picky".into(), options: vec![option("B", 1, 1, 2.0)] },
            ],
        };
        let placement = solve_greedy(&problem);
        assert_eq!(placement.served(), 2, "{placement:?}");
        assert!(placement.is_feasible(&problem));
    }

    #[test]
    fn exact_matches_or_beats_greedy_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..30 {
            let gpu_types = ["A", "B", "C"];
            let inventory = GpuInventory::from_counts(
                gpu_types.iter().map(|g| (g.to_string(), rng.random_range(1..8))),
            );
            let tenants: Vec<Tenant> = (0..rng.random_range(2..6))
                .map(|i| Tenant {
                    name: format!("t{i}"),
                    options: (0..rng.random_range(1..4usize))
                        .map(|_| {
                            let gpu = gpu_types[rng.random_range(0..3)];
                            option(
                                gpu,
                                rng.random_range(1..3),
                                rng.random_range(1..4),
                                f64::from(rng.random_range(1..20u32)),
                            )
                        })
                        .collect(),
                })
                .collect();
            let problem = PlacementProblem { inventory, tenants };
            let greedy = solve_greedy(&problem);
            let exact = solve_exact(&problem);
            assert!(greedy.is_feasible(&problem));
            assert!(exact.is_feasible(&problem));
            assert!(!greedy.beats(&exact, &problem), "greedy beat exact: {greedy:?} vs {exact:?}");
        }
    }

    #[test]
    fn exact_finds_the_cost_optimum() {
        // Two tenants, shared scarce GPU: the optimum serves both by putting
        // the flexible tenant on its pricier option.
        let problem = PlacementProblem {
            inventory: GpuInventory::from_counts([("A".into(), 1), ("B".into(), 4)]),
            tenants: vec![
                Tenant {
                    name: "flex".into(),
                    options: vec![option("A", 1, 1, 1.0), option("B", 2, 2, 6.0)],
                },
                Tenant { name: "fixed".into(), options: vec![option("A", 1, 1, 2.0)] },
            ],
        };
        let exact = solve_exact(&problem);
        assert_eq!(exact.served(), 2);
        assert!((exact.total_cost(&problem) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn unservable_tenants_stay_unserved() {
        let problem = PlacementProblem {
            inventory: GpuInventory::from_counts([("A".into(), 1)]),
            tenants: vec![
                Tenant { name: "impossible".into(), options: vec![] },
                Tenant { name: "huge".into(), options: vec![option("A", 1, 99, 1.0)] },
                Tenant { name: "ok".into(), options: vec![option("A", 1, 1, 1.0)] },
            ],
        };
        for placement in [solve_greedy(&problem), solve_exact(&problem)] {
            assert_eq!(placement.served(), 1);
            assert_eq!(placement.choices[0], None);
            assert_eq!(placement.choices[1], None);
            assert_eq!(placement.choices[2], Some(0));
        }
    }
}
