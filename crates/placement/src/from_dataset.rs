//! Bridge from LLM-Pilot's data to placement problems: turn measured
//! characterization data (or a trained performance model) into each
//! tenant's viable [`DeploymentOption`]s.

use llmpilot_core::dataset::CharacterizationDataset;
use llmpilot_core::evaluate::true_u_max;
use llmpilot_core::predictor::PerformancePredictor;
use llmpilot_core::recommend::{parse_profile, pods_needed, u_max, RecommendationRequest};
use llmpilot_sim::gpu::GpuProfile;
use llmpilot_sim::llm::LlmSpec;

use crate::problem::{DeploymentOption, Tenant};

fn option_for(profile: &GpuProfile, pods: u32) -> DeploymentOption {
    DeploymentOption {
        profile: profile.name(),
        gpu_type: profile.gpu.name.to_string(),
        gpus_per_pod: profile.count,
        pods,
        cost_per_hour: f64::from(pods) * profile.cost_per_hour(),
    }
}

/// Build a tenant from *measured* data: every profile whose true capacity
/// satisfies the request becomes a viable option with its minimal pod count.
pub fn tenant_from_measurements(
    name: &str,
    llm_name: &str,
    dataset: &CharacterizationDataset,
    profiles: &[GpuProfile],
    request: &RecommendationRequest,
) -> Tenant {
    let options = profiles
        .iter()
        .filter_map(|p| {
            let cap = true_u_max(dataset, llm_name, &p.name(), &request.constraints)?;
            Some(option_for(p, pods_needed(request.total_users, cap)))
        })
        .collect();
    Tenant { name: name.to_string(), options }
}

/// Build a tenant from a *trained performance model* (an unseen LLM): every
/// profile whose predicted capacity satisfies the request becomes an option.
pub fn tenant_from_predictions(
    name: &str,
    llm: &LlmSpec,
    model: &PerformancePredictor,
    profiles: &[GpuProfile],
    request: &RecommendationRequest,
) -> Tenant {
    let options = profiles
        .iter()
        .filter_map(|p| {
            let latencies: Vec<(u32, f64, f64)> = request
                .user_grid
                .iter()
                .map(|&u| {
                    let (l1, l2) = model.predict(llm, p, u);
                    (u, l1, l2)
                })
                .collect();
            let cap = u_max(&latencies, &request.constraints)?;
            Some(option_for(p, pods_needed(request.total_users, cap)))
        })
        .collect();
    Tenant { name: name.to_string(), options }
}

/// Parse profile names appearing in a dataset back into [`GpuProfile`]s,
/// skipping unknown ones.
pub fn profiles_in_dataset(dataset: &CharacterizationDataset) -> Vec<GpuProfile> {
    dataset.profiles().iter().filter_map(|name| parse_profile(name)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpilot_core::dataset::PerfRow;
    use llmpilot_core::recommend::LatencyConstraints;

    fn row(llm: &str, profile: &str, users: u32, itl: f64) -> PerfRow {
        PerfRow {
            llm: llm.into(),
            profile: profile.into(),
            users,
            ttft_s: 0.1,
            nttft_s: 0.0001,
            itl_s: itl,
            throughput: 1.0,
        }
    }

    fn dataset() -> CharacterizationDataset {
        let mut ds = CharacterizationDataset::default();
        for users in [1u32, 2, 4, 8, 16, 32, 64, 128] {
            // H100 satisfies up to 32 users; T4 fails even at 1.
            ds.rows.push(row(
                "Llama-2-7b",
                "1xH100-80GB",
                users,
                if users <= 32 { 0.02 } else { 0.2 },
            ));
            ds.rows.push(row("Llama-2-7b", "1xT4-16GB", users, 0.4));
        }
        ds
    }

    #[test]
    fn measured_tenant_gets_minimal_pod_options() {
        let ds = dataset();
        let profiles = profiles_in_dataset(&ds);
        assert_eq!(profiles.len(), 2);
        let request = RecommendationRequest {
            total_users: 100,
            constraints: LatencyConstraints::paper_defaults(),
            user_grid: (0..8).map(|i| 1u32 << i).collect(),
        };
        let tenant = tenant_from_measurements("svc", "Llama-2-7b", &ds, &profiles, &request);
        // Only the H100 profile is viable: ceil(100/32) = 4 pods.
        assert_eq!(tenant.options.len(), 1);
        assert_eq!(tenant.options[0].profile, "1xH100-80GB");
        assert_eq!(tenant.options[0].pods, 4);
        assert_eq!(tenant.options[0].gpu_type, "H100-80GB");
        assert_eq!(tenant.options[0].gpus_per_pod, 1);
    }

    #[test]
    fn unknown_llm_yields_no_options() {
        let ds = dataset();
        let profiles = profiles_in_dataset(&ds);
        let tenant = tenant_from_measurements(
            "svc",
            "no-such-model",
            &ds,
            &profiles,
            &RecommendationRequest::paper_defaults(),
        );
        assert!(tenant.options.is_empty());
    }
}
