//! The shared GPU inventory tenants compete for.

use std::collections::BTreeMap;
use std::fmt;

/// Counts of physical GPUs per type owned by the cluster.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GpuInventory {
    counts: BTreeMap<String, u32>,
}

impl GpuInventory {
    /// Empty inventory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(gpu type, count)` pairs (repeated types accumulate).
    pub fn from_counts<I: IntoIterator<Item = (String, u32)>>(counts: I) -> Self {
        let mut inv = Self::new();
        for (gpu, count) in counts {
            inv.add(&gpu, count);
        }
        inv
    }

    /// Add GPUs of a type.
    pub fn add(&mut self, gpu: &str, count: u32) {
        if count > 0 {
            *self.counts.entry(gpu.to_string()).or_insert(0) += count;
        }
    }

    /// Available GPUs of a type.
    pub fn available(&self, gpu: &str) -> u32 {
        self.counts.get(gpu).copied().unwrap_or(0)
    }

    /// Total GPUs across types.
    pub fn total(&self) -> u64 {
        self.counts.values().map(|&c| u64::from(c)).sum()
    }

    /// Whether `count` GPUs of `gpu` can be taken.
    pub fn fits(&self, gpu: &str, count: u32) -> bool {
        self.available(gpu) >= count
    }

    /// Take GPUs; returns false (without mutating) when unavailable.
    pub fn take(&mut self, gpu: &str, count: u32) -> bool {
        match self.counts.get_mut(gpu) {
            Some(c) if *c >= count => {
                *c -= count;
                true
            }
            _ => false,
        }
    }

    /// Return GPUs to the pool.
    pub fn give_back(&mut self, gpu: &str, count: u32) {
        self.add(gpu, count);
    }

    /// GPU types with at least one unit, in deterministic order.
    pub fn types(&self) -> Vec<&str> {
        self.counts.iter().filter(|&(_, &c)| c > 0).map(|(t, _)| t.as_str()).collect()
    }
}

impl fmt::Display for GpuInventory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (gpu, count) in &self.counts {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{count}x {gpu}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_and_give_back_round_trip() {
        let mut inv = GpuInventory::from_counts([("A100-40GB".into(), 8), ("T4-16GB".into(), 4)]);
        assert_eq!(inv.total(), 12);
        assert!(inv.take("A100-40GB", 5));
        assert_eq!(inv.available("A100-40GB"), 3);
        assert!(!inv.take("A100-40GB", 4));
        assert_eq!(inv.available("A100-40GB"), 3, "failed take must not mutate");
        inv.give_back("A100-40GB", 5);
        assert_eq!(inv.available("A100-40GB"), 8);
    }

    #[test]
    fn unknown_types_are_empty() {
        let inv = GpuInventory::new();
        assert_eq!(inv.available("H100-80GB"), 0);
        assert!(!inv.fits("H100-80GB", 1));
        assert!(inv.fits("H100-80GB", 0));
    }

    #[test]
    fn repeated_adds_accumulate() {
        let inv = GpuInventory::from_counts([
            ("T4-16GB".into(), 2),
            ("T4-16GB".into(), 3),
            ("V100-16GB".into(), 0),
        ]);
        assert_eq!(inv.available("T4-16GB"), 5);
        assert_eq!(inv.types(), vec!["T4-16GB"]);
    }

    #[test]
    fn display_is_readable() {
        let inv = GpuInventory::from_counts([("A10-24GB".into(), 2), ("T4-16GB".into(), 1)]);
        assert_eq!(inv.to_string(), "2x A10-24GB, 1x T4-16GB");
    }
}
