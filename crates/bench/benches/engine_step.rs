//! Criterion bench of the continuous-batching engine: per-iteration cost at
//! several batch occupancies (the simulator cost behind Figs. 1/7 and
//! Tables I/III).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use llmpilot_obs::Recorder;
use llmpilot_sim::engine::{Engine, PhaseHists};
use llmpilot_sim::gpu::{a100_80, GpuProfile};
use llmpilot_sim::llm::llama2_13b;
use llmpilot_sim::perf_model::{PerfModel, PerfModelConfig};
use llmpilot_sim::request::RequestSpec;

fn engine_with_batch(batch: u32, recorder: Option<Recorder>) -> Engine {
    let perf =
        PerfModel::new(llama2_13b(), GpuProfile::new(a100_80(), 1), PerfModelConfig::default());
    let mut engine = Engine::new(perf, 1_000_000);
    if let Some(recorder) = recorder {
        engine = engine.with_recorder(recorder);
    }
    for _ in 0..batch {
        engine.submit(RequestSpec::new(300, 1_000)).expect("fits");
    }
    // Admit everything.
    engine.step();
    engine
}

fn bench_batch(group: &mut criterion::BenchmarkGroup<'_>, batch: u32, mut engine: Engine) {
    group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
        b.iter(|| {
            // Keep the closed loop full: once the batch drains, submit a
            // fresh wave so every measured step does real decode work.
            if !engine.has_work() {
                for _ in 0..batch {
                    engine.submit(RequestSpec::new(300, 1_000)).expect("fits");
                }
            }
            black_box(engine.step())
        });
    });
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step");
    for batch in [1u32, 8, 32, 128] {
        bench_batch(&mut group, batch, engine_with_batch(batch, None));
    }
    group.finish();
}

/// The observability acceptance gate: stepping an engine that carries a
/// `Recorder::disabled()` must cost within noise of one with no recorder
/// at all (the span macro-free hot path is a branch on an `Option`).
fn bench_engine_recorder_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step_no_recorder");
    bench_batch(&mut group, 32, engine_with_batch(32, None));
    group.finish();
    let mut group = c.benchmark_group("engine_step_disabled_recorder");
    bench_batch(&mut group, 32, engine_with_batch(32, Some(Recorder::disabled())));
    group.finish();
}

/// Cost of the per-phase HDR histograms: an engine recording every
/// prefill/decode duration into lock-free `Histogram`s vs. the plain
/// engine. Recording is two atomic adds per step, so this should sit
/// within a few percent of the `engine_step_no_recorder` group.
fn bench_engine_phase_hists(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step_phase_hists");
    let engine = engine_with_batch(32, None).with_phase_hists(Arc::new(PhaseHists::default()));
    bench_batch(&mut group, 32, engine);
    group.finish();
}

criterion_group!(benches, bench_engine, bench_engine_recorder_overhead, bench_engine_phase_hists);
criterion_main!(benches);
