//! Criterion bench of the continuous-batching engine: per-iteration cost at
//! several batch occupancies (the simulator cost behind Figs. 1/7 and
//! Tables I/III).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use llmpilot_sim::engine::Engine;
use llmpilot_sim::gpu::{a100_80, GpuProfile};
use llmpilot_sim::llm::llama2_13b;
use llmpilot_sim::perf_model::{PerfModel, PerfModelConfig};
use llmpilot_sim::request::RequestSpec;

fn engine_with_batch(batch: u32) -> Engine {
    let perf =
        PerfModel::new(llama2_13b(), GpuProfile::new(a100_80(), 1), PerfModelConfig::default());
    let mut engine = Engine::new(perf, 1_000_000);
    for _ in 0..batch {
        engine.submit(RequestSpec::new(300, 1_000)).expect("fits");
    }
    // Admit everything.
    engine.step();
    engine
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step");
    for batch in [1u32, 8, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let mut engine = engine_with_batch(batch);
            b.iter(|| {
                // Keep the closed loop full: once the batch drains, submit a
                // fresh wave so every measured step does real decode work.
                if !engine.has_work() {
                    for _ in 0..batch {
                        engine.submit(RequestSpec::new(300, 1_000)).expect("fits");
                    }
                }
                black_box(engine.step())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
