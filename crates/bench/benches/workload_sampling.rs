//! Criterion bench backing the Sec. V-A sampling-speed claim: drawing
//! requests from the fitted joint model (alias method) vs resampling the
//! raw traces, plus the independent-marginals ablation sampler.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use llmpilot_bench::{build_traces, workload_params};
use llmpilot_workload::{IndependentSampler, TraceResampler, WorkloadModel, WorkloadSampler};

fn bench_sampling(c: &mut Criterion) {
    let traces = build_traces(60_000);
    let model = WorkloadModel::fit(&traces, &workload_params()).expect("fit");
    let joint = WorkloadSampler::new(model.clone());
    let independent = IndependentSampler::new(&model);
    let resampler = TraceResampler::new(&traces, &workload_params());

    let mut group = c.benchmark_group("workload_sampling_1000");
    group.bench_function("generator_joint", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(1),
            |mut rng| {
                for _ in 0..1000 {
                    black_box(joint.sample(&mut rng));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("generator_independent", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(1),
            |mut rng| {
                for _ in 0..1000 {
                    black_box(independent.sample(&mut rng));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("trace_resampling", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(1),
            |mut rng| {
                for _ in 0..1000 {
                    black_box(resampler.sample(&mut rng));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();

    c.bench_function("workload_model_fit_60k", |b| {
        b.iter(|| WorkloadModel::fit(black_box(&traces), &workload_params()).expect("fit"))
    });
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
