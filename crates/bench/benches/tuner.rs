//! Criterion bench of the maximum-batch-weight binary search (the tuning
//! step whose real-hardware cost dominates the Sec. V-B overhead estimate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use llmpilot_sim::gpu::{a100_40, h100, t4, GpuProfile, GpuSpec};
use llmpilot_sim::llm::{flan_t5_xxl, llama2_13b, LlmSpec};
use llmpilot_sim::memory::{MemoryConfig, MemoryModel};
use llmpilot_sim::tuner::tune_max_batch_weight;

fn bench_tuner(c: &mut Criterion) {
    let cases: Vec<(&str, LlmSpec, GpuSpec, u32)> = vec![
        ("llama13b_1xA100-40", llama2_13b(), a100_40(), 1),
        ("llama13b_4xH100", llama2_13b(), h100(), 4),
        ("t5xxl_2xT4", flan_t5_xxl(), t4(), 4),
    ];
    let mut group = c.benchmark_group("tune_max_batch_weight");
    for (name, llm, gpu, count) in cases {
        let mem = MemoryModel::new(llm, GpuProfile::new(gpu, count), MemoryConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(name), &mem, |b, mem| {
            b.iter(|| black_box(tune_max_batch_weight(mem)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tuner);
criterion_main!(benches);
