//! Criterion bench of the model fits behind Fig. 8: the LLM-Pilot GBDT
//! (weighted + monotone), the PARIS/RF random forest and the PerfNet MLP,
//! at characterization-dataset scale (~600 rows × ~36 features).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

use llmpilot_ml::{Dataset, ForestParams, Gbdt, GbdtParams, Mlp, MlpParams, RandomForest};

fn synthetic(rows: usize, cols: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(9);
    let data: Vec<Vec<f64>> =
        (0..rows).map(|_| (0..cols).map(|_| rng.random::<f64>() * 10.0).collect()).collect();
    let targets: Vec<f64> =
        data.iter().map(|r| (r[0] * 0.5).exp().min(100.0) + r[1] + 0.3 * r[2] * r[3]).collect();
    Dataset::from_rows(&data, targets).expect("valid")
}

fn bench_fits(c: &mut Criterion) {
    let ds = synthetic(600, 36);
    let mut monotone = vec![0i8; 36];
    monotone[35] = 1;

    c.bench_function("gbdt_fit_weighted_monotone_600x36", |b| {
        let params = GbdtParams {
            n_trees: 200,
            max_depth: 5,
            monotone_constraints: monotone.clone(),
            ..GbdtParams::default()
        };
        b.iter(|| black_box(Gbdt::fit(&ds, &params).expect("fit")));
    });
    c.bench_function("forest_fit_100x_600x36", |b| {
        let params = ForestParams { n_trees: 100, ..ForestParams::default() };
        b.iter(|| black_box(RandomForest::fit(&ds, &params).expect("fit")));
    });
    c.bench_function("mlp_fit_50ep_600x36", |b| {
        let params = MlpParams { epochs: 50, ..MlpParams::default() };
        b.iter(|| black_box(Mlp::fit(&ds, &params).expect("fit")));
    });
}

criterion_group!(benches, bench_fits);
criterion_main!(benches);
