//! Criterion bench of one characterization grid cell (tune + 8 load tests)
//! — the unit of work behind Fig. 7 / Table III and the Sec. V-B overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use llmpilot_bench::{build_sampler, build_traces};
use llmpilot_core::characterize::{characterize_cell, CharacterizeConfig};
use llmpilot_sim::gpu::{a100_40, h100, GpuProfile};
use llmpilot_sim::llm::{flan_t5_xl, llama2_13b};

fn bench_cell(c: &mut Criterion) {
    let traces = build_traces(40_000);
    let sampler = build_sampler(&traces);
    let config = CharacterizeConfig::default();

    let mut group = c.benchmark_group("characterize_cell");
    group.sample_size(10);
    for (name, llm, profile) in [
        ("t5xl_1xA100-40", flan_t5_xl(), GpuProfile::new(a100_40(), 1)),
        ("llama13b_2xH100", llama2_13b(), GpuProfile::new(h100(), 2)),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(characterize_cell(&llm, &profile, &sampler, &config)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cell);
criterion_main!(benches);
