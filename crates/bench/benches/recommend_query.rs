//! Criterion bench of the *online* path: one GPU recommendation for an
//! unseen LLM from an already-trained performance model (what the cluster
//! user experiences, Sec. IV).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use llmpilot_bench::{build_sampler, build_traces};
use llmpilot_core::characterize::{characterize, CharacterizeConfig};
use llmpilot_core::predictor::{PerformancePredictor, PredictorConfig};
use llmpilot_core::recommend::{recommend, RecommendationRequest};
use llmpilot_core::{LatencyConstraints, PerfRow};
use llmpilot_sim::gpu::paper_profiles;
use llmpilot_sim::llm::{llm_catalog, starcoder};

fn bench_recommend(c: &mut Criterion) {
    let traces = build_traces(40_000);
    let sampler = build_sampler(&traces);
    // Train on all LLMs except starcoder, on a reduced grid for bench setup
    // speed.
    let llms: Vec<_> =
        llm_catalog().into_iter().filter(|m| m.name != "bigcode/starcoder").collect();
    let ds = characterize(
        &llms,
        &paper_profiles(),
        &sampler,
        &CharacterizeConfig { duration_s: 30.0, ..CharacterizeConfig::default() },
    );
    let rows: Vec<&PerfRow> = ds.rows.iter().collect();
    let constraints = LatencyConstraints::paper_defaults();
    let model = PerformancePredictor::train(&rows, &constraints, &PredictorConfig::default())
        .expect("train");
    let profiles = paper_profiles();
    let request = RecommendationRequest::paper_defaults();
    let unseen = starcoder();

    c.bench_function("recommend_unseen_llm_14_profiles", |b| {
        b.iter(|| {
            black_box(recommend(&profiles, &request, |p, u| Some(model.predict(&unseen, p, u))))
        })
    });
}

criterion_group!(benches, bench_recommend);
criterion_main!(benches);
