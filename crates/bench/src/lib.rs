#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # llmpilot-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! LLM-Pilot paper (see DESIGN.md's experiment index). The `experiments`
//! binary dispatches to the modules in [`experiments`]; the Criterion
//! benches under `benches/` cover the performance-sensitive claims
//! (workload sampling speed, engine step cost, tuning cost, model training
//! and recommendation-query latency).

pub mod experiments;

use llmpilot_core::{characterize, CharacterizationDataset, CharacterizeConfig};
use llmpilot_sim::gpu::paper_profiles;
use llmpilot_sim::llm::llm_catalog;
use llmpilot_traces::{Param, TraceDataset, TraceGenerator, TraceGeneratorConfig};
use llmpilot_workload::{WorkloadModel, WorkloadSampler};

/// Default trace-corpus size for experiments (the paper's collection has
/// 17.3M requests; this keeps experiment runtime reasonable while leaving
/// every distribution shape intact).
pub const DEFAULT_TRACE_REQUESTS: usize = 120_000;

/// Base seed of all experiments.
pub const EXPERIMENT_SEED: u64 = 0x5C24;

/// Generate the synthetic production-trace corpus used by all experiments.
pub fn build_traces(num_requests: usize) -> TraceDataset {
    TraceGenerator::new(TraceGeneratorConfig {
        num_requests,
        seed: EXPERIMENT_SEED,
        ..TraceGeneratorConfig::default()
    })
    .generate()
}

/// The parameters the workload generator models for load testing.
pub fn workload_params() -> Vec<Param> {
    Param::core()
}

/// Fit the workload generator to a trace corpus.
pub fn build_sampler(traces: &TraceDataset) -> WorkloadSampler {
    let model = WorkloadModel::fit(traces, &workload_params()).expect("non-empty traces");
    WorkloadSampler::new(model)
}

/// Run the paper-scale characterization sweep: the 10 catalog LLMs on the
/// 14 Table III GPU profiles, 1..128 users.
///
/// The paper load-tests each point for 2 minutes on real hardware; the
/// simulator's virtual minutes are cheap, so the experiment suite runs a
/// longer steady-state window (with warm-up) to shrink the workload-mix
/// variance of the median latencies — the measurement-noise level of the
/// paper's testbed, not a protocol change.
pub fn full_characterization(sampler: &WorkloadSampler) -> CharacterizationDataset {
    characterize(&llm_catalog(), &paper_profiles(), sampler, &experiment_characterize_config())
}

/// The experiment suite's characterization configuration (longer
/// steady-state window; see [`full_characterization`]).
pub fn experiment_characterize_config() -> CharacterizeConfig {
    CharacterizeConfig { duration_s: 600.0, warmup_s: 60.0, ..CharacterizeConfig::default() }
}

/// Format a float with engineering-friendly precision.
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        "n/a".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Print a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_and_sampler_build() {
        let traces = build_traces(5_000);
        assert_eq!(traces.len(), 5_000);
        let sampler = build_sampler(&traces);
        assert!(sampler.model().num_nonempty_bins() > 10);
    }

    #[test]
    fn fmt_is_stable() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.5), "1234");
        assert_eq!(fmt(12.345), "12.35");
        assert_eq!(fmt(0.01234), "0.0123");
        assert_eq!(fmt(f64::NAN), "n/a");
    }
}
