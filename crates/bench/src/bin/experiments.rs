//! Experiment driver: regenerates every table and figure of the LLM-Pilot
//! paper. Run `experiments list` for the catalog, `experiments <id>` for
//! one experiment, or `experiments all` for the full suite.

use llmpilot_bench::experiments as exp;

fn usage() -> ! {
    eprintln!("usage: experiments <id|all|list> [--tune]");
    eprintln!("experiments:");
    for (id, desc) in exp::catalog() {
        eprintln!("  {id:<18} {desc}");
    }
    std::process::exit(2);
}

fn dispatch(id: &str, tune: bool) {
    match id {
        "fig1" => exp::fig1::run(),
        "table1" => exp::table1::run(),
        "table2" => exp::table2::run(),
        "fig3" => exp::fig3::run(),
        "mdi_traces" => exp::mdi::run(),
        "fig4" => exp::fig4::run(),
        "fig6" => exp::fig6::run(),
        "corr_ablation" => exp::corr::run(),
        "gen_speed" => exp::speed::run(),
        "table3" => exp::table3::run(),
        "fig7" => exp::fig7::run(),
        "overhead" => exp::overhead::run(),
        "fig8" => exp::fig8::run(tune),
        "ablate_regressor" => exp::ablate::run_regressor(),
        "ablate_bins" => exp::ablate::run_bins(),
        "ablate_paged" => exp::paged::run(),
        "resilience" => exp::resilience::run(),
        "serve_load" => exp::serve_load::run(),
        "table4" => exp::table4::run(),
        other => {
            eprintln!("unknown experiment: {other}");
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tune = args.iter().any(|a| a == "--tune");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    match ids.as_slice() {
        [] => usage(),
        [id] if *id == "list" => {
            for (id, desc) in exp::catalog() {
                println!("{id:<18} {desc}");
            }
        }
        [id] if *id == "all" => {
            for (id, _) in exp::catalog() {
                dispatch(id, tune);
            }
        }
        ids => {
            for id in ids {
                dispatch(id, tune);
            }
        }
    }
}
