//! Sec. V-B "characterization overhead": the paper estimates ~8 hours to
//! collect a dataset of its size on real hardware (≈30 min/LLM of batch
//! weight tuning plus ≈20 min/LLM of load testing, parallelized over GPUs).
//! We reproduce the estimate from first principles and report the *actual*
//! wall-clock cost of the simulated sweep for contrast.

use std::time::Instant;

use llmpilot_core::characterize::estimate_real_overhead_hours;
use llmpilot_sim::llm::llm_catalog;

use crate::{build_sampler, build_traces, full_characterization, header, DEFAULT_TRACE_REQUESTS};

/// Run and print the experiment.
pub fn run() {
    header("Sec. V-B - characterization overhead");
    let num_llms = llm_catalog().len();
    let estimate = estimate_real_overhead_hours(num_llms, 8, 120.0, 30.0);
    println!(
        "estimated real-hardware cost for {num_llms} LLMs x 14 profiles: {estimate:.1} h \
         (paper: ~8 h = 5 h tuning + 3 h load testing)"
    );

    let traces = build_traces(DEFAULT_TRACE_REQUESTS);
    let sampler = build_sampler(&traces);
    let t0 = Instant::now();
    let ds = full_characterization(&sampler);
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "simulated sweep: {} rows over {} feasible cells in {wall:.1} s of wall-clock time",
        ds.len(),
        ds.tuned_weights.len()
    );
}
