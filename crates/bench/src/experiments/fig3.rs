//! Fig. 3: Spearman rank correlation between request parameters of the
//! traces — input/output tokens and batch size strongly correlated with
//! one another and the sampling parameters correlated as a block.

use llmpilot_traces::{correlation_matrix, Param};

use crate::{build_traces, header, DEFAULT_TRACE_REQUESTS};

/// Compute the core-parameter correlation matrix.
pub fn matrix() -> (Vec<Param>, Vec<Vec<f64>>) {
    let traces = build_traces(DEFAULT_TRACE_REQUESTS);
    let params = Param::core();
    let m = correlation_matrix(&traces, &params);
    (params, m)
}

/// Run and print the experiment.
pub fn run() {
    header("Fig. 3 - Spearman correlation between request parameters");
    let (params, m) = matrix();
    let short: Vec<String> = params
        .iter()
        .map(|p| {
            let name = p.name();
            name.chars().take(9).collect()
        })
        .collect();
    print!("{:>20}", "");
    for s in &short {
        print!("{s:>10}");
    }
    println!();
    for (i, p) in params.iter().enumerate() {
        print!("{:>20}", p.name());
        for v in m[i].iter().take(params.len()) {
            print!("{v:>10.2}");
        }
        println!();
    }
    println!(
        "\nkey structure: rho(input, output) = {:.2}, rho(input, batch) = {:.2}, \
         rho(output, batch) = {:.2},\nrho(decoding, temperature) = {:.2} \
         (paper: tokens and batch size strongly correlated; sampling params form a block)",
        m[0][1], m[0][2], m[1][2], m[3][4]
    );
}
