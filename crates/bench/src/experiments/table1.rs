//! Table I: average throughput per pod for 1/2/4/8 Llama-2-13b pods on
//! A100-80 GPUs under 1..128 total concurrent users — near-perfect scaling
//! along the equal users-per-pod diagonals (relative std ≤ 5%).

use llmpilot_core::characterize::WorkloadRequestSource;
use llmpilot_sim::cluster::Deployment;
use llmpilot_sim::gpu::{a100_80, GpuProfile};
use llmpilot_sim::llm::llama2_13b;

use crate::{build_sampler, build_traces, header, DEFAULT_TRACE_REQUESTS};

/// The table: `result[pods_idx][users_idx]` = mean throughput per pod.
pub fn table(pods_list: &[u32], users_list: &[u32]) -> Vec<Vec<f64>> {
    let traces = build_traces(DEFAULT_TRACE_REQUESTS);
    let sampler = build_sampler(&traces);
    pods_list
        .iter()
        .map(|&pods| {
            let deployment = Deployment::new(llama2_13b(), GpuProfile::new(a100_80(), 1), pods)
                .expect("feasible");
            users_list
                .iter()
                .map(|&users| {
                    // Longer steady-state window than the paper's 2 minutes:
                    // virtual time is free and the diagonal-variance claim
                    // needs the workload-mix noise averaged out.
                    let metrics = deployment
                        .run_load_test(users, 600.0, |pod| {
                            WorkloadRequestSource::new(
                                sampler.clone(),
                                0x7AB1 ^ (u64::from(pods) << 32) ^ pod as u64,
                            )
                        })
                        .expect("load test");
                    metrics.throughput_per_pod
                })
                .collect()
        })
        .collect()
}

/// Relative standard deviation of per-pod throughput across cells with the
/// same users-per-pod ratio.
pub fn diagonal_rel_std(
    table: &[Vec<f64>],
    pods_list: &[u32],
    users_list: &[u32],
) -> Vec<(f64, f64)> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for (i, &pods) in pods_list.iter().enumerate() {
        for (j, &users) in users_list.iter().enumerate() {
            if users % pods == 0 {
                groups.entry(u64::from(users / pods)).or_default().push(table[i][j]);
            }
        }
    }
    groups
        .into_iter()
        .filter(|(_, v)| v.len() >= 2)
        .map(|(ratio, v)| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
            (ratio as f64, var.sqrt() / mean)
        })
        .collect()
}

/// Run and print the experiment.
pub fn run() {
    header("Table I - throughput per pod: Llama-2-13b on 1xA100-80GB pods");
    let pods_list = [1u32, 2, 4, 8];
    let users_list = [1u32, 2, 4, 8, 16, 32, 64, 128];
    let t = table(&pods_list, &users_list);
    print!("{:>5}", "pods");
    for u in users_list {
        print!("{u:>8}");
    }
    println!();
    for (i, &pods) in pods_list.iter().enumerate() {
        print!("{pods:>5}");
        for v in &t[i] {
            print!("{v:>8.1}");
        }
        println!();
    }
    let stds = diagonal_rel_std(&t, &pods_list, &users_list);
    let max_std = stds.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
    let mean_std = stds.iter().map(|&(_, s)| s).sum::<f64>() / stds.len().max(1) as f64;
    println!(
        "diagonal (same users:pods ratio) relative std: max {:.1}%, mean {:.1}% (paper: <=5%, avg 2%)",
        100.0 * max_std,
        100.0 * mean_std
    );
}
