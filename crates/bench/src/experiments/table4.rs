//! Table IV: comparison of LLM benchmarking tools. The other tools' rows
//! are literature facts; this experiment verifies and prints *our* row —
//! workload based on real(istic) trace data, maximum-batch-weight tuning,
//! and the size of the released performance dataset.

use crate::{build_sampler, build_traces, full_characterization, header};

/// Run and print the experiment.
pub fn run() {
    header("Table IV - benchmarking-tool comparison (our row, verified)");
    let traces = build_traces(crate::DEFAULT_TRACE_REQUESTS);
    let sampler = build_sampler(&traces);
    let ds = full_characterization(&sampler);
    let llms = ds.llms().len();
    let profiles = ds.profiles().len();

    println!(
        "{:<18} {:>20} {:>18} {:>10} {:>10}",
        "tool", "workload real data", "batch wt tuning", "#LLMs", "#GPUs"
    );
    for (tool, real, tuning, l, g) in [
        ("Optimum", "x", "x", "34", "2"),
        ("LLMPerf", "x", "x", "3", "1"),
        ("Inference bench", "x", "x", "1", "1"),
        ("Fleece", "Y", "x", "5", "5"),
        ("vLLM", "Y", "x", "3", "2"),
        ("MLPerf", "Y", "x", "2", "10"),
    ] {
        println!("{tool:<18} {real:>20} {tuning:>18} {l:>10} {g:>10}");
    }
    println!(
        "{:<18} {:>20} {:>18} {:>10} {:>10}   <- measured from this build",
        "LLM-Pilot (ours)", "Y", "Y", llms, profiles
    );
    println!("\npaper row: LLM-Pilot - real-data workload, tuned batch weight, 10 LLMs, 14 GPUs");
}
