//! Sec. V-A "size and sampling speed": the fitted generator is orders of
//! magnitude smaller than the raw traces it models, its multi-dimensional
//! histogram is sparse, and producing requests is much faster than
//! resampling raw traces (paper: <1 MB vs 1.6 GB; 46.5k non-empty of 10.7B
//! possible bins; 22 ms vs 770 ms for 1000 requests, 35×).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use llmpilot_traces::TraceDataset;
use llmpilot_workload::{TraceResampler, WorkloadModel, WorkloadSampler};

use crate::{build_traces, header, workload_params, DEFAULT_TRACE_REQUESTS};

/// Measured size/speed comparison.
pub struct SpeedReport {
    /// Raw-trace storage footprint, bytes.
    pub trace_bytes: usize,
    /// Fitted generator footprint, bytes.
    pub model_bytes: usize,
    /// Non-empty multi-dimensional bins.
    pub nonempty_bins: usize,
    /// Theoretically possible bins.
    pub possible_bins: f64,
    /// Wall time to draw 1000 requests from the generator, seconds.
    pub generator_time_s: f64,
    /// Wall time to draw 1000 requests by resampling raw traces, seconds.
    pub resample_time_s: f64,
}

/// Run the measurement.
pub fn measure(traces: &TraceDataset) -> SpeedReport {
    let model = WorkloadModel::fit(traces, &workload_params()).expect("non-empty traces");
    let sampler = WorkloadSampler::new(model.clone());
    let resampler = TraceResampler::new(traces, &workload_params());
    let mut rng = StdRng::seed_from_u64(0x59EE);

    let draws = 1000;
    let reps = 50;

    let t0 = Instant::now();
    let mut sink = 0u64;
    for _ in 0..reps {
        for _ in 0..draws {
            sink = sink.wrapping_add(u64::from(sampler.sample(&mut rng).input_tokens().unwrap()));
        }
    }
    let generator_time_s = t0.elapsed().as_secs_f64() / reps as f64;

    let t1 = Instant::now();
    for _ in 0..reps {
        for _ in 0..draws {
            sink = sink.wrapping_add(u64::from(resampler.sample(&mut rng).input_tokens().unwrap()));
        }
    }
    let resample_time_s = t1.elapsed().as_secs_f64() / reps as f64;
    assert!(sink > 0, "keep the sampling loops observable");

    SpeedReport {
        trace_bytes: traces.approx_storage_bytes(),
        model_bytes: model.approx_size_bytes(),
        nonempty_bins: model.num_nonempty_bins(),
        possible_bins: model.num_possible_bins(),
        generator_time_s,
        resample_time_s,
    }
}

/// Run and print the experiment.
pub fn run() {
    header("Sec. V-A - generator size and sampling speed");
    let traces = build_traces(DEFAULT_TRACE_REQUESTS);
    let r = measure(&traces);
    println!(
        "traces: {:.1} MB ({} requests) -> generator: {:.3} MB  ({:.0}x smaller)",
        r.trace_bytes as f64 / 1e6,
        DEFAULT_TRACE_REQUESTS,
        r.model_bytes as f64 / 1e6,
        r.trace_bytes as f64 / r.model_bytes as f64
    );
    println!(
        "non-empty bins: {} of {:.3e} possible ({:.2e} fill rate)",
        r.nonempty_bins,
        r.possible_bins,
        r.nonempty_bins as f64 / r.possible_bins
    );
    println!(
        "1000 requests: generator {:.3} ms vs trace resampling {:.3} ms ({:.1}x)",
        r.generator_time_s * 1e3,
        r.resample_time_s * 1e3,
        r.resample_time_s / r.generator_time_s
    );
    println!("paper: <1 MB vs 1.6 GB; 46.5k of 10.7B bins; 22 ms vs 770 ms (35x)");
    println!(
        "note: the paper's baseline resamples traces through a Python/pandas path;\n\
         both paths here are compiled Rust, so the speed gap narrows while the\n\
         size gap (the structural claim) holds."
    );
}
