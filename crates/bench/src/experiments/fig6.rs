//! Fig. 6: marginal CDFs of selected request parameters — the empirical
//! trace distribution vs the workload generator's output, for parameters of
//! both high cardinality (token counts) and low cardinality (batch size).

use rand::rngs::StdRng;
use rand::SeedableRng;

use llmpilot_traces::{EmpiricalCdf, Param};
use llmpilot_workload::{WorkloadModel, WorkloadSampler};

use crate::{build_traces, header, workload_params, DEFAULT_TRACE_REQUESTS};

/// One CDF comparison point: `(value, empirical CDF, generator CDF)`.
pub type CdfPoint = (f64, f64, f64);

/// For each examined parameter: `(name, KS distance, comparison points)`.
pub fn cdf_comparison() -> Vec<(String, f64, Vec<CdfPoint>)> {
    let traces = build_traces(DEFAULT_TRACE_REQUESTS);
    let model = WorkloadModel::fit(&traces, &workload_params()).expect("non-empty traces");
    let sampler = WorkloadSampler::new(model);
    let mut rng = StdRng::seed_from_u64(0xF166);

    let examined = [Param::InputTokens, Param::OutputTokens, Param::BatchSize];
    let n = 50_000;
    let samples: Vec<_> = (0..n).map(|_| sampler.sample(&mut rng)).collect();

    examined
        .iter()
        .map(|&p| {
            let empirical = EmpiricalCdf::new(traces.column(p));
            let generated = EmpiricalCdf::new(
                samples.iter().map(|s| s.get(p).expect("modeled param")).collect(),
            );
            let ks = empirical.ks_distance(&generated);
            let grid: Vec<(f64, f64, f64)> = (0..=10)
                .map(|q| {
                    let x = empirical.quantile(f64::from(q) / 10.0);
                    (x, empirical.eval(x), generated.eval(x))
                })
                .collect();
            (p.name(), ks, grid)
        })
        .collect()
}

/// Run and print the experiment.
pub fn run() {
    header("Fig. 6 - marginal CDFs: empirical traces vs workload generator");
    for (name, ks, grid) in cdf_comparison() {
        println!("\nparameter: {name}  (KS distance = {ks:.4})");
        println!("{:>12} {:>12} {:>12}", "value", "empirical", "generator");
        for (x, e, g) in grid {
            println!("{x:>12.1} {e:>12.3} {g:>12.3}");
        }
    }
    println!("\npaper: generator preserves marginals of both high- and low-cardinality params");
}
