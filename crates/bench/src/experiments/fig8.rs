//! Fig. 8: quality of GPU recommendations for unseen LLMs — success rate,
//! mean relative overspend and the S/O score, for LLM-Pilot and all
//! baselines, under the paper's setting (U = 200, L₁ = 100 ms nTTFT,
//! L₂ = 50 ms ITL, 𝕌 = {1..128}), via nested leave-one-LLM-out CV.
//!
//! The paper's outcome: LLM-Pilot wins the S/O score (S ≈ 0.8, O < 0.2);
//! PARIS/Selecta match its success rate but overspend more (and need
//! reference measurements); RF degrades without references; PerfNet(V2)
//! have good overspend but the worst success rates; Morphling recovers
//! success rate via references but overspends; Static is high-risk /
//! high-reward.

use llmpilot_core::baselines::{
    LlmPilotMethod, Method, NnMethod, NnVariant, RfMethod, SelectaMethod,
};
use llmpilot_core::evaluate::{Evaluation, MethodScore};
use llmpilot_core::predictor::{default_hp_grid, PredictorConfig};
use llmpilot_core::CharacterizationDataset;
use llmpilot_sim::gpu::paper_profiles;

use crate::{build_sampler, build_traces, full_characterization, header, DEFAULT_TRACE_REQUESTS};

/// The predictive Fig. 8 methods. `tune_llm_pilot` enables the inner
/// leave-one-LLM-out hyperparameter search (slower).
pub fn methods(tune_llm_pilot: bool) -> Vec<Box<dyn Method>> {
    let llm_pilot = if tune_llm_pilot {
        LlmPilotMethod::tuned(default_hp_grid(&PredictorConfig::default().gbdt))
    } else {
        LlmPilotMethod::untuned()
    };
    vec![
        Box::new(llm_pilot),
        Box::new(RfMethod::paris()),
        Box::new(RfMethod::plain()),
        Box::new(SelectaMethod::new()),
        Box::new(NnMethod::new(NnVariant::Morphling)),
        Box::new(NnMethod::new(NnVariant::PerfNet)),
        Box::new(NnMethod::new(NnVariant::PerfNetV2)),
    ]
}

/// Evaluate every method on a characterization dataset; the Static baseline
/// is the best policy of a broad grid, as in the paper.
pub fn evaluate_all(ds: &CharacterizationDataset, tune_llm_pilot: bool) -> Vec<MethodScore> {
    let eval = Evaluation::new(ds, paper_profiles());
    let mut scores: Vec<MethodScore> =
        methods(tune_llm_pilot).iter().map(|m| eval.evaluate(m.as_ref())).collect();
    let (policy, score) = llmpilot_core::evaluate::best_static_policy(&eval);
    println!(
        "(best static policy over the candidate grid: {} pods of {})",
        policy.pods, policy.profile
    );
    scores.push(score);
    scores
}

/// Print one score table.
pub fn print_scores(scores: &[MethodScore]) {
    println!(
        "{:<12} {:>4} {:>14} {:>16} {:>10}",
        "method", "ref", "success rate", "mean overspend", "S/O score"
    );
    for s in scores {
        println!(
            "{:<12} {:>4} {:>14.2} {:>16} {:>10.3}",
            s.method,
            if s.uses_references { "(A)" } else { "(o)" },
            s.success_rate,
            if s.mean_overspend.is_nan() {
                "n/a".to_string()
            } else {
                format!("{:.2}", s.mean_overspend)
            },
            s.so_score
        );
    }
}

/// Run and print the experiment.
pub fn run(tune_llm_pilot: bool) {
    header("Fig. 8 - GPU recommendation quality (nested leave-one-LLM-out)");
    println!("setting: U=200 users, L1=100ms nTTFT, L2=50ms ITL, u in {{1,2,...,128}}");
    println!("(A) = uses reference measurements on 1xT4 + 4xH100, (o) = no measurements\n");
    let traces = build_traces(DEFAULT_TRACE_REQUESTS);
    let sampler = build_sampler(&traces);
    let ds = full_characterization(&sampler);
    println!(
        "characterization dataset: {} rows, {} feasible cells, {} LLMs\n",
        ds.len(),
        ds.tuned_weights.len(),
        ds.llms().len()
    );
    let scores = evaluate_all(&ds, tune_llm_pilot);
    print_scores(&scores);

    // Headline comparisons (paper: +33% success, -60% cost vs SOTA average).
    let ours = scores.iter().find(|s| s.method == "LLM-Pilot").expect("present");
    let sota: Vec<&MethodScore> =
        scores.iter().filter(|s| s.method != "LLM-Pilot" && s.method != "Static").collect();
    let sota_success = sota.iter().map(|s| s.success_rate).sum::<f64>() / sota.len() as f64;
    let sota_overspend: Vec<f64> =
        sota.iter().map(|s| s.mean_overspend).filter(|v| v.is_finite()).collect();
    let sota_overspend = sota_overspend.iter().sum::<f64>() / sota_overspend.len().max(1) as f64;
    println!(
        "\nLLM-Pilot vs state-of-the-art average: success {:.2} vs {:.2} ({:+.0}%), \
         overspend {:.2} vs {:.2}",
        ours.success_rate,
        sota_success,
        (ours.success_rate / sota_success - 1.0) * 100.0,
        ours.mean_overspend,
        sota_overspend
    );
    println!("paper: recommendations succeed 33% more often and cost 60% less on average");

    if std::env::var("FIG8_DETAIL_ALL").is_ok() {
        for s in &scores {
            println!("\nper-LLM detail ({}):", s.method);
            for o in &s.outcomes {
                println!(
                    "{:<26} rec: {:<28} success: {}",
                    o.llm,
                    o.recommendation
                        .as_ref()
                        .map(|r| format!("{} x{}", r.profile, r.pods))
                        .unwrap_or_else(|| "none".into()),
                    o.success
                );
            }
        }
    }

    println!("\nper-LLM detail (LLM-Pilot):");
    for o in &ours.outcomes {
        let rec = o
            .recommendation
            .as_ref()
            .map(|r| format!("{} x{} (${:.2}/h)", r.profile, r.pods, r.cost_per_hour))
            .unwrap_or_else(|| "none".into());
        let oracle = o
            .oracle
            .as_ref()
            .map(|r| format!("{} x{}", r.profile, r.pods))
            .unwrap_or_else(|| "none".into());
        println!(
            "{:<26} rec: {:<32} oracle: {:<22} success: {} overspend: {}",
            o.llm,
            rec,
            oracle,
            o.success,
            o.overspend.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into())
        );
    }
}
