//! Sec. III-A importance study: a random-forest regressor fitted to the
//! traces predicts per-request latency (the paper reaches R² ≈ 0.93), and
//! MDI ranks the output token count first, then input tokens, batch size
//! and the token-sampling parameters.

use llmpilot_ml::{r2, Dataset, ForestParams, RandomForest};
use llmpilot_traces::Param;

use crate::{build_traces, header};

/// Fit the RF latency model and return `(r2_holdout, ranked importances)`.
pub fn importance_study(num_rows: usize) -> (f64, Vec<(String, f64)>) {
    let traces = build_traces(num_rows);
    let params = Param::core();
    let columns: Vec<Vec<f64>> = params.iter().map(|&p| traces.column(p)).collect();
    let latency = traces.latencies();

    let n = traces.len();
    let rows: Vec<Vec<f64>> = (0..n).map(|i| columns.iter().map(|c| c[i]).collect()).collect();

    // 80/20 split (records are time-ordered; stride split avoids drift bias).
    let train_idx: Vec<usize> = (0..n).filter(|i| i % 5 != 0).collect();
    let test_idx: Vec<usize> = (0..n).filter(|i| i % 5 == 0).collect();
    let train = Dataset::from_rows(
        &train_idx.iter().map(|&i| rows[i].clone()).collect::<Vec<_>>(),
        train_idx.iter().map(|&i| latency[i]).collect(),
    )
    .expect("valid dataset");
    let test = Dataset::from_rows(
        &test_idx.iter().map(|&i| rows[i].clone()).collect::<Vec<_>>(),
        test_idx.iter().map(|&i| latency[i]).collect(),
    )
    .expect("valid dataset");

    let forest =
        RandomForest::fit(&train, &ForestParams { n_trees: 40, ..ForestParams::default() })
            .expect("forest fits");
    let pred = forest.predict(&test);
    let score = r2(test.targets(), &pred);

    let mut ranked: Vec<(String, f64)> =
        params.iter().zip(forest.feature_importance()).map(|(p, &imp)| (p.name(), imp)).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    (score, ranked)
}

/// Run and print the experiment.
pub fn run() {
    header("Sec. III-A - RF latency model on traces: R^2 and MDI ranking");
    let (score, ranked) = importance_study(20_000);
    println!("hold-out R^2 = {score:.3} (paper: ~0.93)");
    println!("\nMDI importance ranking:");
    for (name, imp) in &ranked {
        println!("{name:>20}  {imp:.4}");
    }
    println!("\npaper ranking: output tokens > input tokens > batch size > sampling params");
}
