//! Table II: characteristics of the production traces. Ours are synthetic
//! (see DESIGN.md); the structure — horizon, user population, LLM count,
//! token/batch ranges, 33 additional parameters — mirrors the paper's.

use llmpilot_traces::summarize;

use crate::{build_traces, header, DEFAULT_TRACE_REQUESTS};

/// Run and print the experiment.
pub fn run() {
    header("Table II - characteristics of the (synthetic) production traces");
    let traces = build_traces(DEFAULT_TRACE_REQUESTS);
    let summary = summarize(&traces);
    println!("{summary}");
    println!(
        "\npaper reference: 5.5 months, 17.3M requests, ~2500 users, 24 LLMs,\n\
         input 1-4093 / output 1-1500 tokens, batch 1-5, 33 additional parameters"
    );
}
