//! Table III: which of the 10 LLMs × 14 GPU profiles can be benchmarked —
//! ✓ feasible, × insufficient memory, − software/hardware limitation.

use llmpilot_sim::gpu::paper_profiles;
use llmpilot_sim::llm::llm_catalog;
use llmpilot_sim::memory::{feasibility_matrix, MemoryConfig};

use crate::header;

/// The paper's Table III cells, row-major over the catalog LLMs.
pub const PAPER_CELLS: [(&str, &str); 10] = [
    ("google/flan-t5-xl", "YYY YYY YY YYY YYY"),
    ("google/flan-t5-xxl", "YYY YYY xY xxY xxY"),
    ("google/flan-ul2", "YYY xYY xx xxx xxx"),
    ("ibm/mpt-7b-instruct2", "Y-- Y-- x- x-- x--"),
    ("bigscience/mt0-xxl", "Y-- Y-- x- x-- x--"),
    ("Salesforce/codegen2-16B", "Y-- x-- x- x-- x--"),
    ("Llama-2-7b", "YYY YYY YY xYY ---"),
    ("Llama-2-13b", "YYY YYY xY xxY ---"),
    ("EleutherAI/gpt-neox-20b", "YYY xYY xY xxY ---"),
    ("bigcode/starcoder", "YYY YYY xY xxY ---"),
];

/// Run and print the experiment, reporting per-cell agreement with the
/// paper.
pub fn run() {
    header("Table III - LLM x GPU-profile feasibility (Y feasible, x memory, - sw/hw)");
    let llms = llm_catalog();
    let profiles = paper_profiles();
    let matrix = feasibility_matrix(&llms, &profiles, &MemoryConfig::default());

    print!("{:<26}", "LLM");
    for p in &profiles {
        print!(" {:>3}", format!("{}x", p.count));
    }
    println!();
    print!("{:<26}", "");
    for p in &profiles {
        let short: String = p.gpu.name.chars().take(3).collect();
        print!(" {short:>3}");
    }
    println!();

    let mut agree = 0usize;
    let mut total = 0usize;
    for (i, llm) in llms.iter().enumerate() {
        print!("{:<26}", llm.name);
        let paper: Vec<char> = PAPER_CELLS[i].1.chars().filter(|c| !c.is_whitespace()).collect();
        for (j, _) in profiles.iter().enumerate() {
            let ours = matrix[i][j].glyph();
            let mark = if ours == paper[j].to_string() { ' ' } else { '*' };
            print!(" {ours:>2}{mark}");
            total += 1;
            agree += usize::from(ours == paper[j].to_string());
        }
        println!();
    }
    println!(
        "\nagreement with the paper's Table III: {agree}/{total} cells \
         (* marks deviations; see EXPERIMENTS.md)"
    );
}
