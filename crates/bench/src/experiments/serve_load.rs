//! Load test of the llmpilot-serve daemon: a closed-loop client pool over
//! loopback measuring sustained throughput and tail latency of the
//! `/recommend` query path, cold (every query misses the LRU response
//! cache and runs the full predictor search) versus cached (the same
//! query mix repeated, served from the cache).
//!
//! This is the service-level counterpart of the `recommend_query`
//! Criterion bench: it exercises the whole daemon — HTTP parsing, the
//! bounded worker pool, cache and metrics — not just the search loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use llmpilot_core::{CharacterizationDataset, PerfRow, PredictorConfig};
use llmpilot_ml::GbdtParams;
use llmpilot_serve::{http_request, HttpClient, ServeConfig, Server};

use crate::{fmt, header};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 250;

/// Synthetic characterization dataset: enough LLM × profile × users cells
/// for query diversity without a full sweep.
fn dataset() -> CharacterizationDataset {
    let mut rows = Vec::new();
    let profiles = [("1xA100-40GB", 0.0015), ("1xA100-80GB", 0.001), ("2xA100-40GB", 0.0008)];
    for llm in ["Llama-2-7b", "Llama-2-13b", "bigcode/starcoder", "google/flan-t5-xl"] {
        for (profile, itl_scale) in profiles {
            for users in [1u32, 2, 4, 8, 16, 32, 64, 128] {
                rows.push(PerfRow {
                    llm: llm.into(),
                    profile: profile.into(),
                    users,
                    ttft_s: 0.05 * f64::from(users),
                    nttft_s: 0.0001 * f64::from(users),
                    itl_s: itl_scale * f64::from(users),
                    throughput: 120.0 * f64::from(users),
                });
            }
        }
    }
    CharacterizationDataset { rows, ..Default::default() }
}

/// Latency percentiles of one phase, microseconds.
fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let rank = (p * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64
}

struct PhaseResult {
    latencies_us: Vec<u64>,
    wall: Duration,
    errors: u64,
}

/// Run one closed-loop phase: `CLIENTS` threads each issue
/// `REQUESTS_PER_CLIENT` keep-alive requests back-to-back. `unique_tag`
/// perturbs the query mix so a phase either always misses (fresh tag) or
/// always hits (repeated tag) the response cache.
fn run_phase(addr: std::net::SocketAddr, unique_tag: u32) -> PhaseResult {
    let errors = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let errors = Arc::clone(&errors);
        handles.push(std::thread::spawn(move || {
            let llms = ["Llama-2-7b", "Llama-2-13b", "bigcode%2Fstarcoder", "google%2Fflan-t5-xl"];
            let mut conn = HttpClient::connect(addr).expect("connect to local daemon");
            let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
            for i in 0..REQUESTS_PER_CLIENT {
                let llm = llms[(c + i) % llms.len()];
                // users varies per (client, request, tag): with a fresh tag
                // every key is new to the cache, with a repeated tag the
                // whole mix has been seen before.
                let users = 1 + ((c * REQUESTS_PER_CLIENT + i) as u32 % 200) + unique_tag * 200;
                let target = format!("/recommend?model={llm}&users={users}");
                let t0 = Instant::now();
                match conn.request("GET", &target) {
                    Ok(resp) if resp.status == 200 => {
                        latencies.push(t0.elapsed().as_micros() as u64)
                    }
                    Ok(_) | Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            latencies
        }));
    }
    let mut latencies_us = Vec::new();
    for h in handles {
        latencies_us.extend(h.join().expect("client thread"));
    }
    latencies_us.sort_unstable();
    PhaseResult { latencies_us, wall: started.elapsed(), errors: errors.load(Ordering::Relaxed) }
}

fn print_phase(name: &str, r: &PhaseResult) {
    let n = r.latencies_us.len() as f64;
    let throughput = n / r.wall.as_secs_f64();
    println!(
        "{:<8} {:>9} {:>6} {:>11} {:>10} {:>10} {:>10}",
        name,
        r.latencies_us.len(),
        r.errors,
        format!("{} req/s", fmt(throughput)),
        format!("{} us", fmt(percentile(&r.latencies_us, 0.50))),
        format!("{} us", fmt(percentile(&r.latencies_us, 0.99))),
        format!("{} ms", fmt(r.wall.as_secs_f64() * 1e3)),
    );
}

/// Run and print the experiment.
pub fn run() {
    header("serve_load - llmpilot-serve closed-loop load test over loopback");

    let data_path =
        std::env::temp_dir().join(format!("llmpilot-serve-load-{}.csv", std::process::id()));
    std::fs::write(&data_path, dataset().to_csv()).expect("write dataset");

    let mut config = ServeConfig::new(&data_path);
    config.addr = "127.0.0.1:0".into();
    config.workers = CLIENTS;
    config.queue_capacity = 2 * CLIENTS;
    config.cache_capacity = 16 * 1024;
    config.watch_interval = None;
    config.predictor = PredictorConfig {
        gbdt: GbdtParams { n_trees: 40, max_depth: 4, ..GbdtParams::default() },
        ..PredictorConfig::default()
    };

    let t0 = Instant::now();
    let handle = Server::start(config).expect("daemon starts");
    println!(
        "daemon up on {} ({} workers, initial training {} ms)",
        handle.addr(),
        CLIENTS,
        fmt(t0.elapsed().as_secs_f64() * 1e3)
    );
    println!(
        "{CLIENTS} closed-loop clients x {REQUESTS_PER_CLIENT} keep-alive requests per phase\n"
    );

    println!(
        "{:<8} {:>9} {:>6} {:>11} {:>10} {:>10} {:>10}",
        "phase", "ok", "err", "throughput", "p50", "p99", "wall"
    );
    // Phase 1 (cold): every (model, users) key is new — full predictor
    // search on each request.
    let cold = run_phase(handle.addr(), 0);
    print_phase("cold", &cold);
    // Phase 2 (cached): the identical query mix again — served from the
    // LRU cache.
    let cached = run_phase(handle.addr(), 0);
    print_phase("cached", &cached);

    let cold_p50 = percentile(&cold.latencies_us, 0.50);
    let cached_p50 = percentile(&cached.latencies_us, 0.50);
    println!(
        "\ncache-hit speedup: p50 {}x ({} us -> {} us)",
        fmt(cold_p50 / cached_p50),
        fmt(cold_p50),
        fmt(cached_p50)
    );

    let scrape = http_request(handle.addr(), "GET", "/metrics").expect("scrape metrics").text();
    let series = |name: &str| {
        scrape
            .lines()
            .find(|l| l.starts_with(name))
            .map(|l| l.to_string())
            .unwrap_or_else(|| format!("{name} <missing>"))
    };
    println!("\ndaemon-side counters:");
    for name in [
        "llmpilot_requests_total{route=\"recommend\"}",
        "llmpilot_cache_requests_total{result=\"hit\"}",
        "llmpilot_cache_requests_total{result=\"miss\"}",
        "llmpilot_queue_rejected_total",
        "llmpilot_request_duration_seconds_count",
    ] {
        println!("  {}", series(name));
    }

    handle.shutdown();
    std::fs::remove_file(&data_path).ok();
}
