//! Fig. 4: MDI importance of the number of CPU cores, pod memory, maximum
//! batch weight and number of concurrent users for TTFT and ITL, for
//! bigcode/starcoder on one A100-40. The paper finds CPU cores and memory
//! over 300× less important than the maximum batch weight, motivating why
//! LLM-Pilot sets them by trivial rules.
//!
//! LLM inference is GPU-bound: the pod's CPU core count and main-memory
//! allocation do not enter the serving-time path at all (they only matter
//! for model loading), which our simulator encodes explicitly — so the
//! study recovers the paper's near-zero importances mechanistically.

use llmpilot_core::characterize::WorkloadRequestSource;
use llmpilot_ml::{Dataset, ForestParams, RandomForest};
use llmpilot_sim::engine::Engine;
use llmpilot_sim::gpu::{a100_40, GpuProfile};
use llmpilot_sim::llm::starcoder;
use llmpilot_sim::load::{run_load_test, LoadTestConfig};
use llmpilot_sim::memory::{MemoryConfig, MemoryModel};
use llmpilot_sim::perf_model::{PerfModel, PerfModelConfig};
use llmpilot_sim::tuner::tune_max_batch_weight;

use crate::{build_sampler, build_traces, header, DEFAULT_TRACE_REQUESTS};

/// The four deployment knobs of the study.
pub const KNOBS: [&str; 4] = ["cpu_cores", "memory_gb", "max_batch_weight", "users"];

/// Collect the sweep and fit the two RFs; returns MDI vectors for TTFT and
/// ITL in [`KNOBS`] order.
pub fn importance() -> (Vec<f64>, Vec<f64>) {
    let traces = build_traces(DEFAULT_TRACE_REQUESTS);
    let sampler = build_sampler(&traces);
    let llm = starcoder();
    let profile = GpuProfile::new(a100_40(), 1);
    let mem = MemoryModel::new(llm.clone(), profile.clone(), MemoryConfig::default());
    let tuned = tune_max_batch_weight(&mem).expect("feasible").max_batch_weight;
    let (cap_in, cap_out) = mem.largest_request();
    let floor = u64::from(cap_in) + u64::from(cap_out);

    let cpu_options = [2.0f64, 4.0, 8.0, 16.0];
    let memory_options = [64.0f64, 128.0, 250.0];
    let mut weight_options = Vec::new();
    let mut w = floor;
    while w < tuned {
        weight_options.push(w);
        w *= 4;
    }
    weight_options.push(tuned);
    let users_options = [1u32, 4, 16, 64, 128];

    let mut rows = Vec::new();
    let mut ttft = Vec::new();
    let mut itl = Vec::new();
    for &weight in &weight_options {
        for &users in &users_options {
            let perf = PerfModel::new(llm.clone(), profile.clone(), PerfModelConfig::default());
            let mut engine = Engine::new(perf, weight);
            let mut source =
                WorkloadRequestSource::new(sampler.clone(), 0xF164 ^ weight ^ u64::from(users));
            let metrics = run_load_test(
                &mut engine,
                &mem,
                &mut source,
                &LoadTestConfig { duration_s: 60.0, warmup_s: 0.0, concurrent_users: users },
            )
            .expect("load test");
            // CPU cores and pod memory are off the serving path: replicate
            // the measurement across their grid, exactly as a GPU-bound
            // service behaves.
            for &cpu in &cpu_options {
                for &memory in &memory_options {
                    rows.push(vec![cpu, memory, weight as f64, f64::from(users)]);
                    ttft.push(metrics.ttft_median_s);
                    itl.push(metrics.itl_median_s);
                }
            }
        }
    }

    let fit = |targets: Vec<f64>| {
        let ds = Dataset::from_rows(&rows, targets).expect("valid dataset");
        // Deterministic forest (no bootstrap, all features per split): inert
        // knobs then receive *exactly* zero impurity decrease, the noiseless
        // limit of the paper's near-zero importances.
        let mut params = ForestParams { n_trees: 40, bootstrap: false, ..ForestParams::default() };
        params.tree.max_features = Some(usize::MAX);
        RandomForest::fit(&ds, &params).expect("forest fits").feature_importance().to_vec()
    };
    (fit(ttft), fit(itl))
}

/// Run and print the experiment.
pub fn run() {
    header("Fig. 4 - MDI of deployment knobs (starcoder, 1xA100-40GB)");
    let (ttft_imp, itl_imp) = importance();
    println!("{:>18} {:>12} {:>12}", "knob", "TTFT MDI", "ITL MDI");
    for (i, knob) in KNOBS.iter().enumerate() {
        println!("{knob:>18} {:>12.5} {:>12.5}", ttft_imp[i], itl_imp[i]);
    }
    let weight = ttft_imp[2].max(itl_imp[2]);
    let cpu_mem = ttft_imp[0].max(ttft_imp[1]).max(itl_imp[0]).max(itl_imp[1]);
    if cpu_mem > 0.0 {
        println!(
            "\nbatch weight vs CPU/memory importance ratio: {:.0}x (paper: >300x)",
            weight / cpu_mem
        );
    } else {
        println!(
            "\nCPU/memory importance is exactly zero (paper: near-zero, >300x below batch weight)"
        );
    }
}
