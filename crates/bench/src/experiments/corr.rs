//! Sec. V-A "parameter correlation" ablation: Llama-2-13b on one A100-80,
//! 1..128 users, requests drawn from the joint model vs from independent
//! marginals (long steady-state windows: at one user, a 2-minute window
//! holds only a few dozen heavy-tailed requests, so the mix variance would
//! swamp the effect). The paper measures (independent vs joint, averaged over user
//! counts): −13% throughput (up to −19%), +30% TTFT (up to +98%), −25% ITL
//! (up to −58%) — concluding joint modeling is essential.

use llmpilot_core::characterize::{IndependentRequestSource, WorkloadRequestSource};
use llmpilot_sim::engine::Engine;
use llmpilot_sim::gpu::{a100_80, GpuProfile};
use llmpilot_sim::llm::llama2_13b;
use llmpilot_sim::load::{run_load_test, LoadMetrics, LoadTestConfig};
use llmpilot_sim::memory::{MemoryConfig, MemoryModel};
use llmpilot_sim::perf_model::{PerfModel, PerfModelConfig};
use llmpilot_sim::request::RequestSource;
use llmpilot_sim::tuner::tune_max_batch_weight;
use llmpilot_workload::IndependentSampler;

use crate::{build_sampler, build_traces, header, DEFAULT_TRACE_REQUESTS};

/// Per-user-count metrics for both sampling modes.
pub struct CorrAblation {
    /// User counts of the sweep.
    pub users: Vec<u32>,
    /// Metrics under the joint model.
    pub joint: Vec<LoadMetrics>,
    /// Metrics under independent marginals.
    pub independent: Vec<LoadMetrics>,
}

/// Run the sweep.
pub fn ablation() -> CorrAblation {
    let traces = build_traces(DEFAULT_TRACE_REQUESTS);
    let sampler = build_sampler(&traces);
    let independent = IndependentSampler::new(sampler.model());
    let llm = llama2_13b();
    let profile = GpuProfile::new(a100_80(), 1);
    let mem = MemoryModel::new(llm.clone(), profile.clone(), MemoryConfig::default());
    let weight = tune_max_batch_weight(&mem).expect("feasible").max_batch_weight;

    let users: Vec<u32> = (0..8).map(|i| 1u32 << i).collect();
    let run = |source: &mut dyn RequestSource, users: u32| {
        let perf = PerfModel::new(llm.clone(), profile.clone(), PerfModelConfig::default());
        let mut engine = Engine::new(perf, weight);
        run_load_test(
            &mut engine,
            &mem,
            source,
            &LoadTestConfig { duration_s: 2_400.0, warmup_s: 120.0, concurrent_users: users },
        )
        .expect("load test")
    };

    let joint_metrics: Vec<LoadMetrics> = users
        .iter()
        .map(|&u| {
            let mut s = WorkloadRequestSource::new(sampler.clone(), 0xC0 ^ u64::from(u));
            run(&mut s, u)
        })
        .collect();
    let indep_metrics: Vec<LoadMetrics> = users
        .iter()
        .map(|&u| {
            let mut s = IndependentRequestSource::new(independent.clone(), 0xC0 ^ u64::from(u));
            run(&mut s, u)
        })
        .collect();
    CorrAblation { users, joint: joint_metrics, independent: indep_metrics }
}

fn deltas(joint: &[f64], indep: &[f64]) -> (f64, f64) {
    let rel: Vec<f64> = joint.iter().zip(indep).map(|(j, i)| (i - j) / j * 100.0).collect();
    let mean = rel.iter().sum::<f64>() / rel.len() as f64;
    let extreme = rel.iter().copied().max_by(|a, b| a.abs().total_cmp(&b.abs())).unwrap_or(0.0);
    (mean, extreme)
}

/// Run and print the experiment.
pub fn run() {
    header("Sec. V-A - joint vs independent request sampling (Llama-2-13b, 1xA100-80GB)");
    let a = ablation();
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "users", "tput joint", "tput indep", "TTFT joint", "TTFT indep", "ITL joint", "ITL indep"
    );
    for (i, &u) in a.users.iter().enumerate() {
        println!(
            "{u:>6} {:>12.1} {:>12.1} {:>12.3} {:>12.3} {:>12.4} {:>12.4}",
            a.joint[i].throughput_tokens_per_s,
            a.independent[i].throughput_tokens_per_s,
            a.joint[i].ttft_median_s,
            a.independent[i].ttft_median_s,
            a.joint[i].itl_median_s,
            a.independent[i].itl_median_s,
        );
    }
    let (tput_mean, tput_max) = deltas(
        &a.joint.iter().map(|m| m.throughput_tokens_per_s).collect::<Vec<_>>(),
        &a.independent.iter().map(|m| m.throughput_tokens_per_s).collect::<Vec<_>>(),
    );
    let (ttft_mean, ttft_max) = deltas(
        &a.joint.iter().map(|m| m.ttft_median_s).collect::<Vec<_>>(),
        &a.independent.iter().map(|m| m.ttft_median_s).collect::<Vec<_>>(),
    );
    let (itl_mean, itl_max) = deltas(
        &a.joint.iter().map(|m| m.itl_median_s).collect::<Vec<_>>(),
        &a.independent.iter().map(|m| m.itl_median_s).collect::<Vec<_>>(),
    );
    println!(
        "\nindependent vs joint: throughput {tput_mean:+.0}% (extreme {tput_max:+.0}%), \
         TTFT {ttft_mean:+.0}% (extreme {ttft_max:+.0}%), ITL {itl_mean:+.0}% (extreme {itl_max:+.0}%)"
    );
    println!("paper: throughput -13% (to -19%), TTFT +30% (to +98%), ITL -25% (to -58%)");
}
