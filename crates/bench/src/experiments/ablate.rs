//! Ablations of the design choices the paper motivates:
//!
//! * **regressor**: Eq.-(4) sample weights × monotonicity constraint, the
//!   two modifications of Sec. IV-B-2 — scored by the Fig. 8 metrics;
//! * **bins**: the workload generator's per-parameter bin budget (Sec.
//!   III-B uses 64) — scored by marginal-CDF fidelity and generator size.

use llmpilot_core::baselines::LlmPilotMethod;
use llmpilot_core::evaluate::Evaluation;
use llmpilot_core::predictor::PredictorConfig;
use llmpilot_sim::gpu::paper_profiles;
use llmpilot_traces::{EmpiricalCdf, Param};
use llmpilot_workload::{WorkloadModel, WorkloadSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{
    build_sampler, build_traces, full_characterization, header, workload_params,
    DEFAULT_TRACE_REQUESTS,
};

/// Run and print the regressor ablation (weights × monotonicity).
pub fn run_regressor() {
    header("Ablation - sample weights x monotone constraint (Fig. 8 metrics)");
    let traces = build_traces(DEFAULT_TRACE_REQUESTS);
    let sampler = build_sampler(&traces);
    let ds = full_characterization(&sampler);
    let eval = Evaluation::new(&ds, paper_profiles());

    println!(
        "{:<10} {:<10} {:>14} {:>16} {:>10}",
        "weights", "monotone", "success rate", "mean overspend", "S/O score"
    );
    for (use_w, use_m) in [(true, true), (true, false), (false, true), (false, false)] {
        let method = LlmPilotMethod {
            config: PredictorConfig {
                use_sample_weights: use_w,
                use_monotone_constraint: use_m,
                ..PredictorConfig::default()
            },
            hp_grid: Vec::new(),
        };
        let score = eval.evaluate(&method);
        println!(
            "{:<10} {:<10} {:>14.2} {:>16} {:>10.3}",
            use_w,
            use_m,
            score.success_rate,
            if score.mean_overspend.is_nan() {
                "n/a".to_string()
            } else {
                format!("{:.2}", score.mean_overspend)
            },
            score.so_score
        );
    }
    println!(
        "\npaper's argument: weights focus accuracy near the constraints; the\n\
         monotonicity constraint prevents the weights' low-priority points from\n\
         spuriously 'violating' the SLA at small user counts (Sec. IV-B-2)"
    );
}

/// Run and print the bin-budget ablation.
pub fn run_bins() {
    header("Ablation - workload-generator bin budget");
    let traces = build_traces(DEFAULT_TRACE_REQUESTS);
    let empirical_in = EmpiricalCdf::new(traces.column(Param::InputTokens));
    let empirical_out = EmpiricalCdf::new(traces.column(Param::OutputTokens));
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>14}",
        "bins", "KS(input)", "KS(output)", "model [KB]", "nonempty bins"
    );
    for bins in [8usize, 16, 32, 64, 128] {
        let model = WorkloadModel::fit_with_bins(&traces, &workload_params(), bins).expect("fit");
        let sampler = WorkloadSampler::new(model.clone());
        let mut rng = StdRng::seed_from_u64(0xB195);
        let n = 30_000;
        let mut ins = Vec::with_capacity(n);
        let mut outs = Vec::with_capacity(n);
        for _ in 0..n {
            let s = sampler.sample(&mut rng);
            ins.push(f64::from(s.input_tokens().unwrap()));
            outs.push(f64::from(s.output_tokens().unwrap()));
        }
        let ks_in = empirical_in.ks_distance(&EmpiricalCdf::new(ins));
        let ks_out = empirical_out.ks_distance(&EmpiricalCdf::new(outs));
        println!(
            "{bins:>6} {ks_in:>14.4} {ks_out:>14.4} {:>12.1} {:>14}",
            model.approx_size_bytes() as f64 / 1e3,
            model.num_nonempty_bins()
        );
    }
    println!("\nexpected: fidelity saturates around the paper's 64 bins while size keeps growing");
}
