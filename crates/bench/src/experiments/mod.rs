//! One module per paper table/figure (see DESIGN.md's experiment index).

pub mod ablate;
pub mod corr;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod mdi;
pub mod overhead;
pub mod paged;
pub mod resilience;
pub mod serve_load;
pub mod speed;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

/// All experiment ids with descriptions, in paper order.
pub fn catalog() -> Vec<(&'static str, &'static str)> {
    vec![
        ("fig1", "Median e2e latency vs maximum batch weight (starcoder, 1xA100-80, 128 users)"),
        ("table1", "Per-pod throughput scaling for Llama-2-13b pods on A100-80"),
        ("table2", "Characteristics of the (synthetic) production traces"),
        ("fig3", "Spearman correlation between request parameters"),
        ("mdi_traces", "RF latency model on traces: R^2 and MDI importance ranking"),
        ("fig4", "MDI of CPU/memory/batch-weight/users for TTFT+ITL (starcoder, 1xA100-40)"),
        ("fig6", "Marginal CDFs: empirical traces vs workload generator"),
        ("corr_ablation", "Joint vs independent request sampling: throughput/TTFT/ITL deltas"),
        ("gen_speed", "Generator size and sampling speed vs raw-trace resampling"),
        ("table3", "LLM x GPU-profile feasibility matrix"),
        ("fig7", "TTFT/ITL vs throughput and throughput-per-dollar (flan-t5-xxl)"),
        ("overhead", "Estimated real-hardware characterization overhead"),
        ("fig8", "Recommendation quality: success rate, overspend, S/O for all methods"),
        ("ablate_regressor", "Ablation: sample weights x monotone constraint"),
        ("ablate_bins", "Ablation: workload-generator bin-count sweep"),
        ("ablate_paged", "Extension ablation: reservation vs paged-KV admission"),
        ("resilience", "Fault-injected sweeps: completeness and S/O vs fault rate x retries"),
        ("serve_load", "llmpilot-serve load test: throughput and p50/p99, cold vs cached"),
        ("table4", "Our column of the benchmarking-tool comparison table"),
    ]
}
