//! Extension ablation (beyond the paper): TGIS-style full-weight
//! reservation vs vLLM-style paged-KV admission with recompute preemption,
//! under the same tuned memory budget. PagedAttention's throughput win
//! (Kwon et al., SOSP'23 — the paper's \[19\]) should reproduce: paging
//! admits more concurrent sequences from the same memory.

use llmpilot_core::characterize::WorkloadRequestSource;
use llmpilot_sim::engine::{AdmissionPolicy, Engine};
use llmpilot_sim::gpu::{a100_40, GpuProfile};
use llmpilot_sim::llm::llama2_13b;
use llmpilot_sim::load::{run_load_test, LoadMetrics, LoadTestConfig};
use llmpilot_sim::memory::{MemoryConfig, MemoryModel};
use llmpilot_sim::perf_model::{PerfModel, PerfModelConfig};
use llmpilot_sim::tuner::tune_max_batch_weight;

use crate::{build_sampler, build_traces, header, DEFAULT_TRACE_REQUESTS};

/// Run one policy across the user sweep.
pub fn sweep(policy: AdmissionPolicy) -> Vec<(u32, LoadMetrics)> {
    let traces = build_traces(DEFAULT_TRACE_REQUESTS);
    let sampler = build_sampler(&traces);
    let llm = llama2_13b();
    let profile = GpuProfile::new(a100_40(), 1);
    let mem = MemoryModel::new(llm.clone(), profile.clone(), MemoryConfig::default());
    let weight = tune_max_batch_weight(&mem).expect("feasible").max_batch_weight;

    (0..8)
        .map(|i| 1u32 << i)
        .map(|users| {
            let perf = PerfModel::new(llm.clone(), profile.clone(), PerfModelConfig::default());
            let mut engine = Engine::new(perf, weight).with_policy(policy);
            let mut source = WorkloadRequestSource::new(sampler.clone(), 0x9A6E ^ u64::from(users));
            let metrics = run_load_test(
                &mut engine,
                &mem,
                &mut source,
                &LoadTestConfig { duration_s: 600.0, warmup_s: 60.0, concurrent_users: users },
            )
            .expect("load test");
            (users, metrics)
        })
        .collect()
}

/// Run and print the experiment.
pub fn run() {
    header("Extension - reservation (TGIS) vs paged-KV (vLLM) admission");
    println!("Llama-2-13b on 1xA100-40GB, same tuned memory budget\n");
    let reserve = sweep(AdmissionPolicy::ReserveFull);
    let paged = sweep(AdmissionPolicy::PagedCurrent);
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>12}",
        "users", "tput reserve", "tput paged", "ITL reserve", "ITL paged"
    );
    for ((users, r), (_, p)) in reserve.iter().zip(&paged) {
        println!(
            "{users:>6} {:>14.1} {:>14.1} {:>12.4} {:>12.4}",
            r.throughput_tokens_per_s, p.throughput_tokens_per_s, r.itl_median_s, p.itl_median_s
        );
    }
    let r_max = reserve.iter().map(|(_, m)| m.throughput_tokens_per_s).fold(0.0f64, f64::max);
    let p_max = paged.iter().map(|(_, m)| m.throughput_tokens_per_s).fold(0.0f64, f64::max);
    println!(
        "\npeak throughput: paged {:.0} vs reservation {:.0} tok/s ({:+.0}%)",
        p_max,
        r_max,
        (p_max / r_max - 1.0) * 100.0
    );
    println!("expected: paging packs more sequences into the same memory (PagedAttention)");
}
