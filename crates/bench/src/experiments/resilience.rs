//! Resilience: how fault-tolerant is the characterization pipeline, and
//! what do characterization failures cost downstream?
//!
//! The paper's sweep (Sec. V-B) assumes every feasible cell of the
//! LLM × GPU grid yields measurements. On real hardware cells fail:
//! deploys flake, tuning OOMs at the weight boundary, load tests crash.
//! This experiment injects transient faults at probability `p` into the
//! sweep, varies the per-cell retry budget, and reports
//!
//! * dataset **completeness** (measured / feasible cells), and
//! * the downstream **S/O score** of LLM-Pilot's recommender when trained
//!   on the fault-truncated dataset, versus the fault-free dataset.
//!
//! The punchline: without retries, even modest fault rates lose a sizable
//! fraction of the dataset and degrade recommendation quality; a small
//! retry budget recovers the full dataset bit-identically (transient
//! faults are re-drawn per attempt while measurement seeds stay fixed).

use llmpilot_core::baselines::LlmPilotMethod;
use llmpilot_core::evaluate::Evaluation;
use llmpilot_core::{CharacterizeConfig, SweepDriver, SweepOptions};
use llmpilot_sim::fault::{FaultConfig, FaultPlan};
use llmpilot_sim::gpu::paper_profiles;
use llmpilot_sim::llm::llm_catalog;

use crate::{build_sampler, build_traces, header, DEFAULT_TRACE_REQUESTS, EXPERIMENT_SEED};

/// Characterization config of the resilience sweeps: shorter windows than
/// the main experiments (each configuration re-runs the whole grid), but the
/// full default user sweep — the downstream evaluation recommends for
/// U = 200 users and needs the complete capacity curve per cell.
fn resilience_config() -> CharacterizeConfig {
    CharacterizeConfig { duration_s: 45.0, warmup_s: 0.0, ..CharacterizeConfig::default() }
}

/// The S/O score of LLM-Pilot trained on `ds`, or `None` when the dataset
/// is too truncated to evaluate (fewer than two LLMs survive).
fn so_of(ds: &llmpilot_core::CharacterizationDataset) -> Option<f64> {
    if ds.llms().len() < 2 {
        return None;
    }
    let eval = Evaluation::new(ds, paper_profiles());
    Some(eval.evaluate(&LlmPilotMethod::untuned()).so_score)
}

/// Run and print the experiment.
pub fn run() {
    header("Resilience - fault-injected sweeps x retry budgets");
    let traces = build_traces(DEFAULT_TRACE_REQUESTS);
    let sampler = build_sampler(&traces);
    let llms = llm_catalog();
    let profiles = paper_profiles();
    let config = resilience_config();

    // Fault-free baseline.
    let (clean_ds, clean_report) = SweepDriver::builder(&llms, &profiles, &sampler)
        .config(config.clone())
        .build()
        .expect("valid options")
        .run()
        .expect("no journal, no I/O to fail");
    let clean_so = so_of(&clean_ds).expect("fault-free dataset covers the catalog");
    println!(
        "fault-free baseline: {} rows, {}/{} cells measured, S/O = {:.3}\n",
        clean_ds.len(),
        clean_report.measured(),
        clean_report.cells.len(),
        clean_so
    );

    println!(
        "{:>7} {:>8} {:>10} {:>13} {:>9} {:>8} {:>9} {:>8}",
        "p", "retries", "measured", "completeness", "rows", "S/O", "delta", "dataset"
    );
    for &p in &[0.1, 0.3, 0.5] {
        for &retries in &[1u32, 3, 8, 32] {
            let options = SweepOptions {
                plan: FaultPlan::new(FaultConfig::transient(EXPERIMENT_SEED, p)),
                max_attempts: retries,
                ..SweepOptions::default()
            };
            let (ds, report) = SweepDriver::builder(&llms, &profiles, &sampler)
                .config(config.clone())
                .options(options)
                .build()
                .expect("valid options")
                .run()
                .expect("no journal, no I/O to fail");
            let so = so_of(&ds);
            println!(
                "{:>7.2} {:>8} {:>10} {:>13.2} {:>9} {:>8} {:>9} {:>8}",
                p,
                retries,
                format!("{}/{}", report.measured(), report.cells.len() - report.infeasible()),
                report.completeness(),
                ds.len(),
                so.map(|v| format!("{v:.3}")).unwrap_or_else(|| "n/a".into()),
                so.map(|v| format!("{:+.3}", v - clean_so)).unwrap_or_else(|| "n/a".into()),
                if ds == clean_ds { "exact" } else { "partial" },
            );
        }
    }
    println!(
        "\n(\"exact\" = bit-identical to the fault-free dataset: retried attempts draw fresh\n\
         fault decisions while measurement seeds stay fixed, so recovered cells reproduce\n\
         their fault-free rows exactly)"
    );
}
