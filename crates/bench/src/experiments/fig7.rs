//! Fig. 7: the TTFT-vs-throughput, ITL-vs-throughput and
//! ITL-vs-throughput-per-dollar curves of google/flan-t5-xxl across GPU
//! profiles, with markers at 1, 2, 4, …, 128 users. The paper's shapes:
//! TTFT grows with users (queueing jump on weak GPUs), ITL stays flat until
//! memory saturates then rises while throughput stops improving, larger
//! memory saturates later, and the highest-memory profiles are *not* the
//! most cost-effective (A100/T4 beat H100 on throughput per dollar).

use llmpilot_core::characterize::{characterize, CharacterizeConfig};
use llmpilot_core::CharacterizationDataset;
use llmpilot_sim::gpu::paper_profiles;
use llmpilot_sim::llm::flan_t5_xxl;

use crate::{build_sampler, build_traces, header, DEFAULT_TRACE_REQUESTS};

/// Characterize flan-t5-xxl on all feasible paper profiles.
pub fn characterization() -> CharacterizationDataset {
    let traces = build_traces(DEFAULT_TRACE_REQUESTS);
    let sampler = build_sampler(&traces);
    characterize(&[flan_t5_xxl()], &paper_profiles(), &sampler, &CharacterizeConfig::default())
}

/// Run and print the experiment.
pub fn run() {
    header("Fig. 7 - flan-t5-xxl across GPU profiles (markers: 1..128 users)");
    let ds = characterization();
    let profiles = ds.profiles();
    for profile_name in &profiles {
        let spec = llmpilot_core::recommend::parse_profile(profile_name).expect("known profile");
        let cost = spec.cost_per_hour();
        println!("\nprofile {profile_name}  (cost ${cost:.2}/h)");
        println!(
            "{:>6} {:>12} {:>10} {:>10} {:>14}",
            "users", "tput [tok/s]", "TTFT [s]", "ITL [s]", "tput per $/h"
        );
        let mut rows: Vec<_> = ds.rows.iter().filter(|r| &r.profile == profile_name).collect();
        rows.sort_by_key(|r| r.users);
        for r in rows {
            println!(
                "{:>6} {:>12.1} {:>10.3} {:>10.4} {:>14.1}",
                r.users,
                r.throughput,
                r.ttft_s,
                r.itl_s,
                r.throughput / cost
            );
        }
    }

    // Headline comparison: best throughput vs best throughput-per-dollar.
    let mut best_tput: Option<(&str, f64)> = None;
    let mut best_value: Option<(&str, f64)> = None;
    for profile_name in &profiles {
        let spec = llmpilot_core::recommend::parse_profile(profile_name).expect("known profile");
        let max_tput = ds
            .rows
            .iter()
            .filter(|r| &r.profile == profile_name)
            .map(|r| r.throughput)
            .fold(0.0f64, f64::max);
        if best_tput.is_none_or(|(_, t)| max_tput > t) {
            best_tput = Some((profile_name, max_tput));
        }
        let value = max_tput / spec.cost_per_hour();
        if best_value.is_none_or(|(_, v)| value > v) {
            best_value = Some((profile_name, value));
        }
    }
    if let (Some((tp, tv)), Some((vp, vv))) = (best_tput, best_value) {
        println!(
            "\nhighest raw throughput: {tp} ({tv:.0} tok/s); \
             highest throughput per dollar: {vp} ({vv:.0} tok/s per $/h)"
        );
        println!(
            "paper: H100 profiles win on raw throughput; A100/T4 win on throughput per dollar"
        );
    }
}
