//! Fig. 1: median end-to-end latency of bigcode/starcoder on one A100 with
//! varying maximum batch weight, under 128 concurrent users. The paper
//! observes ~2.8× lower latency at the largest weight than at the smallest.

use llmpilot_core::characterize::WorkloadRequestSource;
use llmpilot_sim::engine::Engine;
use llmpilot_sim::gpu::{a100_80, GpuProfile};
use llmpilot_sim::llm::starcoder;
use llmpilot_sim::load::{run_load_test, LoadTestConfig};
use llmpilot_sim::memory::{MemoryConfig, MemoryModel};
use llmpilot_sim::perf_model::{PerfModel, PerfModelConfig};
use llmpilot_sim::tuner::tune_max_batch_weight;

use crate::{build_sampler, build_traces, fmt, header, DEFAULT_TRACE_REQUESTS};

/// The sweep result: `(max batch weight, median e2e latency seconds,
/// throughput tokens/s)`.
pub fn sweep() -> Vec<(u64, f64, f64)> {
    let traces = build_traces(DEFAULT_TRACE_REQUESTS);
    let sampler = build_sampler(&traces);
    let llm = starcoder();
    let profile = GpuProfile::new(a100_80(), 1);
    let mem = MemoryModel::new(llm.clone(), profile.clone(), MemoryConfig::default());
    let tuned = tune_max_batch_weight(&mem).expect("feasible").max_batch_weight;

    // Sweep from the smallest usable weight (one largest request) to the
    // tuned maximum, in powers of two like the paper's x-axis.
    let (cap_in, cap_out) = mem.largest_request();
    let floor = u64::from(cap_in) + u64::from(cap_out);
    let mut weights = Vec::new();
    let mut w = floor;
    while w < tuned {
        weights.push(w);
        w *= 2;
    }
    weights.push(tuned);

    weights
        .into_iter()
        .map(|weight| {
            let perf = PerfModel::new(llm.clone(), profile.clone(), PerfModelConfig::default());
            let mut engine = Engine::new(perf, weight);
            let mut source = WorkloadRequestSource::new(sampler.clone(), 0xF161);
            // Steady-state window: long run with warm-up so the median e2e
            // latency reflects queueing equilibrium rather than the cold
            // start (the paper load-tests a warmed service).
            let metrics = run_load_test(
                &mut engine,
                &mem,
                &mut source,
                &LoadTestConfig { duration_s: 1_800.0, warmup_s: 600.0, concurrent_users: 128 },
            )
            .expect("load test");
            (weight, metrics.e2e_median_s, metrics.throughput_tokens_per_s)
        })
        .collect()
}

/// Run and print the experiment.
pub fn run() {
    header("Fig. 1 - median e2e latency vs maximum batch weight");
    println!("LLM: bigcode/starcoder, GPU: 1xA100-80GB, 128 concurrent users");
    println!("{:>18} {:>22} {:>14}", "max batch weight", "median e2e latency [s]", "tput [tok/s]");
    let points = sweep();
    for (w, e2e, tput) in &points {
        println!("{w:>18} {:>22} {:>14}", fmt(*e2e), fmt(*tput));
    }
    let worst = points.first().expect("nonempty").1;
    let best = points.last().expect("nonempty").1;
    println!("largest/smallest weight latency ratio: {:.2}x better (paper: ~2.8x)", worst / best);
}
