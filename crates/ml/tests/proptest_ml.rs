//! Property-based invariants of the ML substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use llmpilot_ml::{mape, r2, weighted_mape, Dataset, DecisionTree, Gbdt, GbdtParams, TreeParams};

/// Strategy: a small random regression problem.
fn problem() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    prop::collection::vec((prop::collection::vec(-100.0f64..100.0, 3), -50.0f64..50.0), 5..60)
        .prop_map(|rows| rows.into_iter().unzip())
}

proptest! {
    /// Tree predictions are convex combinations of targets: always within
    /// the observed target range.
    #[test]
    fn tree_predictions_within_target_range((rows, targets) in problem()) {
        let ds = Dataset::from_rows(&rows, targets.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&ds, &TreeParams::default(), &mut rng).unwrap();
        let lo = targets.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = targets.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for row in &rows {
            let p = tree.predict_row(row);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }

    /// MDI importances are a probability vector (or all-zero for a stump).
    #[test]
    fn tree_importance_is_normalized((rows, targets) in problem()) {
        let ds = Dataset::from_rows(&rows, targets).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let tree = DecisionTree::fit(&ds, &TreeParams::default(), &mut rng).unwrap();
        let total: f64 = tree.feature_importance().iter().sum();
        prop_assert!(tree.feature_importance().iter().all(|&v| v >= 0.0));
        prop_assert!(total.abs() < 1e-9 || (total - 1.0).abs() < 1e-9, "total {total}");
    }

    /// A monotone-constrained GBDT is globally non-decreasing along the
    /// constrained feature, whatever the data.
    #[test]
    fn gbdt_monotone_constraint_always_holds((rows, targets) in problem()) {
        let ds = Dataset::from_rows(&rows, targets).unwrap();
        let params = GbdtParams {
            n_trees: 30,
            monotone_constraints: vec![1, 0, 0],
            ..GbdtParams::default()
        };
        let model = Gbdt::fit(&ds, &params).unwrap();
        // Scan feature 0 with the other features fixed at several anchors.
        for anchor in [-50.0, 0.0, 50.0] {
            let mut last = f64::NEG_INFINITY;
            for step in -20..=20 {
                let x0 = f64::from(step) * 5.0;
                let p = model.predict_row(&[x0, anchor, -anchor]);
                prop_assert!(p >= last - 1e-9, "violation at x0={x0}: {p} < {last}");
                last = p;
            }
        }
    }

    /// Constant targets are learned exactly by both tree models.
    #[test]
    fn constant_targets_learned_exactly(
        rows in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 2), 3..30),
        c in -5.0f64..5.0
    ) {
        let targets = vec![c; rows.len()];
        let ds = Dataset::from_rows(&rows, targets).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let tree = DecisionTree::fit(&ds, &TreeParams::default(), &mut rng).unwrap();
        let gbdt = Gbdt::fit(&ds, &GbdtParams { n_trees: 5, ..GbdtParams::default() }).unwrap();
        for row in &rows {
            prop_assert!((tree.predict_row(row) - c).abs() < 1e-9);
            prop_assert!((gbdt.predict_row(row) - c).abs() < 1e-6);
        }
    }

    /// Metric sanity: perfect predictions score perfectly; weighted MAPE is
    /// bounded by the max per-point relative error.
    #[test]
    fn metric_identities(targets in prop::collection::vec(0.1f64..100.0, 2..40)) {
        prop_assert!(mape(&targets, &targets).abs() < 1e-12);
        let r = r2(&targets, &targets);
        prop_assert!(r.is_nan() || (r - 1.0).abs() < 1e-12);
        let preds: Vec<f64> = targets.iter().map(|t| t * 1.1).collect();
        let weights = vec![1.0; targets.len()];
        let wm = weighted_mape(&targets, &preds, &weights);
        prop_assert!((wm - 0.1).abs() < 1e-9, "wm = {wm}");
    }
}
