//! CART regression trees with exact splits, sample weights and
//! Mean-Decrease-in-Impurity feature importances.
//!
//! These trees back the random-forest regressor used by the paper's
//! importance studies (Sec. III-A, Fig. 4) and the PARIS/RF baselines
//! (Sec. V-C). Splits minimize the weighted sum of squared errors; MDI
//! importance accumulates each split's impurity decrease on its feature,
//! exactly the estimator of Breiman's CART book [3 in the paper].

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;
use crate::error::MlError;

/// Hyperparameters of one regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples in each child.
    pub min_samples_leaf: usize,
    /// Number of candidate features per split (`None` = all; random forests
    /// pass a subset size).
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self { max_depth: 12, min_samples_split: 2, min_samples_leaf: 1, max_features: None }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf { value: f64 },
    Split { feature: u32, threshold: f64, left: u32, right: u32 },
}

/// A fitted CART regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    importance: Vec<f64>,
}

/// Weighted sum-of-squared-errors statistics of a sample set.
#[derive(Debug, Clone, Copy, Default)]
struct SseStats {
    w: f64,
    wy: f64,
    wyy: f64,
}

impl SseStats {
    fn add(&mut self, y: f64, w: f64) {
        self.w += w;
        self.wy += w * y;
        self.wyy += w * y * y;
    }

    fn sub(&mut self, y: f64, w: f64) {
        self.w -= w;
        self.wy -= w * y;
        self.wyy -= w * y * y;
    }

    /// Weighted SSE around the weighted mean.
    fn sse(&self) -> f64 {
        if self.w <= 0.0 {
            0.0
        } else {
            (self.wyy - self.wy * self.wy / self.w).max(0.0)
        }
    }

    fn mean(&self) -> f64 {
        if self.w <= 0.0 {
            0.0
        } else {
            self.wy / self.w
        }
    }
}

impl DecisionTree {
    /// Fit a tree. The RNG drives per-split feature subsampling (pass any
    /// seeded RNG; it is unused when `max_features` is `None`).
    pub fn fit<R: Rng + ?Sized>(
        ds: &Dataset,
        params: &TreeParams,
        rng: &mut R,
    ) -> Result<Self, MlError> {
        if ds.n_rows() == 0 {
            return Err(MlError::Shape("cannot fit a tree to zero rows".into()));
        }
        if params.min_samples_leaf == 0 {
            return Err(MlError::InvalidConfig("min_samples_leaf must be >= 1".into()));
        }
        let mut tree =
            Self { nodes: Vec::new(), n_features: ds.n_cols(), importance: vec![0.0; ds.n_cols()] };
        let indices: Vec<u32> = (0..ds.n_rows() as u32).collect();
        tree.build(ds, params, rng, indices, 0);
        // Normalize MDI to sum to 1 (when any split happened).
        let total: f64 = tree.importance.iter().sum();
        if total > 0.0 {
            for v in &mut tree.importance {
                *v /= total;
            }
        }
        Ok(tree)
    }

    fn build<R: Rng + ?Sized>(
        &mut self,
        ds: &Dataset,
        params: &TreeParams,
        rng: &mut R,
        indices: Vec<u32>,
        depth: usize,
    ) -> u32 {
        let mut stats = SseStats::default();
        for &i in &indices {
            stats.add(ds.targets()[i as usize], ds.weight(i as usize));
        }
        let node_id = self.nodes.len() as u32;

        let can_split = depth < params.max_depth
            && indices.len() >= params.min_samples_split
            && indices.len() >= 2 * params.min_samples_leaf
            && stats.sse() > 1e-12;
        if !can_split {
            self.nodes.push(Node::Leaf { value: stats.mean() });
            return node_id;
        }

        let split = self.best_split(ds, params, rng, &indices, &stats);
        let Some((feature, threshold, gain)) = split else {
            self.nodes.push(Node::Leaf { value: stats.mean() });
            return node_id;
        };

        self.importance[feature] += gain;
        // Reserve the split node; children are built next.
        self.nodes.push(Node::Leaf { value: stats.mean() });

        let (left_idx, right_idx): (Vec<u32>, Vec<u32>) =
            indices.into_iter().partition(|&i| ds.value(i as usize, feature) <= threshold);
        let left = self.build(ds, params, rng, left_idx, depth + 1);
        let right = self.build(ds, params, rng, right_idx, depth + 1);
        self.nodes[node_id as usize] =
            Node::Split { feature: feature as u32, threshold, left, right };
        node_id
    }

    /// Best `(feature, threshold, gain)` over the candidate features, or
    /// `None` when no valid split exists.
    fn best_split<R: Rng + ?Sized>(
        &self,
        ds: &Dataset,
        params: &TreeParams,
        rng: &mut R,
        indices: &[u32],
        parent: &SseStats,
    ) -> Option<(usize, f64, f64)> {
        let mut features: Vec<usize> = (0..ds.n_cols()).collect();
        if let Some(k) = params.max_features {
            features.shuffle(rng);
            features.truncate(k.clamp(1, ds.n_cols()));
        }

        let parent_sse = parent.sse();
        let mut best: Option<(usize, f64, f64)> = None;
        let mut sorted: Vec<(f64, f64, f64)> = Vec::with_capacity(indices.len());

        for &f in &features {
            sorted.clear();
            sorted.extend(indices.iter().map(|&i| {
                let i = i as usize;
                (ds.value(i, f), ds.targets()[i], ds.weight(i))
            }));
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));

            let mut left = SseStats::default();
            let mut right = *parent;
            for (pos, &(x, y, w)) in sorted.iter().enumerate() {
                left.add(y, w);
                right.sub(y, w);
                let n_left = pos + 1;
                let n_right = sorted.len() - n_left;
                if n_left < params.min_samples_leaf || n_right < params.min_samples_leaf {
                    continue;
                }
                // Only split between distinct feature values.
                let next_x = match sorted.get(pos + 1) {
                    Some(&(nx, _, _)) => nx,
                    None => break,
                };
                if next_x <= x {
                    continue;
                }
                let gain = parent_sse - left.sse() - right.sse();
                if gain > best.map_or(1e-12, |(_, _, g)| g) {
                    best = Some((f, 0.5 * (x + next_x), gain));
                }
            }
        }
        best
    }

    /// Predict one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    node = if row[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Predict every row of a dataset.
    pub fn predict(&self, ds: &Dataset) -> Vec<f64> {
        (0..ds.n_rows()).map(|i| self.predict_row(ds.row(i))).collect()
    }

    /// Normalized MDI feature importances (sum to 1 when any split exists).
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Number of nodes (leaves + splits).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left as usize).max(depth_of(nodes, *right as usize))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    /// y = step function of x0.
    fn step_dataset() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i), 0.0]).collect();
        let targets: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        Dataset::from_rows(&rows, targets).unwrap()
    }

    #[test]
    fn learns_a_step_function_exactly() {
        let ds = step_dataset();
        let tree = DecisionTree::fit(&ds, &TreeParams::default(), &mut rng()).unwrap();
        assert_eq!(tree.predict_row(&[10.0, 0.0]), 1.0);
        assert_eq!(tree.predict_row(&[80.0, 0.0]), 5.0);
        // All importance on feature 0.
        assert!((tree.feature_importance()[0] - 1.0).abs() < 1e-12);
        assert_eq!(tree.feature_importance()[1], 0.0);
    }

    #[test]
    fn depth_zero_yields_mean_leaf() {
        let ds = step_dataset();
        let params = TreeParams { max_depth: 0, ..TreeParams::default() };
        let tree = DecisionTree::fit(&ds, &params, &mut rng()).unwrap();
        assert_eq!(tree.num_nodes(), 1);
        assert!((tree.predict_row(&[0.0, 0.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let ds = step_dataset();
        let params = TreeParams { min_samples_leaf: 60, ..TreeParams::default() };
        let tree = DecisionTree::fit(&ds, &params, &mut rng()).unwrap();
        // No valid split leaves a single leaf.
        assert_eq!(tree.num_nodes(), 1);
    }

    #[test]
    fn sample_weights_shift_the_leaf_mean() {
        let rows = vec![vec![0.0], vec![0.0]];
        let ds = Dataset::from_rows(&rows, vec![0.0, 10.0])
            .unwrap()
            .with_weights(vec![9.0, 1.0])
            .unwrap();
        let tree = DecisionTree::fit(&ds, &TreeParams::default(), &mut rng()).unwrap();
        assert!((tree.predict_row(&[0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fits_a_smooth_function_with_low_error() {
        let rows: Vec<Vec<f64>> =
            (0..500).map(|i| vec![f64::from(i) / 50.0, f64::from(i % 7)]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| (r[0] * 2.0).sin() * 3.0 + r[1]).collect();
        let ds = Dataset::from_rows(&rows, targets.clone()).unwrap();
        let tree = DecisionTree::fit(&ds, &TreeParams::default(), &mut rng()).unwrap();
        let pred = tree.predict(&ds);
        let r2 = crate::metrics::r2(&targets, &pred);
        assert!(r2 > 0.95, "r2 = {r2}");
    }

    #[test]
    fn feature_subsampling_uses_subset() {
        let ds = step_dataset();
        let params = TreeParams { max_features: Some(1), ..TreeParams::default() };
        // Must still fit without panicking and produce a valid tree.
        let tree = DecisionTree::fit(&ds, &params, &mut rng()).unwrap();
        assert!(tree.num_nodes() >= 1);
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let ds =
            Dataset::from_rows(&[vec![1.0], vec![2.0], vec![3.0]], vec![4.0, 4.0, 4.0]).unwrap();
        let tree = DecisionTree::fit(&ds, &TreeParams::default(), &mut rng()).unwrap();
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict_row(&[9.0]), 4.0);
    }

    #[test]
    fn invalid_config_rejected() {
        let ds = step_dataset();
        let params = TreeParams { min_samples_leaf: 0, ..TreeParams::default() };
        assert!(matches!(
            DecisionTree::fit(&ds, &params, &mut rng()),
            Err(MlError::InvalidConfig(_))
        ));
    }

    #[test]
    fn depth_is_bounded() {
        let ds = step_dataset();
        let params = TreeParams { max_depth: 3, ..TreeParams::default() };
        let tree = DecisionTree::fit(&ds, &params, &mut rng()).unwrap();
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn duplicate_feature_values_never_split_between_ties() {
        // All x identical → no split possible on x, falls back to leaf.
        let ds =
            Dataset::from_rows(&[vec![5.0], vec![5.0], vec![5.0]], vec![1.0, 2.0, 3.0]).unwrap();
        let tree = DecisionTree::fit(&ds, &TreeParams::default(), &mut rng()).unwrap();
        assert_eq!(tree.num_nodes(), 1);
    }
}
