//! Dense multi-layer perceptron regressor (ReLU hidden layers, Adam, MSE)
//! with input/target standardization and a fine-tuning entry point.
//!
//! This is the substrate behind the paper's neural baselines (Sec. V-C):
//! PerfNet and PerfNetV2 regress latency from features alone; Morphling
//! additionally *fine-tunes* the trained network on the reference
//! measurements of the unseen model — which is what [`Mlp::fine_tune`]
//! provides.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::error::MlError;

/// MLP hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpParams {
    /// Hidden-layer widths, e.g. `[64, 32]`.
    pub hidden_layers: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight decay.
    pub l2: f64,
    /// RNG seed (init + shuffling).
    pub seed: u64,
}

impl Default for MlpParams {
    fn default() -> Self {
        Self {
            hidden_layers: vec![64, 32],
            learning_rate: 1e-3,
            epochs: 200,
            batch_size: 32,
            l2: 1e-5,
            seed: 77,
        }
    }
}

/// One dense layer with Adam state.
#[derive(Debug, Clone)]
struct Layer {
    inputs: usize,
    outputs: usize,
    w: Vec<f64>,
    b: Vec<f64>,
    // Adam moments.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new<R: Rng + ?Sized>(inputs: usize, outputs: usize, rng: &mut R) -> Self {
        // He initialization for ReLU stacks.
        let scale = (2.0 / inputs as f64).sqrt();
        let w = (0..inputs * outputs)
            .map(|_| {
                // Box–Muller.
                let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.random::<f64>();
                (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * scale
            })
            .collect();
        Self {
            inputs,
            outputs,
            w,
            b: vec![0.0; outputs],
            mw: vec![0.0; inputs * outputs],
            vw: vec![0.0; inputs * outputs],
            mb: vec![0.0; outputs],
            vb: vec![0.0; outputs],
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.outputs {
            let mut acc = self.b[o];
            let row = &self.w[o * self.inputs..(o + 1) * self.inputs];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            out.push(acc);
        }
    }
}

/// Per-column standardizer.
#[derive(Debug, Clone, PartialEq)]
struct Scaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Scaler {
    fn fit(columns: usize, rows: impl Iterator<Item = Vec<f64>> + Clone) -> Self {
        let mut mean = vec![0.0; columns];
        let mut count = 0usize;
        for row in rows.clone() {
            for (m, v) in mean.iter_mut().zip(&row) {
                *m += v;
            }
            count += 1;
        }
        for m in &mut mean {
            *m /= count.max(1) as f64;
        }
        let mut var = vec![0.0; columns];
        for row in rows {
            for ((s, v), m) in var.iter_mut().zip(&row).zip(&mean) {
                *s += (v - m).powi(2);
            }
        }
        let std = var.iter().map(|&s| (s / count.max(1) as f64).sqrt().max(1e-9)).collect();
        Self { mean, std }
    }

    fn transform(&self, row: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for ((v, m), s) in row.iter().zip(&self.mean).zip(&self.std) {
            out.push((v - m) / s);
        }
    }
}

/// A fitted MLP regressor.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
    x_scaler: Scaler,
    y_mean: f64,
    y_std: f64,
    adam_t: u64,
    params: MlpParams,
}

impl Mlp {
    /// Initialize and train on a dataset.
    pub fn fit(ds: &Dataset, params: &MlpParams) -> Result<Self, MlError> {
        if ds.n_rows() == 0 {
            return Err(MlError::Shape("cannot fit MLP to zero rows".into()));
        }
        if params.batch_size == 0 || params.learning_rate <= 0.0 {
            return Err(MlError::InvalidConfig(
                "batch_size and learning_rate must be positive".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(params.seed);

        let x_scaler = Scaler::fit(ds.n_cols(), (0..ds.n_rows()).map(|i| ds.row(i).to_vec()));
        let y_mean = ds.targets().iter().sum::<f64>() / ds.n_rows() as f64;
        let y_std = (ds.targets().iter().map(|y| (y - y_mean).powi(2)).sum::<f64>()
            / ds.n_rows() as f64)
            .sqrt()
            .max(1e-9);

        let mut sizes = vec![ds.n_cols()];
        sizes.extend(&params.hidden_layers);
        sizes.push(1);
        let layers = sizes.windows(2).map(|w| Layer::new(w[0], w[1], &mut rng)).collect();

        let mut model = Self { layers, x_scaler, y_mean, y_std, adam_t: 0, params: params.clone() };
        model.train(ds, params.epochs, params.learning_rate, &mut rng);
        Ok(model)
    }

    /// Continue training on (new) data — Morphling's reference fine-tuning.
    pub fn fine_tune(&mut self, ds: &Dataset, epochs: usize, learning_rate: f64) {
        let mut rng = StdRng::seed_from_u64(self.params.seed.wrapping_add(0x5EED));
        self.train(ds, epochs, learning_rate, &mut rng);
    }

    fn train<R: Rng + ?Sized>(&mut self, ds: &Dataset, epochs: usize, lr: f64, rng: &mut R) {
        let n = ds.n_rows();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..epochs {
            // Fisher–Yates shuffle.
            for i in (1..n).rev() {
                order.swap(i, rng.random_range(0..=i));
            }
            for chunk in order.chunks(self.params.batch_size) {
                self.adam_t += 1;
                self.step(ds, chunk, lr);
            }
        }
    }

    /// One Adam step on a mini-batch (MSE on standardized targets, weighted).
    fn step(&mut self, ds: &Dataset, batch: &[usize], lr: f64) {
        let l = self.layers.len();
        // Accumulated gradients.
        let mut gw: Vec<Vec<f64>> = self.layers.iter().map(|la| vec![0.0; la.w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = self.layers.iter().map(|la| vec![0.0; la.b.len()]).collect();

        let mut x = Vec::new();
        let mut weight_total = 0.0;
        for &i in batch {
            self.x_scaler.transform(ds.row(i), &mut x);
            let w = ds.weight(i);
            weight_total += w;

            // Forward pass, keeping post-activation values per layer.
            let mut activations: Vec<Vec<f64>> = Vec::with_capacity(l + 1);
            activations.push(x.clone());
            let mut buf = Vec::new();
            for (li, layer) in self.layers.iter().enumerate() {
                layer.forward(activations.last().expect("nonempty"), &mut buf);
                if li + 1 < l {
                    for v in buf.iter_mut() {
                        *v = v.max(0.0); // ReLU
                    }
                }
                activations.push(buf.clone());
            }

            let y_std = (ds.targets()[i] - self.y_mean) / self.y_std;
            let pred = activations[l][0];
            // dL/dpred for 0.5·w·(pred − y)².
            let mut delta = vec![w * (pred - y_std)];

            for li in (0..l).rev() {
                let input = &activations[li];
                let layer = &self.layers[li];
                // Gradients of this layer.
                for o in 0..layer.outputs {
                    gb[li][o] += delta[o];
                    let row = &mut gw[li][o * layer.inputs..(o + 1) * layer.inputs];
                    for (g, inp) in row.iter_mut().zip(input) {
                        *g += delta[o] * inp;
                    }
                }
                if li == 0 {
                    break;
                }
                // Propagate delta through weights and the previous ReLU.
                let mut prev = vec![0.0; layer.inputs];
                for (o, d) in delta.iter().enumerate().take(layer.outputs) {
                    let row = &layer.w[o * layer.inputs..(o + 1) * layer.inputs];
                    for (p, wv) in prev.iter_mut().zip(row) {
                        *p += d * wv;
                    }
                }
                for (p, a) in prev.iter_mut().zip(&activations[li]) {
                    if *a <= 0.0 {
                        *p = 0.0;
                    }
                }
                delta = prev;
            }
        }

        if weight_total <= 0.0 {
            return;
        }
        let scale = 1.0 / weight_total;
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let t = self.adam_t as i32;
        let corr1 = 1.0 - b1.powi(t);
        let corr2 = 1.0 - b2.powi(t);
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (k, g) in gw[li].iter().enumerate() {
                let g = g * scale + self.params.l2 * layer.w[k];
                layer.mw[k] = b1 * layer.mw[k] + (1.0 - b1) * g;
                layer.vw[k] = b2 * layer.vw[k] + (1.0 - b2) * g * g;
                layer.w[k] -= lr * (layer.mw[k] / corr1) / ((layer.vw[k] / corr2).sqrt() + eps);
            }
            for (k, g) in gb[li].iter().enumerate() {
                let g = g * scale;
                layer.mb[k] = b1 * layer.mb[k] + (1.0 - b1) * g;
                layer.vb[k] = b2 * layer.vb[k] + (1.0 - b2) * g * g;
                layer.b[k] -= lr * (layer.mb[k] / corr1) / ((layer.vb[k] / corr2).sqrt() + eps);
            }
        }
    }

    /// Predict one feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut x = Vec::new();
        self.x_scaler.transform(row, &mut x);
        let mut buf = Vec::new();
        let l = self.layers.len();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(&x, &mut buf);
            if li + 1 < l {
                for v in buf.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            std::mem::swap(&mut x, &mut buf);
        }
        x[0] * self.y_std + self.y_mean
    }

    /// Predict every row of a dataset.
    pub fn predict(&self, ds: &Dataset) -> Vec<f64> {
        (0..ds.n_rows()).map(|i| self.predict_row(ds.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn make_data(n: usize, seed: u64) -> (Dataset, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random::<f64>() * 2.0 - 1.0, rng.random::<f64>() * 2.0 - 1.0])
            .collect();
        let targets: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 0.5).collect();
        (Dataset::from_rows(&rows, targets.clone()).unwrap(), targets)
    }

    #[test]
    fn learns_linear_function() {
        let (ds, targets) = make_data(500, 1);
        let model = Mlp::fit(
            &ds,
            &MlpParams { epochs: 150, hidden_layers: vec![32], ..MlpParams::default() },
        )
        .unwrap();
        let r = r2(&targets, &model.predict(&ds));
        assert!(r > 0.98, "r2 = {r}");
    }

    #[test]
    fn learns_nonlinear_function() {
        let mut rng = StdRng::seed_from_u64(2);
        let rows: Vec<Vec<f64>> =
            (0..1500).map(|_| vec![rng.random::<f64>() * 4.0 - 2.0]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| r[0].abs() + (r[0] * 2.0).sin()).collect();
        let ds = Dataset::from_rows(&rows, targets.clone()).unwrap();
        let model = Mlp::fit(&ds, &MlpParams { epochs: 300, ..MlpParams::default() }).unwrap();
        let r = r2(&targets, &model.predict(&ds));
        assert!(r > 0.9, "r2 = {r}");
    }

    #[test]
    fn fine_tuning_adapts_to_shifted_data() {
        let (ds, _) = make_data(400, 3);
        let mut model = Mlp::fit(&ds, &MlpParams { epochs: 100, ..MlpParams::default() }).unwrap();
        // New regime: constant offset of +10.
        let shifted_targets: Vec<f64> = ds.targets().iter().map(|y| y + 10.0).collect();
        let shifted = Dataset::from_rows(
            &(0..ds.n_rows()).map(|i| ds.row(i).to_vec()).collect::<Vec<_>>(),
            shifted_targets.clone(),
        )
        .unwrap();
        let before = r2(&shifted_targets, &model.predict(&shifted));
        model.fine_tune(&shifted, 100, 1e-3);
        let after = r2(&shifted_targets, &model.predict(&shifted));
        assert!(after > before, "fine-tune did not help: {before} -> {after}");
        assert!(after > 0.9, "after = {after}");
    }

    #[test]
    fn sample_weights_bias_the_fit() {
        // Conflicting labels at the same x; heavy weight wins.
        let rows: Vec<Vec<f64>> = (0..100).map(|_| vec![0.5]).collect();
        let targets: Vec<f64> = (0..100).map(|i| if i < 50 { 0.0 } else { 8.0 }).collect();
        let weights: Vec<f64> = (0..100).map(|i| if i < 50 { 20.0 } else { 0.05 }).collect();
        let ds = Dataset::from_rows(&rows, targets).unwrap().with_weights(weights).unwrap();
        let model = Mlp::fit(&ds, &MlpParams { epochs: 200, ..MlpParams::default() }).unwrap();
        let p = model.predict_row(&[0.5]);
        assert!(p < 2.0, "weighted prediction {p} should approach 0");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (ds, _) = make_data(100, 4);
        let p = MlpParams { epochs: 20, ..MlpParams::default() };
        let a = Mlp::fit(&ds, &p).unwrap();
        let b = Mlp::fit(&ds, &p).unwrap();
        assert_eq!(a.predict_row(ds.row(0)), b.predict_row(ds.row(0)));
    }

    #[test]
    fn invalid_configs_rejected() {
        let (ds, _) = make_data(10, 5);
        assert!(Mlp::fit(&ds, &MlpParams { batch_size: 0, ..MlpParams::default() }).is_err());
        assert!(Mlp::fit(&ds, &MlpParams { learning_rate: 0.0, ..MlpParams::default() }).is_err());
    }
}
