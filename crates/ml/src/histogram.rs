//! Quantile feature binning for the histogram tree method (the `hist` tree
//! builder the paper tunes the bin count of, Sec. IV-B-3).

use crate::dataset::Dataset;

/// Per-feature quantile binning: values are mapped to small integer bins,
/// so split finding scans `O(bins)` histogram buckets instead of sorting
/// samples.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureBins {
    /// Ascending cut points per feature. Bin `b` of feature `f` holds values
    /// `v` with `cuts[f][b-1] < v <= cuts[f][b]`; values above the last cut
    /// land in the final bin.
    cuts: Vec<Vec<f64>>,
}

impl FeatureBins {
    /// Fit quantile cuts to every feature of a dataset.
    pub fn fit(ds: &Dataset, max_bins: usize) -> Self {
        assert!(max_bins >= 2, "histogram needs at least two bins");
        let n = ds.n_rows();
        let cuts = (0..ds.n_cols())
            .map(|f| {
                let mut col: Vec<f64> = (0..n).map(|i| ds.value(i, f)).collect();
                col.sort_by(|a, b| a.total_cmp(b));
                col.dedup();
                if col.len() <= max_bins {
                    // Low cardinality: cut between consecutive unique values.
                    col.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect()
                } else {
                    let mut cuts = Vec::with_capacity(max_bins - 1);
                    for k in 1..max_bins {
                        let idx = (k * col.len()) / max_bins;
                        let c = col[idx.min(col.len() - 1)];
                        if cuts.last().is_none_or(|&last| c > last) {
                            cuts.push(c);
                        }
                    }
                    cuts
                }
            })
            .collect();
        Self { cuts }
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.cuts.len()
    }

    /// Number of bins of a feature.
    pub fn num_bins(&self, feature: usize) -> usize {
        self.cuts[feature].len() + 1
    }

    /// Bin index of a raw value.
    #[inline]
    pub fn bin(&self, feature: usize, value: f64) -> u16 {
        self.cuts[feature].partition_point(|&c| c < value) as u16
    }

    /// The split threshold realized by "left = bins `0..=bin`": the cut
    /// point above `bin` (so `value <= threshold` ⇔ `bin(value) <= bin`).
    pub fn threshold_after(&self, feature: usize, bin: u16) -> f64 {
        self.cuts[feature][usize::from(bin)]
    }

    /// Bin every row of a dataset, row-major.
    pub fn bin_matrix(&self, ds: &Dataset) -> Vec<u16> {
        let mut out = Vec::with_capacity(ds.n_rows() * ds.n_cols());
        for i in 0..ds.n_rows() {
            for f in 0..ds.n_cols() {
                out.push(self.bin(f, ds.value(i, f)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..1000).map(|i| vec![f64::from(i), f64::from(i % 3)]).collect();
        let targets = vec![0.0; 1000];
        Dataset::from_rows(&rows, targets).unwrap()
    }

    #[test]
    fn bin_counts_respect_max() {
        let bins = FeatureBins::fit(&ds(), 16);
        assert_eq!(bins.num_bins(0), 16);
        assert_eq!(bins.num_bins(1), 3); // cardinality 3
    }

    #[test]
    fn binning_is_monotone() {
        let bins = FeatureBins::fit(&ds(), 16);
        let mut last = 0;
        for v in 0..1000 {
            let b = bins.bin(0, f64::from(v));
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn threshold_separates_bins() {
        let bins = FeatureBins::fit(&ds(), 16);
        for b in 0..(bins.num_bins(0) - 1) as u16 {
            let t = bins.threshold_after(0, b);
            // Everything at or below t must bin <= b; above t must bin > b.
            assert!(bins.bin(0, t) <= b, "bin({t}) > {b}");
            assert!(bins.bin(0, t + 1e-9) > b);
        }
    }

    #[test]
    fn bin_matrix_shape() {
        let d = ds();
        let bins = FeatureBins::fit(&d, 8);
        let m = bins.bin_matrix(&d);
        assert_eq!(m.len(), d.n_rows() * d.n_cols());
    }

    #[test]
    fn out_of_range_values_clamp_to_edge_bins() {
        let bins = FeatureBins::fit(&ds(), 16);
        assert_eq!(bins.bin(0, -1e9), 0);
        assert_eq!(usize::from(bins.bin(0, 1e9)), bins.num_bins(0) - 1);
    }
}
