//! Cross-validation utilities: leave-one-group-out splits and grid search.
//!
//! LLM-Pilot tunes hyperparameters "via a leave-one-LLM-out cross-validation
//! procedure" (Sec. IV-B-3): all performance data of one LLM forms the
//! validation fold while the remaining LLMs train the regressor, and the
//! configuration with the lowest mean validation error across all splits
//! wins. The evaluation of the recommendation tool additionally nests this
//! inside an outer leave-one-LLM-out loop (Sec. V-C).

use rayon::prelude::*;

/// One cross-validation fold: training and validation row indices.
#[derive(Debug, Clone, PartialEq)]
pub struct Fold {
    /// The group identifier held out in this fold.
    pub group: usize,
    /// Row indices used for training.
    pub train: Vec<usize>,
    /// Row indices used for validation.
    pub validation: Vec<usize>,
}

/// Build leave-one-group-out folds from per-row group labels (one fold per
/// distinct group, ordered by group id).
pub fn leave_one_group_out(groups: &[usize]) -> Vec<Fold> {
    let mut distinct: Vec<usize> = groups.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    distinct
        .into_iter()
        .map(|g| {
            let (validation, train): (Vec<usize>, Vec<usize>) =
                (0..groups.len()).partition(|&i| groups[i] == g);
            Fold { group: g, train, validation }
        })
        .collect()
}

/// Result of a grid search.
#[derive(Debug, Clone)]
pub struct GridSearchResult<P> {
    /// The winning configuration.
    pub best: P,
    /// Its mean validation error.
    pub best_error: f64,
    /// Mean validation error of every candidate, in input order.
    pub all_errors: Vec<f64>,
}

/// Exhaustive grid search: evaluate every candidate on every fold with
/// `eval(candidate, fold) -> validation error` and return the candidate with
/// the lowest mean error (`NaN` fold errors are skipped; a candidate with no
/// valid folds gets `+∞`). Candidates are evaluated in parallel.
pub fn grid_search<P, F>(candidates: Vec<P>, folds: &[Fold], eval: F) -> GridSearchResult<P>
where
    P: Clone + Send + Sync,
    F: Fn(&P, &Fold) -> f64 + Sync,
{
    assert!(!candidates.is_empty(), "grid search needs at least one candidate");
    assert!(!folds.is_empty(), "grid search needs at least one fold");

    let all_errors: Vec<f64> = candidates
        .par_iter()
        .map(|p| {
            let mut total = 0.0;
            let mut count = 0usize;
            for fold in folds {
                let e = eval(p, fold);
                if e.is_finite() {
                    total += e;
                    count += 1;
                }
            }
            if count == 0 {
                f64::INFINITY
            } else {
                total / count as f64
            }
        })
        .collect();

    let (best_idx, &best_error) = all_errors
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("candidates nonempty");
    GridSearchResult { best: candidates[best_idx].clone(), best_error, all_errors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logo_builds_one_fold_per_group() {
        let groups = vec![0, 1, 1, 2, 0, 2, 2];
        let folds = leave_one_group_out(&groups);
        assert_eq!(folds.len(), 3);
        for fold in &folds {
            // Validation rows all belong to the held-out group.
            assert!(fold.validation.iter().all(|&i| groups[i] == fold.group));
            // Train rows exclude it entirely.
            assert!(fold.train.iter().all(|&i| groups[i] != fold.group));
            // Together they cover everything exactly once.
            assert_eq!(fold.train.len() + fold.validation.len(), groups.len());
        }
    }

    #[test]
    fn single_group_yields_empty_train() {
        let folds = leave_one_group_out(&[5, 5, 5]);
        assert_eq!(folds.len(), 1);
        assert!(folds[0].train.is_empty());
        assert_eq!(folds[0].validation.len(), 3);
    }

    #[test]
    fn grid_search_finds_minimum() {
        let folds = leave_one_group_out(&[0, 1, 2]);
        let candidates = vec![1.0f64, 2.0, 3.0, 4.0];
        // Error = |candidate − 3|, independent of fold.
        let result = grid_search(candidates, &folds, |&c, _| (c - 3.0).abs());
        assert_eq!(result.best, 3.0);
        assert_eq!(result.best_error, 0.0);
        assert_eq!(result.all_errors, vec![2.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn grid_search_skips_nan_folds() {
        let folds = leave_one_group_out(&[0, 1]);
        let result =
            grid_search(
                vec![1.0f64, 2.0],
                &folds,
                |&c, fold| {
                    if fold.group == 0 {
                        f64::NAN
                    } else {
                        c
                    }
                },
            );
        assert_eq!(result.best, 1.0);
        assert_eq!(result.best_error, 1.0);
    }

    #[test]
    fn all_nan_candidate_gets_infinity() {
        let folds = leave_one_group_out(&[0]);
        let result = grid_search(vec![1.0f64], &folds, |_, _| f64::NAN);
        assert!(result.best_error.is_infinite());
    }

    #[test]
    fn fold_errors_are_averaged() {
        let folds = leave_one_group_out(&[0, 1]);
        // Error = group id → mean = 0.5.
        let result = grid_search(vec![()], &folds, |_, fold| fold.group as f64);
        assert_eq!(result.best_error, 0.5);
    }
}
