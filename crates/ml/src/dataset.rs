//! Dense feature matrices with targets and optional per-sample weights.

use crate::error::MlError;

/// A regression dataset: row-major feature matrix, target vector and
/// optional per-sample weights (used by LLM-Pilot's constraint-proximity
/// weighting, Eq. (4) of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Vec<f64>,
    n_rows: usize,
    n_cols: usize,
    targets: Vec<f64>,
    weights: Option<Vec<f64>>,
    feature_names: Vec<String>,
}

impl Dataset {
    /// Build a dataset from a row-major feature buffer.
    pub fn new(features: Vec<f64>, n_cols: usize, targets: Vec<f64>) -> Result<Self, MlError> {
        if n_cols == 0 {
            return Err(MlError::Shape("dataset needs at least one feature".into()));
        }
        if !features.len().is_multiple_of(n_cols) {
            return Err(MlError::Shape(format!(
                "feature buffer of {} values is not a multiple of {} columns",
                features.len(),
                n_cols
            )));
        }
        let n_rows = features.len() / n_cols;
        if targets.len() != n_rows {
            return Err(MlError::Shape(format!("{} targets for {} rows", targets.len(), n_rows)));
        }
        if features.iter().any(|v| !v.is_finite()) || targets.iter().any(|v| !v.is_finite()) {
            return Err(MlError::Shape("features and targets must be finite".into()));
        }
        let feature_names = (0..n_cols).map(|i| format!("f{i}")).collect();
        Ok(Self { features, n_rows, n_cols, targets, weights: None, feature_names })
    }

    /// Build from per-row feature vectors.
    pub fn from_rows(rows: &[Vec<f64>], targets: Vec<f64>) -> Result<Self, MlError> {
        if rows.is_empty() {
            return Err(MlError::Shape("dataset needs at least one row".into()));
        }
        let n_cols = rows[0].len();
        if rows.iter().any(|r| r.len() != n_cols) {
            return Err(MlError::Shape("ragged rows".into()));
        }
        let features = rows.iter().flatten().copied().collect();
        Self::new(features, n_cols, targets)
    }

    /// Attach per-sample weights (must be non-negative, same length as rows).
    pub fn with_weights(mut self, weights: Vec<f64>) -> Result<Self, MlError> {
        if weights.len() != self.n_rows {
            return Err(MlError::Shape(format!(
                "{} weights for {} rows",
                weights.len(),
                self.n_rows
            )));
        }
        if weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
            return Err(MlError::Shape("weights must be finite and non-negative".into()));
        }
        self.weights = Some(weights);
        Ok(self)
    }

    /// Attach human-readable feature names.
    pub fn with_feature_names(mut self, names: Vec<String>) -> Result<Self, MlError> {
        if names.len() != self.n_cols {
            return Err(MlError::Shape(format!(
                "{} names for {} columns",
                names.len(),
                self.n_cols
            )));
        }
        self.feature_names = names;
        Ok(self)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// A row's feature slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Feature value at `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.features[row * self.n_cols + col]
    }

    /// Target vector.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Per-sample weight (1.0 when unweighted).
    pub fn weight(&self, i: usize) -> f64 {
        self.weights.as_ref().map_or(1.0, |w| w[i])
    }

    /// Whether explicit weights are attached.
    pub fn has_weights(&self) -> bool {
        self.weights.is_some()
    }

    /// Per-sample weights as a dense vector.
    pub fn weights_vec(&self) -> Vec<f64> {
        (0..self.n_rows).map(|i| self.weight(i)).collect()
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Subset of rows by index (indices may repeat — used for bootstrap).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut features = Vec::with_capacity(indices.len() * self.n_cols);
        let mut targets = Vec::with_capacity(indices.len());
        for &i in indices {
            features.extend_from_slice(self.row(i));
            targets.push(self.targets[i]);
        }
        let weights =
            self.weights.as_ref().map(|w| indices.iter().map(|&i| w[i]).collect::<Vec<f64>>());
        Dataset {
            features,
            n_rows: indices.len(),
            n_cols: self.n_cols,
            targets,
            weights,
            feature_names: self.feature_names.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::from_rows(
            &[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            vec![10.0, 20.0, 30.0],
        )
        .unwrap()
    }

    #[test]
    fn shape_accessors() {
        let d = ds();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.n_cols(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert_eq!(d.value(2, 1), 6.0);
        assert_eq!(d.targets(), &[10.0, 20.0, 30.0]);
    }

    #[test]
    fn default_weights_are_one() {
        let d = ds();
        assert!(!d.has_weights());
        assert_eq!(d.weight(0), 1.0);
        assert_eq!(d.weights_vec(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn explicit_weights() {
        let d = ds().with_weights(vec![0.5, 1.0, 2.0]).unwrap();
        assert!(d.has_weights());
        assert_eq!(d.weight(2), 2.0);
    }

    #[test]
    fn shape_errors() {
        assert!(Dataset::new(vec![1.0, 2.0, 3.0], 2, vec![1.0]).is_err());
        assert!(Dataset::new(vec![1.0, 2.0], 2, vec![1.0, 2.0]).is_err());
        assert!(Dataset::new(vec![f64::NAN, 2.0], 2, vec![1.0]).is_err());
        assert!(ds().with_weights(vec![1.0]).is_err());
        assert!(ds().with_weights(vec![-1.0, 1.0, 1.0]).is_err());
        assert!(Dataset::from_rows(&[vec![1.0], vec![1.0, 2.0]], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn subset_with_repeats() {
        let d = ds().with_weights(vec![0.1, 0.2, 0.3]).unwrap();
        let s = d.subset(&[2, 0, 2]);
        assert_eq!(s.n_rows(), 3);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.targets(), &[30.0, 10.0, 30.0]);
        assert_eq!(s.weight(2), 0.3);
    }

    #[test]
    fn feature_names_roundtrip() {
        let d = ds().with_feature_names(vec!["a".into(), "b".into()]).unwrap();
        assert_eq!(d.feature_names(), &["a".to_string(), "b".to_string()]);
        assert!(ds().with_feature_names(vec!["a".into()]).is_err());
    }
}
