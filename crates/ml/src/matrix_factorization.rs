//! Biased matrix factorization trained by SGD — the collaborative-filtering
//! engine behind the Selecta baseline (Sec. V-C).
//!
//! Selecta builds a sparse matrix of known performance values over
//! (application, configuration) pairs and predicts missing entries via
//! collaborative filtering; the paper implements it with the Surprise
//! library's `SVD` algorithm, which this module reimplements: rating
//! `r̂(u,i) = μ + b_u + b_i + p_u·q_i`, all parameters learned by SGD with
//! L2 regularization.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::MlError;

/// Hyperparameters of the factorization (Surprise SVD defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct MfParams {
    /// Latent dimensionality.
    pub n_factors: usize,
    /// SGD epochs.
    pub n_epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization.
    pub reg: f64,
    /// Init/shuffle seed.
    pub seed: u64,
}

impl Default for MfParams {
    fn default() -> Self {
        Self { n_factors: 20, n_epochs: 60, learning_rate: 0.01, reg: 0.02, seed: 3 }
    }
}

/// A fitted factorization over an `n_rows × n_cols` sparse matrix.
#[derive(Debug, Clone)]
pub struct MatrixFactorization {
    global_mean: f64,
    row_bias: Vec<f64>,
    col_bias: Vec<f64>,
    row_factors: Vec<f64>,
    col_factors: Vec<f64>,
    n_factors: usize,
    value_range: (f64, f64),
}

impl MatrixFactorization {
    /// Fit to observed `(row, col, value)` entries of an `n_rows × n_cols`
    /// matrix.
    pub fn fit(
        n_rows: usize,
        n_cols: usize,
        entries: &[(usize, usize, f64)],
        params: &MfParams,
    ) -> Result<Self, MlError> {
        if entries.is_empty() {
            return Err(MlError::Shape("matrix factorization needs observed entries".into()));
        }
        if params.n_factors == 0 {
            return Err(MlError::InvalidConfig("n_factors must be >= 1".into()));
        }
        for &(r, c, v) in entries {
            if r >= n_rows || c >= n_cols {
                return Err(MlError::Shape(format!(
                    "entry ({r}, {c}) outside {n_rows}x{n_cols} matrix"
                )));
            }
            if !v.is_finite() {
                return Err(MlError::Shape("entries must be finite".into()));
            }
        }

        let mut rng = StdRng::seed_from_u64(params.seed);
        let k = params.n_factors;
        let init = |rng: &mut StdRng| (rng.random::<f64>() - 0.5) * 0.1;
        let mut model = Self {
            global_mean: entries.iter().map(|&(_, _, v)| v).sum::<f64>() / entries.len() as f64,
            row_bias: vec![0.0; n_rows],
            col_bias: vec![0.0; n_cols],
            row_factors: (0..n_rows * k).map(|_| init(&mut rng)).collect(),
            col_factors: (0..n_cols * k).map(|_| init(&mut rng)).collect(),
            n_factors: k,
            value_range: entries
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |acc, &(_, _, v)| {
                    (acc.0.min(v), acc.1.max(v))
                }),
        };

        let mut order: Vec<usize> = (0..entries.len()).collect();
        let lr = params.learning_rate;
        let reg = params.reg;
        for _ in 0..params.n_epochs {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.random_range(0..=i));
            }
            for &e in &order {
                let (r, c, v) = entries[e];
                let pred = model.predict_raw(r, c);
                let err = v - pred;
                model.row_bias[r] += lr * (err - reg * model.row_bias[r]);
                model.col_bias[c] += lr * (err - reg * model.col_bias[c]);
                for f in 0..k {
                    let pu = model.row_factors[r * k + f];
                    let qi = model.col_factors[c * k + f];
                    model.row_factors[r * k + f] += lr * (err * qi - reg * pu);
                    model.col_factors[c * k + f] += lr * (err * pu - reg * qi);
                }
            }
        }
        Ok(model)
    }

    fn predict_raw(&self, row: usize, col: usize) -> f64 {
        let k = self.n_factors;
        let dot: f64 =
            (0..k).map(|f| self.row_factors[row * k + f] * self.col_factors[col * k + f]).sum();
        self.global_mean + self.row_bias[row] + self.col_bias[col] + dot
    }

    /// Predict the value of a (possibly unobserved) entry, clamped to the
    /// observed value range (as Surprise clamps to the rating scale).
    pub fn predict(&self, row: usize, col: usize) -> f64 {
        self.predict_raw(row, col).clamp(self.value_range.0, self.value_range.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rank-1 synthetic matrix: v = a_r * b_c.
    fn rank1_entries(n: usize, m: usize) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for r in 0..n {
            for c in 0..m {
                out.push((r, c, (1.0 + r as f64) * (1.0 + c as f64)));
            }
        }
        out
    }

    #[test]
    fn reconstructs_observed_entries() {
        let entries = rank1_entries(8, 6);
        let m = MatrixFactorization::fit(8, 6, &entries, &MfParams::default()).unwrap();
        for &(r, c, v) in &entries {
            let p = m.predict(r, c);
            assert!((p - v).abs() / v < 0.25, "({r},{c}): {p} vs {v}");
        }
    }

    #[test]
    fn predicts_held_out_entries() {
        // Hold out one entry of a structured matrix.
        let mut entries = rank1_entries(10, 8);
        let held = entries.swap_remove(37);
        let m = MatrixFactorization::fit(10, 8, &entries, &MfParams::default()).unwrap();
        let p = m.predict(held.0, held.1);
        assert!(
            (p - held.2).abs() / held.2 < 0.4,
            "held-out ({},{}): {p} vs {}",
            held.0,
            held.1,
            held.2
        );
    }

    #[test]
    fn predictions_clamped_to_observed_range() {
        let entries = rank1_entries(5, 5);
        let (lo, hi) = entries
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |a, &(_, _, v)| (a.0.min(v), a.1.max(v)));
        let m = MatrixFactorization::fit(5, 5, &entries, &MfParams::default()).unwrap();
        for r in 0..5 {
            for c in 0..5 {
                let p = m.predict(r, c);
                assert!(p >= lo && p <= hi);
            }
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(MatrixFactorization::fit(2, 2, &[], &MfParams::default()).is_err());
        assert!(MatrixFactorization::fit(2, 2, &[(5, 0, 1.0)], &MfParams::default()).is_err());
        assert!(MatrixFactorization::fit(2, 2, &[(0, 0, f64::NAN)], &MfParams::default()).is_err());
        assert!(MatrixFactorization::fit(
            2,
            2,
            &[(0, 0, 1.0)],
            &MfParams { n_factors: 0, ..MfParams::default() }
        )
        .is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let entries = rank1_entries(6, 6);
        let a = MatrixFactorization::fit(6, 6, &entries, &MfParams::default()).unwrap();
        let b = MatrixFactorization::fit(6, 6, &entries, &MfParams::default()).unwrap();
        assert_eq!(a.predict(3, 3), b.predict(3, 3));
    }
}
