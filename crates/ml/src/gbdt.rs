//! Gradient-boosted regression trees with the histogram tree method,
//! per-sample weights and per-feature monotonicity constraints — the
//! from-scratch stand-in for the XGBoost regressor inside LLM-Pilot's GPU
//! recommendation tool (Sec. IV-B-2).
//!
//! Squared-error boosting: each round fits a histogram tree to the current
//! residuals with gradient statistics `g = w·(pred − y)`, `h = w`, leaf
//! values `−G/(H+λ)`, shrunk by the learning rate. Monotone constraints use
//! XGBoost's mechanism: a split on a constrained feature is *rejected* when
//! the children's values would violate the required order, and children
//! inherit value bounds (`[lower, mid]` / `[mid, upper]`) so deeper splits
//! cannot re-introduce a violation.

use llmpilot_obs::Recorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::histogram::FeatureBins;

/// Hyperparameters of the GBDT (the set the paper tunes in Sec. IV-B-3:
/// number of boosted trees, maximum depth, learning rate, subsampling
/// rates, tree method and histogram bin count).
#[derive(Debug, Clone, PartialEq)]
pub struct GbdtParams {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Maximum depth of each tree.
    pub max_depth: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Row subsampling rate per tree, in `(0, 1]`.
    pub subsample: f64,
    /// Column subsampling rate per tree, in `(0, 1]`.
    pub colsample: f64,
    /// Minimum hessian (total sample weight) per child.
    pub min_child_weight: f64,
    /// L2 regularization on leaf values.
    pub lambda: f64,
    /// Histogram bin budget per feature.
    pub max_bins: usize,
    /// Per-feature monotone constraints: `+1` increasing, `-1` decreasing,
    /// `0` unconstrained. Empty = no constraints.
    pub monotone_constraints: Vec<i8>,
    /// Early stopping: fraction of rows held out as a validation set
    /// (0 disables). Boosting stops once the validation RMSE has not
    /// improved for [`Self::early_stopping_rounds`] rounds.
    pub validation_fraction: f64,
    /// Patience of early stopping (ignored when `validation_fraction` is 0).
    pub early_stopping_rounds: usize,
    /// RNG seed for subsampling.
    pub seed: u64,
}

impl Default for GbdtParams {
    fn default() -> Self {
        Self {
            n_trees: 200,
            max_depth: 6,
            learning_rate: 0.1,
            subsample: 1.0,
            colsample: 1.0,
            min_child_weight: 1.0,
            lambda: 1.0,
            max_bins: 64,
            monotone_constraints: Vec::new(),
            validation_fraction: 0.0,
            early_stopping_rounds: 10,
            seed: 4,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { value: f64 },
    Split { feature: u32, threshold: f64, left: u32, right: u32 },
}

#[derive(Debug, Clone)]
struct HistTree {
    nodes: Vec<Node>,
}

impl HistTree {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    node = if row[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }
}

/// Gradient/hessian sums.
#[derive(Debug, Clone, Copy, Default)]
struct GradPair {
    g: f64,
    h: f64,
}

impl GradPair {
    fn add(&mut self, g: f64, h: f64) {
        self.g += g;
        self.h += h;
    }

    fn value(&self, lambda: f64) -> f64 {
        -self.g / (self.h + lambda)
    }

    fn score(&self, lambda: f64) -> f64 {
        self.g * self.g / (self.h + lambda)
    }
}

/// A fitted gradient-boosted tree ensemble.
#[derive(Debug, Clone)]
pub struct Gbdt {
    base_score: f64,
    trees: Vec<HistTree>,
    learning_rate: f64,
    importance: Vec<f64>,
}

struct TreeBuilder<'a> {
    bins: &'a FeatureBins,
    binned: &'a [u16],
    n_cols: usize,
    grad: &'a [f64],
    hess: &'a [f64],
    params: &'a GbdtParams,
    features: Vec<usize>,
    nodes: Vec<Node>,
    /// Per-feature accumulated split gain (XGBoost's `gain` importance).
    gain: &'a mut [f64],
    recorder: &'a Recorder,
}

impl TreeBuilder<'_> {
    /// Build a node over `rows`; `bound` is the admissible value interval
    /// inherited from monotone splits above.
    fn build(&mut self, rows: Vec<u32>, depth: usize, bound: (f64, f64)) -> u32 {
        let mut total = GradPair::default();
        for &r in &rows {
            total.add(self.grad[r as usize], self.hess[r as usize]);
        }
        let clamp = |v: f64| v.clamp(bound.0, bound.1);
        let node_id = self.nodes.len() as u32;

        if depth >= self.params.max_depth || total.h < 2.0 * self.params.min_child_weight {
            let _leaf_span = self.recorder.span("gbdt.leaf_fit");
            self.nodes.push(Node::Leaf { value: clamp(total.value(self.params.lambda)) });
            return node_id;
        }

        let split = {
            let _search_span = self.recorder.span("gbdt.split_search").arg("rows", rows.len());
            self.best_split(&rows, &total, bound)
        };
        let Some(split) = split else {
            let _leaf_span = self.recorder.span("gbdt.leaf_fit");
            self.nodes.push(Node::Leaf { value: clamp(total.value(self.params.lambda)) });
            return node_id;
        };
        let (feature, bin, left_value, right_value, gain) = split;
        self.gain[feature] += gain;
        let threshold = self.bins.threshold_after(feature, bin);

        // Child bounds under a monotone constraint (XGBoost's mid-point
        // propagation).
        let constraint = self.params.monotone_constraints.get(feature).copied().unwrap_or(0);
        let (left_bound, right_bound) = match constraint {
            0 => (bound, bound),
            _ => {
                let mid = 0.5 * (left_value + right_value);
                if constraint > 0 {
                    ((bound.0, mid.min(bound.1)), (mid.max(bound.0), bound.1))
                } else {
                    ((mid.max(bound.0), bound.1), (bound.0, mid.min(bound.1)))
                }
            }
        };

        self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
        let (left_rows, right_rows): (Vec<u32>, Vec<u32>) =
            rows.into_iter().partition(|&r| self.binned[r as usize * self.n_cols + feature] <= bin);
        let left = self.build(left_rows, depth + 1, left_bound);
        let right = self.build(right_rows, depth + 1, right_bound);
        self.nodes[node_id as usize] =
            Node::Split { feature: feature as u32, threshold, left, right };
        node_id
    }

    /// Best `(feature, bin, left_value, right_value, gain)` by gain,
    /// honoring monotone constraints; `None` when nothing beats the parent.
    fn best_split(
        &self,
        rows: &[u32],
        total: &GradPair,
        bound: (f64, f64),
    ) -> Option<(usize, u16, f64, f64, f64)> {
        let lambda = self.params.lambda;
        let parent_score = total.score(lambda);
        let mut best_gain = 1e-9;
        let mut best = None;

        for &f in &self.features {
            let nbins = self.bins.num_bins(f);
            let mut hist = vec![GradPair::default(); nbins];
            for &r in rows {
                let b = usize::from(self.binned[r as usize * self.n_cols + f]);
                hist[b].add(self.grad[r as usize], self.hess[r as usize]);
            }
            let constraint = self.params.monotone_constraints.get(f).copied().unwrap_or(0);

            let mut left = GradPair::default();
            for (b, pair) in hist.iter().take(nbins - 1).enumerate() {
                left.add(pair.g, pair.h);
                let right = GradPair { g: total.g - left.g, h: total.h - left.h };
                if left.h < self.params.min_child_weight || right.h < self.params.min_child_weight {
                    continue;
                }
                let gain = left.score(lambda) + right.score(lambda) - parent_score;
                if gain <= best_gain {
                    continue;
                }
                // Candidate child values, clamped to this node's bounds —
                // the values monotonicity is judged on.
                let lv = left.value(lambda).clamp(bound.0, bound.1);
                let rv = right.value(lambda).clamp(bound.0, bound.1);
                if (constraint > 0 && lv > rv) || (constraint < 0 && lv < rv) {
                    continue; // split would violate monotonicity: reject
                }
                best_gain = gain;
                best = Some((f, b as u16, lv, rv, gain));
            }
        }
        best
    }
}

impl Gbdt {
    /// Fit the ensemble to a (possibly weighted) dataset.
    pub fn fit(ds: &Dataset, params: &GbdtParams) -> Result<Self, MlError> {
        Self::fit_traced(ds, params, &Recorder::disabled())
    }

    /// [`Gbdt::fit`] with observability: the whole fit runs under a
    /// `gbdt.fit` span, with `gbdt.histogram` around the bin construction,
    /// one `gbdt.tree` span per boosting round, and `gbdt.split_search` /
    /// `gbdt.leaf_fit` spans per node. Tracing never changes the fitted
    /// model — subsampling RNG state is untouched by the recorder.
    pub fn fit_traced(
        ds: &Dataset,
        params: &GbdtParams,
        recorder: &Recorder,
    ) -> Result<Self, MlError> {
        let mut fit_span = recorder
            .span("gbdt.fit")
            .arg("rows", ds.n_rows())
            .arg("cols", ds.n_cols())
            .arg("n_trees", params.n_trees);
        if ds.n_rows() == 0 {
            return Err(MlError::Shape("cannot fit GBDT to zero rows".into()));
        }
        if params.n_trees == 0 {
            return Err(MlError::InvalidConfig("n_trees must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&params.subsample) || params.subsample == 0.0 {
            return Err(MlError::InvalidConfig("subsample must be in (0, 1]".into()));
        }
        if !(0.0..=1.0).contains(&params.colsample) || params.colsample == 0.0 {
            return Err(MlError::InvalidConfig("colsample must be in (0, 1]".into()));
        }
        if !params.monotone_constraints.is_empty()
            && params.monotone_constraints.len() != ds.n_cols()
        {
            return Err(MlError::InvalidConfig(format!(
                "{} monotone constraints for {} features",
                params.monotone_constraints.len(),
                ds.n_cols()
            )));
        }
        if !(0.0..1.0).contains(&params.validation_fraction) {
            return Err(MlError::InvalidConfig("validation_fraction must be in [0, 1)".into()));
        }

        let (bins, binned) = {
            let _hist_span = recorder.span("gbdt.histogram").arg("max_bins", params.max_bins);
            let bins = FeatureBins::fit(ds, params.max_bins);
            let binned = bins.bin_matrix(ds);
            (bins, binned)
        };
        let n = ds.n_rows();
        let weights = ds.weights_vec();

        // Weighted-mean base score.
        let wsum: f64 = weights.iter().sum();
        let base_score = if wsum > 0.0 {
            ds.targets().iter().zip(&weights).map(|(y, w)| y * w).sum::<f64>() / wsum
        } else {
            0.0
        };

        let mut pred = vec![base_score; n];
        let mut trees = Vec::with_capacity(params.n_trees);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];
        let mut gain = vec![0.0f64; ds.n_cols()];

        // Optional validation hold-out for early stopping.
        let validation: Vec<usize> = if params.validation_fraction > 0.0 {
            let k = ((n as f64 * params.validation_fraction).round() as usize).clamp(1, n - 1);
            sample_without_replacement(n, k, &mut rng)
        } else {
            Vec::new()
        };
        let is_validation = {
            let mut mask = vec![false; n];
            for &i in &validation {
                mask[i] = true;
            }
            mask
        };
        let mut best_val_rmse = f64::INFINITY;
        let mut rounds_without_improvement = 0usize;

        for round in 0..params.n_trees {
            let _tree_span = recorder.span("gbdt.tree").arg("round", round);
            for i in 0..n {
                // Squared loss: g = w (pred − y), h = w. Validation rows
                // carry zero hessian so they never influence the fit.
                let w = if is_validation[i] { 0.0 } else { weights[i] };
                grad[i] = w * (pred[i] - ds.targets()[i]);
                hess[i] = w;
            }

            let rows: Vec<u32> = if params.subsample < 1.0 {
                (0..n as u32)
                    .filter(|&i| {
                        !is_validation[i as usize] && rng.random::<f64>() < params.subsample
                    })
                    .collect()
            } else {
                (0..n as u32).filter(|&i| !is_validation[i as usize]).collect()
            };
            if rows.is_empty() {
                continue;
            }
            let features: Vec<usize> = if params.colsample < 1.0 {
                let k =
                    ((ds.n_cols() as f64 * params.colsample).ceil() as usize).clamp(1, ds.n_cols());
                sample_without_replacement(ds.n_cols(), k, &mut rng)
            } else {
                (0..ds.n_cols()).collect()
            };

            let mut builder = TreeBuilder {
                bins: &bins,
                binned: &binned,
                n_cols: ds.n_cols(),
                grad: &grad,
                hess: &hess,
                params,
                features,
                nodes: Vec::new(),
                gain: &mut gain,
                recorder,
            };
            builder.build(rows, 0, (f64::NEG_INFINITY, f64::INFINITY));
            let tree = HistTree { nodes: builder.nodes };

            for (i, p) in pred.iter_mut().enumerate().take(n) {
                *p += params.learning_rate * tree.predict_row(ds.row(i));
            }
            trees.push(tree);

            if !validation.is_empty() {
                let mse: f64 =
                    validation.iter().map(|&i| (pred[i] - ds.targets()[i]).powi(2)).sum::<f64>()
                        / validation.len() as f64;
                let rmse = mse.sqrt();
                if rmse + 1e-12 < best_val_rmse {
                    best_val_rmse = rmse;
                    rounds_without_improvement = 0;
                } else {
                    rounds_without_improvement += 1;
                    if rounds_without_improvement >= params.early_stopping_rounds {
                        break;
                    }
                }
            }
        }

        // Normalize the gain importances.
        let total: f64 = gain.iter().sum();
        if total > 0.0 {
            for v in &mut gain {
                *v /= total;
            }
        }
        fit_span.set_arg("trees_fitted", trees.len());
        recorder.counter_add("gbdt.trees_fitted", trees.len() as u64);
        Ok(Self { base_score, trees, learning_rate: params.learning_rate, importance: gain })
    }

    /// Normalized gain-based feature importances (sum to 1 when any split
    /// was made) — XGBoost's `gain` importance type.
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Predict one feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.base_score
            + self.learning_rate * self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }

    /// Predict every row of a dataset.
    pub fn predict(&self, ds: &Dataset) -> Vec<f64> {
        (0..ds.n_rows()).map(|i| self.predict_row(ds.row(i))).collect()
    }

    /// Number of boosted trees actually fitted.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

/// `k` distinct indices out of `0..n` (partial Fisher–Yates).
fn sample_without_replacement<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{r2, rmse};

    fn make_data(n: usize, seed: u64) -> (Dataset, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| vec![rng.random::<f64>() * 4.0, rng.random::<f64>() * 4.0]).collect();
        let targets: Vec<f64> =
            rows.iter().map(|r| (r[0] * 1.3).sin() * 2.0 + r[1] * r[1] * 0.4 + 1.0).collect();
        (Dataset::from_rows(&rows, targets.clone()).unwrap(), targets)
    }

    #[test]
    fn fits_nonlinear_function() {
        let (ds, targets) = make_data(1500, 1);
        let model = Gbdt::fit(&ds, &GbdtParams::default()).unwrap();
        let pred = model.predict(&ds);
        assert!(r2(&targets, &pred) > 0.98, "r2 = {}", r2(&targets, &pred));
    }

    #[test]
    fn generalizes_out_of_sample() {
        let (train, _) = make_data(2000, 2);
        let (test, test_y) = make_data(500, 3);
        let model = Gbdt::fit(&train, &GbdtParams::default()).unwrap();
        let pred = model.predict(&test);
        assert!(r2(&test_y, &pred) > 0.9, "r2 = {}", r2(&test_y, &pred));
    }

    #[test]
    fn more_trees_reduce_training_error() {
        let (ds, targets) = make_data(800, 4);
        let few = Gbdt::fit(&ds, &GbdtParams { n_trees: 5, ..GbdtParams::default() }).unwrap();
        let many = Gbdt::fit(&ds, &GbdtParams { n_trees: 150, ..GbdtParams::default() }).unwrap();
        assert!(rmse(&targets, &many.predict(&ds)) < rmse(&targets, &few.predict(&ds)));
    }

    #[test]
    fn monotone_increasing_constraint_is_enforced() {
        // Noisy but increasing ground truth; the constrained model must be
        // globally non-decreasing along the constrained feature.
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<Vec<f64>> = (0..1200).map(|i| vec![f64::from(i) / 100.0]).collect();
        let targets: Vec<f64> =
            rows.iter().map(|r| r[0] * 2.0 + 3.0 * (rng.random::<f64>() - 0.5)).collect();
        let ds = Dataset::from_rows(&rows, targets).unwrap();
        let params =
            GbdtParams { monotone_constraints: vec![1], n_trees: 120, ..GbdtParams::default() };
        let model = Gbdt::fit(&ds, &params).unwrap();
        let mut last = f64::NEG_INFINITY;
        for i in 0..=1200 {
            let p = model.predict_row(&[f64::from(i) / 100.0]);
            assert!(
                p >= last - 1e-9,
                "prediction decreased at x={}: {p} < {last}",
                f64::from(i) / 100.0
            );
            last = p;
        }
    }

    #[test]
    fn monotone_decreasing_constraint_is_enforced() {
        let mut rng = StdRng::seed_from_u64(6);
        let rows: Vec<Vec<f64>> = (0..800).map(|i| vec![f64::from(i) / 80.0]).collect();
        let targets: Vec<f64> =
            rows.iter().map(|r| -r[0] * 1.5 + 2.0 * (rng.random::<f64>() - 0.5)).collect();
        let ds = Dataset::from_rows(&rows, targets).unwrap();
        let params =
            GbdtParams { monotone_constraints: vec![-1], n_trees: 80, ..GbdtParams::default() };
        let model = Gbdt::fit(&ds, &params).unwrap();
        let mut last = f64::INFINITY;
        for i in 0..=800 {
            let p = model.predict_row(&[f64::from(i) / 80.0]);
            assert!(p <= last + 1e-9);
            last = p;
        }
    }

    #[test]
    fn unconstrained_features_remain_free_under_mixed_constraints() {
        // Feature 0 constrained +1, feature 1 free with a non-monotone
        // effect the model must still capture.
        let mut rng = StdRng::seed_from_u64(7);
        let rows: Vec<Vec<f64>> =
            (0..1500).map(|_| vec![rng.random::<f64>() * 5.0, rng.random::<f64>() * 5.0]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| r[0] + (r[1] * 2.0).sin() * 2.0).collect();
        let ds = Dataset::from_rows(&rows, targets.clone()).unwrap();
        let params = GbdtParams { monotone_constraints: vec![1, 0], ..GbdtParams::default() };
        let model = Gbdt::fit(&ds, &params).unwrap();
        assert!(r2(&targets, &model.predict(&ds)) > 0.9);
        // Monotone in feature 0 for a fixed feature 1.
        let mut last = f64::NEG_INFINITY;
        for i in 0..=100 {
            let p = model.predict_row(&[f64::from(i) / 20.0, 2.5]);
            assert!(p >= last - 1e-9);
            last = p;
        }
    }

    #[test]
    fn sample_weights_prioritize_heavy_samples() {
        // Two clusters with conflicting targets at the same x; the heavily
        // weighted cluster must dominate the prediction.
        let rows: Vec<Vec<f64>> = (0..200).map(|_| vec![1.0]).collect();
        let targets: Vec<f64> = (0..200).map(|i| if i < 100 { 0.0 } else { 10.0 }).collect();
        let weights: Vec<f64> = (0..200).map(|i| if i < 100 { 10.0 } else { 0.1 }).collect();
        let ds = Dataset::from_rows(&rows, targets).unwrap().with_weights(weights).unwrap();
        let model = Gbdt::fit(&ds, &GbdtParams::default()).unwrap();
        let p = model.predict_row(&[1.0]);
        assert!(p < 1.0, "weighted prediction {p} should be pulled to 0");
    }

    #[test]
    fn subsampling_still_fits() {
        let (ds, targets) = make_data(1000, 8);
        let params = GbdtParams { subsample: 0.7, colsample: 0.5, ..GbdtParams::default() };
        let model = Gbdt::fit(&ds, &params).unwrap();
        assert!(r2(&targets, &model.predict(&ds)) > 0.9);
    }

    #[test]
    fn invalid_configs_rejected() {
        let (ds, _) = make_data(50, 9);
        assert!(Gbdt::fit(&ds, &GbdtParams { n_trees: 0, ..GbdtParams::default() }).is_err());
        assert!(Gbdt::fit(&ds, &GbdtParams { subsample: 0.0, ..GbdtParams::default() }).is_err());
        assert!(Gbdt::fit(&ds, &GbdtParams { colsample: 1.5, ..GbdtParams::default() }).is_err());
        assert!(Gbdt::fit(
            &ds,
            &GbdtParams { monotone_constraints: vec![1], ..GbdtParams::default() }
        )
        .is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (ds, _) = make_data(300, 10);
        let p = GbdtParams { subsample: 0.8, ..GbdtParams::default() };
        let a = Gbdt::fit(&ds, &p).unwrap();
        let b = Gbdt::fit(&ds, &p).unwrap();
        assert_eq!(a.predict_row(ds.row(0)), b.predict_row(ds.row(0)));
    }

    #[test]
    fn constant_target_predicts_constant() {
        let ds = Dataset::from_rows(&[vec![1.0], vec![2.0], vec![3.0]], vec![7.0; 3]).unwrap();
        let model = Gbdt::fit(&ds, &GbdtParams::default()).unwrap();
        assert!((model.predict_row(&[2.0]) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn sample_without_replacement_is_distinct() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = sample_without_replacement(10, 5, &mut rng);
        assert_eq!(s.len(), 5);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 5);
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::metrics::r2;

    fn make_data(n: usize, seed: u64) -> (Dataset, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| vec![rng.random::<f64>() * 4.0, rng.random::<f64>() * 4.0]).collect();
        let targets: Vec<f64> =
            rows.iter().map(|r| (r[0] * 1.3).sin() * 2.0 + r[1] * r[1] * 0.4 + 1.0).collect();
        (Dataset::from_rows(&rows, targets.clone()).unwrap(), targets)
    }

    #[test]
    fn gain_importance_is_normalized_and_ranks_signal() {
        // Feature 1 is pure noise; feature 0 carries the whole signal.
        let mut rng = StdRng::seed_from_u64(20);
        let rows: Vec<Vec<f64>> = (0..800)
            .map(|_| vec![rng.random::<f64>() * 10.0, rng.random::<f64>() * 10.0])
            .collect();
        let targets: Vec<f64> = rows.iter().map(|r| r[0] * 3.0).collect();
        let ds = Dataset::from_rows(&rows, targets).unwrap();
        let model = Gbdt::fit(&ds, &GbdtParams::default()).unwrap();
        let imp = model.feature_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.95, "importance = {imp:?}");
    }

    #[test]
    fn early_stopping_truncates_the_ensemble() {
        let (ds, _) = make_data(500, 21);
        let full = Gbdt::fit(&ds, &GbdtParams { n_trees: 400, ..GbdtParams::default() }).unwrap();
        let stopped = Gbdt::fit(
            &ds,
            &GbdtParams {
                n_trees: 400,
                validation_fraction: 0.2,
                early_stopping_rounds: 5,
                ..GbdtParams::default()
            },
        )
        .unwrap();
        assert_eq!(full.num_trees(), 400);
        assert!(
            stopped.num_trees() < 400,
            "early stopping never fired ({} trees)",
            stopped.num_trees()
        );
        // And the stopped model still fits well.
        let (test, test_y) = make_data(300, 22);
        assert!(r2(&test_y, &stopped.predict(&test)) > 0.9);
    }

    #[test]
    fn invalid_validation_fraction_rejected() {
        let (ds, _) = make_data(50, 23);
        assert!(Gbdt::fit(&ds, &GbdtParams { validation_fraction: 1.0, ..GbdtParams::default() })
            .is_err());
        assert!(Gbdt::fit(&ds, &GbdtParams { validation_fraction: -0.1, ..GbdtParams::default() })
            .is_err());
    }

    #[test]
    fn traced_fit_matches_untraced_and_records_phases() {
        let (ds, _) = make_data(400, 30);
        let params = GbdtParams { n_trees: 12, subsample: 0.8, ..GbdtParams::default() };
        let untraced = Gbdt::fit(&ds, &params).unwrap();
        let recorder = Recorder::enabled();
        let traced = Gbdt::fit_traced(&ds, &params, &recorder).unwrap();
        for i in 0..ds.n_rows() {
            assert_eq!(untraced.predict_row(ds.row(i)), traced.predict_row(ds.row(i)));
        }

        let trace = recorder.snapshot();
        let count = |name: &str| trace.events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("gbdt.fit"), 1);
        assert_eq!(count("gbdt.histogram"), 1);
        assert_eq!(count("gbdt.tree"), 12);
        assert!(count("gbdt.split_search") >= 12, "at least one split search per tree");
        assert!(count("gbdt.leaf_fit") >= 12);
        // Trees nest under the fit span; node phases nest under their tree.
        let fit_id = trace.events.iter().find(|e| e.name == "gbdt.fit").unwrap().id;
        for e in trace.events.iter().filter(|e| e.name == "gbdt.tree") {
            assert_eq!(e.parent, Some(fit_id));
        }
        let tree_ids: std::collections::HashSet<u64> =
            trace.events.iter().filter(|e| e.name == "gbdt.tree").map(|e| e.id).collect();
        for e in trace.events.iter().filter(|e| e.name == "gbdt.split_search") {
            assert!(tree_ids.contains(&e.parent.unwrap()));
        }
        let fitted = trace.counters.iter().find(|(k, _)| k == "gbdt.trees_fitted").unwrap().1;
        assert_eq!(fitted, 12);
    }

    #[test]
    fn monotone_constraint_holds_with_early_stopping() {
        let mut rng = StdRng::seed_from_u64(24);
        let rows: Vec<Vec<f64>> = (0..600).map(|i| vec![f64::from(i) / 60.0]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| r[0] + (rng.random::<f64>() - 0.5)).collect();
        let ds = Dataset::from_rows(&rows, targets).unwrap();
        let model = Gbdt::fit(
            &ds,
            &GbdtParams {
                monotone_constraints: vec![1],
                validation_fraction: 0.15,
                ..GbdtParams::default()
            },
        )
        .unwrap();
        let mut last = f64::NEG_INFINITY;
        for i in 0..=600 {
            let p = model.predict_row(&[f64::from(i) / 60.0]);
            assert!(p >= last - 1e-9);
            last = p;
        }
    }
}
