//! Regression quality metrics: (weighted) MAPE, MAE, RMSE and R².
//!
//! The paper tunes hyperparameters by minimizing the *sample-weighted mean
//! absolute percentage error* "because it measures the error relative to the
//! latency values, which vary significantly within our data" (Sec. IV-B-3).

/// Weighted mean absolute percentage error. Targets equal to zero are
/// skipped (their percentage error is undefined); returns `NaN` when no
/// valid pair remains.
pub fn weighted_mape(y_true: &[f64], y_pred: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    assert_eq!(y_true.len(), weights.len());
    let mut num = 0.0;
    let mut den = 0.0;
    for ((&t, &p), &w) in y_true.iter().zip(y_pred).zip(weights) {
        if t != 0.0 && w > 0.0 {
            num += w * ((t - p) / t).abs();
            den += w;
        }
    }
    if den == 0.0 {
        f64::NAN
    } else {
        num / den
    }
}

/// Unweighted MAPE.
pub fn mape(y_true: &[f64], y_pred: &[f64]) -> f64 {
    weighted_mape(y_true, y_pred, &vec![1.0; y_true.len()])
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    assert!(!y_true.is_empty());
    y_true.iter().zip(y_pred).map(|(t, p)| (t - p).abs()).sum::<f64>() / y_true.len() as f64
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    assert!(!y_true.is_empty());
    (y_true.iter().zip(y_pred).map(|(t, p)| (t - p).powi(2)).sum::<f64>() / y_true.len() as f64)
        .sqrt()
}

/// Coefficient of determination R² (1 − SS_res / SS_tot); `NaN` for a
/// constant target.
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    assert!(!y_true.is_empty());
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|t| (t - mean).powi(2)).sum();
    let ss_res: f64 = y_true.iter().zip(y_pred).map(|(t, p)| (t - p).powi(2)).sum();
    if ss_tot == 0.0 {
        f64::NAN
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(mape(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
        assert_eq!(rmse(&y, &y), 0.0);
        assert_eq!(r2(&y, &y), 1.0);
    }

    #[test]
    fn mape_is_relative() {
        // 10% error on every point.
        let y = [10.0, 100.0, 1000.0];
        let p = [11.0, 110.0, 1100.0];
        assert!((mape(&y, &p) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn weighted_mape_respects_weights() {
        let y = [10.0, 10.0];
        let p = [11.0, 15.0]; // 10% and 50% errors
        let heavy_on_first = weighted_mape(&y, &p, &[9.0, 1.0]);
        let heavy_on_second = weighted_mape(&y, &p, &[1.0, 9.0]);
        assert!(heavy_on_first < heavy_on_second);
        assert!((heavy_on_first - (0.9 * 0.1 + 0.1 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_targets() {
        let v = weighted_mape(&[0.0, 10.0], &[5.0, 12.0], &[1.0, 1.0]);
        assert!((v - 0.2).abs() < 1e-12);
        assert!(weighted_mape(&[0.0], &[1.0], &[1.0]).is_nan());
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let p = [2.5, 2.5, 2.5, 2.5];
        assert!(r2(&y, &p).abs() < 1e-12);
        assert!(r2(&[5.0, 5.0], &[5.0, 5.0]).is_nan());
    }

    #[test]
    fn rmse_penalizes_outliers_more_than_mae() {
        let y = [0.0, 0.0, 0.0, 0.0];
        let p = [0.0, 0.0, 0.0, 4.0];
        assert!(rmse(&y, &p) > mae(&y, &p));
    }
}
