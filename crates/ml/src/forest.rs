//! Random-forest regression (bagged CART trees with feature subsampling),
//! with aggregated MDI importances — the paper's importance-study model
//! (Sec. III-A, Sec. III-D/Fig. 4) and the regressor inside the PARIS and
//! RF baselines (Sec. V-C).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::tree::{DecisionTree, TreeParams};

/// Hyperparameters of the forest.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters (depth, leaf sizes, feature subsampling).
    pub tree: TreeParams,
    /// Bootstrap-sample the rows of each tree?
    pub bootstrap: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        Self {
            n_trees: 100,
            tree: TreeParams { max_features: None, ..TreeParams::default() },
            bootstrap: true,
            seed: 17,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    importance: Vec<f64>,
}

impl RandomForest {
    /// Fit the forest; trees are trained in parallel.
    pub fn fit(ds: &Dataset, params: &ForestParams) -> Result<Self, MlError> {
        if params.n_trees == 0 {
            return Err(MlError::InvalidConfig("n_trees must be >= 1".into()));
        }
        if ds.n_rows() == 0 {
            return Err(MlError::Shape("cannot fit a forest to zero rows".into()));
        }
        // Default feature subsampling: all features / 3, the classical
        // regression-forest heuristic, unless the caller pinned a value.
        let mut tree_params = params.tree.clone();
        if tree_params.max_features.is_none() {
            tree_params.max_features = Some((ds.n_cols() / 3).max(1));
        }

        let trees: Result<Vec<DecisionTree>, MlError> = (0..params.n_trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(t as u64));
                if params.bootstrap {
                    let indices: Vec<usize> =
                        (0..ds.n_rows()).map(|_| rng.random_range(0..ds.n_rows())).collect();
                    let sample = ds.subset(&indices);
                    DecisionTree::fit(&sample, &tree_params, &mut rng)
                } else {
                    DecisionTree::fit(ds, &tree_params, &mut rng)
                }
            })
            .collect();
        let trees = trees?;

        let mut importance = vec![0.0; ds.n_cols()];
        for tree in &trees {
            for (i, &v) in tree.feature_importance().iter().enumerate() {
                importance[i] += v;
            }
        }
        let total: f64 = importance.iter().sum();
        if total > 0.0 {
            for v in &mut importance {
                *v /= total;
            }
        }
        Ok(Self { trees, importance })
    }

    /// Predict one row: the mean of the trees' predictions.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predict every row of a dataset.
    pub fn predict(&self, ds: &Dataset) -> Vec<f64> {
        (0..ds.n_rows()).map(|i| self.predict_row(ds.row(i))).collect()
    }

    /// Normalized MDI importances aggregated over trees.
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    /// Deterministic synthetic regression data with one dominant feature.
    fn make_data(n: usize) -> (Dataset, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                vec![
                    rng.random::<f64>() * 10.0,
                    rng.random::<f64>() * 10.0,
                    rng.random::<f64>() * 10.0,
                ]
            })
            .collect();
        let targets: Vec<f64> =
            rows.iter().map(|r| 5.0 * r[0] + 0.5 * r[1] + 0.05 * rng.random::<f64>()).collect();
        (Dataset::from_rows(&rows, targets.clone()).unwrap(), targets)
    }

    #[test]
    fn forest_fits_and_generalizes() {
        let (ds, targets) = make_data(600);
        let forest =
            RandomForest::fit(&ds, &ForestParams { n_trees: 60, ..ForestParams::default() })
                .unwrap();
        let pred = forest.predict(&ds);
        assert!(r2(&targets, &pred) > 0.95);
    }

    #[test]
    fn importance_ranks_dominant_feature_first() {
        let (ds, _) = make_data(800);
        let forest =
            RandomForest::fit(&ds, &ForestParams { n_trees: 40, ..ForestParams::default() })
                .unwrap();
        let imp = forest.feature_importance();
        assert!(imp[0] > imp[1], "imp = {imp:?}");
        assert!(imp[1] > imp[2], "imp = {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn forest_beats_single_tree_out_of_sample() {
        let (train, _) = make_data(300);
        let (test, test_targets) = {
            let mut rng = StdRng::seed_from_u64(99);
            let rows: Vec<Vec<f64>> = (0..200)
                .map(|_| {
                    vec![
                        rng.random::<f64>() * 10.0,
                        rng.random::<f64>() * 10.0,
                        rng.random::<f64>() * 10.0,
                    ]
                })
                .collect();
            let t: Vec<f64> = rows.iter().map(|r| 5.0 * r[0] + 0.5 * r[1]).collect();
            (Dataset::from_rows(&rows, t.clone()).unwrap(), t)
        };
        let forest =
            RandomForest::fit(&train, &ForestParams { n_trees: 80, ..ForestParams::default() })
                .unwrap();
        let forest_r2 = r2(&test_targets, &forest.predict(&test));
        assert!(forest_r2 > 0.9, "forest r2 = {forest_r2}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (ds, _) = make_data(200);
        let p = ForestParams { n_trees: 10, ..ForestParams::default() };
        let a = RandomForest::fit(&ds, &p).unwrap();
        let b = RandomForest::fit(&ds, &p).unwrap();
        assert_eq!(a.predict_row(ds.row(0)), b.predict_row(ds.row(0)));
        assert_eq!(a.feature_importance(), b.feature_importance());
    }

    #[test]
    fn zero_trees_rejected() {
        let (ds, _) = make_data(50);
        assert!(RandomForest::fit(&ds, &ForestParams { n_trees: 0, ..ForestParams::default() })
            .is_err());
    }

    #[test]
    fn num_trees_matches_config() {
        let (ds, _) = make_data(50);
        let f = RandomForest::fit(&ds, &ForestParams { n_trees: 7, ..ForestParams::default() })
            .unwrap();
        assert_eq!(f.num_trees(), 7);
    }
}
