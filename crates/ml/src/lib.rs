#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # llmpilot-ml
//!
//! From-scratch ML substrate of the LLM-Pilot reproduction: CART regression
//! trees and random forests with MDI importances (the paper's importance
//! studies and PARIS/RF baselines), a histogram gradient-boosted tree
//! ensemble with sample weights and monotone constraints (the XGBoost
//! stand-in inside the GPU recommendation tool), a dense MLP with
//! fine-tuning (the PerfNet/PerfNetV2/Morphling baselines), biased matrix
//! factorization (the Selecta baseline), regression metrics and
//! leave-one-group-out cross-validation with grid search.

pub mod cv;
pub mod dataset;
pub mod error;
pub mod forest;
pub mod gbdt;
pub mod histogram;
pub mod matrix_factorization;
pub mod metrics;
pub mod mlp;
pub mod tree;

pub use cv::{grid_search, leave_one_group_out, Fold, GridSearchResult};
pub use dataset::Dataset;
pub use error::MlError;
pub use forest::{ForestParams, RandomForest};
pub use gbdt::{Gbdt, GbdtParams};
pub use histogram::FeatureBins;
pub use matrix_factorization::{MatrixFactorization, MfParams};
pub use metrics::{mae, mape, r2, rmse, weighted_mape};
pub use mlp::{Mlp, MlpParams};
pub use tree::{DecisionTree, TreeParams};
