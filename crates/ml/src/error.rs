//! Error types of the ML substrate.

use std::fmt;

/// Errors produced by the ML substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Inconsistent or invalid data shapes.
    Shape(String),
    /// A model was asked to predict before being fitted.
    NotFitted,
    /// Invalid hyperparameter configuration.
    InvalidConfig(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::Shape(msg) => write!(f, "shape error: {msg}"),
            MlError::NotFitted => write!(f, "model has not been fitted"),
            MlError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(MlError::Shape("x".into()).to_string().contains("x"));
        assert!(MlError::NotFitted.to_string().contains("fitted"));
        assert!(MlError::InvalidConfig("lr".into()).to_string().contains("lr"));
    }
}
