//! Roofline step-time model for LLM inference on a GPU profile.
//!
//! The model follows the phase split the paper relies on (Sec. V-B, citing
//! DéjàVu): *prompt processing is compute bound*, so prefill time scales with
//! FLOPs over the profile's tensor-core throughput, while the *decode phase
//! is memory-bandwidth bound*, so a decode step scales with the bytes moved —
//! the (sharded) model weights plus the KV cache of every running sequence.
//! Tensor-parallel pods additionally pay per-layer all-reduce costs over
//! NVLink or PCIe, and every engine iteration pays a fixed scheduler/kernel
//! launch overhead plus a small per-sequence serving overhead (tokenization,
//! de-tokenization, response streaming — substantial in Python serving
//! stacks such as TGIS).

use crate::fault::LatencyNoise;
use crate::gpu::GpuProfile;
use crate::llm::{DType, LlmArch, LlmSpec};

/// Empirical derating constants of the performance model.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfModelConfig {
    /// Achieved fraction of peak FP16 TFLOPS during prompt processing
    /// (model FLOP utilization; large dense matmuls).
    pub prefill_flop_efficiency: f64,
    /// Achieved fraction of peak memory bandwidth during decode.
    pub decode_bandwidth_efficiency: f64,
    /// Fixed per-iteration overhead: scheduler, kernel launches, batching
    /// bookkeeping (seconds).
    pub fixed_step_overhead_s: f64,
    /// Per-running-sequence, per-iteration serving overhead (seconds):
    /// sampling, de-tokenization and response streaming per sequence.
    pub per_seq_step_overhead_s: f64,
    /// Fixed latency of one tensor-parallel all-reduce (seconds).
    pub allreduce_latency_s: f64,
    /// All-reduce calls per transformer layer (attention + MLP).
    pub allreduce_calls_per_layer: f64,
    /// Achieved fraction of the interconnect bandwidth during collectives.
    pub comm_efficiency: f64,
}

impl Default for PerfModelConfig {
    fn default() -> Self {
        Self {
            prefill_flop_efficiency: 0.45,
            decode_bandwidth_efficiency: 0.8,
            fixed_step_overhead_s: 3.0e-3,
            per_seq_step_overhead_s: 3.0e-4,
            allreduce_latency_s: 20.0e-6,
            allreduce_calls_per_layer: 2.0,
            comm_efficiency: 0.7,
        }
    }
}

/// Step-time model for one `(LLM, GPU profile)` pair.
#[derive(Debug, Clone)]
pub struct PerfModel {
    llm: LlmSpec,
    profile: GpuProfile,
    config: PerfModelConfig,
    /// Multiplicative noise on step times (inert by default — every query
    /// is scaled by exactly 1.0, preserving bit-identical behaviour).
    noise: LatencyNoise,
}

impl PerfModel {
    /// Build a performance model.
    pub fn new(llm: LlmSpec, profile: GpuProfile, config: PerfModelConfig) -> Self {
        Self { llm, profile, config, noise: LatencyNoise::none() }
    }

    /// Attach a latency-noise source (builder style); see
    /// [`crate::fault::FaultPlan::latency_noise`].
    pub fn with_noise(mut self, noise: LatencyNoise) -> Self {
        self.noise = noise;
        self
    }

    /// Replace the latency-noise source in place.
    pub fn set_noise(&mut self, noise: LatencyNoise) {
        self.noise = noise;
    }

    /// The modeled LLM.
    pub fn llm(&self) -> &LlmSpec {
        &self.llm
    }

    /// The modeled GPU profile.
    pub fn profile(&self) -> &GpuProfile {
        &self.profile
    }

    /// Tensor-parallel degree.
    fn tp(&self) -> f64 {
        self.profile.count as f64
    }

    /// Effective aggregate FLOP/s across the pod, accounting for MFU and the
    /// halved tensor-core rate of FP32-served models.
    fn effective_flops(&self) -> f64 {
        let dtype_rate = match self.llm.dtype {
            DType::Fp16 | DType::Bf16 => 1.0,
            DType::Fp32 => 0.5,
        };
        self.profile.gpu.fp16_tflops
            * 1.0e12
            * dtype_rate
            * self.config.prefill_flop_efficiency
            * self.tp()
    }

    /// Effective aggregate memory bandwidth across the pod, bytes/s.
    fn effective_bandwidth(&self) -> f64 {
        self.profile.gpu.memory_bandwidth_gbps
            * 1.0e9
            * self.config.decode_bandwidth_efficiency
            * self.tp()
    }

    /// Time for tensor-parallel collectives moving `tokens` activations
    /// through `layers` transformer layers (zero for single-GPU pods).
    fn comm_time(&self, tokens: f64, layers: f64) -> f64 {
        let t = self.tp();
        if t <= 1.0 {
            return 0.0;
        }
        let calls = layers * self.config.allreduce_calls_per_layer;
        let bytes_per_call =
            2.0 * (t - 1.0) / t * tokens * self.llm.hidden_size as f64 * self.llm.dtype.bytes();
        let link =
            self.profile.gpu.interconnect_bandwidth_gbps() * 1.0e9 * self.config.comm_efficiency;
        calls * (self.config.allreduce_latency_s + bytes_per_call / link)
    }

    /// Time to process a prompt of `prompt_tokens` and emit the first output
    /// token (the compute-bound phase), excluding queueing. Seconds.
    ///
    /// Encoder-decoder models run the prompt through the encoder and then
    /// execute one decoder step; decoder-only models run the full stack over
    /// the prompt.
    pub fn prefill_time(&self, prompt_tokens: u32) -> f64 {
        let n = prompt_tokens as f64;
        let params = self.llm.prompt_parameters();
        let layers = match self.llm.arch {
            LlmArch::DecoderOnly => self.llm.num_layers as f64,
            LlmArch::EncoderDecoder => self.llm.encoder_layers() as f64,
        };
        // Dense matmul FLOPs plus the quadratic attention term.
        let flops = 2.0 * params * n + 4.0 * layers * n * n * self.llm.hidden_size as f64;
        let compute = flops / self.effective_flops();
        let comm = self.comm_time(n, layers);
        let first_token = match self.llm.arch {
            LlmArch::DecoderOnly => 0.0,
            // Enc-dec: the first output token requires one decoder step over
            // the fresh cross-attention cache.
            LlmArch::EncoderDecoder => self.decode_marginal_time(1, u64::from(prompt_tokens)),
        };
        (compute + comm + first_token) * self.noise.factor()
    }

    /// Marginal decode cost without fixed/per-sequence overheads; used
    /// internally for the enc-dec first token.
    fn decode_marginal_time(&self, batch_seqs: u32, kv_tokens: u64) -> f64 {
        let weight_read = self.llm.decoder_parameters() * self.llm.dtype.bytes();
        let kv_read = kv_tokens as f64 * self.llm.kv_bytes_per_token();
        let mem = (weight_read + kv_read) / self.effective_bandwidth();
        let flops = 2.0 * self.llm.decoder_parameters() * batch_seqs as f64;
        let compute = flops / self.effective_flops();
        let comm = self.comm_time(batch_seqs as f64, self.llm.decoder_layers() as f64);
        mem.max(compute) + comm
    }

    /// Time of one engine iteration generating one token for each of
    /// `batch_seqs` running sequences whose caches jointly hold `kv_tokens`
    /// tokens (the memory-bandwidth-bound phase). Seconds.
    pub fn decode_step_time(&self, batch_seqs: u32, kv_tokens: u64) -> f64 {
        if batch_seqs == 0 {
            return self.config.fixed_step_overhead_s;
        }
        (self.decode_marginal_time(batch_seqs, kv_tokens)
            + self.config.fixed_step_overhead_s
            + self.config.per_seq_step_overhead_s * batch_seqs as f64)
            * self.noise.factor()
    }

    /// Time to pull the weights into GPU memory over the host link when the
    /// pod is created (deployment step of the characterization pipeline).
    pub fn model_load_time(&self) -> f64 {
        let pcie = match self.profile.gpu.pcie_gen {
            0..=3 => 16.0e9,
            4 => 32.0e9,
            _ => 64.0e9,
        };
        self.llm.weight_bytes() / pcie
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::*;
    use crate::llm::*;

    fn model(llm: LlmSpec, gpu: GpuSpec, count: u32) -> PerfModel {
        PerfModel::new(llm, GpuProfile::new(gpu, count), PerfModelConfig::default())
    }

    #[test]
    fn prefill_grows_with_prompt_length() {
        let m = model(llama2_13b(), a100_80(), 1);
        assert!(m.prefill_time(2000) > m.prefill_time(500));
        assert!(m.prefill_time(500) > 0.0);
    }

    #[test]
    fn prefill_superlinear_for_long_prompts() {
        // The quadratic attention term makes doubling the prompt more than
        // double the prefill time at long lengths.
        let m = model(gpt_neox_20b(), a100_80(), 1);
        assert!(m.prefill_time(4000) > 2.0 * m.prefill_time(2000));
    }

    #[test]
    fn decode_step_grows_with_batch_and_kv() {
        let m = model(llama2_13b(), a100_80(), 1);
        let base = m.decode_step_time(1, 500);
        assert!(m.decode_step_time(8, 4000) > base);
        assert!(m.decode_step_time(1, 50_000) > base);
    }

    #[test]
    fn batch_one_itl_matches_table1_magnitude() {
        // Table I: one Llama-2-13b pod on A100-80 serves ~47 output tokens/s
        // for a single user, i.e. a ~21ms step.
        let m = model(llama2_13b(), a100_80(), 1);
        let step = m.decode_step_time(1, 700);
        assert!(step > 0.010 && step < 0.040, "step = {step}");
    }

    #[test]
    fn faster_gpu_decodes_faster() {
        let h = model(llama2_13b(), h100(), 1);
        let a = model(llama2_13b(), a100_40(), 1);
        assert!(h.decode_step_time(16, 10_000) < a.decode_step_time(16, 10_000));
        assert!(h.prefill_time(1000) < a.prefill_time(1000));
    }

    #[test]
    fn tensor_parallel_speeds_up_prefill_on_nvlink() {
        let one = model(gpt_neox_20b(), a100_40(), 1);
        let two = model(gpt_neox_20b(), a100_40(), 2);
        assert!(two.prefill_time(2000) < one.prefill_time(2000));
    }

    #[test]
    fn pcie_tensor_parallel_pays_heavy_comm() {
        // On PCIe-only T4s, the all-reduce traffic erodes the 2x compute: the
        // speedup of 2xT4 over 1xT4 for long prefills must be well below 2x.
        let one = model(flan_t5_xl(), t4(), 1);
        let two = model(flan_t5_xl(), t4(), 2);
        let speedup = one.prefill_time(4000) / two.prefill_time(4000);
        assert!(speedup < 1.7, "speedup = {speedup}");
        // While on NVLink-connected H100s the same model scales closer to 2x.
        let h1 = model(flan_t5_xl(), h100(), 1);
        let h2 = model(flan_t5_xl(), h100(), 2);
        let h_speedup = h1.prefill_time(4000) / h2.prefill_time(4000);
        assert!(h_speedup > speedup);
    }

    #[test]
    fn enc_dec_prefill_includes_first_decoder_step() {
        let t5 = model(flan_t5_xxl(), a100_80(), 1);
        // Must be strictly more expensive than the encoder pass alone.
        let full = t5.prefill_time(1000);
        assert!(full > 0.0);
        // And the decoder step uses decoder weights only: an enc-dec decode
        // step is cheaper than a same-size decoder-only model's step.
        let dec_only = model(mt0_xxl(), a100_80(), 1);
        assert!(dec_only.llm().decoder_parameters() < dec_only.llm().num_parameters);
    }

    #[test]
    fn fp32_models_are_slower_per_parameter() {
        // mpt-7b (FP32) vs llama-2-7b (FP16): same parameter count, but the
        // FP32 model moves twice the bytes and halves the tensor rate.
        let mpt = model(mpt_7b(), a100_80(), 1);
        let llama = model(llama2_7b(), a100_80(), 1);
        assert!(mpt.decode_step_time(1, 100) > 1.5 * llama.decode_step_time(1, 100));
    }

    #[test]
    fn empty_batch_costs_only_fixed_overhead() {
        let m = model(llama2_7b(), t4(), 1);
        assert_eq!(m.decode_step_time(0, 0), PerfModelConfig::default().fixed_step_overhead_s);
    }

    #[test]
    fn model_load_time_scales_with_size() {
        let small = model(flan_t5_xl(), a100_40(), 1);
        let big = model(flan_ul2(), a100_40(), 1);
        assert!(big.model_load_time() > small.model_load_time());
        // A 13B FP16 model over PCIe gen4 loads in under a minute.
        let m = model(llama2_13b(), a100_40(), 1);
        assert!(m.model_load_time() < 60.0);
    }

    #[test]
    fn decode_roofline_is_bandwidth_bound_at_small_batch() {
        // For small batches the memory term dominates: doubling batch size
        // (compute) barely moves the marginal time, while doubling the KV
        // footprint does.
        let m = model(llama2_13b(), a100_80(), 1);
        let a = m.decode_step_time(2, 1_000);
        let b = m.decode_step_time(2, 40_000_000 / 1_000);
        assert!(b > a);
    }
}
