//! Error types of the simulator crate.

use std::fmt;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A request had zero tokens or zero batch size.
    InvalidRequest {
        /// Human-readable cause.
        reason: String,
    },
    /// A request's weight exceeds the engine's maximum batch weight and can
    /// never be admitted.
    RequestTooLarge {
        /// The request's weight in tokens.
        weight: u64,
        /// The engine's configured maximum batch weight.
        max_batch_weight: u64,
    },
    /// The `(LLM, GPU profile)` combination cannot be deployed (an × or −
    /// cell of Table III).
    InfeasibleDeployment {
        /// LLM name.
        llm: String,
        /// GPU profile name.
        profile: String,
        /// Why (memory vs software/hardware support).
        reason: String,
    },
    /// Batch-weight tuning could not find any valid weight.
    TuningFailed {
        /// LLM name.
        llm: String,
        /// GPU profile name.
        profile: String,
    },
    /// Batch-weight tuning ramped past the search cap without ever finding
    /// an invalid weight, so the returned weight could not be validated as
    /// maximal (typically a misconfigured memory model).
    TuningDiverged {
        /// LLM name.
        llm: String,
        /// GPU profile name.
        profile: String,
        /// The last weight validated before the search cap.
        weight: u64,
    },
    /// A deployment attempt failed transiently (injected fault).
    DeployFailed {
        /// LLM name.
        llm: String,
        /// GPU profile name.
        profile: String,
    },
    /// The engine crashed at a virtual-time point mid-load-test (injected
    /// fault).
    EngineCrashed {
        /// Virtual time of the crash, seconds.
        at_s: f64,
    },
    /// A step ran out of GPU memory near the batch-weight boundary
    /// (injected fault).
    OutOfMemory {
        /// Running batch weight at the OOM, tokens.
        running_weight: u64,
        /// The engine's maximum batch weight, tokens.
        max_batch_weight: u64,
    },
    /// A per-cell step or virtual-time budget was exhausted before the
    /// experiment finished.
    BudgetExhausted {
        /// Which budget, and its limit.
        what: String,
    },
    /// Every pod of a deployment failed; no survivors to re-balance to.
    AllPodsFailed {
        /// Number of pods in the deployment.
        pods: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            SimError::RequestTooLarge { weight, max_batch_weight } => write!(
                f,
                "request weight {weight} tokens exceeds maximum batch weight {max_batch_weight}"
            ),
            SimError::InfeasibleDeployment { llm, profile, reason } => {
                write!(f, "cannot deploy {llm} on {profile}: {reason}")
            }
            SimError::TuningFailed { llm, profile } => {
                write!(f, "no valid maximum batch weight for {llm} on {profile}")
            }
            SimError::TuningDiverged { llm, profile, weight } => write!(
                f,
                "batch-weight tuning for {llm} on {profile} diverged past the search cap \
                 (last validated weight {weight})"
            ),
            SimError::DeployFailed { llm, profile } => {
                write!(f, "transient deployment failure of {llm} on {profile}")
            }
            SimError::EngineCrashed { at_s } => {
                write!(f, "engine crashed at virtual time {at_s:.3}s")
            }
            SimError::OutOfMemory { running_weight, max_batch_weight } => write!(
                f,
                "out of memory at batch weight {running_weight} of {max_batch_weight} tokens"
            ),
            SimError::BudgetExhausted { what } => write!(f, "budget exhausted: {what}"),
            SimError::AllPodsFailed { pods } => {
                write!(f, "all {pods} pods of the deployment failed")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::RequestTooLarge { weight: 10_000, max_batch_weight: 4_096 };
        let msg = e.to_string();
        assert!(msg.contains("10000"));
        assert!(msg.contains("4096"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SimError::TuningFailed { llm: "m".into(), profile: "p".into() });
    }
}
