//! Error types of the simulator crate.

use std::fmt;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A request had zero tokens or zero batch size.
    InvalidRequest {
        /// Human-readable cause.
        reason: String,
    },
    /// A request's weight exceeds the engine's maximum batch weight and can
    /// never be admitted.
    RequestTooLarge {
        /// The request's weight in tokens.
        weight: u64,
        /// The engine's configured maximum batch weight.
        max_batch_weight: u64,
    },
    /// The `(LLM, GPU profile)` combination cannot be deployed (an × or −
    /// cell of Table III).
    InfeasibleDeployment {
        /// LLM name.
        llm: String,
        /// GPU profile name.
        profile: String,
        /// Why (memory vs software/hardware support).
        reason: String,
    },
    /// Batch-weight tuning could not find any valid weight.
    TuningFailed {
        /// LLM name.
        llm: String,
        /// GPU profile name.
        profile: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            SimError::RequestTooLarge { weight, max_batch_weight } => write!(
                f,
                "request weight {weight} tokens exceeds maximum batch weight {max_batch_weight}"
            ),
            SimError::InfeasibleDeployment { llm, profile, reason } => {
                write!(f, "cannot deploy {llm} on {profile}: {reason}")
            }
            SimError::TuningFailed { llm, profile } => {
                write!(f, "no valid maximum batch weight for {llm} on {profile}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::RequestTooLarge { weight: 10_000, max_batch_weight: 4_096 };
        let msg = e.to_string();
        assert!(msg.contains("10000"));
        assert!(msg.contains("4096"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SimError::TuningFailed { llm: "m".into(), profile: "p".into() });
    }
}
