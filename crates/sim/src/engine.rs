//! Continuous-batching inference engine (one pod), simulated in virtual time.
//!
//! The engine reproduces the iteration-level scheduling of TGIS/vLLM-style
//! servers (Sec. II-B): a single running batch is maintained; whenever
//! requests finish, new requests are admitted from the FIFO queue as long as
//! the *maximum batch weight* — the total number of input and output tokens
//! of all requests in the batch — stays within the tuned limit. Admitted
//! requests run their (compute-bound) prompt processing and emit their first
//! token; every previously running sequence advances by one token per
//! iteration at the (bandwidth-bound) decode step cost.
//!
//! The engine is a sequential event loop over `f64` virtual seconds — "2
//! minutes" of load testing complete in milliseconds of CPU time, and pods
//! parallelize across threads at a higher level (see [`crate::cluster`]).

use std::collections::VecDeque;
use std::sync::Arc;

use llmpilot_obs::hist::Histogram;
use llmpilot_obs::Recorder;

use crate::error::SimError;
use crate::memory::MemoryModel;
use crate::perf_model::PerfModel;
use crate::request::RequestSpec;

/// Identifier of a request within one engine's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// One token-emission event: at `time`, request `id` received `count`
/// tokens (one per sequence of its client-side batch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenEmission {
    /// Which request the tokens belong to.
    pub id: RequestId,
    /// Virtual time of arrival at the client.
    pub time: f64,
    /// Number of tokens emitted (the request's batch size).
    pub count: u32,
    /// Whether this is the request's first output token (end of prompt
    /// processing).
    pub is_first: bool,
}

/// A request-completion event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Which request completed.
    pub id: RequestId,
    /// Virtual completion time.
    pub time: f64,
    /// When the request was submitted.
    pub submitted_at: f64,
    /// The completed request.
    pub spec: RequestSpec,
}

/// Result of one engine iteration.
#[derive(Debug, Clone, Default)]
pub struct StepResult {
    /// Tokens emitted during the iteration.
    pub emissions: Vec<TokenEmission>,
    /// Requests that finished at the end of the iteration.
    pub completions: Vec<Completion>,
}

/// How the engine charges requests against the maximum batch weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// TGIS-style: an admitted request reserves its *full-lifetime* weight
    /// (all input + output tokens), so the batch can never outgrow memory —
    /// the policy the paper's maximum batch weight governs (Sec. II-B).
    #[default]
    ReserveFull,
    /// vLLM-style paged KV cache: requests are charged only for the tokens
    /// *currently* cached; admission is optimistic, and when the cache
    /// overflows the newest request is preempted back to the queue and its
    /// generated tokens are recomputed on re-admission (recompute
    /// preemption).
    PagedCurrent,
}

#[derive(Debug, Clone)]
struct QueuedRequest {
    id: RequestId,
    spec: RequestSpec,
    submitted_at: f64,
    /// Output tokens already generated before a preemption (0 for fresh
    /// requests); recomputed on re-admission without re-emission.
    generated: u32,
}

#[derive(Debug, Clone)]
struct RunningRequest {
    id: RequestId,
    spec: RequestSpec,
    submitted_at: f64,
    /// Output tokens generated so far per sequence.
    generated: u32,
}

impl RunningRequest {
    /// KV-cache tokens currently held by this request.
    fn kv_tokens(&self) -> u64 {
        u64::from(self.spec.batch_size)
            * (u64::from(self.spec.input_tokens) + u64::from(self.generated))
    }
}

/// Per-phase duration histograms (virtual seconds, recorded as
/// nanoseconds): one sample per iteration's decode component and one per
/// admitted request's prefill cost. Shared via `Arc` so a sweep can
/// aggregate across many engine instances; recording is lock-free.
#[derive(Debug, Default)]
pub struct PhaseHists {
    /// Prompt-processing cost per admitted request.
    pub prefill: Histogram,
    /// Decode-step cost per iteration with running sequences.
    pub decode: Histogram,
}

/// Continuous-batching engine for one pod.
#[derive(Debug, Clone)]
pub struct Engine {
    perf: PerfModel,
    max_batch_weight: u64,
    policy: AdmissionPolicy,
    clock: f64,
    next_id: u64,
    queue: VecDeque<QueuedRequest>,
    running: Vec<RunningRequest>,
    /// Cached Σ weight of running requests (full reservation).
    running_weight: u64,
    total_tokens_emitted: u64,
    preemptions: u64,
    /// Structured-trace sink; [`Recorder::disabled`] by default, so the
    /// hot loop pays only an `Option` branch per phase.
    recorder: Recorder,
    /// Optional per-phase duration histograms; `None` costs one branch.
    phase_hists: Option<Arc<PhaseHists>>,
}

impl Engine {
    /// Create an engine for the given performance model with a tuned maximum
    /// batch weight (in tokens).
    pub fn new(perf: PerfModel, max_batch_weight: u64) -> Self {
        Self {
            perf,
            max_batch_weight,
            policy: AdmissionPolicy::ReserveFull,
            clock: 0.0,
            next_id: 0,
            queue: VecDeque::new(),
            running: Vec::new(),
            running_weight: 0,
            total_tokens_emitted: 0,
            preemptions: 0,
            recorder: Recorder::disabled(),
            phase_hists: None,
        }
    }

    /// Attach a structured-trace recorder (builder style): every
    /// subsequent [`Engine::step`] records `engine.step` spans with
    /// admission/prefill/decode/preempt child phases, plus
    /// `engine.steps` / `engine.tokens_emitted` / `engine.preemptions`
    /// counters.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The attached trace recorder (disabled unless set).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Attach shared per-phase duration histograms (builder style): every
    /// subsequent [`Engine::step`] records its decode-step cost and each
    /// admitted request's prefill cost into [`PhaseHists`]. Recording
    /// never perturbs the simulation — virtual time is read, not changed.
    pub fn with_phase_hists(mut self, hists: Arc<PhaseHists>) -> Self {
        self.phase_hists = Some(hists);
        self
    }

    /// Switch the admission policy (builder style). The engine must be
    /// empty.
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        assert!(!self.has_work(), "cannot change policy with work in flight");
        self.policy = policy;
        self
    }

    /// Attach a latency-noise source to the engine's performance model
    /// (builder style); see [`crate::fault::FaultPlan::latency_noise`]. The
    /// inert source leaves every step time untouched.
    pub fn with_latency_noise(mut self, noise: crate::fault::LatencyNoise) -> Self {
        self.perf.set_noise(noise);
        self
    }

    /// The active admission policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Number of preemptions performed so far (paged policy only).
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// KV tokens currently cached by the running batch.
    pub fn current_kv_tokens(&self) -> u64 {
        self.running.iter().map(|r| r.kv_tokens()).sum()
    }

    /// Convenience constructor: derive the maximum batch weight bound from a
    /// memory model (the *untuned* analytic bound; production use runs
    /// [`crate::tuner::tune_max_batch_weight`] instead).
    pub fn with_memory_bound(perf: PerfModel, mem: &MemoryModel) -> Self {
        Self::new(perf, mem.max_batch_weight_bound())
    }

    /// Current virtual time, seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The tuned maximum batch weight, tokens.
    pub fn max_batch_weight(&self) -> u64 {
        self.max_batch_weight
    }

    /// Number of requests waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of requests in the running batch.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Σ weight of the running batch, tokens.
    pub fn running_weight(&self) -> u64 {
        self.running_weight
    }

    /// Total output tokens emitted since construction.
    pub fn total_tokens_emitted(&self) -> u64 {
        self.total_tokens_emitted
    }

    /// Whether any request is queued or running.
    pub fn has_work(&self) -> bool {
        !self.queue.is_empty() || !self.running.is_empty()
    }

    /// Move the clock forward to `t` (used when the engine idles between
    /// submissions). Moving backwards is a no-op.
    pub fn advance_to(&mut self, t: f64) {
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Submit a request at the current clock. Fails if the request could
    /// never be admitted under the configured maximum batch weight.
    pub fn submit(&mut self, spec: RequestSpec) -> Result<RequestId, SimError> {
        if spec.input_tokens == 0 || spec.output_tokens == 0 || spec.batch_size == 0 {
            return Err(SimError::InvalidRequest {
                reason: "input/output tokens and batch size must be >= 1".into(),
            });
        }
        if spec.weight() > self.max_batch_weight {
            return Err(SimError::RequestTooLarge {
                weight: spec.weight(),
                max_batch_weight: self.max_batch_weight,
            });
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.queue.push_back(QueuedRequest { id, spec, submitted_at: self.clock, generated: 0 });
        Ok(id)
    }

    /// Admit queued requests (FIFO, head-of-line blocking like TGIS) while
    /// they fit under the maximum batch weight. Returns the newly admitted
    /// requests.
    fn admit(&mut self) -> Vec<RunningRequest> {
        let mut admitted = Vec::new();
        // Paged admission charges only what the request will cache *now*:
        // prompt (+ any recomputed progress) plus its next token.
        let mut paged_tokens = self.current_kv_tokens();
        while let Some(front) = self.queue.front() {
            let fits = match self.policy {
                AdmissionPolicy::ReserveFull => {
                    self.running_weight + front.spec.weight() <= self.max_batch_weight
                }
                AdmissionPolicy::PagedCurrent => {
                    let immediate = u64::from(front.spec.batch_size)
                        * (u64::from(front.spec.input_tokens) + u64::from(front.generated) + 1);
                    paged_tokens + immediate <= self.max_batch_weight
                }
            };
            if !fits {
                break;
            }
            let q = self.queue.pop_front().expect("front exists");
            self.running_weight += q.spec.weight();
            paged_tokens += u64::from(q.spec.batch_size)
                * (u64::from(q.spec.input_tokens) + u64::from(q.generated) + 1);
            admitted.push(RunningRequest {
                id: q.id,
                spec: q.spec,
                submitted_at: q.submitted_at,
                generated: q.generated,
            });
        }
        admitted
    }

    /// Paged policy: when the cache outgrows the budget, preempt the newest
    /// running requests back to the queue front (recompute preemption: their
    /// progress is kept but will be re-prefetched, not re-emitted).
    fn preempt_overflow(&mut self) {
        while self.current_kv_tokens() > self.max_batch_weight && self.running.len() > 1 {
            // Newest = highest request id among running (vLLM preempts the
            // most recently scheduled sequence group).
            let newest = self
                .running
                .iter()
                .enumerate()
                .max_by_key(|(_, r)| r.id)
                .map(|(i, _)| i)
                .expect("running nonempty");
            let victim = self.running.swap_remove(newest);
            self.running_weight -= victim.spec.weight();
            self.preemptions += 1;
            self.queue.push_front(QueuedRequest {
                id: victim.id,
                spec: victim.spec,
                submitted_at: victim.submitted_at,
                generated: victim.generated,
            });
        }
    }

    /// Run one engine iteration: admit from the queue, run prompt processing
    /// for admitted requests, advance every running sequence by one token,
    /// and retire completed requests.
    ///
    /// Returns an empty [`StepResult`] without advancing time when there is
    /// no work.
    pub fn step(&mut self) -> StepResult {
        let mut result = StepResult::default();
        if !self.has_work() {
            return result;
        }
        let _step_span = self.recorder.span("engine.step");
        self.recorder.counter_add("engine.steps", 1);

        let admitted = {
            let _span = self.recorder.span("engine.admission");
            self.admit()
        };

        // Decode cost for the sequences that were already running.
        let mut step_time = {
            let _span = self.recorder.span("engine.decode");
            let old_seqs: u32 = self.running.iter().map(|r| r.spec.batch_size).sum();
            let kv_tokens: u64 = self.running.iter().map(|r| r.kv_tokens()).sum::<u64>()
                + admitted.iter().map(|r| r.kv_tokens()).sum::<u64>();
            if old_seqs > 0 {
                let t = self.perf.decode_step_time(old_seqs, kv_tokens);
                if let Some(h) = &self.phase_hists {
                    h.decode.record_secs(t);
                }
                t
            } else {
                0.0
            }
        };
        // Prompt-processing cost of every admitted request (its sequences
        // prefill together; cost is linear in the number of sequences).
        // Recomputed (preempted) requests re-prefill their prompt plus the
        // tokens already generated.
        {
            let _span = self.recorder.span("engine.prefill");
            for r in &admitted {
                let t = self.perf.prefill_time(r.spec.input_tokens + r.generated)
                    * r.spec.batch_size as f64;
                if let Some(h) = &self.phase_hists {
                    h.prefill.record_secs(t);
                }
                step_time += t;
            }
        }
        let now = self.clock + step_time;
        self.clock = now;

        // Previously running sequences each produce one decode token.
        for r in &mut self.running {
            r.generated += 1;
            result.emissions.push(TokenEmission {
                id: r.id,
                time: now,
                count: r.spec.batch_size,
                is_first: false,
            });
            self.total_tokens_emitted += u64::from(r.spec.batch_size);
        }
        // Admitted requests produce their next token out of prefill: the
        // *first* token for fresh requests; recomputed requests resume
        // emitting where they left off.
        for mut r in admitted {
            let is_first = r.generated == 0;
            r.generated += 1;
            result.emissions.push(TokenEmission {
                id: r.id,
                time: now,
                count: r.spec.batch_size,
                is_first,
            });
            self.total_tokens_emitted += u64::from(r.spec.batch_size);
            self.running.push(r);
        }

        // Retire completed requests and free their weight.
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].generated >= self.running[i].spec.output_tokens {
                let done = self.running.swap_remove(i);
                self.running_weight -= done.spec.weight();
                result.completions.push(Completion {
                    id: done.id,
                    time: now,
                    submitted_at: done.submitted_at,
                    spec: done.spec,
                });
            } else {
                i += 1;
            }
        }
        if self.policy == AdmissionPolicy::PagedCurrent {
            let _span = self.recorder.span("engine.preempt");
            let before = self.preemptions;
            self.preempt_overflow();
            self.recorder.counter_add("engine.preemptions", self.preemptions - before);
        }
        let emitted: u64 = result.emissions.iter().map(|em| u64::from(em.count)).sum();
        self.recorder.counter_add("engine.tokens_emitted", emitted);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{a100_80, GpuProfile};
    use crate::llm::llama2_13b;
    use crate::perf_model::{PerfModel, PerfModelConfig};

    fn engine(max_weight: u64) -> Engine {
        let perf =
            PerfModel::new(llama2_13b(), GpuProfile::new(a100_80(), 1), PerfModelConfig::default());
        Engine::new(perf, max_weight)
    }

    #[test]
    fn single_request_runs_to_completion() {
        let mut e = engine(100_000);
        let id = e.submit(RequestSpec::new(100, 5)).unwrap();
        let mut first_seen = false;
        let mut tokens = 0;
        let mut completed = false;
        while e.has_work() {
            let r = e.step();
            for em in &r.emissions {
                assert_eq!(em.id, id);
                if em.is_first {
                    assert!(!first_seen);
                    first_seen = true;
                }
                tokens += em.count;
            }
            for c in &r.completions {
                assert_eq!(c.id, id);
                completed = true;
            }
        }
        assert!(first_seen);
        assert!(completed);
        assert_eq!(tokens, 5);
        assert_eq!(e.total_tokens_emitted(), 5);
        assert_eq!(e.running_weight(), 0);
    }

    #[test]
    fn recorder_captures_step_phases() {
        let rec = llmpilot_obs::Recorder::enabled();
        let mut e = engine(100_000).with_recorder(rec.clone());
        e.submit(RequestSpec::new(100, 5)).unwrap();
        let mut steps = 0u64;
        while e.has_work() {
            e.step();
            steps += 1;
        }
        let trace = rec.snapshot();
        let count = |name: &str| trace.events.iter().filter(|ev| ev.name == name).count() as u64;
        assert_eq!(count("engine.step"), steps);
        assert_eq!(count("engine.admission"), steps);
        assert_eq!(count("engine.decode"), steps);
        assert_eq!(count("engine.prefill"), steps);
        // Phases are children of their step span.
        let step_ids: std::collections::HashSet<u64> =
            trace.events.iter().filter(|ev| ev.name == "engine.step").map(|ev| ev.id).collect();
        for ev in trace.events.iter().filter(|ev| ev.name != "engine.step") {
            assert!(step_ids.contains(&ev.parent.expect("phase has a parent")));
        }
        assert!(trace.counters.iter().any(|(n, v)| n == "engine.steps" && *v == steps));
        assert!(trace.counters.iter().any(|(n, v)| n == "engine.tokens_emitted" && *v == 5));
    }

    #[test]
    fn phase_hists_capture_prefill_and_decode_without_perturbing() {
        let run = |hists: Option<Arc<PhaseHists>>| {
            let mut e = engine(600);
            if let Some(h) = hists {
                e = e.with_phase_hists(h);
            }
            for _ in 0..4 {
                e.submit(RequestSpec::new(300, 50)).unwrap();
            }
            let mut times = Vec::new();
            while e.has_work() {
                for c in e.step().completions {
                    times.push((c.time, c.id));
                }
            }
            (times, e.clock())
        };
        let hists = Arc::new(PhaseHists::default());
        let observed = run(Some(Arc::clone(&hists)));
        let plain = run(None);
        assert_eq!(plain, observed, "phase hists must not perturb the simulation");
        // One prefill sample per admission (4 fresh requests, no
        // preemption under ReserveFull) and many decode samples.
        assert_eq!(hists.prefill.count(), 4);
        assert!(hists.decode.count() > 0);
        assert!(hists.prefill.quantile(0.5) > 0, "prefill durations are positive");
        assert!(hists.decode.quantile(0.99) >= hists.decode.quantile(0.5));
    }

    #[test]
    fn disabled_recorder_leaves_results_identical() {
        let run = |rec: llmpilot_obs::Recorder| {
            let mut e = engine(600).with_recorder(rec);
            for _ in 0..8 {
                e.submit(RequestSpec::new(300, 100)).unwrap();
            }
            let mut times = Vec::new();
            while e.has_work() {
                for c in e.step().completions {
                    times.push((c.time, c.id));
                }
            }
            (times, e.clock())
        };
        let plain = run(llmpilot_obs::Recorder::disabled());
        let traced = run(llmpilot_obs::Recorder::enabled());
        assert_eq!(plain, traced, "instrumentation must not perturb the simulation");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut e = engine(100_000);
        e.submit(RequestSpec::new(50, 10)).unwrap();
        e.submit(RequestSpec::new(200, 3)).unwrap();
        let mut last = 0.0;
        while e.has_work() {
            e.step();
            assert!(e.clock() >= last);
            last = e.clock();
        }
        assert!(last > 0.0);
    }

    #[test]
    fn admission_respects_max_batch_weight() {
        // Two requests of weight 150 with a cap of 200: the second must wait
        // until the first completes.
        let mut e = engine(200);
        e.submit(RequestSpec::new(100, 50)).unwrap();
        e.submit(RequestSpec::new(100, 50)).unwrap();
        let r = e.step();
        assert_eq!(r.emissions.len(), 1);
        assert_eq!(e.running_len(), 1);
        assert_eq!(e.queue_len(), 1);
        assert_eq!(e.running_weight(), 150);
        // Drain the first request.
        while e.running_len() == 1 && e.queue_len() == 1 {
            e.step();
        }
        // After the first completes, the second gets admitted.
        assert!(e.has_work());
    }

    #[test]
    fn oversized_request_is_rejected() {
        let mut e = engine(100);
        let err = e.submit(RequestSpec::new(100, 50)).unwrap_err();
        assert!(matches!(err, SimError::RequestTooLarge { .. }));
    }

    #[test]
    fn degenerate_request_is_rejected() {
        let mut e = engine(1000);
        assert!(e.submit(RequestSpec::new(0, 5)).is_err());
        assert!(e.submit(RequestSpec::new(5, 0)).is_err());
        assert!(e.submit(RequestSpec::batched(5, 5, 0)).is_err());
    }

    #[test]
    fn higher_batch_weight_reduces_e2e_latency_under_load() {
        // The Fig. 1 phenomenon: with many concurrent requests, a larger
        // maximum batch weight lowers end-to-end latency by cutting queueing.
        let run = |weight: u64| -> f64 {
            let mut e = engine(weight);
            let mut ids = Vec::new();
            for _ in 0..32 {
                ids.push(e.submit(RequestSpec::new(300, 100)).unwrap());
            }
            let mut done = 0;
            let mut total = 0.0;
            while e.has_work() {
                let r = e.step();
                for c in r.completions {
                    total += c.time - c.submitted_at;
                    done += 1;
                }
            }
            assert_eq!(done, 32);
            total / 32.0
        };
        let small = run(800);
        let large = run(32 * 400);
        assert!(large < small, "large-weight latency {large} should beat small-weight {small}");
    }

    #[test]
    fn batched_request_emits_batch_size_tokens_per_step() {
        let mut e = engine(100_000);
        e.submit(RequestSpec::batched(50, 4, 3)).unwrap();
        let mut tokens = 0;
        while e.has_work() {
            let r = e.step();
            tokens += r.emissions.iter().map(|em| em.count).sum::<u32>();
        }
        assert_eq!(tokens, 12);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut e = engine(160);
        let a = e.submit(RequestSpec::new(100, 50)).unwrap();
        let b = e.submit(RequestSpec::new(100, 50)).unwrap();
        let c = e.submit(RequestSpec::new(100, 50)).unwrap();
        let mut completion_order = Vec::new();
        while e.has_work() {
            for done in e.step().completions {
                completion_order.push(done.id);
            }
        }
        assert_eq!(completion_order, vec![a, b, c]);
    }

    #[test]
    fn advance_to_never_moves_backwards() {
        let mut e = engine(1000);
        e.advance_to(5.0);
        assert_eq!(e.clock(), 5.0);
        e.advance_to(2.0);
        assert_eq!(e.clock(), 5.0);
    }

    #[test]
    fn step_without_work_is_inert() {
        let mut e = engine(1000);
        let r = e.step();
        assert!(r.emissions.is_empty());
        assert!(r.completions.is_empty());
        assert_eq!(e.clock(), 0.0);
    }

    #[test]
    fn deeper_queue_increases_waiting_time() {
        // TTFT of the last request grows when more requests are in front of
        // it (queueing time, Sec. II-B).
        let ttft_of_last = |n: usize| -> f64 {
            let mut e = engine(600);
            let mut last = RequestId(0);
            for _ in 0..n {
                last = e.submit(RequestSpec::new(300, 100)).unwrap();
            }
            loop {
                let r = e.step();
                if let Some(em) = r.emissions.iter().find(|em| em.id == last && em.is_first) {
                    return em.time;
                }
                assert!(e.has_work());
            }
        };
        assert!(ttft_of_last(8) > ttft_of_last(2));
    }
}

#[cfg(test)]
mod paged_tests {
    use super::*;
    use crate::gpu::{a100_80, GpuProfile};
    use crate::llm::llama2_13b;
    use crate::perf_model::{PerfModel, PerfModelConfig};

    fn engine(max_weight: u64, policy: AdmissionPolicy) -> Engine {
        let perf =
            PerfModel::new(llama2_13b(), GpuProfile::new(a100_80(), 1), PerfModelConfig::default());
        Engine::new(perf, max_weight).with_policy(policy)
    }

    /// Drain an engine, returning (tokens, firsts, completions, clock).
    fn drain(e: &mut Engine) -> (u64, usize, usize, f64) {
        let (mut tokens, mut firsts, mut completions) = (0u64, 0usize, 0usize);
        while e.has_work() {
            let r = e.step();
            tokens += r.emissions.iter().map(|em| u64::from(em.count)).sum::<u64>();
            firsts += r.emissions.iter().filter(|em| em.is_first).count();
            completions += r.completions.len();
        }
        (tokens, firsts, completions, e.clock())
    }

    #[test]
    fn paged_conserves_tokens_under_preemption() {
        // Cache holds ~1200 tokens; four requests of 300+300 would reserve
        // 2400 under ReserveFull but run (with preemptions) under paging.
        let mut e = engine(1_200, AdmissionPolicy::PagedCurrent);
        for _ in 0..4 {
            e.submit(RequestSpec::new(300, 300)).unwrap();
        }
        let (tokens, firsts, completions, _) = drain(&mut e);
        assert_eq!(tokens, 4 * 300);
        assert_eq!(firsts, 4, "is_first must fire once per request");
        assert_eq!(completions, 4);
        assert!(e.preemptions() > 0, "cache overflow should trigger preemption");
    }

    #[test]
    fn paged_admits_more_concurrency_than_reservation() {
        // Same budget: full reservation admits 2 requests (2x600=1200 <=
        // 1300); paging starts all 4 (4x301 = 1204 up front).
        let mut reserve = engine(1_300, AdmissionPolicy::ReserveFull);
        let mut paged = engine(1_300, AdmissionPolicy::PagedCurrent);
        for e in [&mut reserve, &mut paged] {
            for _ in 0..4 {
                e.submit(RequestSpec::new(300, 300)).unwrap();
            }
        }
        reserve.step();
        paged.step();
        assert_eq!(reserve.running_len(), 2);
        assert_eq!(paged.running_len(), 4);
    }

    #[test]
    fn reserve_full_never_preempts() {
        let mut e = engine(5_000, AdmissionPolicy::ReserveFull);
        for _ in 0..10 {
            e.submit(RequestSpec::new(200, 200)).unwrap();
        }
        drain(&mut e);
        assert_eq!(e.preemptions(), 0);
    }

    #[test]
    fn paged_without_pressure_behaves_like_reservation() {
        let spec = RequestSpec::new(100, 50);
        let mut a = engine(1_000_000, AdmissionPolicy::ReserveFull);
        let mut b = engine(1_000_000, AdmissionPolicy::PagedCurrent);
        for e in [&mut a, &mut b] {
            for _ in 0..5 {
                e.submit(spec).unwrap();
            }
        }
        let (ta, fa, ca, clock_a) = drain(&mut a);
        let (tb, fb, cb, clock_b) = drain(&mut b);
        assert_eq!((ta, fa, ca), (tb, fb, cb));
        assert!((clock_a - clock_b).abs() < 1e-9);
    }

    #[test]
    fn preempted_requests_still_complete_in_order_of_recovery() {
        let mut e = engine(900, AdmissionPolicy::PagedCurrent);
        let ids: Vec<RequestId> =
            (0..3).map(|_| e.submit(RequestSpec::new(200, 250)).unwrap()).collect();
        let mut done = Vec::new();
        while e.has_work() {
            for c in e.step().completions {
                done.push(c.id);
            }
        }
        assert_eq!(done.len(), 3);
        for id in ids {
            assert!(done.contains(&id));
        }
    }

    #[test]
    #[should_panic(expected = "cannot change policy")]
    fn policy_change_with_work_panics() {
        let mut e = engine(10_000, AdmissionPolicy::ReserveFull);
        e.submit(RequestSpec::new(10, 10)).unwrap();
        let _ = e.with_policy(AdmissionPolicy::PagedCurrent);
    }
}
