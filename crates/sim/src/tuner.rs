//! Maximum-batch-weight tuning via binary search with OOM corner-case
//! probes (Sec. III-C-2 of the paper).
//!
//! As shown in the paper's Fig. 1, the maximum batch weight should be set as
//! high as possible — but GPU profiles differ in memory capacity, so the
//! weight must be optimized individually for each one before load testing.
//! LLM-Pilot does so by binary-searching the weight: each probe constructs
//! "a sequence of batches … designed to test all possible corner cases,
//! with respect to the batch size, number of input and output tokens, that
//! can be constructed according to the given maximum batch weight", and a
//! candidate weight is valid only if none of the corner batches OOMs.

use llmpilot_obs::Recorder;

use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::memory::MemoryModel;

/// Result of a batch-weight tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningOutcome {
    /// The optimized maximum batch weight, tokens.
    pub max_batch_weight: u64,
    /// Number of binary-search iterations performed.
    pub search_steps: u32,
    /// Number of corner-case probe batches evaluated.
    pub probes_evaluated: u64,
}

/// Probe batches never replicate a request more than this many times. At
/// ~4.2M requests the batch spans > 8M tokens of KV, far beyond what any
/// catalog GPU profile can hold, so the cap never changes a real tuning
/// result — it only bounds probe cost while the exponential ramp hunts the
/// divergence guard on a pathological (e.g. unbounded-memory) model.
const MAX_PROBE_BATCH: u64 = 1 << 22;

/// Build the corner-case probe batches for a candidate weight `w`:
///
/// 1. the largest single request constructible under `w` (maximum per-request
///    KV and attention workspace),
/// 2. as many maximum-*input* requests as fit (prefill-heavy corner),
/// 3. as many maximum-*output* requests as fit (KV-reservation corner),
/// 4. as many minimal `(1, 1)` requests as fit (maximum batch size corner).
pub fn corner_case_batches(mem: &MemoryModel, w: u64) -> Vec<Vec<(u32, u32)>> {
    let (cap_in, cap_out) = mem.largest_request();
    let mut batches = Vec::with_capacity(4);

    let w_minus_one = w.saturating_sub(1).min(u64::from(u32::MAX)) as u32;

    // 1. Largest single request under w.
    let single_in = cap_in.min(w_minus_one).max(1);
    let single_out = cap_out
        .min((w.saturating_sub(u64::from(single_in))).max(1).min(u64::from(u32::MAX)) as u32)
        .max(1);
    batches.push(vec![(single_in, single_out)]);

    // 2. Prefill-heavy: requests of (cap_in, 1).
    let per = u64::from(cap_in) + 1;
    let k = (w / per).clamp(1, MAX_PROBE_BATCH) as usize;
    batches.push(vec![(cap_in.min(w_minus_one).max(1), 1); k]);

    // 3. KV-heavy: requests of (1, cap_out).
    let per = 1 + u64::from(cap_out);
    let k = (w / per).clamp(1, MAX_PROBE_BATCH) as usize;
    batches.push(vec![(1, cap_out.min(w_minus_one).max(1)); k]);

    // 4. Batch-size corner: (1, 1) requests.
    let k = (w / 2).clamp(1, MAX_PROBE_BATCH) as usize;
    batches.push(vec![(1, 1); k]);

    batches
}

/// Whether a candidate maximum batch weight survives every corner-case probe.
pub fn weight_is_valid(mem: &MemoryModel, w: u64, probes_evaluated: &mut u64) -> bool {
    if w < 2 {
        return false;
    }
    for batch in corner_case_batches(mem, w) {
        *probes_evaluated += 1;
        if !mem.tuning_batch_fits(&batch) {
            return false;
        }
    }
    true
}

/// Binary-search the largest valid maximum batch weight for the given
/// `(LLM, GPU profile)` memory model.
///
/// The lower end of the search is the weight of the largest single request
/// the workload generator can produce — if even that is invalid the
/// deployment is infeasible and tuning fails (an × cell of Table III).
pub fn tune_max_batch_weight(mem: &MemoryModel) -> Result<TuningOutcome, SimError> {
    tune_max_batch_weight_traced(mem, &Recorder::disabled())
}

/// [`tune_max_batch_weight`] with structured tracing: records a
/// `tuner.tune` span (args: LLM, profile) with `tuner.ramp` and
/// `tuner.bisect` child phases, plus `tuner.probes` / `tuner.steps`
/// counters. Tracing never changes the tuning result.
pub fn tune_max_batch_weight_traced(
    mem: &MemoryModel,
    recorder: &Recorder,
) -> Result<TuningOutcome, SimError> {
    let _tune_span =
        recorder.span("tuner.tune").arg("llm", mem.llm().name).arg("profile", mem.profile().name());

    let (cap_in, cap_out) = mem.largest_request();
    let lo_start = u64::from(cap_in) + u64::from(cap_out);

    let mut probes = 0u64;
    let mut steps = 0u32;

    if !weight_is_valid(mem, lo_start, &mut probes) {
        recorder.counter_add("tuner.probes", probes);
        return Err(SimError::TuningFailed {
            llm: mem.llm().name.to_string(),
            profile: mem.profile().name(),
        });
    }

    // Exponential ramp-up to bracket the boundary, then bisect.
    let mut lo = lo_start;
    let mut hi = lo_start;
    {
        let mut ramp_span = recorder.span("tuner.ramp");
        loop {
            let candidate = hi.saturating_mul(2);
            steps += 1;
            if weight_is_valid(mem, candidate, &mut probes) {
                lo = candidate;
                hi = candidate;
            } else {
                hi = candidate;
                break;
            }
            // Memory is finite; the KV cache alone bounds the weight. If the
            // ramp sails past this cap without ever hitting an invalid weight,
            // the boundary cannot be bracketed and `lo` was never validated as
            // *maximal* — report divergence instead of returning it.
            if candidate > 1 << 40 {
                ramp_span.set_arg("diverged", true);
                drop(ramp_span);
                recorder.counter_add("tuner.probes", probes);
                recorder.counter_add("tuner.steps", u64::from(steps));
                return Err(SimError::TuningDiverged {
                    llm: mem.llm().name.to_string(),
                    profile: mem.profile().name(),
                    weight: lo,
                });
            }
        }
        ramp_span.set_arg("bracket_lo", lo);
        ramp_span.set_arg("bracket_hi", hi);
    }
    // Invariant: lo valid, hi invalid.
    {
        let _bisect_span = recorder.span("tuner.bisect");
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            steps += 1;
            if weight_is_valid(mem, mid, &mut probes) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
    recorder.counter_add("tuner.probes", probes);
    recorder.counter_add("tuner.steps", u64::from(steps));

    Ok(TuningOutcome { max_batch_weight: lo, search_steps: steps, probes_evaluated: probes })
}

/// Fault-aware tuning: under a [`FaultPlan`], the run may abort with an OOM
/// at the weight boundary (the real-world failure the corner-case probes
/// guard against). With [`FaultPlan::none`] this is exactly
/// [`tune_max_batch_weight`].
pub fn tune_max_batch_weight_faulty(
    mem: &MemoryModel,
    plan: &FaultPlan,
    site: &str,
) -> Result<TuningOutcome, SimError> {
    tune_max_batch_weight_faulty_traced(mem, plan, site, &Recorder::disabled())
}

/// [`tune_max_batch_weight_faulty`] with structured tracing; injected
/// OOMs record a zero-work `tuner.tune` span flagged `injected_oom`.
pub fn tune_max_batch_weight_faulty_traced(
    mem: &MemoryModel,
    plan: &FaultPlan,
    site: &str,
    recorder: &Recorder,
) -> Result<TuningOutcome, SimError> {
    if plan.tuning_ooms(site) {
        let _span = recorder
            .span("tuner.tune")
            .arg("llm", mem.llm().name)
            .arg("profile", mem.profile().name())
            .arg("injected_oom", true);
        let bound = mem.max_batch_weight_bound();
        return Err(SimError::OutOfMemory { running_weight: bound, max_batch_weight: bound });
    }
    tune_max_batch_weight_traced(mem, recorder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{a100_40, a100_80, h100, t4, GpuProfile};
    use crate::llm::{flan_t5_xxl, flan_ul2, llama2_13b, llama2_7b};
    use crate::memory::MemoryConfig;

    fn mem(llm: crate::llm::LlmSpec, gpu: crate::gpu::GpuSpec, count: u32) -> MemoryModel {
        MemoryModel::new(llm, GpuProfile::new(gpu, count), MemoryConfig::default())
    }

    #[test]
    fn tuned_weight_fits_largest_request() {
        let m = mem(llama2_13b(), a100_80(), 1);
        let out = tune_max_batch_weight(&m).unwrap();
        let (i, o) = m.largest_request();
        assert!(out.max_batch_weight >= u64::from(i) + u64::from(o));
    }

    #[test]
    fn tuned_weight_is_maximal() {
        // One token more must be invalid.
        let m = mem(llama2_13b(), a100_80(), 1);
        let out = tune_max_batch_weight(&m).unwrap();
        let mut probes = 0;
        assert!(weight_is_valid(&m, out.max_batch_weight, &mut probes));
        assert!(!weight_is_valid(&m, out.max_batch_weight + 1, &mut probes));
    }

    #[test]
    fn bigger_memory_tunes_bigger_weight() {
        let small = tune_max_batch_weight(&mem(llama2_13b(), a100_40(), 1)).unwrap();
        let large = tune_max_batch_weight(&mem(llama2_13b(), a100_80(), 1)).unwrap();
        let huge = tune_max_batch_weight(&mem(llama2_13b(), h100(), 4)).unwrap();
        assert!(large.max_batch_weight > small.max_batch_weight);
        assert!(huge.max_batch_weight > large.max_batch_weight);
    }

    #[test]
    fn infeasible_deployment_fails_tuning() {
        let m = mem(flan_ul2(), t4(), 1);
        assert!(matches!(tune_max_batch_weight(&m), Err(SimError::TuningFailed { .. })));
    }

    #[test]
    fn corner_batches_respect_candidate_weight() {
        let m = mem(llama2_7b(), a100_80(), 1);
        for w in [6000u64, 20_000, 100_000] {
            for batch in corner_case_batches(&m, w) {
                let total: u64 = batch.iter().map(|&(i, o)| u64::from(i) + u64::from(o)).sum();
                assert!(
                    total <= w || batch.len() == 1,
                    "corner batch exceeds weight {w}: total {total}"
                );
                assert!(!batch.is_empty());
                for &(i, o) in &batch {
                    assert!(i >= 1 && o >= 1);
                }
            }
        }
    }

    #[test]
    fn non_flash_models_tune_smaller_weights_than_flash_peers() {
        // flan-t5-xxl (non-flash, 11B) must reserve the attention matrix;
        // per unit of free memory it admits fewer tokens than a flash model.
        let t5 = mem(flan_t5_xxl(), a100_40(), 1);
        let out = tune_max_batch_weight(&t5).unwrap();
        // Sanity window: a few thousand to a few tens of thousands of tokens.
        assert!(
            out.max_batch_weight > 5_000 && out.max_batch_weight < 60_000,
            "weight = {}",
            out.max_batch_weight
        );
    }

    #[test]
    fn absurd_memory_reports_divergence() {
        // A (hypothetical) GPU with effectively unbounded memory never
        // produces an invalid candidate, so the ramp cannot bracket the
        // boundary; tuning must report divergence instead of returning a
        // weight never validated as maximal.
        let mut gpu = a100_80();
        gpu.memory_gib = 1.0e12;
        let m = mem(llama2_13b(), gpu, 1);
        match tune_max_batch_weight(&m) {
            Err(SimError::TuningDiverged { weight, .. }) => {
                assert!(weight > 1 << 30, "diverged weight should be huge, got {weight}")
            }
            other => panic!("expected TuningDiverged, got {other:?}"),
        }
    }

    #[test]
    fn injected_tuning_oom_is_transient() {
        use crate::fault::{FaultConfig, FaultPlan};
        let m = mem(llama2_13b(), a100_80(), 1);
        let plan = FaultPlan::new(FaultConfig { tuning_oom_prob: 1.0, ..FaultConfig::disabled() });
        assert!(matches!(
            tune_max_batch_weight_faulty(&m, &plan, "tune/x"),
            Err(SimError::OutOfMemory { .. })
        ));
        // The no-fault plan reproduces the plain tuner exactly.
        assert_eq!(
            tune_max_batch_weight_faulty(&m, &FaultPlan::none(), "tune/x").unwrap(),
            tune_max_batch_weight(&m).unwrap()
        );
    }

    #[test]
    fn traced_tuning_matches_untraced_and_records_phases() {
        let m = mem(llama2_13b(), a100_80(), 1);
        let rec = Recorder::enabled();
        let traced = tune_max_batch_weight_traced(&m, &rec).unwrap();
        assert_eq!(traced, tune_max_batch_weight(&m).unwrap());
        let trace = rec.snapshot();
        let find = |name: &str| trace.events.iter().find(|e| e.name == name);
        let tune = find("tuner.tune").expect("tuner.tune span");
        let ramp = find("tuner.ramp").expect("tuner.ramp span");
        let bisect = find("tuner.bisect").expect("tuner.bisect span");
        assert_eq!(ramp.parent, Some(tune.id));
        assert_eq!(bisect.parent, Some(tune.id));
        assert!(tune.args.iter().any(|(k, _)| k == "llm"));
        assert!(trace
            .counters
            .iter()
            .any(|(n, v)| n == "tuner.probes" && *v == traced.probes_evaluated));
    }

    #[test]
    fn search_terminates_quickly() {
        let m = mem(llama2_13b(), h100(), 2);
        let out = tune_max_batch_weight(&m).unwrap();
        assert!(out.search_steps < 64);
        assert!(out.probes_evaluated < 300);
    }
}
