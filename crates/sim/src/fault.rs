//! Deterministic fault injection for the simulator.
//!
//! On real hardware the characterization pipeline (Sec. III) is exactly the
//! part that fails: OOMs at the batch-weight boundary (the reason Sec.
//! III-C-2's corner-case probes exist), transient deploy failures, crashed
//! pods mid-load-test, and straggler iterations. This module lets the
//! simulator reproduce those failures *reproducibly*: a [`FaultPlan`] is a
//! seeded description of which fault classes fire and how often, and every
//! decision is drawn from a SplitMix64 stream derived from `(plan seed,
//! site string)` — so two runs with the same plan make identical decisions,
//! regardless of thread scheduling or call interleaving across cells.
//!
//! Fault *sites* are strings identifying one decision point, e.g.
//! `deploy/Llama-2-13b/1xA100-80GB#a0`. Including the retry attempt in the
//! site makes faults *transient*: a retried attempt draws fresh faults while
//! the measurement seed of the cell stays fixed, so a retry that succeeds
//! produces bit-identical rows to a fault-free run.
//!
//! [`FaultPlan::none`] — the default everywhere — injects nothing and draws
//! no random numbers, keeping existing behaviour unchanged.

use crate::error::SimError;

/// Probabilities and knobs of every fault class. All probabilities are in
/// `[0, 1]`; zero disables the class.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault-decision streams (independent from measurement
    /// seeds).
    pub seed: u64,
    /// Probability that one deployment attempt fails transiently.
    pub deploy_failure_prob: f64,
    /// Probability that one batch-weight tuning run aborts with an OOM at
    /// the weight boundary (the real-world corner-case crash).
    pub tuning_oom_prob: f64,
    /// Per-step probability of an OOM *when the running batch weight is
    /// within [`Self::oom_margin`] of the engine's maximum batch weight*.
    pub oom_prob: f64,
    /// Capacity margin that puts a step at OOM risk: a step is "near
    /// capacity" when `running_weight >= (1 - oom_margin) * max_batch_weight`.
    pub oom_margin: f64,
    /// Probability that one load test crashes at a uniform virtual-time
    /// point inside its window.
    pub crash_prob: f64,
    /// Probability that one pod of a multi-pod deployment is down for a
    /// cluster load test (traffic re-balances to survivors).
    pub pod_failure_prob: f64,
    /// Amplitude of multiplicative latency noise on every modeled step time:
    /// each queried step time is scaled by a factor uniform in
    /// `[1 - amplitude, 1 + amplitude]`. Zero disables noise entirely.
    pub latency_noise_amplitude: f64,
    /// Probability that a step is a straggler.
    pub straggler_prob: f64,
    /// Multiplier applied to straggler steps (on top of the noise factor).
    pub straggler_factor: f64,
}

impl FaultConfig {
    /// A configuration that injects nothing.
    pub fn disabled() -> Self {
        Self {
            seed: 0,
            deploy_failure_prob: 0.0,
            tuning_oom_prob: 0.0,
            oom_prob: 0.0,
            oom_margin: 0.05,
            crash_prob: 0.0,
            pod_failure_prob: 0.0,
            latency_noise_amplitude: 0.0,
            straggler_prob: 0.0,
            straggler_factor: 4.0,
        }
    }

    /// A configuration where the three *transient, retryable* fault classes
    /// (deploy failure, tuning OOM, load-test crash) all fire with
    /// probability `p`.
    pub fn transient(seed: u64, p: f64) -> Self {
        Self { seed, deploy_failure_prob: p, tuning_oom_prob: p, crash_prob: p, ..Self::disabled() }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a site string, mixed with the plan seed.
fn site_hash(seed: u64, site: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in site.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A deterministic per-site random stream (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRng {
    state: u64,
}

impl SiteRng {
    /// Derive the stream for `site` under `seed`.
    pub fn new(seed: u64, site: &str) -> Self {
        SiteRng { state: site_hash(seed, site) }
    }

    /// Next `u64` of the stream.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Next uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw; `false` without consuming the stream when `p <= 0`.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }
}

/// A seeded, cloneable description of the faults to inject.
///
/// The plan itself is immutable; callers derive per-site state
/// ([`LoadFaults`], [`LatencyNoise`], boolean decisions) from it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The no-fault plan: injects nothing, draws nothing, costs nothing.
    pub fn none() -> Self {
        FaultPlan { config: FaultConfig::disabled() }
    }

    /// A plan injecting faults per `config`.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan { config }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Whether the plan can never inject anything.
    pub fn is_none(&self) -> bool {
        let c = &self.config;
        c.deploy_failure_prob <= 0.0
            && c.tuning_oom_prob <= 0.0
            && c.oom_prob <= 0.0
            && c.crash_prob <= 0.0
            && c.pod_failure_prob <= 0.0
            && c.latency_noise_amplitude <= 0.0
            && c.straggler_prob <= 0.0
    }

    fn rng(&self, class: &str, site: &str) -> SiteRng {
        SiteRng::new(self.config.seed, &format!("{class}/{site}"))
    }

    /// Whether the deployment attempt at `site` fails transiently.
    pub fn deploy_fails(&self, site: &str) -> bool {
        self.config.deploy_failure_prob > 0.0
            && self.rng("deploy", site).chance(self.config.deploy_failure_prob)
    }

    /// Whether the batch-weight tuning run at `site` aborts with a
    /// boundary OOM.
    pub fn tuning_ooms(&self, site: &str) -> bool {
        self.config.tuning_oom_prob > 0.0
            && self.rng("tune", site).chance(self.config.tuning_oom_prob)
    }

    /// Whether the pod at `site` is down for this cluster load test.
    pub fn pod_fails(&self, site: &str) -> bool {
        self.config.pod_failure_prob > 0.0
            && self.rng("pod", site).chance(self.config.pod_failure_prob)
    }

    /// The in-test fault state for one load test of `duration_s` virtual
    /// seconds at `site`: a pre-drawn crash time (if the test crashes) and
    /// the per-step OOM injector.
    pub fn load_faults(&self, site: &str, duration_s: f64) -> LoadFaults {
        let crash_at = if self.config.crash_prob > 0.0 {
            let mut rng = self.rng("crash", site);
            if rng.chance(self.config.crash_prob) {
                Some(rng.next_f64() * duration_s)
            } else {
                None
            }
        } else {
            None
        };
        let oom = if self.config.oom_prob > 0.0 {
            Some(OomFault {
                prob: self.config.oom_prob,
                margin: self.config.oom_margin,
                rng: self.rng("oom", site),
            })
        } else {
            None
        };
        LoadFaults { crash_at, oom, max_steps: None, max_virtual_s: None, steps_used: 0 }
    }

    /// The latency-noise state for one engine at `site`; [`LatencyNoise`] is
    /// inert (always factor 1.0, no draws) when the plan has no noise.
    pub fn latency_noise(&self, site: &str) -> LatencyNoise {
        if self.config.latency_noise_amplitude <= 0.0 && self.config.straggler_prob <= 0.0 {
            return LatencyNoise::none();
        }
        LatencyNoise {
            amplitude: self.config.latency_noise_amplitude,
            straggler_prob: self.config.straggler_prob,
            straggler_factor: self.config.straggler_factor,
            rng: Some(std::cell::RefCell::new(self.rng("noise", site))),
        }
    }
}

/// Per-step OOM injection state for one load test.
#[derive(Debug, Clone)]
pub struct OomFault {
    prob: f64,
    margin: f64,
    rng: SiteRng,
}

impl OomFault {
    /// Whether this step OOMs, given the running batch weight and capacity.
    /// Draws only when the batch is within the risk margin of capacity.
    pub fn step_ooms(&mut self, running_weight: u64, max_batch_weight: u64) -> bool {
        let threshold = (1.0 - self.margin) * max_batch_weight as f64;
        running_weight as f64 >= threshold && self.rng.chance(self.prob)
    }
}

/// Fault state threaded through one load test; see
/// [`crate::load::run_load_test_faulty`].
#[derive(Debug, Clone)]
pub struct LoadFaults {
    /// Virtual time at which the engine crashes (pre-drawn), if any.
    pub crash_at: Option<f64>,
    /// Per-step OOM injector, if enabled.
    pub oom: Option<OomFault>,
    /// Step budget: the load test fails with
    /// [`SimError::BudgetExhausted`] instead of running past this many
    /// engine iterations (a guard against virtual-time stalls).
    pub max_steps: Option<u64>,
    /// Virtual-time budget: the load test fails with
    /// [`SimError::BudgetExhausted`] once the engine clock passes this many
    /// seconds (a guard against runaway windows).
    pub max_virtual_s: Option<f64>,
    /// Engine iterations consumed by the load test (written back by
    /// `run_load_test_faulty`; cumulative across calls reusing the value).
    pub steps_used: u64,
}

impl LoadFaults {
    /// No crash, no OOM, no step budget — the exact behaviour of a plain
    /// [`crate::load::run_load_test`].
    pub fn none() -> Self {
        LoadFaults {
            crash_at: None,
            oom: None,
            max_steps: None,
            max_virtual_s: None,
            steps_used: 0,
        }
    }

    /// Check the fault state after one engine step at virtual time `clock`.
    pub fn check_step(
        &mut self,
        clock: f64,
        running_weight: u64,
        max_batch_weight: u64,
    ) -> Result<(), SimError> {
        self.steps_used += 1;
        if let Some(max) = self.max_steps {
            if self.steps_used > max {
                return Err(SimError::BudgetExhausted {
                    what: format!("load test exceeded step budget of {max}"),
                });
            }
        }
        if let Some(max) = self.max_virtual_s {
            if clock > max {
                return Err(SimError::BudgetExhausted {
                    what: format!("load test exceeded virtual-time budget of {max}s"),
                });
            }
        }
        if let Some(t) = self.crash_at {
            if clock >= t {
                return Err(SimError::EngineCrashed { at_s: t });
            }
        }
        if let Some(oom) = &mut self.oom {
            if oom.step_ooms(running_weight, max_batch_weight) {
                return Err(SimError::OutOfMemory { running_weight, max_batch_weight });
            }
        }
        Ok(())
    }
}

/// Deterministic multiplicative latency noise for one engine's step times.
///
/// The inert instance ([`LatencyNoise::none`]) always returns factor `1.0`
/// and never draws, so attaching it changes nothing — bit for bit.
#[derive(Debug, Clone)]
pub struct LatencyNoise {
    amplitude: f64,
    straggler_prob: f64,
    straggler_factor: f64,
    /// `None` for the inert instance. Interior mutability because the
    /// performance model queries are `&self`.
    rng: Option<std::cell::RefCell<SiteRng>>,
}

impl LatencyNoise {
    /// The inert noise source.
    pub fn none() -> Self {
        LatencyNoise { amplitude: 0.0, straggler_prob: 0.0, straggler_factor: 1.0, rng: None }
    }

    /// Whether this source can ever perturb a step time.
    pub fn is_none(&self) -> bool {
        self.rng.is_none()
    }

    /// The multiplicative factor for the next step time. `1.0` (no draw)
    /// when inert.
    pub fn factor(&self) -> f64 {
        let Some(rng) = &self.rng else {
            return 1.0;
        };
        let mut rng = rng.borrow_mut();
        let mut f = 1.0;
        if self.amplitude > 0.0 {
            f *= 1.0 + self.amplitude * (2.0 * rng.next_f64() - 1.0);
        }
        if rng.chance(self.straggler_prob) {
            f *= self.straggler_factor;
        }
        f.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_streams_are_deterministic_and_distinct() {
        let mut a = SiteRng::new(7, "deploy/m/p#a0");
        let mut b = SiteRng::new(7, "deploy/m/p#a0");
        let mut c = SiteRng::new(7, "deploy/m/p#a1");
        let mut d = SiteRng::new(8, "deploy/m/p#a0");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
        assert_ne!(xs[0], d.next_u64());
    }

    #[test]
    fn none_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert!(!plan.deploy_fails("deploy/x"));
        assert!(!plan.tuning_ooms("tune/x"));
        assert!(!plan.pod_fails("pod/x"));
        let lf = plan.load_faults("load/x", 120.0);
        assert!(lf.crash_at.is_none());
        assert!(lf.oom.is_none());
        let noise = plan.latency_noise("noise/x");
        assert!(noise.is_none());
        for _ in 0..16 {
            assert_eq!(noise.factor(), 1.0);
        }
    }

    #[test]
    fn certain_faults_always_fire() {
        let plan = FaultPlan::new(FaultConfig {
            deploy_failure_prob: 1.0,
            crash_prob: 1.0,
            ..FaultConfig::disabled()
        });
        assert!(plan.deploy_fails("deploy/x"));
        let lf = plan.load_faults("load/x", 60.0);
        let t = lf.crash_at.expect("crash must be scheduled");
        assert!((0.0..60.0).contains(&t));
    }

    #[test]
    fn fault_decisions_depend_on_attempt_site() {
        // With p = 0.5, different attempt suffixes must produce different
        // decisions for at least one of a handful of cells.
        let plan = FaultPlan::new(FaultConfig::transient(42, 0.5));
        let differs = (0..16).any(|cell| {
            plan.deploy_fails(&format!("c{cell}#a0")) != plan.deploy_fails(&format!("c{cell}#a1"))
        });
        assert!(differs);
    }

    #[test]
    fn oom_only_fires_near_capacity() {
        let plan = FaultPlan::new(FaultConfig {
            oom_prob: 1.0,
            oom_margin: 0.1,
            ..FaultConfig::disabled()
        });
        let mut lf = plan.load_faults("load/x", 60.0);
        // Far below capacity: never.
        assert!(lf.check_step(1.0, 100, 10_000).is_ok());
        // Within 10% of capacity with prob 1: always.
        assert!(matches!(lf.check_step(2.0, 9_500, 10_000), Err(SimError::OutOfMemory { .. })));
    }

    #[test]
    fn step_budget_trips() {
        let mut lf = LoadFaults::none();
        lf.max_steps = Some(3);
        for _ in 0..3 {
            assert!(lf.check_step(0.0, 0, 100).is_ok());
        }
        assert!(matches!(lf.check_step(0.0, 0, 100), Err(SimError::BudgetExhausted { .. })));
    }

    #[test]
    fn latency_noise_stays_within_band() {
        let plan =
            FaultPlan::new(FaultConfig { latency_noise_amplitude: 0.2, ..FaultConfig::disabled() });
        let noise = plan.latency_noise("noise/x");
        for _ in 0..256 {
            let f = noise.factor();
            assert!((0.8..=1.2).contains(&f), "factor {f} out of band");
        }
    }

    #[test]
    fn stragglers_multiply() {
        let plan = FaultPlan::new(FaultConfig {
            straggler_prob: 1.0,
            straggler_factor: 5.0,
            ..FaultConfig::disabled()
        });
        let noise = plan.latency_noise("noise/x");
        assert_eq!(noise.factor(), 5.0);
    }
}
