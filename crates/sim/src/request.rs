//! Inference request descriptions consumed by the simulator.

/// What the simulator needs to know about one inference request: how many
/// prompt tokens arrive, how many output tokens will be generated, and the
/// client-side batch size (the production traces carry batch sizes 1–5; a
/// request with batch size `b` carries `b` parallel sequences with the same
/// shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestSpec {
    /// Prompt length in tokens (≥ 1).
    pub input_tokens: u32,
    /// Number of output tokens to generate (≥ 1).
    pub output_tokens: u32,
    /// Client-side batch size (≥ 1).
    pub batch_size: u32,
}

impl RequestSpec {
    /// A single-sequence request.
    pub fn new(input_tokens: u32, output_tokens: u32) -> Self {
        Self { input_tokens, output_tokens, batch_size: 1 }
    }

    /// A request carrying `batch_size` identical sequences.
    pub fn batched(input_tokens: u32, output_tokens: u32, batch_size: u32) -> Self {
        Self { input_tokens, output_tokens, batch_size }
    }

    /// The request's contribution to the server's batch weight: the total
    /// number of input and output tokens across all of its sequences
    /// (Sec. II-B — the weight reserves room for the full response).
    pub fn weight(&self) -> u64 {
        u64::from(self.batch_size) * (u64::from(self.input_tokens) + u64::from(self.output_tokens))
    }

    /// Total output tokens the request will produce.
    pub fn total_output_tokens(&self) -> u64 {
        u64::from(self.batch_size) * u64::from(self.output_tokens)
    }
}

/// Anything that can produce a stream of inference requests — implemented by
/// the workload generator (via an adapter in `llmpilot-core`) and by simple
/// fixed/synthetic sources used in tests and benches.
pub trait RequestSource {
    /// Produce the next request.
    fn next_request(&mut self) -> RequestSpec;
}

/// A source that cycles deterministically through a fixed list of requests.
#[derive(Debug, Clone)]
pub struct FixedSource {
    requests: Vec<RequestSpec>,
    cursor: usize,
}

impl FixedSource {
    /// Cycle through `requests` forever.
    pub fn new(requests: Vec<RequestSpec>) -> Self {
        assert!(!requests.is_empty(), "FixedSource needs at least one request");
        Self { requests, cursor: 0 }
    }

    /// A source that always returns the same request.
    pub fn constant(spec: RequestSpec) -> Self {
        Self::new(vec![spec])
    }
}

impl RequestSource for FixedSource {
    fn next_request(&mut self) -> RequestSpec {
        let spec = self.requests[self.cursor];
        self.cursor = (self.cursor + 1) % self.requests.len();
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_counts_input_and_output_times_batch() {
        let r = RequestSpec::batched(100, 50, 3);
        assert_eq!(r.weight(), 450);
        assert_eq!(r.total_output_tokens(), 150);
    }

    #[test]
    fn fixed_source_cycles() {
        let a = RequestSpec::new(1, 1);
        let b = RequestSpec::new(2, 2);
        let mut s = FixedSource::new(vec![a, b]);
        assert_eq!(s.next_request(), a);
        assert_eq!(s.next_request(), b);
        assert_eq!(s.next_request(), a);
    }

    #[test]
    fn constant_source_repeats() {
        let r = RequestSpec::new(10, 20);
        let mut s = FixedSource::constant(r);
        for _ in 0..5 {
            assert_eq!(s.next_request(), r);
        }
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn empty_fixed_source_panics() {
        let _ = FixedSource::new(vec![]);
    }
}
