//! Multi-pod deployments with load balancing (Sec. II-C, Table I).
//!
//! A *deployment* manages `n` replicas (pods) of one inference service; the
//! cluster load-balances users across pods, which operate independently —
//! which is why the paper observes near-perfect scaling of throughput with
//! the number of pods. Pods are independent sequential simulators, so the
//! deployment runs them in parallel with rayon.

use rayon::prelude::*;

use crate::engine::Engine;
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::gpu::GpuProfile;
use crate::llm::LlmSpec;
use crate::load::{run_load_test_faulty, LoadMetrics, LoadTestConfig};
use crate::memory::{MemoryConfig, MemoryModel};
use crate::perf_model::{PerfModel, PerfModelConfig};
use crate::request::RequestSource;
use crate::tuner::tune_max_batch_weight;

/// Aggregated result of load testing a multi-pod deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterMetrics {
    /// Number of pods in the deployment.
    pub pods: u32,
    /// Total concurrent users across the deployment.
    pub total_users: u32,
    /// Per-pod load-test metrics (empty entries are pods that received zero
    /// users and are skipped).
    pub per_pod: Vec<LoadMetrics>,
    /// Mean throughput per pod, tokens/s (Table I's cell value).
    pub throughput_per_pod: f64,
    /// Total deployment throughput, tokens/s.
    pub total_throughput: f64,
    /// Number of pods that failed at test start (injected faults); their
    /// traffic was re-balanced onto the survivors. Always 0 without faults.
    pub failed_pods: u32,
}

/// Split `total_users` across `pods` as evenly as possible (round-robin
/// load balancing): the first `total_users % pods` pods get one extra user.
pub fn split_users(total_users: u32, pods: u32) -> Vec<u32> {
    assert!(pods >= 1);
    let base = total_users / pods;
    let extra = total_users % pods;
    (0..pods).map(|i| base + u32::from(i < extra)).collect()
}

/// A deployment specification: one LLM on one GPU profile, replicated over
/// `pods` pods, with a shared tuned maximum batch weight.
#[derive(Debug, Clone)]
pub struct Deployment {
    llm: LlmSpec,
    profile: GpuProfile,
    pods: u32,
    max_batch_weight: u64,
    mem_config: MemoryConfig,
    perf_config: PerfModelConfig,
}

impl Deployment {
    /// Create a deployment, tuning the maximum batch weight once (all pods
    /// share the same hardware, hence the same tuned weight). Fails when the
    /// combination is infeasible.
    pub fn new(llm: LlmSpec, profile: GpuProfile, pods: u32) -> Result<Self, SimError> {
        Self::with_configs(llm, profile, pods, MemoryConfig::default(), PerfModelConfig::default())
    }

    /// Create a deployment with explicit model configurations.
    pub fn with_configs(
        llm: LlmSpec,
        profile: GpuProfile,
        pods: u32,
        mem_config: MemoryConfig,
        perf_config: PerfModelConfig,
    ) -> Result<Self, SimError> {
        assert!(pods >= 1, "a deployment needs at least one pod");
        let mem = MemoryModel::new(llm.clone(), profile.clone(), mem_config.clone());
        let feas = mem.feasibility();
        if !feas.is_feasible() {
            return Err(SimError::InfeasibleDeployment {
                llm: llm.name.to_string(),
                profile: profile.name(),
                reason: format!("{feas:?}"),
            });
        }
        let tuned = tune_max_batch_weight(&mem)?;
        Ok(Self {
            llm,
            profile,
            pods,
            max_batch_weight: tuned.max_batch_weight,
            mem_config,
            perf_config,
        })
    }

    /// The tuned maximum batch weight shared by all pods.
    pub fn max_batch_weight(&self) -> u64 {
        self.max_batch_weight
    }

    /// Number of pods.
    pub fn pods(&self) -> u32 {
        self.pods
    }

    /// The deployment's LLM.
    pub fn llm(&self) -> &LlmSpec {
        &self.llm
    }

    /// The deployment's GPU profile.
    pub fn profile(&self) -> &GpuProfile {
        &self.profile
    }

    /// Hourly cost of the whole deployment.
    pub fn cost_per_hour(&self) -> f64 {
        self.profile.cost_per_hour() * self.pods as f64
    }

    /// Build a fresh engine for one pod.
    fn make_engine(&self) -> Engine {
        let perf = PerfModel::new(self.llm.clone(), self.profile.clone(), self.perf_config.clone());
        Engine::new(perf, self.max_batch_weight)
    }

    /// Memory model shared by the pods.
    pub fn memory_model(&self) -> MemoryModel {
        MemoryModel::new(self.llm.clone(), self.profile.clone(), self.mem_config.clone())
    }

    /// Load-test the deployment with `total_users` concurrent users split
    /// across pods. `make_source` builds an independent request source for
    /// each pod (typically seeded by the pod index). Pods run in parallel.
    pub fn run_load_test<S, F>(
        &self,
        total_users: u32,
        duration_s: f64,
        make_source: F,
    ) -> Result<ClusterMetrics, SimError>
    where
        S: RequestSource + Send,
        F: Fn(usize) -> S + Sync,
    {
        self.run_load_test_faulty(total_users, duration_s, make_source, &FaultPlan::none(), "")
    }

    /// Fault-aware variant of [`Self::run_load_test`]: under a [`FaultPlan`],
    /// individual pods may be down for the whole test (decided up front,
    /// deterministically per `site`/pod index) with their traffic re-balanced
    /// onto the survivors, surviving pods may crash or OOM mid-test, and
    /// step times pick up latency noise. With [`FaultPlan::none`] this is
    /// bit-identical to the plain load test.
    pub fn run_load_test_faulty<S, F>(
        &self,
        total_users: u32,
        duration_s: f64,
        make_source: F,
        plan: &FaultPlan,
        site: &str,
    ) -> Result<ClusterMetrics, SimError>
    where
        S: RequestSource + Send,
        F: Fn(usize) -> S + Sync,
    {
        let survivors: Vec<usize> = (0..self.pods as usize)
            .filter(|i| !plan.pod_fails(&format!("{site}/pod{i}")))
            .collect();
        if survivors.is_empty() {
            return Err(SimError::AllPodsFailed { pods: self.pods });
        }
        let failed_pods = self.pods - survivors.len() as u32;
        // Traffic that would have reached the failed pods re-balances onto
        // the survivors.
        let split = split_users(total_users, survivors.len() as u32);
        let mem = self.memory_model();
        let results: Result<Vec<Option<LoadMetrics>>, SimError> = survivors
            .par_iter()
            .zip(&split)
            .map(|(&i, &users)| {
                if users == 0 {
                    return Ok(None);
                }
                let pod_site = format!("{site}/pod{i}");
                let mut engine =
                    self.make_engine().with_latency_noise(plan.latency_noise(&pod_site));
                let mut source = make_source(i);
                let config = LoadTestConfig { duration_s, warmup_s: 0.0, concurrent_users: users };
                let mut faults = plan.load_faults(&pod_site, duration_s);
                run_load_test_faulty(&mut engine, &mem, &mut source, &config, &mut faults).map(Some)
            })
            .collect();
        let per_pod: Vec<LoadMetrics> = results?.into_iter().flatten().collect();
        let total_throughput: f64 = per_pod.iter().map(|m| m.throughput_tokens_per_s).sum();
        Ok(ClusterMetrics {
            pods: self.pods,
            total_users,
            // Per-pod average over *all* pods of the deployment (idle pods
            // included), matching the paper's Table I cell semantics.
            throughput_per_pod: total_throughput / f64::from(self.pods),
            total_throughput,
            per_pod,
            failed_pods,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{a100_80, t4};
    use crate::llm::{flan_ul2, llama2_13b};
    use crate::request::{FixedSource, RequestSpec};

    fn source(_pod: usize) -> FixedSource {
        FixedSource::new(vec![
            RequestSpec::new(400, 150),
            RequestSpec::new(900, 300),
            RequestSpec::new(150, 60),
        ])
    }

    #[test]
    fn split_users_is_even() {
        assert_eq!(split_users(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(split_users(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(split_users(2, 4), vec![1, 1, 0, 0]);
    }

    #[test]
    fn infeasible_deployment_is_rejected() {
        assert!(matches!(
            Deployment::new(flan_ul2(), GpuProfile::new(t4(), 1), 1),
            Err(SimError::InfeasibleDeployment { .. })
        ));
    }

    #[test]
    fn near_perfect_pod_scaling() {
        // Table I's diagonal property: cases with the same users:pods ratio
        // have nearly identical throughput per pod.
        let d1 = Deployment::new(llama2_13b(), GpuProfile::new(a100_80(), 1), 1).unwrap();
        let d2 = Deployment::new(llama2_13b(), GpuProfile::new(a100_80(), 1), 2).unwrap();
        let m1 = d1.run_load_test(8, 120.0, source).unwrap();
        let m2 = d2.run_load_test(16, 120.0, source).unwrap();
        let rel = (m1.throughput_per_pod - m2.throughput_per_pod).abs()
            / m1.throughput_per_pod.max(m2.throughput_per_pod);
        assert!(rel < 0.05, "relative deviation {rel}");
    }

    #[test]
    fn total_throughput_sums_pods() {
        let d = Deployment::new(llama2_13b(), GpuProfile::new(a100_80(), 1), 4).unwrap();
        let m = d.run_load_test(32, 60.0, source).unwrap();
        assert_eq!(m.per_pod.len(), 4);
        let sum: f64 = m.per_pod.iter().map(|p| p.throughput_tokens_per_s).sum();
        assert!((m.total_throughput - sum).abs() < 1e-9);
        assert!((m.throughput_per_pod - sum / 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_user_pods_are_skipped() {
        let d = Deployment::new(llama2_13b(), GpuProfile::new(a100_80(), 1), 8).unwrap();
        let m = d.run_load_test(2, 30.0, source).unwrap();
        assert_eq!(m.per_pod.len(), 2);
    }

    #[test]
    fn deployment_cost_scales_with_pods() {
        let d1 = Deployment::new(llama2_13b(), GpuProfile::new(a100_80(), 1), 1).unwrap();
        let d3 = Deployment::new(llama2_13b(), GpuProfile::new(a100_80(), 1), 3).unwrap();
        assert!((d3.cost_per_hour() - 3.0 * d1.cost_per_hour()).abs() < 1e-9);
    }

    #[test]
    fn none_plan_cluster_is_bit_identical() {
        let d = Deployment::new(llama2_13b(), GpuProfile::new(a100_80(), 1), 3).unwrap();
        let plain = d.run_load_test(12, 60.0, source).unwrap();
        let faulty =
            d.run_load_test_faulty(12, 60.0, source, &FaultPlan::none(), "cluster/x").unwrap();
        assert_eq!(faulty.failed_pods, 0);
        assert_eq!(plain.per_pod.len(), faulty.per_pod.len());
        assert_eq!(plain.total_throughput, faulty.total_throughput);
        for (a, b) in plain.per_pod.iter().zip(&faulty.per_pod) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn all_pods_failed_is_reported() {
        let d = Deployment::new(llama2_13b(), GpuProfile::new(a100_80(), 1), 2).unwrap();
        let plan = FaultPlan::new(crate::fault::FaultConfig {
            pod_failure_prob: 1.0,
            ..crate::fault::FaultConfig::disabled()
        });
        assert_eq!(
            d.run_load_test_faulty(8, 30.0, source, &plan, "cluster/x"),
            Err(SimError::AllPodsFailed { pods: 2 })
        );
    }

    #[test]
    fn failed_pods_rebalance_traffic_to_survivors() {
        let d = Deployment::new(llama2_13b(), GpuProfile::new(a100_80(), 1), 4).unwrap();
        // Scan seeds for a plan where some (but not all) of the 4 pods fail;
        // the decision function is cheap and deterministic.
        let plan = (0..64)
            .map(|seed| {
                FaultPlan::new(crate::fault::FaultConfig {
                    seed,
                    pod_failure_prob: 0.5,
                    ..crate::fault::FaultConfig::disabled()
                })
            })
            .find(|p| {
                let down = (0..4).filter(|i| p.pod_fails(&format!("cluster/x/pod{i}"))).count();
                (1..=3).contains(&down)
            })
            .expect("some seed must down 1..=3 of 4 pods");
        let m = d.run_load_test_faulty(16, 60.0, source, &plan, "cluster/x").unwrap();
        assert!(m.failed_pods >= 1 && m.failed_pods <= 3);
        // All 16 users were re-balanced onto the survivors.
        assert_eq!(m.per_pod.len(), 4 - m.failed_pods as usize);
        let served: u32 = m.per_pod.iter().map(|p| p.concurrent_users).sum();
        assert_eq!(served, 16);
    }

    #[test]
    fn more_pods_serve_more_users_at_same_per_user_rate() {
        let d1 = Deployment::new(llama2_13b(), GpuProfile::new(a100_80(), 1), 1).unwrap();
        let d4 = Deployment::new(llama2_13b(), GpuProfile::new(a100_80(), 1), 4).unwrap();
        let m1 = d1.run_load_test(128, 120.0, source).unwrap();
        let m4 = d4.run_load_test(128, 120.0, source).unwrap();
        // Four pods at 32 users each beat one saturated pod at 128 users.
        assert!(m4.total_throughput > m1.total_throughput);
    }
}
