//! LLM architecture descriptions and the catalog of the paper's ten models.
//!
//! An [`LlmSpec`] carries exactly the features the GPU recommendation tool
//! uses to describe a model (Sec. IV-B-1): model family, encoder-decoder vs
//! decoder-only, parameter/layer/position/head counts, flash-attention use,
//! vocabulary size, relative-attention parameters and training data type —
//! plus the structural figures the simulator's memory and roofline models
//! need (hidden size, KV head count, encoder fraction).

/// Transformer topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LlmArch {
    /// Decoder-only causal LM (GPT-style).
    DecoderOnly,
    /// Encoder-decoder (T5-style); generation runs the decoder over the
    /// encoder's output via cross-attention.
    EncoderDecoder,
}

/// Numeric storage type of the published weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// IEEE half precision (2 bytes / parameter).
    Fp16,
    /// bfloat16 (2 bytes / parameter).
    Bf16,
    /// IEEE single precision (4 bytes / parameter).
    Fp32,
}

impl DType {
    /// Bytes per parameter.
    pub fn bytes(self) -> f64 {
        match self {
            DType::Fp16 | DType::Bf16 => 2.0,
            DType::Fp32 => 4.0,
        }
    }
}

/// Static description of one LLM.
#[derive(Debug, Clone, PartialEq)]
pub struct LlmSpec {
    /// Hub identifier, e.g. `"bigcode/starcoder"`.
    pub name: &'static str,
    /// Model family / type string (an ML feature, e.g. `"t5"`, `"llama"`).
    pub family: &'static str,
    /// Total parameter count.
    pub num_parameters: f64,
    /// Transformer topology.
    pub arch: LlmArch,
    /// Total number of transformer layers (encoder + decoder for enc-dec).
    pub num_layers: u32,
    /// Hidden (model) dimension.
    pub hidden_size: u32,
    /// Number of attention heads.
    pub num_heads: u32,
    /// Number of key/value heads (`1` for multi-query attention, equal to
    /// `num_heads` for standard multi-head attention).
    pub num_kv_heads: u32,
    /// Maximum sequence length (number of positions).
    pub num_positions: u32,
    /// Vocabulary size.
    pub vocab_size: u32,
    /// Whether the serving stack uses flash attention for this model. Flash
    /// models cannot be deployed on GPUs with compute capability < 8.0 and
    /// avoid materializing the O(n²) attention matrix during prefill.
    pub uses_flash_attention: bool,
    /// Relative-attention maximum distance (T5-style models; 0 otherwise).
    pub relative_attention_max_distance: u32,
    /// Relative-attention bucket count (T5-style models; 0 otherwise).
    pub relative_attention_num_buckets: u32,
    /// Weight data type.
    pub dtype: DType,
    /// Fraction of parameters in the encoder (0 for decoder-only models).
    pub encoder_fraction: f64,
    /// Whether the serving stack supports tensor-parallel sharding for this
    /// model ("at the time of writing this work TGIS didn't support tensor
    /// parallelism for certain LLMs" — Sec. V-B).
    pub supports_tensor_parallel: bool,
}

impl LlmSpec {
    /// Weight footprint in bytes.
    pub fn weight_bytes(&self) -> f64 {
        self.num_parameters * self.dtype.bytes()
    }

    /// Decoder layer count (all layers for decoder-only models).
    pub fn decoder_layers(&self) -> u32 {
        match self.arch {
            LlmArch::DecoderOnly => self.num_layers,
            LlmArch::EncoderDecoder => self.num_layers / 2,
        }
    }

    /// Encoder layer count (0 for decoder-only models).
    pub fn encoder_layers(&self) -> u32 {
        self.num_layers - self.decoder_layers()
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> u32 {
        self.hidden_size / self.num_heads
    }

    /// KV-cache bytes stored per *generated-sequence* token: keys and values
    /// for every decoder layer, over the KV heads only (multi-query models
    /// store a single KV head).
    pub fn kv_bytes_per_token(&self) -> f64 {
        let kv_dim = (self.num_kv_heads * self.head_dim()) as f64;
        2.0 * self.decoder_layers() as f64 * kv_dim * self.dtype.bytes()
    }

    /// Cross-attention KV bytes stored per *input* token (enc-dec only): the
    /// decoder caches keys/values of the encoder output for every decoder
    /// layer. Zero for decoder-only models, whose input tokens land in the
    /// ordinary self-attention cache instead (see [`Self::kv_bytes_per_token`]).
    pub fn cross_kv_bytes_per_input_token(&self) -> f64 {
        match self.arch {
            LlmArch::DecoderOnly => 0.0,
            LlmArch::EncoderDecoder => {
                let kv_dim = (self.num_kv_heads * self.head_dim()) as f64;
                2.0 * self.decoder_layers() as f64 * kv_dim * self.dtype.bytes()
            }
        }
    }

    /// Parameters active during decode (decoder side only for enc-dec).
    pub fn decoder_parameters(&self) -> f64 {
        self.num_parameters * (1.0 - self.encoder_fraction)
    }

    /// Parameters active while processing the prompt: the encoder for
    /// enc-dec models, the full stack for decoder-only models.
    pub fn prompt_parameters(&self) -> f64 {
        match self.arch {
            LlmArch::DecoderOnly => self.num_parameters,
            LlmArch::EncoderDecoder => self.num_parameters * self.encoder_fraction,
        }
    }
}

/// google/flan-t5-xl — 3B encoder-decoder.
pub fn flan_t5_xl() -> LlmSpec {
    LlmSpec {
        name: "google/flan-t5-xl",
        family: "t5",
        num_parameters: 2.85e9,
        arch: LlmArch::EncoderDecoder,
        num_layers: 48,
        hidden_size: 2048,
        num_heads: 32,
        num_kv_heads: 32,
        num_positions: 512,
        vocab_size: 32128,
        uses_flash_attention: false,
        relative_attention_max_distance: 128,
        relative_attention_num_buckets: 32,
        dtype: DType::Bf16,
        encoder_fraction: 0.45,
        supports_tensor_parallel: true,
    }
}

/// google/flan-t5-xxl — 11B encoder-decoder.
pub fn flan_t5_xxl() -> LlmSpec {
    LlmSpec {
        name: "google/flan-t5-xxl",
        family: "t5",
        num_parameters: 11.3e9,
        arch: LlmArch::EncoderDecoder,
        num_layers: 48,
        hidden_size: 4096,
        num_heads: 64,
        num_kv_heads: 64,
        num_positions: 512,
        vocab_size: 32128,
        uses_flash_attention: false,
        relative_attention_max_distance: 128,
        relative_attention_num_buckets: 32,
        dtype: DType::Bf16,
        encoder_fraction: 0.45,
        supports_tensor_parallel: true,
    }
}

/// google/flan-ul2 — 20B encoder-decoder.
pub fn flan_ul2() -> LlmSpec {
    LlmSpec {
        name: "google/flan-ul2",
        family: "t5",
        num_parameters: 20.0e9,
        arch: LlmArch::EncoderDecoder,
        num_layers: 64,
        hidden_size: 4096,
        num_heads: 16,
        num_kv_heads: 16,
        num_positions: 2048,
        vocab_size: 32128,
        uses_flash_attention: false,
        relative_attention_max_distance: 128,
        relative_attention_num_buckets: 32,
        dtype: DType::Bf16,
        encoder_fraction: 0.45,
        supports_tensor_parallel: true,
    }
}

/// ibm/mpt-7b-instruct2 — 7B decoder-only (no TGIS tensor parallelism).
/// Served from the FP32 checkpoint; its ALiBi attention was not
/// flash-compatible in TGIS at the time (hence × rather than − on V100 in
/// the paper's Table III).
pub fn mpt_7b() -> LlmSpec {
    LlmSpec {
        name: "ibm/mpt-7b-instruct2",
        family: "mpt",
        num_parameters: 6.7e9,
        arch: LlmArch::DecoderOnly,
        num_layers: 32,
        hidden_size: 4096,
        num_heads: 32,
        num_kv_heads: 32,
        num_positions: 2048,
        vocab_size: 50432,
        uses_flash_attention: false,
        relative_attention_max_distance: 0,
        relative_attention_num_buckets: 0,
        dtype: DType::Fp32,
        encoder_fraction: 0.0,
        supports_tensor_parallel: false,
    }
}

/// bigscience/mt0-xxl — 13B encoder-decoder (no TGIS tensor parallelism).
pub fn mt0_xxl() -> LlmSpec {
    LlmSpec {
        name: "bigscience/mt0-xxl",
        family: "mt5",
        num_parameters: 12.9e9,
        arch: LlmArch::EncoderDecoder,
        num_layers: 48,
        hidden_size: 4096,
        num_heads: 64,
        num_kv_heads: 64,
        num_positions: 1024,
        vocab_size: 250112,
        uses_flash_attention: false,
        relative_attention_max_distance: 128,
        relative_attention_num_buckets: 32,
        dtype: DType::Bf16,
        encoder_fraction: 0.45,
        supports_tensor_parallel: false,
    }
}

/// Salesforce/codegen2-16B — 16B decoder-only (no TGIS tensor parallelism).
/// Published as an FP32 checkpoint, which is why the paper could only
/// collect its data on the 80 GB H100 (Table III).
pub fn codegen2_16b() -> LlmSpec {
    LlmSpec {
        name: "Salesforce/codegen2-16B",
        family: "codegen2",
        num_parameters: 16.0e9,
        arch: LlmArch::DecoderOnly,
        num_layers: 34,
        hidden_size: 6144,
        num_heads: 24,
        num_kv_heads: 24,
        num_positions: 2048,
        vocab_size: 51200,
        uses_flash_attention: false,
        relative_attention_max_distance: 0,
        relative_attention_num_buckets: 0,
        dtype: DType::Fp32,
        encoder_fraction: 0.0,
        supports_tensor_parallel: false,
    }
}

/// Llama-2-7b — 7B decoder-only with flash attention.
pub fn llama2_7b() -> LlmSpec {
    LlmSpec {
        name: "Llama-2-7b",
        family: "llama",
        num_parameters: 6.7e9,
        arch: LlmArch::DecoderOnly,
        num_layers: 32,
        hidden_size: 4096,
        num_heads: 32,
        num_kv_heads: 32,
        num_positions: 4096,
        vocab_size: 32000,
        uses_flash_attention: true,
        relative_attention_max_distance: 0,
        relative_attention_num_buckets: 0,
        dtype: DType::Fp16,
        encoder_fraction: 0.0,
        supports_tensor_parallel: true,
    }
}

/// Llama-2-13b — 13B decoder-only with flash attention.
pub fn llama2_13b() -> LlmSpec {
    LlmSpec {
        name: "Llama-2-13b",
        family: "llama",
        num_parameters: 13.0e9,
        arch: LlmArch::DecoderOnly,
        num_layers: 40,
        hidden_size: 5120,
        num_heads: 40,
        num_kv_heads: 40,
        num_positions: 4096,
        vocab_size: 32000,
        uses_flash_attention: true,
        relative_attention_max_distance: 0,
        relative_attention_num_buckets: 0,
        dtype: DType::Fp16,
        encoder_fraction: 0.0,
        supports_tensor_parallel: true,
    }
}

/// EleutherAI/gpt-neox-20b — 20B decoder-only with flash attention.
pub fn gpt_neox_20b() -> LlmSpec {
    LlmSpec {
        name: "EleutherAI/gpt-neox-20b",
        family: "gpt_neox",
        num_parameters: 20.6e9,
        arch: LlmArch::DecoderOnly,
        num_layers: 44,
        hidden_size: 6144,
        num_heads: 64,
        num_kv_heads: 64,
        num_positions: 2048,
        vocab_size: 50432,
        uses_flash_attention: true,
        relative_attention_max_distance: 0,
        relative_attention_num_buckets: 0,
        dtype: DType::Fp16,
        encoder_fraction: 0.0,
        supports_tensor_parallel: true,
    }
}

/// bigcode/starcoder — 15B decoder-only with flash attention and
/// multi-query attention (a single KV head).
pub fn starcoder() -> LlmSpec {
    LlmSpec {
        name: "bigcode/starcoder",
        family: "gpt_bigcode",
        num_parameters: 15.5e9,
        arch: LlmArch::DecoderOnly,
        num_layers: 40,
        hidden_size: 6144,
        num_heads: 48,
        num_kv_heads: 1,
        num_positions: 8192,
        vocab_size: 49152,
        uses_flash_attention: true,
        relative_attention_max_distance: 0,
        relative_attention_num_buckets: 0,
        dtype: DType::Fp16,
        encoder_fraction: 0.0,
        supports_tensor_parallel: true,
    }
}

/// The ten LLMs of the paper's characterization dataset (Table III rows).
pub fn llm_catalog() -> Vec<LlmSpec> {
    vec![
        flan_t5_xl(),
        flan_t5_xxl(),
        flan_ul2(),
        mpt_7b(),
        mt0_xxl(),
        codegen2_16b(),
        llama2_7b(),
        llama2_13b(),
        gpt_neox_20b(),
        starcoder(),
    ]
}

/// Look up an LLM by its catalog name.
pub fn llm_by_name(name: &str) -> Option<LlmSpec> {
    llm_catalog().into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_ten_models_with_unique_names() {
        let cat = llm_catalog();
        assert_eq!(cat.len(), 10);
        let mut names: Vec<_> = cat.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn weight_bytes_are_two_per_param_for_half_precision() {
        let m = llama2_13b();
        assert!((m.weight_bytes() - 26.0e9).abs() < 1e8);
    }

    #[test]
    fn enc_dec_layer_split_is_even() {
        let m = flan_t5_xxl();
        assert_eq!(m.encoder_layers(), 24);
        assert_eq!(m.decoder_layers(), 24);
        let d = llama2_7b();
        assert_eq!(d.encoder_layers(), 0);
        assert_eq!(d.decoder_layers(), 32);
    }

    #[test]
    fn multi_query_attention_shrinks_kv_cache() {
        let sc = starcoder();
        let neox = gpt_neox_20b();
        // Starcoder stores one KV head; its per-token cache must be tens of
        // times smaller than a comparable MHA model.
        assert!(sc.kv_bytes_per_token() * 20.0 < neox.kv_bytes_per_token());
    }

    #[test]
    fn cross_attention_cache_only_for_enc_dec() {
        assert!(flan_t5_xxl().cross_kv_bytes_per_input_token() > 0.0);
        assert_eq!(llama2_13b().cross_kv_bytes_per_input_token(), 0.0);
    }

    #[test]
    fn no_tensor_parallel_models_match_paper() {
        let no_tp: Vec<_> = llm_catalog()
            .into_iter()
            .filter(|m| !m.supports_tensor_parallel)
            .map(|m| m.name)
            .collect();
        assert_eq!(
            no_tp,
            vec!["ibm/mpt-7b-instruct2", "bigscience/mt0-xxl", "Salesforce/codegen2-16B"]
        );
    }

    #[test]
    fn flash_attention_models_match_paper() {
        // Rows with "−" on V100 in Table III: llama-2-7b/13b, neox, starcoder.
        let flash: Vec<_> =
            llm_catalog().into_iter().filter(|m| m.uses_flash_attention).map(|m| m.name).collect();
        assert_eq!(
            flash,
            vec!["Llama-2-7b", "Llama-2-13b", "EleutherAI/gpt-neox-20b", "bigcode/starcoder"]
        );
    }

    #[test]
    fn decoder_parameters_below_total_for_enc_dec() {
        let m = flan_ul2();
        assert!(m.decoder_parameters() < m.num_parameters);
        assert!(m.prompt_parameters() < m.num_parameters);
        let d = starcoder();
        assert_eq!(d.decoder_parameters(), d.num_parameters);
        assert_eq!(d.prompt_parameters(), d.num_parameters);
    }

    #[test]
    fn llm_by_name_round_trips() {
        for m in llm_catalog() {
            assert_eq!(llm_by_name(m.name).unwrap(), m);
        }
        assert!(llm_by_name("gpt-5").is_none());
    }

    #[test]
    fn head_dim_divides_hidden_size() {
        for m in llm_catalog() {
            assert_eq!(m.head_dim() * m.num_heads, m.hidden_size, "{}", m.name);
        }
    }
}
