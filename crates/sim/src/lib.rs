#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # llmpilot-sim
//!
//! Discrete-event simulator of LLM inference services on heterogeneous GPUs.
//!
//! This crate is the hardware/serving substrate of the LLM-Pilot
//! reproduction: it replaces the paper's GPU fleet and TGIS inference server
//! with a mechanistic simulation — a roofline step-time model
//! (compute-bound prompt processing, bandwidth-bound decode), an explicit
//! memory model (weights, KV cache, activation workspace), a
//! continuous-batching engine with maximum-batch-weight admission, a
//! batch-weight tuner, a closed-loop load tester and a multi-pod cluster
//! abstraction.
//!
//! ```
//! use llmpilot_sim::prelude::*;
//!
//! let llm = llm::llama2_13b();
//! let profile = GpuProfile::new(gpu::a100_80(), 1);
//! let deployment = Deployment::new(llm, profile, 1).unwrap();
//! let metrics = deployment
//!     .run_load_test(4, 30.0, |_pod| FixedSource::constant(RequestSpec::new(300, 100)))
//!     .unwrap();
//! assert!(metrics.total_throughput > 0.0);
//! ```

pub mod cluster;
pub mod engine;
pub mod error;
pub mod fault;
pub mod gpu;
pub mod llm;
pub mod load;
pub mod memory;
pub mod perf_model;
pub mod request;
pub mod tuner;

/// Convenient re-exports of the crate's main types.
pub mod prelude {
    pub use crate::cluster::{ClusterMetrics, Deployment};
    pub use crate::engine::{AdmissionPolicy, Engine, PhaseHists, RequestId, StepResult};
    pub use crate::error::SimError;
    pub use crate::fault::{FaultConfig, FaultPlan, LatencyNoise, LoadFaults};
    pub use crate::gpu::{self, GpuProfile, GpuSpec};
    pub use crate::llm::{self, LlmSpec};
    pub use crate::load::{
        run_load_test, run_load_test_faulty, run_load_test_observed, LoadMetrics, LoadTestConfig,
        SampleHists,
    };
    pub use crate::memory::{Feasibility, MemoryConfig, MemoryModel};
    pub use crate::perf_model::{PerfModel, PerfModelConfig};
    pub use crate::request::{FixedSource, RequestSource, RequestSpec};
    pub use crate::tuner::{tune_max_batch_weight, tune_max_batch_weight_faulty, TuningOutcome};
}
