//! GPU hardware descriptions and the catalog of GPU types used in the paper.
//!
//! A [`GpuSpec`] carries the architectural features the GPU recommendation
//! tool consumes (Sec. IV-B-1 of the paper), plus the figures the performance
//! model needs (memory capacity, memory bandwidth, peak FP16 throughput, and
//! interconnect). A [`GpuProfile`] is the paper's deployment unit: a number of
//! GPUs of one type assigned to a single pod, sharded tensor-parallel.

use std::fmt;

/// GPU micro-architecture generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GpuArch {
    /// Volta (V100), compute capability 7.0.
    Volta,
    /// Turing (T4), compute capability 7.5.
    Turing,
    /// Ampere (A100, A10), compute capability 8.x.
    Ampere,
    /// Hopper (H100), compute capability 9.0.
    Hopper,
}

impl GpuArch {
    /// Numeric code used as an ordinal ML feature (newer arch → larger code).
    pub fn code(self) -> u8 {
        match self {
            GpuArch::Volta => 0,
            GpuArch::Turing => 1,
            GpuArch::Ampere => 2,
            GpuArch::Hopper => 3,
        }
    }
}

/// Physical form factor; SXM parts have higher power/bandwidth envelopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormFactor {
    /// Socketed mezzanine module (NVLink-capable boards).
    Sxm,
    /// PCIe add-in card.
    Pcie,
}

/// Static description of one GPU type.
///
/// All throughput figures are *peak datasheet* numbers; the performance model
/// derates them with empirical efficiency factors (see
/// [`crate::perf_model::PerfModelConfig`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A100-40GB"`. Unique within a catalog.
    pub name: &'static str,
    /// On-board memory in GiB.
    pub memory_gib: f64,
    /// Peak memory bandwidth in GB/s.
    pub memory_bandwidth_gbps: f64,
    /// Peak dense FP16 tensor-core throughput in TFLOPS.
    pub fp16_tflops: f64,
    /// Peak FP32 (non-tensor) throughput in TFLOPS; used as an ML feature.
    pub fp32_tflops: f64,
    /// Micro-architecture generation.
    pub arch: GpuArch,
    /// CUDA compute capability, e.g. `8.0` for A100.
    pub compute_capability: f64,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Number of CUDA cores.
    pub cuda_cores: u32,
    /// Number of tensor cores.
    pub tensor_cores: u32,
    /// Number of RT cores (0 for data-center parts without RT).
    pub rt_cores: u32,
    /// Texture mapping units.
    pub texture_units: u32,
    /// Raster operation pipelines.
    pub rops: u32,
    /// PCIe interface generation (3, 4 or 5).
    pub pcie_gen: u8,
    /// Whether GPUs of this type in one pod are linked with NVLink.
    pub nvlink: bool,
    /// NVLink aggregate bandwidth in GB/s (0 if `nvlink` is false).
    pub nvlink_bandwidth_gbps: f64,
    /// Form factor.
    pub form_factor: FormFactor,
    /// On-demand cost per GPU-hour in USD (amortized from AWS instance
    /// pricing; users may substitute their own cost table).
    pub cost_per_hour: f64,
}

impl GpuSpec {
    /// Memory capacity in bytes.
    pub fn memory_bytes(&self) -> f64 {
        self.memory_gib * 1024.0 * 1024.0 * 1024.0
    }

    /// Whether this GPU can run flash attention (requires compute capability
    /// ≥ 7.5, i.e. Turing or newer; the paper notes TGIS could not deploy
    /// flash-attention LLMs on V100s "because of insufficient CUDA
    /// capability").
    pub fn supports_flash_attention(&self) -> bool {
        self.compute_capability >= 7.5
    }

    /// Effective inter-GPU bandwidth for tensor-parallel collectives, GB/s.
    ///
    /// NVLink parts use the NVLink fabric; PCIe-only parts are limited by the
    /// PCIe link (≈2 GB/s per lane-GB for gen4 x16 ≈ 32 GB/s full duplex).
    pub fn interconnect_bandwidth_gbps(&self) -> f64 {
        if self.nvlink {
            self.nvlink_bandwidth_gbps
        } else {
            match self.pcie_gen {
                0..=3 => 16.0,
                4 => 32.0,
                _ => 64.0,
            }
        }
    }
}

/// The paper's deployment unit: `count` GPUs of one `gpu` type per pod,
/// with the LLM sharded across them in a tensor-parallel manner.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuProfile {
    /// GPU type.
    pub gpu: GpuSpec,
    /// Number of GPUs assigned to the pod (1, 2 or 4 in the paper).
    pub count: u32,
}

impl GpuProfile {
    /// Create a profile of `count` GPUs of the given type.
    pub fn new(gpu: GpuSpec, count: u32) -> Self {
        assert!(count >= 1, "a GPU profile needs at least one GPU");
        Self { gpu, count }
    }

    /// Canonical display name, e.g. `"2xA100-40GB"`.
    pub fn name(&self) -> String {
        format!("{}x{}", self.count, self.gpu.name)
    }

    /// Aggregate memory across all GPUs of the pod, bytes.
    pub fn total_memory_bytes(&self) -> f64 {
        self.gpu.memory_bytes() * self.count as f64
    }

    /// Pod cost per hour: GPUs are priced individually.
    pub fn cost_per_hour(&self) -> f64 {
        self.gpu.cost_per_hour * self.count as f64
    }
}

impl fmt::Display for GpuProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// NVIDIA H100 80GB SXM5 (Hopper).
pub fn h100() -> GpuSpec {
    GpuSpec {
        name: "H100-80GB",
        memory_gib: 80.0,
        memory_bandwidth_gbps: 3350.0,
        fp16_tflops: 989.0,
        fp32_tflops: 67.0,
        arch: GpuArch::Hopper,
        compute_capability: 9.0,
        sm_count: 132,
        cuda_cores: 16896,
        tensor_cores: 528,
        rt_cores: 0,
        texture_units: 528,
        rops: 24,
        pcie_gen: 5,
        nvlink: true,
        nvlink_bandwidth_gbps: 900.0,
        form_factor: FormFactor::Sxm,
        cost_per_hour: 12.29, // p5.48xlarge / 8
    }
}

/// NVIDIA A100 80GB SXM4 (Ampere).
pub fn a100_80() -> GpuSpec {
    GpuSpec {
        name: "A100-80GB",
        memory_gib: 80.0,
        memory_bandwidth_gbps: 2039.0,
        fp16_tflops: 312.0,
        fp32_tflops: 19.5,
        arch: GpuArch::Ampere,
        compute_capability: 8.0,
        sm_count: 108,
        cuda_cores: 6912,
        tensor_cores: 432,
        rt_cores: 0,
        texture_units: 432,
        rops: 160,
        pcie_gen: 4,
        nvlink: true,
        nvlink_bandwidth_gbps: 600.0,
        form_factor: FormFactor::Sxm,
        cost_per_hour: 5.12, // p4de.24xlarge / 8
    }
}

/// NVIDIA A100 40GB SXM4 (Ampere).
pub fn a100_40() -> GpuSpec {
    GpuSpec {
        name: "A100-40GB",
        memory_gib: 40.0,
        memory_bandwidth_gbps: 1555.0,
        fp16_tflops: 312.0,
        fp32_tflops: 19.5,
        arch: GpuArch::Ampere,
        compute_capability: 8.0,
        sm_count: 108,
        cuda_cores: 6912,
        tensor_cores: 432,
        rt_cores: 0,
        texture_units: 432,
        rops: 160,
        pcie_gen: 4,
        nvlink: true,
        nvlink_bandwidth_gbps: 600.0,
        form_factor: FormFactor::Sxm,
        cost_per_hour: 4.10, // p4d.24xlarge / 8
    }
}

/// NVIDIA A10G 24GB (Ampere, PCIe).
pub fn a10() -> GpuSpec {
    GpuSpec {
        name: "A10-24GB",
        memory_gib: 24.0,
        memory_bandwidth_gbps: 600.0,
        fp16_tflops: 125.0,
        fp32_tflops: 31.2,
        arch: GpuArch::Ampere,
        compute_capability: 8.6,
        sm_count: 72,
        cuda_cores: 9216,
        tensor_cores: 288,
        rt_cores: 72,
        texture_units: 288,
        rops: 96,
        pcie_gen: 4,
        nvlink: false,
        nvlink_bandwidth_gbps: 0.0,
        form_factor: FormFactor::Pcie,
        cost_per_hour: 1.01, // g5.xlarge
    }
}

/// NVIDIA T4 16GB (Turing, PCIe).
pub fn t4() -> GpuSpec {
    GpuSpec {
        name: "T4-16GB",
        memory_gib: 16.0,
        memory_bandwidth_gbps: 320.0,
        fp16_tflops: 65.0,
        fp32_tflops: 8.1,
        arch: GpuArch::Turing,
        compute_capability: 7.5,
        sm_count: 40,
        cuda_cores: 2560,
        tensor_cores: 320,
        rt_cores: 40,
        texture_units: 160,
        rops: 64,
        pcie_gen: 3,
        nvlink: false,
        nvlink_bandwidth_gbps: 0.0,
        form_factor: FormFactor::Pcie,
        cost_per_hour: 0.53, // g4dn.xlarge
    }
}

/// NVIDIA V100 16GB SXM2 (Volta).
pub fn v100() -> GpuSpec {
    GpuSpec {
        name: "V100-16GB",
        memory_gib: 16.0,
        memory_bandwidth_gbps: 900.0,
        fp16_tflops: 125.0,
        fp32_tflops: 15.7,
        arch: GpuArch::Volta,
        compute_capability: 7.0,
        sm_count: 80,
        cuda_cores: 5120,
        tensor_cores: 640,
        rt_cores: 0,
        texture_units: 320,
        rops: 128,
        pcie_gen: 3,
        nvlink: true,
        nvlink_bandwidth_gbps: 300.0,
        form_factor: FormFactor::Sxm,
        cost_per_hour: 3.06, // p3.2xlarge
    }
}

/// All GPU types appearing in the paper (Table III plus the A100 80GB used in
/// Fig. 1, Table I and the Sec. V-A ablations).
pub fn gpu_catalog() -> Vec<GpuSpec> {
    vec![h100(), a100_80(), a100_40(), a10(), t4(), v100()]
}

/// The paper's 14 benchmarked GPU profiles (Table III header):
/// H100×{1,2,4}, A100-40×{1,2,4}, A10×{1,2}, T4×{1,2,4}, V100×{1,2,4}.
pub fn paper_profiles() -> Vec<GpuProfile> {
    let mut out = Vec::with_capacity(14);
    for &count in &[1u32, 2, 4] {
        out.push(GpuProfile::new(h100(), count));
    }
    for &count in &[1u32, 2, 4] {
        out.push(GpuProfile::new(a100_40(), count));
    }
    for &count in &[1u32, 2] {
        out.push(GpuProfile::new(a10(), count));
    }
    for &count in &[1u32, 2, 4] {
        out.push(GpuProfile::new(t4(), count));
    }
    for &count in &[1u32, 2, 4] {
        out.push(GpuProfile::new(v100(), count));
    }
    out
}

/// Look up a GPU type by its catalog name.
pub fn gpu_by_name(name: &str) -> Option<GpuSpec> {
    gpu_catalog().into_iter().find(|g| g.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_six_types_with_unique_names() {
        let cat = gpu_catalog();
        assert_eq!(cat.len(), 6);
        let mut names: Vec<_> = cat.iter().map(|g| g.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn paper_profiles_count_is_fourteen() {
        assert_eq!(paper_profiles().len(), 14);
    }

    #[test]
    fn paper_profiles_exclude_a100_80() {
        assert!(paper_profiles().iter().all(|p| p.gpu.name != "A100-80GB"));
    }

    #[test]
    fn flash_attention_support_follows_compute_capability() {
        assert!(h100().supports_flash_attention());
        assert!(a100_40().supports_flash_attention());
        assert!(a10().supports_flash_attention());
        assert!(t4().supports_flash_attention());
        assert!(!v100().supports_flash_attention());
    }

    #[test]
    fn profile_memory_and_cost_scale_with_count() {
        let p1 = GpuProfile::new(t4(), 1);
        let p4 = GpuProfile::new(t4(), 4);
        assert!((p4.total_memory_bytes() - 4.0 * p1.total_memory_bytes()).abs() < 1.0);
        assert!((p4.cost_per_hour() - 4.0 * p1.cost_per_hour()).abs() < 1e-12);
    }

    #[test]
    fn interconnect_prefers_nvlink() {
        assert!(h100().interconnect_bandwidth_gbps() > 500.0);
        assert!(t4().interconnect_bandwidth_gbps() <= 32.0);
        assert!(a10().interconnect_bandwidth_gbps() <= 32.0);
    }

    #[test]
    fn memory_ordering_matches_datasheets() {
        // H100 and A100-80 have the largest memories; T4/V100 the smallest.
        assert!(h100().memory_gib > a100_40().memory_gib);
        assert!(a100_40().memory_gib > a10().memory_gib);
        assert!(a10().memory_gib > t4().memory_gib);
        assert_eq!(t4().memory_gib, v100().memory_gib);
    }

    #[test]
    fn gpu_by_name_round_trips() {
        for g in gpu_catalog() {
            assert_eq!(gpu_by_name(g.name).unwrap(), g);
        }
        assert!(gpu_by_name("B200").is_none());
    }

    #[test]
    fn profile_name_format() {
        assert_eq!(GpuProfile::new(a100_40(), 2).name(), "2xA100-40GB");
    }

    #[test]
    fn arch_codes_are_ordered() {
        assert!(GpuArch::Hopper.code() > GpuArch::Ampere.code());
        assert!(GpuArch::Ampere.code() > GpuArch::Turing.code());
        assert!(GpuArch::Turing.code() > GpuArch::Volta.code());
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpu_profile_panics() {
        let _ = GpuProfile::new(t4(), 0);
    }
}
