//! GPU memory accounting: weights, KV cache, activation workspace,
//! deployment feasibility (the paper's Table III) and batch-weight bounds.
//!
//! The model follows how a TGIS/vLLM-style server actually spends GPU memory:
//!
//! * a fixed per-GPU reservation (CUDA context, NCCL buffers, runtime),
//! * the model weights, sharded tensor-parallel across the pod's GPUs,
//! * the KV cache of the running batch — the quantity the *maximum batch
//!   weight* indirectly bounds (Sec. II-B),
//! * a transient activation workspace for the forward pass; servers that do
//!   **not** use flash attention additionally materialize the full
//!   `heads × n × n` attention matrix in FP32 during prompt processing.
//!
//! A `(LLM, GPU profile)` combination is *feasible* when, after loading the
//! weights, enough memory remains to process the largest request the
//! workload generator can produce (Sec. V-B: "the free space after loading
//! the LLM into memory was insufficient to process the largest requests
//! produced by the workload generator").

use crate::gpu::GpuProfile;
use crate::llm::LlmSpec;

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Tunable constants of the memory model.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryConfig {
    /// Per-GPU fixed reservation (CUDA context, runtime, fragmentation), GiB.
    pub reserve_gib_per_gpu: f64,
    /// Activation workspace per prompt token, as a multiple of
    /// `hidden_size × dtype_bytes` (hidden states, attention projections and
    /// the 4× MLP intermediates of one layer, reused across layers).
    pub act_bytes_multiplier: f64,
    /// Largest number of input tokens the workload generator produces
    /// (paper Table II: 1–4093).
    pub max_input_tokens: u32,
    /// Largest number of output tokens the workload generator produces
    /// (paper Table II: 1–1500).
    pub max_output_tokens: u32,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self {
            reserve_gib_per_gpu: 3.25,
            act_bytes_multiplier: 24.0,
            max_input_tokens: 4093,
            max_output_tokens: 1500,
        }
    }
}

/// Why a `(LLM, GPU profile)` combination can or cannot be benchmarked.
/// Mirrors the three cell states of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feasibility {
    /// ✓ — deployable; performance data can be collected.
    Feasible,
    /// × — the profile's memory is too small to host the LLM while leaving
    /// room to process the workload generator's largest requests.
    InsufficientMemory,
    /// − — ruled out by software/hardware limitations: the serving stack has
    /// no tensor-parallel support for this LLM, or the LLM requires flash
    /// attention and the GPU's compute capability is too low.
    Unsupported,
}

impl Feasibility {
    /// Table III cell glyph.
    pub fn glyph(self) -> &'static str {
        match self {
            Feasibility::Feasible => "Y",
            Feasibility::InsufficientMemory => "x",
            Feasibility::Unsupported => "-",
        }
    }

    /// Whether data can be collected for this combination.
    pub fn is_feasible(self) -> bool {
        self == Feasibility::Feasible
    }
}

/// Memory accounting for one `(LLM, GPU profile)` pair.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    llm: LlmSpec,
    profile: GpuProfile,
    config: MemoryConfig,
}

impl MemoryModel {
    /// Build a memory model; does not check feasibility.
    pub fn new(llm: LlmSpec, profile: GpuProfile, config: MemoryConfig) -> Self {
        Self { llm, profile, config }
    }

    /// The LLM being modeled.
    pub fn llm(&self) -> &LlmSpec {
        &self.llm
    }

    /// The GPU profile being modeled.
    pub fn profile(&self) -> &GpuProfile {
        &self.profile
    }

    /// The model's configuration constants.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Aggregate memory usable for weights + batch, after the per-GPU
    /// reservation, in bytes.
    pub fn usable_bytes(&self) -> f64 {
        let reserve = self.config.reserve_gib_per_gpu * GIB * self.profile.count as f64;
        (self.profile.total_memory_bytes() - reserve).max(0.0)
    }

    /// Memory left for the running batch once weights are resident, bytes.
    pub fn batch_budget_bytes(&self) -> f64 {
        (self.usable_bytes() - self.llm.weight_bytes()).max(0.0)
    }

    /// KV-cache bytes for `tokens` total batch-weight tokens.
    ///
    /// The batch weight counts input *and* output tokens of every request in
    /// the batch (Sec. II-B); each such token holds one KV entry (decoder
    /// self-attention for generated tokens, prompt tokens in the prompt KV
    /// cache for decoder-only models, cross-attention cache for enc-dec).
    pub fn kv_bytes(&self, tokens: u64) -> f64 {
        tokens as f64 * self.llm.kv_bytes_per_token()
    }

    /// Linear part of the activation workspace for `tokens` prompt tokens:
    /// hidden states, projections and MLP intermediates, bytes.
    pub fn prefill_linear_bytes(&self, tokens: u64) -> f64 {
        tokens as f64
            * self.llm.hidden_size as f64
            * self.llm.dtype.bytes()
            * self.config.act_bytes_multiplier
    }

    /// FP32 attention-matrix workspace (`heads × n²`) materialized by
    /// non-flash models for a prompt of `input_tokens`; zero for flash
    /// models.
    pub fn attention_matrix_bytes(&self, input_tokens: u32) -> f64 {
        if self.llm.uses_flash_attention {
            0.0
        } else {
            let n = input_tokens as f64;
            self.llm.num_heads as f64 * n * n * 4.0
        }
    }

    /// Transient activation workspace for a prompt-processing pass over
    /// `input_tokens`, in bytes. Non-flash models materialize the FP32
    /// attention matrix (`heads × n²`).
    pub fn prefill_workspace_bytes(&self, input_tokens: u32) -> f64 {
        self.prefill_linear_bytes(u64::from(input_tokens))
            + self.attention_matrix_bytes(input_tokens)
    }

    /// Peak memory the batch-weight tuner must budget for a corner-case
    /// batch (Sec. III-C-2): all requests may arrive simultaneously and
    /// prefill back-to-back within one engine cycle, so the server must hold
    /// the *full-lifetime* KV reservation of every request plus the linear
    /// activations of all prompts in flight and the largest single
    /// attention-matrix workspace, on top of the weights. Bytes.
    pub fn peak_tuning_batch_bytes(&self, batch: &[(u32, u32)]) -> f64 {
        let kv_tokens: u64 = batch.iter().map(|&(i, o)| u64::from(i) + u64::from(o)).sum();
        let prompt_tokens: u64 = batch.iter().map(|&(i, _)| u64::from(i)).sum();
        let max_input = batch.iter().map(|&(i, _)| i).max().unwrap_or(0);
        self.llm.weight_bytes()
            + self.kv_bytes(kv_tokens)
            + self.prefill_linear_bytes(prompt_tokens)
            + self.attention_matrix_bytes(max_input)
    }

    /// Whether a corner-case tuning batch fits (no OOM during tuning probes).
    pub fn tuning_batch_fits(&self, batch: &[(u32, u32)]) -> bool {
        self.peak_tuning_batch_bytes(batch) <= self.usable_bytes()
    }

    /// The longest total sequence (input + output tokens) this LLM can
    /// process: bounded by its position embeddings for absolute/rotary
    /// models; relative-attention (T5-style) models have no hard limit.
    pub fn max_sequence_tokens(&self) -> u32 {
        if self.llm.relative_attention_num_buckets > 0 {
            u32::MAX
        } else {
            self.llm.num_positions
        }
    }

    /// Clamp a request's `(input, output)` token counts to what the LLM can
    /// actually process, preserving the input tokens preferentially (TGIS
    /// truncates generation, not the prompt).
    pub fn cap_request(&self, input_tokens: u32, output_tokens: u32) -> (u32, u32) {
        let cap = self.max_sequence_tokens();
        let input = input_tokens.min(cap.saturating_sub(1)).max(1);
        let output = output_tokens.min(cap - input).max(1);
        (input, output)
    }

    /// The largest single request the workload generator can produce for
    /// this LLM, after sequence-length capping: `(input, output)` tokens.
    pub fn largest_request(&self) -> (u32, u32) {
        self.cap_request(self.config.max_input_tokens, self.config.max_output_tokens)
    }

    /// Peak memory to process a batch described by per-request
    /// `(input_tokens, output_tokens)` pairs: weights + full-lifetime KV of
    /// every request + the largest single prefill workspace, bytes.
    pub fn peak_batch_bytes(&self, batch: &[(u32, u32)]) -> f64 {
        let kv_tokens: u64 = batch.iter().map(|&(i, o)| u64::from(i) + u64::from(o)).sum();
        let max_input = batch.iter().map(|&(i, _)| i).max().unwrap_or(0);
        self.llm.weight_bytes() + self.kv_bytes(kv_tokens) + self.prefill_workspace_bytes(max_input)
    }

    /// Whether a batch fits in the profile's memory (no OOM).
    pub fn batch_fits(&self, batch: &[(u32, u32)]) -> bool {
        self.peak_batch_bytes(batch) <= self.usable_bytes()
    }

    /// Feasibility of this `(LLM, GPU profile)` combination (a Table III cell).
    ///
    /// Checks, in order: tensor-parallel software support, flash-attention
    /// hardware support, then memory (room for the largest workload request).
    pub fn feasibility(&self) -> Feasibility {
        if self.profile.count > 1 && !self.llm.supports_tensor_parallel {
            return Feasibility::Unsupported;
        }
        if self.llm.uses_flash_attention && !self.profile.gpu.supports_flash_attention() {
            return Feasibility::Unsupported;
        }
        let (input, output) = self.largest_request();
        if self.batch_fits(&[(input, output)]) {
            Feasibility::Feasible
        } else {
            Feasibility::InsufficientMemory
        }
    }

    /// Analytic upper bound on the maximum batch weight (in tokens): the
    /// largest `W` such that a batch holding `W` tokens of KV cache plus the
    /// worst-case prefill workspace still fits. Returns 0 when even the
    /// largest single request does not fit.
    pub fn max_batch_weight_bound(&self) -> u64 {
        let (max_in, _) = self.largest_request();
        let fixed = self.llm.weight_bytes() + self.prefill_workspace_bytes(max_in);
        let budget = self.usable_bytes() - fixed;
        if budget <= 0.0 {
            return 0;
        }
        (budget / self.llm.kv_bytes_per_token()).floor() as u64
    }
}

/// Compute the full feasibility matrix for a set of LLMs and profiles,
/// row-major over LLMs (the paper's Table III).
pub fn feasibility_matrix(
    llms: &[LlmSpec],
    profiles: &[GpuProfile],
    config: &MemoryConfig,
) -> Vec<Vec<Feasibility>> {
    llms.iter()
        .map(|m| {
            profiles
                .iter()
                .map(|p| MemoryModel::new(m.clone(), p.clone(), config.clone()).feasibility())
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::*;
    use crate::llm::*;

    fn model(llm: LlmSpec, gpu: GpuSpec, count: u32) -> MemoryModel {
        MemoryModel::new(llm, GpuProfile::new(gpu, count), MemoryConfig::default())
    }

    #[test]
    fn small_model_fits_everywhere() {
        for gpu in gpu_catalog() {
            let m = model(flan_t5_xl(), gpu, 1);
            assert_eq!(m.feasibility(), Feasibility::Feasible, "{}", m.profile());
        }
    }

    #[test]
    fn weights_larger_than_memory_is_infeasible() {
        let m = model(flan_ul2(), t4(), 1);
        assert_eq!(m.feasibility(), Feasibility::InsufficientMemory);
    }

    #[test]
    fn tensor_parallel_unsupported_yields_dash() {
        let m = model(mpt_7b(), h100(), 2);
        assert_eq!(m.feasibility(), Feasibility::Unsupported);
        let m = model(codegen2_16b(), a100_40(), 4);
        assert_eq!(m.feasibility(), Feasibility::Unsupported);
    }

    #[test]
    fn flash_attention_on_v100_yields_dash() {
        for llm in [llama2_7b(), llama2_13b(), gpt_neox_20b(), starcoder()] {
            let m = model(llm, v100(), 1);
            assert_eq!(m.feasibility(), Feasibility::Unsupported, "{}", m.llm().name);
        }
    }

    #[test]
    fn mpt_on_v100_is_memory_bound_not_dash() {
        // The paper's Table III marks mpt-7b-instruct2 on V100 as ×: the
        // FP32-served model exceeds memory before any software concern.
        let m = model(mpt_7b(), v100(), 1);
        assert_eq!(m.feasibility(), Feasibility::InsufficientMemory);
    }

    #[test]
    fn batch_budget_is_monotone_in_gpu_count() {
        let one = model(llama2_13b(), a100_40(), 1);
        let four = model(llama2_13b(), a100_40(), 4);
        assert!(four.batch_budget_bytes() > one.batch_budget_bytes());
    }

    #[test]
    fn kv_bytes_scale_linearly() {
        let m = model(llama2_13b(), a100_80(), 1);
        let one = m.kv_bytes(1000);
        let two = m.kv_bytes(2000);
        assert!((two - 2.0 * one).abs() < 1e-6);
    }

    #[test]
    fn non_flash_prefill_workspace_is_quadratic() {
        let m = model(flan_t5_xxl(), a100_80(), 1);
        let w1 = m.prefill_workspace_bytes(1000);
        let w2 = m.prefill_workspace_bytes(2000);
        // Quadratic attention term dominates at this length.
        assert!(w2 > 3.0 * w1);
        let f = model(llama2_13b(), a100_80(), 1);
        let f1 = f.prefill_workspace_bytes(1000);
        let f2 = f.prefill_workspace_bytes(2000);
        // Flash models grow linearly.
        assert!((f2 - 2.0 * f1).abs() < 1.0);
    }

    #[test]
    fn sequence_cap_applies_to_absolute_position_models() {
        let neox = model(gpt_neox_20b(), h100(), 1);
        assert_eq!(neox.max_sequence_tokens(), 2048);
        let (i, o) = neox.largest_request();
        assert!(i + o <= 2048);
        let t5 = model(flan_t5_xxl(), h100(), 1);
        assert_eq!(t5.max_sequence_tokens(), u32::MAX);
        let (i, o) = t5.largest_request();
        assert_eq!((i, o), (4093, 1500));
    }

    #[test]
    fn cap_request_prefers_input() {
        let neox = model(gpt_neox_20b(), h100(), 1);
        let (i, o) = neox.cap_request(4093, 1500);
        assert_eq!(i, 2047);
        assert_eq!(o, 1);
    }

    #[test]
    fn batch_weight_bound_positive_iff_feasible() {
        for llm in llm_catalog() {
            for profile in paper_profiles() {
                let m = MemoryModel::new(llm.clone(), profile.clone(), MemoryConfig::default());
                match m.feasibility() {
                    Feasibility::Feasible => {
                        let bound = m.max_batch_weight_bound();
                        let (i, o) = m.largest_request();
                        assert!(
                            bound >= u64::from(i) + u64::from(o),
                            "{} on {}: bound {bound} below largest request",
                            llm.name,
                            profile
                        );
                    }
                    Feasibility::InsufficientMemory => {
                        let (i, o) = m.largest_request();
                        assert!(
                            m.max_batch_weight_bound() < u64::from(i) + u64::from(o),
                            "{} on {}",
                            llm.name,
                            profile
                        );
                    }
                    Feasibility::Unsupported => {}
                }
            }
        }
    }

    #[test]
    fn bigger_batches_need_more_memory() {
        let m = model(llama2_7b(), a100_80(), 1);
        let small = m.peak_batch_bytes(&[(100, 100)]);
        let large = m.peak_batch_bytes(&[(100, 100), (500, 500)]);
        assert!(large > small);
    }

    /// Reproduce the paper's Table III row-by-row. Two cells are known
    /// deviations (flan-ul2 on 4xT4 and 4xV100: feasible under our memory
    /// model, × in the paper) and are asserted as such so any drift is
    /// caught; see EXPERIMENTS.md.
    #[test]
    fn table3_matches_paper_except_known_cells() {
        let paper: Vec<(&str, &str)> = vec![
            ("google/flan-t5-xl", "YYY YYY YY YYY YYY"),
            ("google/flan-t5-xxl", "YYY YYY xY xxY xxY"),
            ("google/flan-ul2", "YYY xYY xx xxx xxx"),
            ("ibm/mpt-7b-instruct2", "Y-- Y-- x- x-- x--"),
            ("bigscience/mt0-xxl", "Y-- Y-- x- x-- x--"),
            ("Salesforce/codegen2-16B", "Y-- x-- x- x-- x--"),
            ("Llama-2-7b", "YYY YYY YY xYY ---"),
            ("Llama-2-13b", "YYY YYY xY xxY ---"),
            ("EleutherAI/gpt-neox-20b", "YYY xYY xY xxY ---"),
            ("bigcode/starcoder", "YYY YYY xY xxY ---"),
        ];
        let known_deviation: [(&str, usize); 2] =
            [("google/flan-ul2", 10), ("google/flan-ul2", 13)];
        let profiles = paper_profiles();
        let mut mismatches = Vec::new();
        for (name, row) in &paper {
            let llm = llm_by_name(name).unwrap();
            let expected: Vec<char> = row.chars().filter(|c| !c.is_whitespace()).collect();
            assert_eq!(expected.len(), profiles.len());
            for (j, profile) in profiles.iter().enumerate() {
                let got = MemoryModel::new(llm.clone(), profile.clone(), MemoryConfig::default())
                    .feasibility()
                    .glyph();
                let want = expected[j].to_string();
                if got != want {
                    mismatches.push((*name, j, want, got.to_string()));
                }
            }
        }
        for (name, j, want, got) in &mismatches {
            assert!(
                known_deviation.contains(&(*name, *j)),
                "unexpected Table III deviation: {name} profile #{j} paper={want} ours={got}"
            );
        }
        assert!(mismatches.len() <= known_deviation.len(), "too many deviations: {mismatches:?}");
    }

    #[test]
    fn feasibility_matrix_shape() {
        let m = feasibility_matrix(&llm_catalog(), &paper_profiles(), &MemoryConfig::default());
        assert_eq!(m.len(), 10);
        assert!(m.iter().all(|row| row.len() == 14));
    }
}
