//! Closed-loop load testing of one inference-service pod (Sec. III-C-3).
//!
//! Each load-testing experiment simulates a number of concurrent users
//! simultaneously sending requests produced by a [`RequestSource`]: every
//! user keeps exactly one request in flight and submits the next one the
//! moment the previous completes. The tester logs all generated tokens and
//! their (virtual) arrival timestamps and extracts the paper's four
//! performance metrics: TTFT, normalized TTFT, inter-token latency and
//! throughput — all medians/totals over a fixed-duration window.

use std::collections::HashMap;

use llmpilot_obs::hist::Histogram;

use crate::engine::{Engine, RequestId};
use crate::error::SimError;
use crate::fault::LoadFaults;
use crate::memory::MemoryModel;
use crate::request::{RequestSource, RequestSpec};

/// Parameters of one load-testing experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadTestConfig {
    /// Experiment duration in virtual seconds (the paper uses 2 minutes).
    pub duration_s: f64,
    /// Warm-up period in virtual seconds: metrics only count requests
    /// submitted after it (and tokens emitted after it), removing the
    /// cold-start bias of steady-state measurements. The paper's 2-minute
    /// protocol uses no warm-up; longer steady-state studies (e.g. the
    /// Fig. 1 batch-weight sweep) do.
    pub warmup_s: f64,
    /// Number of concurrent users.
    pub concurrent_users: u32,
}

impl Default for LoadTestConfig {
    fn default() -> Self {
        Self { duration_s: 120.0, warmup_s: 0.0, concurrent_users: 1 }
    }
}

/// The performance metrics extracted from one load-testing experiment
/// (Sec. III-C-3).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadMetrics {
    /// Number of concurrent users simulated.
    pub concurrent_users: u32,
    /// Median time to first token, seconds (queueing + prompt processing).
    pub ttft_median_s: f64,
    /// Median of per-request TTFT divided by the request's input tokens,
    /// seconds per input token.
    pub nttft_median_s: f64,
    /// Median latency between subsequent output tokens (excluding the first
    /// token), seconds.
    pub itl_median_s: f64,
    /// Total output tokens generated divided by the experiment duration,
    /// tokens per second.
    pub throughput_tokens_per_s: f64,
    /// Median end-to-end latency of completed requests, seconds (Fig. 1).
    pub e2e_median_s: f64,
    /// 90th-percentile TTFT, seconds (tail behaviour under queueing).
    pub ttft_p90_s: f64,
    /// 99th-percentile TTFT, seconds.
    pub ttft_p99_s: f64,
    /// 90th-percentile inter-token latency, seconds.
    pub itl_p90_s: f64,
    /// 99th-percentile inter-token latency, seconds.
    pub itl_p99_s: f64,
    /// Number of requests that completed within the window.
    pub completed_requests: u64,
    /// Total output tokens generated within the window.
    pub total_tokens: u64,
}

/// Percentile `q ∈ [0, 1]` of a sample (nearest-rank on the sorted data);
/// `NaN` when empty. Sorts in place.
pub fn percentile(values: &mut [f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "percentile out of range");
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(|a, b| a.total_cmp(b));
    let idx = ((values.len() - 1) as f64 * q).round() as usize;
    values[idx]
}

/// Median of a sample; `NaN` when empty.
pub fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(|a, b| a.total_cmp(b));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

/// Clamp a sampled request so the engine can admit it: sequence-length caps
/// from the memory model, then batch-size reduction until the weight fits
/// under the engine's maximum batch weight.
pub fn fit_request(mem: &MemoryModel, max_batch_weight: u64, spec: RequestSpec) -> RequestSpec {
    let (input, output) = mem.cap_request(spec.input_tokens, spec.output_tokens);
    let per_seq = u64::from(input) + u64::from(output);
    let max_batch = (max_batch_weight / per_seq).max(1).min(u64::from(spec.batch_size.max(1)));
    RequestSpec { input_tokens: input, output_tokens: output, batch_size: max_batch as u32 }
}

/// Optional per-sample sinks for a load test: every individual normalized
/// TTFT and inter-token gap that contributes to [`LoadMetrics`] is also
/// recorded here (virtual seconds → nanoseconds), giving true tail
/// quantiles instead of only the fixed percentiles the metrics expose.
#[derive(Debug, Default)]
pub struct SampleHists {
    /// Normalized TTFT (TTFT / input tokens) per tracked request.
    pub nttft: Histogram,
    /// Inter-token latency per emitted token gap.
    pub itl: Histogram,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    user: u32,
    submitted_at: f64,
    input_tokens: u32,
    first_token_at: Option<f64>,
    last_token_at: Option<f64>,
}

/// Run one closed-loop load-testing experiment against a fresh engine.
///
/// The engine's clock must start at 0; the experiment runs until the clock
/// passes `config.duration_s`.
pub fn run_load_test<S: RequestSource + ?Sized>(
    engine: &mut Engine,
    mem: &MemoryModel,
    source: &mut S,
    config: &LoadTestConfig,
) -> Result<LoadMetrics, SimError> {
    run_load_test_faulty(engine, mem, source, config, &mut LoadFaults::none())
}

/// [`run_load_test`] with fault injection: after every engine iteration the
/// [`LoadFaults`] state is consulted for a scheduled crash, a near-capacity
/// OOM, or an exceeded step budget, any of which aborts the experiment with
/// the corresponding [`SimError`]. With [`LoadFaults::none`] the behaviour
/// (and the produced metrics) are bit-identical to [`run_load_test`].
pub fn run_load_test_faulty<S: RequestSource + ?Sized>(
    engine: &mut Engine,
    mem: &MemoryModel,
    source: &mut S,
    config: &LoadTestConfig,
    faults: &mut LoadFaults,
) -> Result<LoadMetrics, SimError> {
    run_load_test_observed(engine, mem, source, config, faults, None)
}

/// [`run_load_test_faulty`] with optional per-sample observation: when
/// `hists` is given, every normalized-TTFT and inter-token-latency sample
/// (including censored TTFT lower bounds) is also recorded into the
/// histograms. Observation never changes the returned metrics.
pub fn run_load_test_observed<S: RequestSource + ?Sized>(
    engine: &mut Engine,
    mem: &MemoryModel,
    source: &mut S,
    config: &LoadTestConfig,
    faults: &mut LoadFaults,
    hists: Option<&SampleHists>,
) -> Result<LoadMetrics, SimError> {
    let users = config.concurrent_users;
    assert!(users >= 1, "load test needs at least one user");

    let mut in_flight: HashMap<RequestId, InFlight> = HashMap::new();
    let mut ttfts: Vec<f64> = Vec::new();
    let mut nttfts: Vec<f64> = Vec::new();
    let mut gaps: Vec<f64> = Vec::new();
    let mut e2es: Vec<f64> = Vec::new();
    let mut completed: u64 = 0;
    let mut total_tokens: u64 = 0;

    // All users fire their first request at t = 0.
    for user in 0..users {
        let spec = fit_request(mem, engine.max_batch_weight(), source.next_request());
        let id = engine.submit(spec)?;
        in_flight.insert(
            id,
            InFlight {
                user,
                submitted_at: engine.clock(),
                input_tokens: spec.input_tokens,
                first_token_at: None,
                last_token_at: None,
            },
        );
    }

    let warmup = config.warmup_s;
    while engine.clock() < config.duration_s && engine.has_work() {
        let step = engine.step();
        faults.check_step(engine.clock(), engine.running_weight(), engine.max_batch_weight())?;
        for em in &step.emissions {
            if em.time >= warmup {
                total_tokens += u64::from(em.count);
            }
            let fl = in_flight.get_mut(&em.id).expect("emission for known request");
            if em.is_first {
                if fl.submitted_at >= warmup {
                    let ttft = em.time - fl.submitted_at;
                    ttfts.push(ttft);
                    nttfts.push(ttft / fl.input_tokens as f64);
                    if let Some(h) = hists {
                        h.nttft.record_secs(ttft / fl.input_tokens as f64);
                    }
                }
                fl.first_token_at = Some(em.time);
            } else if let Some(prev) = fl.last_token_at {
                if em.time >= warmup {
                    gaps.push(em.time - prev);
                    if let Some(h) = hists {
                        h.itl.record_secs(em.time - prev);
                    }
                }
            }
            fl.last_token_at = Some(em.time);
        }
        for c in &step.completions {
            let fl = in_flight.remove(&c.id).expect("completion for known request");
            if fl.submitted_at >= warmup {
                e2es.push(c.time - fl.submitted_at);
                completed += 1;
            }
            // Closed loop: the user immediately submits the next request.
            if engine.clock() < config.duration_s {
                let spec = fit_request(mem, engine.max_batch_weight(), source.next_request());
                let id = engine.submit(spec)?;
                in_flight.insert(
                    id,
                    InFlight {
                        user: fl.user,
                        submitted_at: engine.clock(),
                        input_tokens: spec.input_tokens,
                        first_token_at: None,
                        last_token_at: None,
                    },
                );
            }
        }
    }

    // Censored observations: requests that never received their first token
    // within the window still witnessed at least (now − submit) of queueing.
    // Counting these lower bounds keeps the TTFT median defined (and large,
    // as it should be) in deeply saturated regimes where no tracked request
    // is served before the window closes.
    for fl in in_flight.values() {
        if fl.first_token_at.is_none() && fl.submitted_at >= warmup {
            let waited = engine.clock() - fl.submitted_at;
            if waited > 0.0 {
                ttfts.push(waited);
                nttfts.push(waited / fl.input_tokens as f64);
                if let Some(h) = hists {
                    h.nttft.record_secs(waited / fl.input_tokens as f64);
                }
            }
        }
    }

    let elapsed = (engine.clock() - warmup).max(f64::EPSILON);
    Ok(LoadMetrics {
        concurrent_users: users,
        ttft_median_s: median(&mut ttfts),
        nttft_median_s: median(&mut nttfts),
        itl_median_s: median(&mut gaps),
        throughput_tokens_per_s: total_tokens as f64 / elapsed,
        e2e_median_s: median(&mut e2es),
        ttft_p90_s: percentile(&mut ttfts, 0.90),
        ttft_p99_s: percentile(&mut ttfts, 0.99),
        itl_p90_s: percentile(&mut gaps, 0.90),
        itl_p99_s: percentile(&mut gaps, 0.99),
        completed_requests: completed,
        total_tokens,
    })
}

/// The paper's default load-testing sweep: exponentially increasing numbers
/// of concurrent users, 1, 2, 4, …, 128 (Sec. III-C-3).
pub fn default_user_sweep() -> Vec<u32> {
    (0..8).map(|i| 1u32 << i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{a100_80, t4, GpuProfile, GpuSpec};
    use crate::llm::{llama2_13b, LlmSpec};
    use crate::memory::{MemoryConfig, MemoryModel};
    use crate::perf_model::{PerfModel, PerfModelConfig};
    use crate::request::FixedSource;
    use crate::tuner::tune_max_batch_weight;

    fn setup(llm: LlmSpec, gpu: GpuSpec, count: u32) -> (Engine, MemoryModel) {
        let profile = GpuProfile::new(gpu, count);
        let mem = MemoryModel::new(llm.clone(), profile.clone(), MemoryConfig::default());
        let weight = tune_max_batch_weight(&mem).unwrap().max_batch_weight;
        let perf = PerfModel::new(llm, profile, PerfModelConfig::default());
        (Engine::new(perf, weight), mem)
    }

    #[test]
    fn median_of_odd_and_even_samples() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&mut []).is_nan());
    }

    #[test]
    fn single_user_metrics_are_sane() {
        let (mut e, mem) = setup(llama2_13b(), a100_80(), 1);
        let mut src = FixedSource::constant(RequestSpec::new(500, 200));
        let m = run_load_test(
            &mut e,
            &mem,
            &mut src,
            &LoadTestConfig { warmup_s: 0.0, duration_s: 60.0, concurrent_users: 1 },
        )
        .unwrap();
        assert!(m.completed_requests > 0);
        assert!(m.ttft_median_s > 0.0);
        assert!(m.itl_median_s > 0.0);
        assert!(m.throughput_tokens_per_s > 0.0);
        // One user's throughput is roughly 1 / ITL at steady state.
        let approx = 1.0 / m.itl_median_s;
        assert!(m.throughput_tokens_per_s < approx * 1.2);
        assert!(m.throughput_tokens_per_s > approx * 0.3);
    }

    #[test]
    fn table1_single_pod_magnitude() {
        // Table I: Llama-2-13b on 1xA100-80 serves ~47 tok/s at 1 user and
        // saturates around 300 tok/s. We assert the same order of magnitude.
        let (mut e, mem) = setup(llama2_13b(), a100_80(), 1);
        let mut src = FixedSource::new(vec![
            RequestSpec::new(400, 150),
            RequestSpec::new(900, 300),
            RequestSpec::new(150, 60),
        ]);
        let m1 = run_load_test(
            &mut e,
            &mem,
            &mut src,
            &LoadTestConfig { warmup_s: 0.0, duration_s: 120.0, concurrent_users: 1 },
        )
        .unwrap();
        assert!(
            m1.throughput_tokens_per_s > 20.0 && m1.throughput_tokens_per_s < 90.0,
            "tput = {}",
            m1.throughput_tokens_per_s
        );
    }

    #[test]
    fn throughput_grows_then_saturates_with_users() {
        let mk = || {
            FixedSource::new(vec![
                RequestSpec::new(400, 150),
                RequestSpec::new(900, 300),
                RequestSpec::new(150, 60),
            ])
        };
        let mut tputs = Vec::new();
        for users in [1u32, 4, 16, 64, 128] {
            let (mut e, mem) = setup(llama2_13b(), a100_80(), 1);
            let mut src = mk();
            let m = run_load_test(
                &mut e,
                &mem,
                &mut src,
                &LoadTestConfig { duration_s: 120.0, warmup_s: 0.0, concurrent_users: users },
            )
            .unwrap();
            tputs.push(m.throughput_tokens_per_s);
        }
        // Monotone-ish growth at the start…
        assert!(tputs[1] > tputs[0] * 1.5);
        assert!(tputs[2] > tputs[1] * 1.2);
        // …and saturation at the end (within 30%).
        let last = tputs[tputs.len() - 1];
        let prev = tputs[tputs.len() - 2];
        assert!((last - prev).abs() / prev < 0.5, "tputs = {tputs:?}");
    }

    #[test]
    fn ttft_rises_with_users() {
        let mk = || FixedSource::constant(RequestSpec::new(500, 150));
        let run = |users| {
            let (mut e, mem) = setup(llama2_13b(), a100_80(), 1);
            let mut src = mk();
            run_load_test(
                &mut e,
                &mem,
                &mut src,
                &LoadTestConfig { duration_s: 120.0, warmup_s: 0.0, concurrent_users: users },
            )
            .unwrap()
        };
        let low = run(1);
        let high = run(64);
        assert!(high.ttft_median_s > low.ttft_median_s);
        assert!(high.itl_median_s >= low.itl_median_s * 0.9);
    }

    #[test]
    fn weak_gpu_saturates_much_earlier() {
        // A 1xT4 running a 7B model must saturate at a small number of users,
        // with TTFT exploding from queueing.
        let run = |users| {
            let (mut e, mem) = setup(crate::llm::llama2_7b(), t4(), 2);
            let mut src = FixedSource::constant(RequestSpec::new(500, 150));
            run_load_test(
                &mut e,
                &mem,
                &mut src,
                &LoadTestConfig { duration_s: 120.0, warmup_s: 0.0, concurrent_users: users },
            )
            .unwrap()
        };
        let m8 = run(8);
        let m128 = run(128);
        assert!(m128.ttft_median_s > 4.0 * m8.ttft_median_s);
    }

    #[test]
    fn fit_request_respects_weight_and_caps() {
        let profile = GpuProfile::new(a100_80(), 1);
        let mem = MemoryModel::new(llama2_13b(), profile, MemoryConfig::default());
        let fitted = fit_request(&mem, 1000, RequestSpec::batched(400, 300, 5));
        assert!(fitted.weight() <= 1000);
        assert_eq!(fitted.batch_size, 1);
        // Sequence cap of llama (4096) applies.
        let fitted = fit_request(&mem, 100_000, RequestSpec::new(9000, 2000));
        assert!(fitted.input_tokens + fitted.output_tokens <= 4096);
    }

    #[test]
    fn nttft_is_ttft_scaled_by_input() {
        let (mut e, mem) = setup(llama2_13b(), a100_80(), 1);
        let mut src = FixedSource::constant(RequestSpec::new(1000, 50));
        let m = run_load_test(
            &mut e,
            &mem,
            &mut src,
            &LoadTestConfig { warmup_s: 0.0, duration_s: 30.0, concurrent_users: 1 },
        )
        .unwrap();
        assert!((m.nttft_median_s - m.ttft_median_s / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn default_sweep_is_exponential_to_128() {
        assert_eq!(default_user_sweep(), vec![1, 2, 4, 8, 16, 32, 64, 128]);
    }

    #[test]
    fn none_faults_reproduce_plain_run_bit_for_bit() {
        let config = LoadTestConfig { warmup_s: 0.0, duration_s: 60.0, concurrent_users: 4 };
        let (mut e1, mem) = setup(llama2_13b(), a100_80(), 1);
        let mut s1 = FixedSource::constant(RequestSpec::new(500, 200));
        let plain = run_load_test(&mut e1, &mem, &mut s1, &config).unwrap();
        let (mut e2, _) = setup(llama2_13b(), a100_80(), 1);
        let mut s2 = FixedSource::constant(RequestSpec::new(500, 200));
        let mut faults = crate::fault::LoadFaults::none();
        let faulty = run_load_test_faulty(&mut e2, &mem, &mut s2, &config, &mut faults).unwrap();
        assert_eq!(plain, faulty);
        assert!(faults.steps_used > 0);
    }

    #[test]
    fn observed_run_matches_plain_and_fills_histograms() {
        let config = LoadTestConfig { warmup_s: 0.0, duration_s: 60.0, concurrent_users: 4 };
        let (mut e1, mem) = setup(llama2_13b(), a100_80(), 1);
        let mut s1 = FixedSource::constant(RequestSpec::new(500, 200));
        let plain = run_load_test(&mut e1, &mem, &mut s1, &config).unwrap();
        let (mut e2, _) = setup(llama2_13b(), a100_80(), 1);
        let mut s2 = FixedSource::constant(RequestSpec::new(500, 200));
        let hists = SampleHists::default();
        let mut faults = crate::fault::LoadFaults::none();
        let observed =
            run_load_test_observed(&mut e2, &mem, &mut s2, &config, &mut faults, Some(&hists))
                .unwrap();
        assert_eq!(plain, observed, "observation must not change the metrics");
        assert!(hists.nttft.count() > 0);
        assert!(hists.itl.count() > 0);
        // The histogram median agrees with the sorted-vector median to
        // within the ≤1% quantile resolution.
        let h_median = hists.itl.quantile(0.5) as f64 / 1e9;
        let err = (h_median - observed.itl_median_s).abs() / observed.itl_median_s;
        assert!(err < 0.02, "hist median {h_median} vs exact {}", observed.itl_median_s);
    }

    #[test]
    fn scheduled_crash_aborts_the_test() {
        let (mut e, mem) = setup(llama2_13b(), a100_80(), 1);
        let mut src = FixedSource::constant(RequestSpec::new(500, 200));
        let mut faults = crate::fault::LoadFaults::none();
        faults.crash_at = Some(10.0);
        let err = run_load_test_faulty(
            &mut e,
            &mem,
            &mut src,
            &LoadTestConfig { warmup_s: 0.0, duration_s: 60.0, concurrent_users: 4 },
            &mut faults,
        )
        .unwrap_err();
        assert_eq!(err, SimError::EngineCrashed { at_s: 10.0 });
    }

    #[test]
    fn step_budget_aborts_instead_of_hanging() {
        let (mut e, mem) = setup(llama2_13b(), a100_80(), 1);
        let mut src = FixedSource::constant(RequestSpec::new(500, 200));
        let mut faults = crate::fault::LoadFaults::none();
        faults.max_steps = Some(5);
        let err = run_load_test_faulty(
            &mut e,
            &mem,
            &mut src,
            &LoadTestConfig { warmup_s: 0.0, duration_s: 600.0, concurrent_users: 8 },
            &mut faults,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::BudgetExhausted { .. }));
        assert_eq!(faults.steps_used, 6);
    }

    #[test]
    fn near_capacity_oom_aborts_saturated_tests() {
        use crate::fault::{FaultConfig, FaultPlan};
        // 64 users saturate the batch, keeping the running weight near the
        // maximum batch weight — a certain-OOM plan must fire.
        let plan = FaultPlan::new(FaultConfig {
            oom_prob: 1.0,
            oom_margin: 0.8,
            ..FaultConfig::disabled()
        });
        let (mut e, mem) = setup(llama2_13b(), a100_80(), 1);
        let mut src = FixedSource::constant(RequestSpec::new(500, 200));
        let mut faults = plan.load_faults("load/x", 60.0);
        let err = run_load_test_faulty(
            &mut e,
            &mem,
            &mut src,
            &LoadTestConfig { warmup_s: 0.0, duration_s: 60.0, concurrent_users: 64 },
            &mut faults,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }));
    }
}

#[cfg(test)]
mod percentile_tests {
    use super::*;
    use crate::gpu::{a100_80, GpuProfile};
    use crate::llm::llama2_13b;
    use crate::memory::{MemoryConfig, MemoryModel};
    use crate::perf_model::{PerfModel, PerfModelConfig};
    use crate::request::{FixedSource, RequestSpec};
    use crate::tuner::tune_max_batch_weight;

    #[test]
    fn percentile_nearest_rank() {
        let mut v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&mut v, 0.0), 1.0);
        assert_eq!(percentile(&mut v, 1.0), 100.0);
        assert_eq!(percentile(&mut v, 0.5), 51.0);
        assert_eq!(percentile(&mut v, 0.9), 90.0);
        assert!(percentile(&mut [], 0.5).is_nan());
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_bad_q() {
        let _ = percentile(&mut [1.0], 1.5);
    }

    #[test]
    fn tail_latencies_dominate_medians() {
        let llm = llama2_13b();
        let profile = GpuProfile::new(a100_80(), 1);
        let mem = MemoryModel::new(llm.clone(), profile.clone(), MemoryConfig::default());
        let weight = tune_max_batch_weight(&mem).unwrap().max_batch_weight;
        let perf = PerfModel::new(llm, profile, PerfModelConfig::default());
        let mut engine = Engine::new(perf, weight);
        let mut src =
            FixedSource::new(vec![RequestSpec::new(200, 80), RequestSpec::new(1500, 400)]);
        let m = run_load_test(
            &mut engine,
            &mem,
            &mut src,
            &LoadTestConfig { duration_s: 90.0, warmup_s: 0.0, concurrent_users: 32 },
        )
        .unwrap();
        assert!(m.ttft_p90_s >= m.ttft_median_s);
        assert!(m.ttft_p99_s >= m.ttft_p90_s);
        assert!(m.itl_p90_s >= m.itl_median_s);
        assert!(m.itl_p99_s >= m.itl_p90_s);
    }
}
