//! Property-based invariants of the simulator: memory accounting, tuning
//! and the performance model.

use proptest::prelude::*;

use llmpilot_sim::gpu::{gpu_catalog, GpuProfile};
use llmpilot_sim::llm::llm_catalog;
use llmpilot_sim::memory::{MemoryConfig, MemoryModel};
use llmpilot_sim::perf_model::{PerfModel, PerfModelConfig};
use llmpilot_sim::tuner::{tune_max_batch_weight, weight_is_valid};

fn any_llm() -> impl Strategy<Value = usize> {
    0..llm_catalog().len()
}

fn any_profile() -> impl Strategy<Value = (usize, u32)> {
    (0..gpu_catalog().len(), prop::sample::select(vec![1u32, 2, 4]))
}

proptest! {
    /// KV accounting is additive and the peak grows with every request.
    #[test]
    fn peak_memory_is_monotone_in_batch(
        llm_idx in any_llm(),
        (gpu_idx, count) in any_profile(),
        batch in prop::collection::vec((1u32..4000, 1u32..1500), 1..20)
    ) {
        let llm = llm_catalog()[llm_idx].clone();
        let profile = GpuProfile::new(gpu_catalog()[gpu_idx].clone(), count);
        let mem = MemoryModel::new(llm, profile, MemoryConfig::default());
        let mut last = mem.peak_batch_bytes(&[]);
        for k in 1..=batch.len() {
            let peak = mem.peak_batch_bytes(&batch[..k]);
            prop_assert!(peak >= last - 1e-6);
            last = peak;
        }
    }

    /// Tuning validity is monotone: any weight at or below a valid weight
    /// is also valid (so binary search is sound).
    #[test]
    fn tuning_validity_is_monotone(
        llm_idx in any_llm(),
        (gpu_idx, count) in any_profile(),
        frac in 0.05f64..1.0
    ) {
        let llm = llm_catalog()[llm_idx].clone();
        let profile = GpuProfile::new(gpu_catalog()[gpu_idx].clone(), count);
        let mem = MemoryModel::new(llm, profile, MemoryConfig::default());
        let Ok(outcome) = tune_max_batch_weight(&mem) else {
            return Ok(()); // infeasible cell: nothing to check
        };
        let mut probes = 0;
        let (cap_in, cap_out) = mem.largest_request();
        let floor = u64::from(cap_in) + u64::from(cap_out);
        let smaller = floor
            + ((outcome.max_batch_weight - floor) as f64 * frac) as u64;
        prop_assert!(weight_is_valid(&mem, smaller, &mut probes));
        prop_assert!(!weight_is_valid(&mem, outcome.max_batch_weight + 1, &mut probes));
    }

    /// Step times are positive, finite, and monotone in both batch size and
    /// KV footprint for every catalog pairing.
    #[test]
    fn decode_step_time_is_monotone(
        llm_idx in any_llm(),
        (gpu_idx, count) in any_profile(),
        batch in 1u32..200,
        kv in 0u64..2_000_000
    ) {
        let llm = llm_catalog()[llm_idx].clone();
        let profile = GpuProfile::new(gpu_catalog()[gpu_idx].clone(), count);
        let perf = PerfModel::new(llm, profile, PerfModelConfig::default());
        let t = perf.decode_step_time(batch, kv);
        prop_assert!(t.is_finite() && t > 0.0);
        prop_assert!(perf.decode_step_time(batch + 1, kv) >= t);
        prop_assert!(perf.decode_step_time(batch, kv + 100_000) >= t);
    }

    /// Prefill time is positive, finite, and monotone in prompt length.
    #[test]
    fn prefill_time_is_monotone(
        llm_idx in any_llm(),
        (gpu_idx, count) in any_profile(),
        tokens in 1u32..4000
    ) {
        let llm = llm_catalog()[llm_idx].clone();
        let profile = GpuProfile::new(gpu_catalog()[gpu_idx].clone(), count);
        let perf = PerfModel::new(llm, profile, PerfModelConfig::default());
        let t = perf.prefill_time(tokens);
        prop_assert!(t.is_finite() && t > 0.0);
        prop_assert!(perf.prefill_time(tokens + 100) > t);
    }

    /// Request capping always produces an admissible request.
    #[test]
    fn cap_request_is_idempotent_and_bounded(
        llm_idx in any_llm(),
        input in 1u32..100_000,
        output in 1u32..100_000
    ) {
        let llm = llm_catalog()[llm_idx].clone();
        let profile = GpuProfile::new(gpu_catalog()[0].clone(), 1);
        let mem = MemoryModel::new(llm, profile, MemoryConfig::default());
        let (i, o) = mem.cap_request(input, output);
        prop_assert!(i >= 1 && o >= 1);
        let cap = mem.max_sequence_tokens();
        prop_assert!(u64::from(i) + u64::from(o) <= u64::from(cap));
        prop_assert_eq!(mem.cap_request(i, o), (i, o));
    }
}
