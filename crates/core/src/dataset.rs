//! The performance characterization dataset (Sec. V-B): one row per
//! `(LLM, GPU profile, #concurrent users)` with the four measured metrics,
//! plus the tuned maximum batch weight per `(LLM, GPU profile)` cell.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::error::CoreError;

/// One measurement row of the characterization dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRow {
    /// LLM catalog name.
    pub llm: String,
    /// GPU profile name (e.g. `2xA100-40GB`).
    pub profile: String,
    /// Concurrent users of the load test.
    pub users: u32,
    /// Median time to first token, seconds.
    pub ttft_s: f64,
    /// Median normalized TTFT, seconds per input token.
    pub nttft_s: f64,
    /// Median inter-token latency, seconds.
    pub itl_s: f64,
    /// Output-token throughput, tokens/second.
    pub throughput: f64,
}

/// The dataset: measurement rows plus per-cell tuned batch weights.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CharacterizationDataset {
    /// Measurement rows, ordered (llm, profile, users).
    pub rows: Vec<PerfRow>,
    /// Tuned maximum batch weight per `(llm, profile)`.
    pub tuned_weights: BTreeMap<(String, String), u64>,
}

impl CharacterizationDataset {
    /// Number of measurement rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Distinct LLM names, sorted.
    pub fn llms(&self) -> Vec<String> {
        let mut v: Vec<String> = self.rows.iter().map(|r| r.llm.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Distinct GPU-profile names, sorted.
    pub fn profiles(&self) -> Vec<String> {
        let mut v: Vec<String> = self.rows.iter().map(|r| r.profile.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Distinct user counts, ascending.
    pub fn user_counts(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.rows.iter().map(|r| r.users).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// All rows of one LLM.
    pub fn rows_for_llm(&self, llm: &str) -> Vec<&PerfRow> {
        self.rows.iter().filter(|r| r.llm == llm).collect()
    }

    /// All rows except one LLM's (the leave-one-LLM-out training set).
    pub fn rows_excluding_llm(&self, llm: &str) -> Vec<&PerfRow> {
        self.rows.iter().filter(|r| r.llm != llm).collect()
    }

    /// Look up one measurement.
    pub fn get(&self, llm: &str, profile: &str, users: u32) -> Option<&PerfRow> {
        self.rows.iter().find(|r| r.llm == llm && r.profile == profile && r.users == users)
    }

    /// Whether the `(llm, profile)` cell was feasible (has any rows).
    pub fn cell_feasible(&self, llm: &str, profile: &str) -> bool {
        self.rows.iter().any(|r| r.llm == llm && r.profile == profile)
    }

    /// Serialize to CSV (header + one line per row).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("llm,profile,users,ttft_s,nttft_s,itl_s,throughput\n");
        for r in &self.rows {
            writeln!(
                out,
                "{},{},{},{},{},{},{}",
                r.llm, r.profile, r.users, r.ttft_s, r.nttft_s, r.itl_s, r.throughput
            )
            .expect("write to String cannot fail");
        }
        out
    }

    /// Structural validation for datasets crossing a trust boundary (e.g.
    /// hot-reloaded by a serving daemon): every row must name a catalog LLM
    /// and a parseable GPU profile, have `users ≥ 1` and finite,
    /// non-negative metrics, and no `(llm, profile, users)` key may repeat.
    pub fn validate(&self) -> Result<(), CoreError> {
        use std::collections::BTreeSet;
        let mut seen: BTreeSet<(&str, &str, u32)> = BTreeSet::new();
        for (i, r) in self.rows.iter().enumerate() {
            let ctx = |what: &str| CoreError::Parse(format!("row {i}: {what}"));
            if llmpilot_sim::llm::llm_by_name(&r.llm).is_none() {
                return Err(ctx(&format!("unknown LLM {:?}", r.llm)));
            }
            if crate::recommend::parse_profile(&r.profile).is_none() {
                return Err(ctx(&format!("unknown GPU profile {:?}", r.profile)));
            }
            if r.users == 0 {
                return Err(ctx("users must be >= 1"));
            }
            for (name, v) in [
                ("ttft_s", r.ttft_s),
                ("nttft_s", r.nttft_s),
                ("itl_s", r.itl_s),
                ("throughput", r.throughput),
            ] {
                if !v.is_finite() || v < 0.0 {
                    return Err(ctx(&format!("{name} must be finite and non-negative, got {v}")));
                }
            }
            if !seen.insert((r.llm.as_str(), r.profile.as_str(), r.users)) {
                return Err(ctx(&format!(
                    "duplicate measurement ({}, {}, {})",
                    r.llm, r.profile, r.users
                )));
            }
        }
        Ok(())
    }

    /// Parse the CSV produced by [`Self::to_csv`] (tuned weights are not
    /// part of the CSV exchange format).
    pub fn from_csv(text: &str) -> Result<Self, CoreError> {
        let mut rows = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if lineno == 0 || line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 7 {
                return Err(CoreError::Parse(format!(
                    "line {}: expected 7 fields, found {}",
                    lineno + 1,
                    fields.len()
                )));
            }
            let parse_f = |s: &str, what: &str| {
                s.parse::<f64>().map_err(|_| {
                    CoreError::Parse(format!("line {}: bad {what}: {s:?}", lineno + 1))
                })
            };
            rows.push(PerfRow {
                llm: fields[0].to_string(),
                profile: fields[1].to_string(),
                users: fields[2].parse().map_err(|_| {
                    CoreError::Parse(format!("line {}: bad users: {:?}", lineno + 1, fields[2]))
                })?,
                ttft_s: parse_f(fields[3], "ttft")?,
                nttft_s: parse_f(fields[4], "nttft")?,
                itl_s: parse_f(fields[5], "itl")?,
                throughput: parse_f(fields[6], "throughput")?,
            });
        }
        Ok(Self { rows, tuned_weights: BTreeMap::new() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CharacterizationDataset {
        let mut ds = CharacterizationDataset::default();
        for llm in ["a", "b"] {
            for profile in ["1xT4-16GB", "1xH100-80GB"] {
                for users in [1u32, 2, 4] {
                    ds.rows.push(PerfRow {
                        llm: llm.into(),
                        profile: profile.into(),
                        users,
                        ttft_s: 0.1 * f64::from(users),
                        nttft_s: 0.001 * f64::from(users),
                        itl_s: 0.02,
                        throughput: 100.0 * f64::from(users),
                    });
                }
                ds.tuned_weights.insert((llm.into(), profile.into()), 10_000);
            }
        }
        ds
    }

    #[test]
    fn accessors() {
        let ds = sample();
        assert_eq!(ds.len(), 12);
        assert_eq!(ds.llms(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(ds.profiles().len(), 2);
        assert_eq!(ds.user_counts(), vec![1, 2, 4]);
        assert_eq!(ds.rows_for_llm("a").len(), 6);
        assert_eq!(ds.rows_excluding_llm("a").len(), 6);
        assert!(ds.get("a", "1xT4-16GB", 2).is_some());
        assert!(ds.get("a", "1xT4-16GB", 3).is_none());
        assert!(ds.cell_feasible("b", "1xH100-80GB"));
        assert!(!ds.cell_feasible("c", "1xH100-80GB"));
    }

    #[test]
    fn csv_round_trip() {
        let ds = sample();
        let csv = ds.to_csv();
        let parsed = CharacterizationDataset::from_csv(&csv).unwrap();
        assert_eq!(parsed.rows, ds.rows);
    }

    #[test]
    fn csv_rejects_malformed_lines() {
        assert!(CharacterizationDataset::from_csv("h\na,b,c\n").is_err());
        assert!(CharacterizationDataset::from_csv("h\na,p,x,0.1,0.2,0.3,4\n").is_err());
        assert!(CharacterizationDataset::from_csv("h\na,p,1,zz,0.2,0.3,4\n").is_err());
    }

    fn valid_row() -> PerfRow {
        PerfRow {
            llm: "Llama-2-7b".into(),
            profile: "1xA100-40GB".into(),
            users: 1,
            ttft_s: 0.1,
            nttft_s: 0.001,
            itl_s: 0.02,
            throughput: 100.0,
        }
    }

    #[test]
    fn validate_accepts_catalog_rows() {
        let ds = CharacterizationDataset { rows: vec![valid_row()], ..Default::default() };
        assert!(ds.validate().is_ok());
        assert!(CharacterizationDataset::default().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_rows() {
        type Mutator = Box<dyn Fn(&mut PerfRow)>;
        let cases: Vec<(&str, Mutator)> = vec![
            ("unknown llm", Box::new(|r| r.llm = "no-such-llm".into())),
            ("unknown profile", Box::new(|r| r.profile = "9xB200".into())),
            ("zero users", Box::new(|r| r.users = 0)),
            ("nan latency", Box::new(|r| r.itl_s = f64::NAN)),
            ("negative throughput", Box::new(|r| r.throughput = -1.0)),
            ("infinite ttft", Box::new(|r| r.ttft_s = f64::INFINITY)),
        ];
        for (what, mutate) in cases {
            let mut row = valid_row();
            mutate(&mut row);
            let ds = CharacterizationDataset { rows: vec![row], ..Default::default() };
            assert!(ds.validate().is_err(), "validate should reject {what}");
        }
    }

    #[test]
    fn validate_rejects_duplicate_keys() {
        let ds =
            CharacterizationDataset { rows: vec![valid_row(), valid_row()], ..Default::default() };
        assert!(matches!(ds.validate(), Err(CoreError::Parse(msg)) if msg.contains("duplicate")));
    }

    #[test]
    fn empty_csv_is_empty_dataset() {
        let ds = CharacterizationDataset::from_csv("header\n").unwrap();
        assert!(ds.is_empty());
    }
}
