//! A thread-safe, train-once/query-many entry point to the GPU
//! recommendation tool, built for long-running services.
//!
//! The offline pipeline ([`crate::evaluate`]) retrains a predictor per
//! unseen LLM (leave-one-LLM-out). An online advisor cannot afford that:
//! it trains **one** model over the whole characterization dataset and
//! answers arbitrary `(LLM, load, SLA)` queries against it. A
//! [`ServingModel`] is immutable after training — all queries borrow it
//! read-only — so it is `Send + Sync` and can sit behind an `Arc` shared
//! by any number of worker threads, and be atomically swapped for a newer
//! generation when the dataset changes.

use llmpilot_sim::gpu::GpuProfile;
use llmpilot_sim::llm::llm_by_name;
use llmpilot_sim::memory::{MemoryConfig, MemoryModel};

use crate::dataset::CharacterizationDataset;
use crate::error::CoreError;
use crate::predictor::{PerformancePredictor, PredictorConfig};
use crate::recommend::{
    parse_profile, recommend, LatencyConstraints, Recommendation, RecommendationRequest,
};

/// An immutable trained recommendation model, safe to share across threads.
#[derive(Debug, Clone)]
pub struct ServingModel {
    predictor: PerformancePredictor,
    profiles: Vec<GpuProfile>,
    llms: Vec<String>,
    rows: usize,
}

impl ServingModel {
    /// Train on every row of `dataset`. The GPU-profile candidate set is
    /// the set of profiles present in the dataset. `constraints` drive the
    /// Eq.-(4) sample weights (queries may still ask for different SLAs —
    /// the weights only shape where the regressor spends its accuracy).
    pub fn train(
        dataset: &CharacterizationDataset,
        constraints: &LatencyConstraints,
        config: &PredictorConfig,
    ) -> Result<Self, CoreError> {
        Self::train_traced(dataset, constraints, config, &llmpilot_obs::Recorder::disabled())
    }

    /// [`ServingModel::train`] with observability: the training runs under
    /// a `serving.train` span, with the predictor and GBDT phase spans
    /// nested beneath it. The trained model is identical to an untraced
    /// [`ServingModel::train`].
    pub fn train_traced(
        dataset: &CharacterizationDataset,
        constraints: &LatencyConstraints,
        config: &PredictorConfig,
        recorder: &llmpilot_obs::Recorder,
    ) -> Result<Self, CoreError> {
        let _train_span = recorder.span("serving.train").arg("rows", dataset.len());
        dataset.validate()?;
        if dataset.is_empty() {
            return Err(CoreError::InsufficientData("empty characterization dataset".into()));
        }
        let profiles: Vec<GpuProfile> = dataset
            .profiles()
            .iter()
            .map(|name| {
                parse_profile(name)
                    .ok_or_else(|| CoreError::Parse(format!("unknown profile {name:?}")))
            })
            .collect::<Result<_, _>>()?;
        let rows: Vec<_> = dataset.rows.iter().collect();
        let predictor = PerformancePredictor::train_traced(&rows, constraints, config, recorder)?;
        Ok(Self { predictor, profiles, llms: dataset.llms(), rows: dataset.len() })
    }

    /// The GPU profiles this model can recommend.
    pub fn profiles(&self) -> &[GpuProfile] {
        &self.profiles
    }

    /// The LLMs present in the training dataset.
    pub fn llms(&self) -> &[String] {
        &self.llms
    }

    /// Number of characterization rows the model was trained on.
    pub fn training_rows(&self) -> usize {
        self.rows
    }

    /// Answer one recommendation query: the cheapest `(GPU profile, #pods)`
    /// deployment of `llm_name` satisfying `request` (Eq. (1)–(3)), with
    /// memory-infeasible profiles excluded up front.
    ///
    /// Errors: [`CoreError::Parse`] when the LLM is not in the catalog
    /// (client error), [`CoreError::NoFeasibleRecommendation`] when no
    /// candidate satisfies the SLA (a valid domain answer).
    pub fn recommend(
        &self,
        llm_name: &str,
        request: &RecommendationRequest,
    ) -> Result<Recommendation, CoreError> {
        let llm = llm_by_name(llm_name)
            .ok_or_else(|| CoreError::Parse(format!("unknown LLM {llm_name:?}")))?;
        let candidates: Vec<GpuProfile> = self
            .profiles
            .iter()
            .filter(|p| {
                MemoryModel::new(llm.clone(), (*p).clone(), MemoryConfig::default())
                    .feasibility()
                    .is_feasible()
            })
            .cloned()
            .collect();
        if candidates.is_empty() {
            return Err(CoreError::NoFeasibleRecommendation);
        }
        recommend(&candidates, request, |p, u| Some(self.predictor.predict(&llm, p, u)))
    }
}

/// A fast predictor configuration for services that retrain online: fewer,
/// shallower trees than [`PredictorConfig::default`] — accuracy within a
/// few percent on the characterization grid, training an order of
/// magnitude faster.
pub fn online_predictor_config() -> PredictorConfig {
    PredictorConfig {
        gbdt: llmpilot_ml::GbdtParams {
            n_trees: 60,
            max_depth: 4,
            ..llmpilot_ml::GbdtParams::default()
        },
        ..PredictorConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, CharacterizeConfig};
    use llmpilot_sim::gpu::{a100_40, h100, t4};
    use llmpilot_sim::llm::{flan_t5_xl, llama2_13b, llama2_7b};
    use llmpilot_traces::{Param, TraceGenerator, TraceGeneratorConfig};
    use llmpilot_workload::{WorkloadModel, WorkloadSampler};

    fn tiny_dataset() -> CharacterizationDataset {
        let traces = TraceGenerator::new(TraceGeneratorConfig {
            num_requests: 8_000,
            seed: 41,
            ..TraceGeneratorConfig::default()
        })
        .generate();
        let model = WorkloadModel::fit(
            &traces,
            &[Param::InputTokens, Param::OutputTokens, Param::BatchSize],
        )
        .unwrap();
        let sampler = WorkloadSampler::new(model);
        let llms = vec![flan_t5_xl(), llama2_7b(), llama2_13b()];
        let profiles = vec![
            GpuProfile::new(t4(), 2),
            GpuProfile::new(a100_40(), 1),
            GpuProfile::new(h100(), 1),
        ];
        let config = CharacterizeConfig {
            duration_s: 20.0,
            user_sweep: vec![1, 4, 16, 64],
            ..CharacterizeConfig::default()
        };
        characterize(&llms, &profiles, &sampler, &config)
    }

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn serving_model_is_send_sync() {
        assert_send_sync::<ServingModel>();
    }

    #[test]
    fn trains_and_answers_queries() {
        let ds = tiny_dataset();
        let model = ServingModel::train(
            &ds,
            &LatencyConstraints::paper_defaults(),
            &online_predictor_config(),
        )
        .unwrap();
        assert_eq!(model.training_rows(), ds.len());
        assert_eq!(model.llms().len(), 3);
        assert_eq!(model.profiles().len(), 3);

        let request = RecommendationRequest::paper_defaults();
        let rec = model.recommend("Llama-2-13b", &request).unwrap();
        assert!(rec.pods >= 1);
        assert!(rec.cost_per_hour > 0.0);
        assert!(model.profiles().iter().any(|p| p.name() == rec.profile));
    }

    #[test]
    fn recommendations_are_deterministic_across_calls() {
        let ds = tiny_dataset();
        let model = ServingModel::train(
            &ds,
            &LatencyConstraints::paper_defaults(),
            &online_predictor_config(),
        )
        .unwrap();
        let request = RecommendationRequest::paper_defaults();
        let a = model.recommend("Llama-2-7b", &request).unwrap();
        let b = model.recommend("Llama-2-7b", &request).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_llm_is_a_parse_error() {
        let ds = tiny_dataset();
        let model = ServingModel::train(
            &ds,
            &LatencyConstraints::paper_defaults(),
            &online_predictor_config(),
        )
        .unwrap();
        assert!(matches!(
            model.recommend("no-such-llm", &RecommendationRequest::paper_defaults()),
            Err(CoreError::Parse(_))
        ));
    }

    #[test]
    fn impossible_sla_is_no_feasible_recommendation() {
        let ds = tiny_dataset();
        let model = ServingModel::train(
            &ds,
            &LatencyConstraints::paper_defaults(),
            &online_predictor_config(),
        )
        .unwrap();
        let request = RecommendationRequest {
            total_users: 200,
            constraints: LatencyConstraints { nttft_s: 1e-9, itl_s: 1e-9 },
            user_grid: vec![1, 2, 4],
        };
        assert_eq!(
            model.recommend("Llama-2-13b", &request),
            Err(CoreError::NoFeasibleRecommendation)
        );
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let ds = CharacterizationDataset::default();
        assert!(matches!(
            ServingModel::train(
                &ds,
                &LatencyConstraints::paper_defaults(),
                &online_predictor_config()
            ),
            Err(CoreError::InsufficientData(_))
        ));
    }
}
