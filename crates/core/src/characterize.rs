//! The performance characterization tool (Sec. III, Fig. 2).
//!
//! For every `(LLM, GPU profile)` combination, LLM-Pilot (1) deploys the
//! inference service, (2) tunes the maximum batch weight to maximize GPU
//! utilization, and (3) runs a series of load-testing experiments with
//! exponentially increasing numbers of concurrent users, collecting TTFT,
//! normalized TTFT, inter-token latency and throughput. The grid sweep is
//! embarrassingly parallel and runs cells across threads.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use llmpilot_obs::Recorder;
use llmpilot_sim::engine::{Engine, PhaseHists};
use llmpilot_sim::error::SimError;
use llmpilot_sim::fault::FaultPlan;
use llmpilot_sim::gpu::GpuProfile;
use llmpilot_sim::llm::LlmSpec;
use llmpilot_sim::load::{default_user_sweep, run_load_test_observed, LoadTestConfig, SampleHists};
use llmpilot_sim::memory::{MemoryConfig, MemoryModel};
use llmpilot_sim::perf_model::{PerfModel, PerfModelConfig};
use llmpilot_sim::request::{RequestSource, RequestSpec};
use llmpilot_sim::tuner::tune_max_batch_weight_faulty_traced;
use llmpilot_workload::{IndependentSampler, WorkloadSampler};

use crate::dataset::{CharacterizationDataset, PerfRow};

/// Adapter: drive the simulator with requests drawn from the workload
/// generator's joint model.
#[derive(Debug)]
pub struct WorkloadRequestSource {
    sampler: WorkloadSampler,
    rng: StdRng,
}

impl WorkloadRequestSource {
    /// A seeded request stream over the given sampler.
    pub fn new(sampler: WorkloadSampler, seed: u64) -> Self {
        Self { sampler, rng: StdRng::seed_from_u64(seed) }
    }
}

impl RequestSource for WorkloadRequestSource {
    fn next_request(&mut self) -> RequestSpec {
        let r = self.sampler.sample(&mut self.rng);
        RequestSpec {
            input_tokens: r.input_tokens().unwrap_or(1),
            output_tokens: r.output_tokens().unwrap_or(1),
            batch_size: r.batch_size().unwrap_or(1),
        }
    }
}

/// Adapter for the Sec. V-A ablation: requests with *independently* sampled
/// parameters (marginals preserved, correlations destroyed).
#[derive(Debug)]
pub struct IndependentRequestSource {
    sampler: IndependentSampler,
    rng: StdRng,
}

impl IndependentRequestSource {
    /// A seeded independent-marginals request stream.
    pub fn new(sampler: IndependentSampler, seed: u64) -> Self {
        Self { sampler, rng: StdRng::seed_from_u64(seed) }
    }
}

impl RequestSource for IndependentRequestSource {
    fn next_request(&mut self) -> RequestSpec {
        let r = self.sampler.sample(&mut self.rng);
        RequestSpec {
            input_tokens: r.input_tokens().unwrap_or(1),
            output_tokens: r.output_tokens().unwrap_or(1),
            batch_size: r.batch_size().unwrap_or(1),
        }
    }
}

/// Configuration of a characterization sweep.
#[derive(Debug, Clone)]
pub struct CharacterizeConfig {
    /// Duration of each load test, virtual seconds (the paper: 2 minutes).
    pub duration_s: f64,
    /// Warm-up period excluded from the metrics (the paper: none).
    pub warmup_s: f64,
    /// Concurrent-user sweep (the paper: 1, 2, 4, …, 128).
    pub user_sweep: Vec<u32>,
    /// Base seed; per-cell streams derive from it deterministically.
    pub seed: u64,
    /// Memory-model constants.
    pub mem_config: MemoryConfig,
    /// Performance-model constants.
    pub perf_config: PerfModelConfig,
}

impl Default for CharacterizeConfig {
    fn default() -> Self {
        Self {
            duration_s: 120.0,
            warmup_s: 0.0,
            user_sweep: default_user_sweep(),
            seed: 0xB17,
            mem_config: MemoryConfig::default(),
            perf_config: PerfModelConfig::default(),
        }
    }
}

/// Deterministic per-cell seed (FNV-1a over the cell identity).
fn cell_seed(base: u64, llm: &str, profile: &str, users: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
    for b in llm.bytes().chain(profile.bytes()).chain(users.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The typed result of characterizing one `(LLM, GPU profile)` cell.
///
/// The three variants are semantically distinct and must never be
/// conflated: an [`CellOutcome::Infeasible`] cell is *permanently*
/// impossible (an × or − cell of Table III — retrying is pointless), while a
/// [`CellOutcome::Failed`] cell hit a (possibly transient) error and may
/// succeed on retry.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The cell was measured successfully.
    Measured {
        /// The tuned maximum batch weight.
        max_batch_weight: u64,
        /// One row per user count of the sweep (NaN-median points dropped).
        rows: Vec<PerfRow>,
    },
    /// The combination cannot be deployed, ever (Table III's × and − cells).
    Infeasible(String),
    /// The cell errored; the error may be transient (injected fault, budget
    /// exhaustion) and a retry may succeed.
    Failed {
        /// The error of the last attempt.
        error: SimError,
        /// Attempts made so far (1 for a first failure).
        attempts: u32,
    },
}

impl CellOutcome {
    /// The measured payload, if any.
    pub fn measured(self) -> Option<(u64, Vec<PerfRow>)> {
        match self {
            CellOutcome::Measured { max_batch_weight, rows } => Some((max_batch_weight, rows)),
            _ => None,
        }
    }

    /// Whether the cell errored (retryable).
    pub fn is_failed(&self) -> bool {
        matches!(self, CellOutcome::Failed { .. })
    }
}

/// Per-attempt resource budgets for one cell; exhausting either turns the
/// cell into [`CellOutcome::Failed`] with [`SimError::BudgetExhausted`]
/// instead of letting the sweep hang.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellBudget {
    /// Maximum engine steps across all load tests of the cell.
    pub max_steps: Option<u64>,
    /// Maximum virtual seconds per load test of the cell.
    pub max_virtual_s: Option<f64>,
}

impl CellBudget {
    /// No limits.
    pub fn unlimited() -> Self {
        Self::default()
    }
}

/// Optional per-cell tail-latency observation: sample histograms for the
/// load tester plus shared per-phase duration histograms for the engines.
/// One instance aggregates across every load test of the cell.
#[derive(Debug, Default)]
pub struct CellHists {
    /// Per-request normalized-TTFT and per-gap ITL samples.
    pub samples: SampleHists,
    /// Per-phase (prefill/decode) engine step durations; `Arc` because
    /// every load test's engine shares the same sink.
    pub phases: Arc<PhaseHists>,
}

/// Characterize one `(LLM, GPU profile)` cell: tune the batch weight, then
/// load-test every user count.
pub fn characterize_cell(
    llm: &LlmSpec,
    profile: &GpuProfile,
    sampler: &WorkloadSampler,
    config: &CharacterizeConfig,
) -> CellOutcome {
    characterize_cell_faulty(
        llm,
        profile,
        sampler,
        config,
        &FaultPlan::none(),
        0,
        &CellBudget::unlimited(),
    )
}

/// Fault-aware characterization of one cell, attempt number `attempt`.
///
/// Fault sites are derived from the cell identity *and* the attempt number
/// (`{llm}/{profile}#a{attempt}` for deploy/tuning,
/// `{llm}/{profile}/u{users}#a{attempt}` for each load test), so a retry
/// draws fresh fault decisions — while the measurement seed
/// ([`cell_seed`], attempt-independent) stays fixed. A retried attempt that
/// dodges its faults therefore produces rows bit-identical to a fault-free
/// run. With [`FaultPlan::none`] and an unlimited budget this is exactly
/// [`characterize_cell`].
pub fn characterize_cell_faulty(
    llm: &LlmSpec,
    profile: &GpuProfile,
    sampler: &WorkloadSampler,
    config: &CharacterizeConfig,
    plan: &FaultPlan,
    attempt: u32,
    budget: &CellBudget,
) -> CellOutcome {
    characterize_cell_faulty_traced(
        llm,
        profile,
        sampler,
        config,
        plan,
        attempt,
        budget,
        &Recorder::disabled(),
    )
}

/// [`characterize_cell_faulty`] with observability: every load test runs
/// under a `cell.load_test` span (with the user count as an argument) and
/// the engine inherits `recorder`, so engine-phase spans nest beneath the
/// load test that produced them. Tracing never perturbs the measurement —
/// the rows are bit-identical to an untraced run.
#[allow(clippy::too_many_arguments)]
pub fn characterize_cell_faulty_traced(
    llm: &LlmSpec,
    profile: &GpuProfile,
    sampler: &WorkloadSampler,
    config: &CharacterizeConfig,
    plan: &FaultPlan,
    attempt: u32,
    budget: &CellBudget,
    recorder: &Recorder,
) -> CellOutcome {
    characterize_cell_observed(llm, profile, sampler, config, plan, attempt, budget, recorder, None)
}

/// [`characterize_cell_faulty_traced`] with optional tail-latency
/// observation: when `hists` is given, every load test additionally
/// records per-sample nTTFT/ITL and per-phase prefill/decode durations
/// into it. Observation never perturbs the measurement — rows stay
/// bit-identical to an unobserved run.
#[allow(clippy::too_many_arguments)]
pub fn characterize_cell_observed(
    llm: &LlmSpec,
    profile: &GpuProfile,
    sampler: &WorkloadSampler,
    config: &CharacterizeConfig,
    plan: &FaultPlan,
    attempt: u32,
    budget: &CellBudget,
    recorder: &Recorder,
    hists: Option<&CellHists>,
) -> CellOutcome {
    let cell = format!("{}/{}", llm.name, profile.name());
    let site = format!("{cell}#a{attempt}");
    let attempts = attempt + 1;

    let mem = MemoryModel::new(llm.clone(), profile.clone(), config.mem_config.clone());
    let feas = mem.feasibility();
    if !feas.is_feasible() {
        return CellOutcome::Infeasible(format!("{feas:?}"));
    }
    if plan.deploy_fails(&site) {
        return CellOutcome::Failed {
            error: SimError::DeployFailed { llm: llm.name.to_string(), profile: profile.name() },
            attempts,
        };
    }
    let tuned = match tune_max_batch_weight_faulty_traced(&mem, plan, &site, recorder) {
        Ok(t) => t,
        // No valid weight exists: a deterministic property of the
        // combination, i.e. infeasible — never retried.
        Err(e @ SimError::TuningFailed { .. }) => return CellOutcome::Infeasible(e.to_string()),
        // Everything else (injected OOM, divergence) is a failure.
        Err(error) => return CellOutcome::Failed { error, attempts },
    };

    let mut steps_left = budget.max_steps;
    let mut rows = Vec::with_capacity(config.user_sweep.len());
    for &users in &config.user_sweep {
        let _load_span = recorder.span("cell.load_test").arg("users", users);
        let load_site = format!("{cell}/u{users}#a{attempt}");
        let perf = PerfModel::new(llm.clone(), profile.clone(), config.perf_config.clone());
        let mut engine = Engine::new(perf, tuned.max_batch_weight)
            .with_latency_noise(plan.latency_noise(&load_site))
            .with_recorder(recorder.clone());
        if let Some(h) = hists {
            engine = engine.with_phase_hists(Arc::clone(&h.phases));
        }
        let mut source = WorkloadRequestSource::new(
            sampler.clone(),
            cell_seed(config.seed, llm.name, &profile.name(), users),
        );
        let mut faults = plan.load_faults(&load_site, config.duration_s);
        faults.max_steps = steps_left;
        faults.max_virtual_s = budget.max_virtual_s;
        let result = run_load_test_observed(
            &mut engine,
            &mem,
            &mut source,
            &LoadTestConfig {
                duration_s: config.duration_s,
                warmup_s: config.warmup_s,
                concurrent_users: users,
            },
            &mut faults,
            hists.map(|h| &h.samples),
        );
        // The step budget is per cell: steps spent on this load test are
        // gone for the remaining ones.
        if let Some(left) = steps_left {
            steps_left = Some(left.saturating_sub(faults.steps_used));
        }
        let metrics = match result {
            Ok(m) => m,
            Err(error) => return CellOutcome::Failed { error, attempts },
        };
        // Pathological windows (nothing measurable post-warmup) yield NaN
        // medians; drop such points rather than poisoning the dataset.
        if !(metrics.ttft_median_s.is_finite()
            && metrics.nttft_median_s.is_finite()
            && metrics.itl_median_s.is_finite()
            && metrics.throughput_tokens_per_s.is_finite())
        {
            continue;
        }
        rows.push(PerfRow {
            llm: llm.name.to_string(),
            profile: profile.name(),
            users,
            ttft_s: metrics.ttft_median_s,
            nttft_s: metrics.nttft_median_s,
            itl_s: metrics.itl_median_s,
            throughput: metrics.throughput_tokens_per_s,
        });
    }
    CellOutcome::Measured { max_batch_weight: tuned.max_batch_weight, rows }
}

/// Run the full characterization sweep over an LLM × GPU-profile grid,
/// parallelized over cells. Infeasible cells are skipped, like the paper's
/// Table III.
pub fn characterize(
    llms: &[LlmSpec],
    profiles: &[GpuProfile],
    sampler: &WorkloadSampler,
    config: &CharacterizeConfig,
) -> CharacterizationDataset {
    let cells: Vec<(LlmSpec, GpuProfile)> =
        llms.iter().flat_map(|m| profiles.iter().map(move |p| (m.clone(), p.clone()))).collect();

    type MeasuredCell = (String, String, u64, Vec<PerfRow>);
    let results: Vec<Option<MeasuredCell>> = cells
        .par_iter()
        .map(|(llm, profile)| {
            characterize_cell(llm, profile, sampler, config)
                .measured()
                .map(|(w, rows)| (llm.name.to_string(), profile.name(), w, rows))
        })
        .collect();

    let mut ds = CharacterizationDataset::default();
    for (llm, profile, weight, rows) in results.into_iter().flatten() {
        ds.tuned_weights.insert((llm, profile), weight);
        ds.rows.extend(rows);
    }
    ds
}

/// Estimate of the wall-clock overhead of running this characterization on
/// *real* hardware (Sec. V-B "characterization overhead"): per LLM, batch
/// weight tuning costs roughly `tuning_minutes_per_llm`, and load testing
/// costs deploy time plus the user sweep at `duration_s` each; work is
/// parallelized over GPU profiles, so LLMs are the serial dimension.
pub fn estimate_real_overhead_hours(
    num_llms: usize,
    user_sweep_len: usize,
    duration_s: f64,
    tuning_minutes_per_llm: f64,
) -> f64 {
    let load_minutes_per_llm =
        4.0 /* deploy + warmup */ + user_sweep_len as f64 * duration_s / 60.0;
    num_llms as f64 * (tuning_minutes_per_llm + load_minutes_per_llm) / 60.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpilot_sim::gpu::{a100_40, t4, v100};
    use llmpilot_sim::llm::{flan_t5_xl, flan_ul2, llama2_13b, llama2_7b};
    use llmpilot_traces::{Param, TraceGenerator, TraceGeneratorConfig};
    use llmpilot_workload::WorkloadModel;

    fn sampler() -> WorkloadSampler {
        let traces = TraceGenerator::new(TraceGeneratorConfig {
            num_requests: 20_000,
            seed: 55,
            ..TraceGeneratorConfig::default()
        })
        .generate();
        let model = WorkloadModel::fit(
            &traces,
            &[Param::InputTokens, Param::OutputTokens, Param::BatchSize],
        )
        .unwrap();
        WorkloadSampler::new(model)
    }

    fn quick_config() -> CharacterizeConfig {
        CharacterizeConfig {
            duration_s: 20.0,
            user_sweep: vec![1, 8, 64],
            ..CharacterizeConfig::default()
        }
    }

    #[test]
    fn cell_produces_one_row_per_user_count() {
        let s = sampler();
        let (weight, rows) =
            characterize_cell(&llama2_13b(), &GpuProfile::new(a100_40(), 1), &s, &quick_config())
                .measured()
                .unwrap();
        assert!(weight > 0);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.ttft_s > 0.0);
            assert!(r.itl_s > 0.0);
            assert!(r.nttft_s > 0.0);
            assert!(r.throughput > 0.0);
        }
        // Latency degrades with load.
        assert!(rows[2].ttft_s >= rows[0].ttft_s);
    }

    #[test]
    fn infeasible_cells_are_skipped() {
        let s = sampler();
        assert!(matches!(
            characterize_cell(&flan_ul2(), &GpuProfile::new(t4(), 1), &s, &quick_config()),
            CellOutcome::Infeasible(_)
        ));
        // Flash model on V100: software-unsupported.
        assert!(matches!(
            characterize_cell(&llama2_7b(), &GpuProfile::new(v100(), 1), &s, &quick_config()),
            CellOutcome::Infeasible(_)
        ));
    }

    #[test]
    fn injected_load_error_is_failed_never_infeasible() {
        // Regression: a load-test error used to be swallowed by `.ok()?`,
        // making an errored cell indistinguishable from a permanently
        // infeasible one. It must surface as a retryable `Failed`.
        use llmpilot_sim::fault::{FaultConfig, FaultPlan};
        let s = sampler();
        let plan = FaultPlan::new(FaultConfig { crash_prob: 1.0, ..FaultConfig::disabled() });
        let out = characterize_cell_faulty(
            &llama2_13b(),
            &GpuProfile::new(a100_40(), 1),
            &s,
            &quick_config(),
            &plan,
            0,
            &CellBudget::unlimited(),
        );
        match out {
            CellOutcome::Failed { error, attempts } => {
                assert!(matches!(error, llmpilot_sim::error::SimError::EngineCrashed { .. }));
                assert_eq!(attempts, 1);
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_step_budget_is_failed() {
        let s = sampler();
        let out = characterize_cell_faulty(
            &llama2_13b(),
            &GpuProfile::new(a100_40(), 1),
            &s,
            &quick_config(),
            &FaultPlan::none(),
            0,
            &CellBudget { max_steps: Some(10), max_virtual_s: None },
        );
        match out {
            CellOutcome::Failed { error, .. } => {
                assert!(matches!(error, llmpilot_sim::error::SimError::BudgetExhausted { .. }));
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn faulty_cell_with_none_plan_matches_plain_cell() {
        let s = sampler();
        let llm = llama2_13b();
        let profile = GpuProfile::new(a100_40(), 1);
        let plain = characterize_cell(&llm, &profile, &s, &quick_config());
        let faulty = characterize_cell_faulty(
            &llm,
            &profile,
            &s,
            &quick_config(),
            &FaultPlan::none(),
            0,
            &CellBudget::unlimited(),
        );
        assert_eq!(plain, faulty);
        // And a later attempt number changes nothing without faults — the
        // measurement seed is attempt-independent.
        let retry = characterize_cell_faulty(
            &llm,
            &profile,
            &s,
            &quick_config(),
            &FaultPlan::none(),
            3,
            &CellBudget::unlimited(),
        );
        assert_eq!(plain, retry);
    }

    #[test]
    fn sweep_collects_feasible_grid() {
        let s = sampler();
        let llms = vec![flan_t5_xl(), llama2_7b()];
        let profiles = vec![GpuProfile::new(t4(), 1), GpuProfile::new(a100_40(), 1)];
        let ds = characterize(&llms, &profiles, &s, &quick_config());
        // flan-t5-xl fits both; llama-2-7b does not fit 1xT4.
        assert!(ds.cell_feasible("google/flan-t5-xl", "1xT4-16GB"));
        assert!(ds.cell_feasible("google/flan-t5-xl", "1xA100-40GB"));
        assert!(ds.cell_feasible("Llama-2-7b", "1xA100-40GB"));
        assert!(!ds.cell_feasible("Llama-2-7b", "1xT4-16GB"));
        assert_eq!(ds.len(), 3 * 3);
        assert_eq!(ds.tuned_weights.len(), 3);
    }

    #[test]
    fn characterization_is_deterministic() {
        let s = sampler();
        let llms = vec![llama2_7b()];
        let profiles = vec![GpuProfile::new(a100_40(), 1)];
        let a = characterize(&llms, &profiles, &s, &quick_config());
        let b = characterize(&llms, &profiles, &s, &quick_config());
        assert_eq!(a, b);
    }

    #[test]
    fn overhead_estimate_matches_paper_magnitude() {
        // The paper estimates ~8h for 10 LLMs (30 min tuning + ~20 min load
        // testing per LLM, parallelized over GPUs).
        let hours = estimate_real_overhead_hours(10, 8, 120.0, 30.0);
        assert!(hours > 6.0 && hours < 11.0, "hours = {hours}");
    }

    #[test]
    fn cell_seeds_differ_by_identity() {
        let a = cell_seed(1, "m", "p", 1);
        let b = cell_seed(1, "m", "p", 2);
        let c = cell_seed(1, "m", "q", 1);
        let d = cell_seed(2, "m", "p", 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
