//! Evaluation of GPU recommendation methods (Sec. V-C, Fig. 8).
//!
//! Unseen LLMs are simulated via nested leave-one-LLM-out cross-validation:
//! each LLM is removed from the characterization dataset in turn, every
//! method recommends a deployment for it using only the remaining LLMs'
//! data (plus, for ▲ methods, reference measurements on 1×T4 and 4×H100),
//! and the recommendation is judged against the LLM's *true* measured
//! performance:
//!
//! * **success rate** `S` (Eq. 5) — did `n` pods of `G*` actually sustain
//!   `U` users under the constraints?
//! * **relative overspend** `O` (Eq. 6) — how much more the recommended
//!   deployment costs than the true cost-optimal one (successes only);
//! * **S/O score** (Eq. 7) — harmonic mean of `S` and `max(0, 1 − O)`.

use rayon::prelude::*;

use llmpilot_sim::gpu::GpuProfile;
use llmpilot_sim::llm::llm_by_name;
use llmpilot_sim::memory::{MemoryConfig, MemoryModel};

use crate::baselines::{Method, MethodInput, REFERENCE_PROFILES};
use crate::dataset::CharacterizationDataset;
use crate::error::CoreError;
use crate::recommend::{
    pods_needed, recommend, LatencyConstraints, Recommendation, RecommendationRequest,
};

/// The true `û_max` of Eq. (5): the measured maximum users per pod for
/// `(llm, profile)` under the constraints, from the characterization data.
pub fn true_u_max(
    dataset: &CharacterizationDataset,
    llm: &str,
    profile: &str,
    constraints: &LatencyConstraints,
) -> Option<u32> {
    let mut rows: Vec<_> =
        dataset.rows.iter().filter(|r| r.llm == llm && r.profile == profile).collect();
    if rows.is_empty() {
        return None;
    }
    rows.sort_by_key(|r| r.users);
    let latencies: Vec<(u32, f64, f64)> =
        rows.iter().map(|r| (r.users, r.nttft_s, r.itl_s)).collect();
    crate::recommend::u_max(&latencies, constraints)
}

/// The oracle deployment of Eq. (6): the truly most cost-effective
/// `(profile, pods)` had the LLM's real performance been known.
pub fn oracle_recommendation(
    dataset: &CharacterizationDataset,
    llm: &str,
    profiles: &[GpuProfile],
    request: &RecommendationRequest,
) -> Result<Recommendation, CoreError> {
    // recommend() expects per-(profile, users) latencies; supply them
    // directly from the measured rows.
    recommend(profiles, request, |p, u| {
        dataset.get(llm, &p.name(), u).map(|r| (r.nttft_s, r.itl_s))
    })
}

/// Outcome of one method on one unseen LLM.
#[derive(Debug, Clone)]
pub struct LlmOutcome {
    /// The held-out LLM.
    pub llm: String,
    /// The method's recommendation (None when it failed to produce one).
    pub recommendation: Option<Recommendation>,
    /// The oracle deployment (None when no deployment truly satisfies).
    pub oracle: Option<Recommendation>,
    /// Eq. (5) success.
    pub success: bool,
    /// Eq. (6) relative overspend (successes only).
    pub overspend: Option<f64>,
}

/// Aggregate scores of one method (a point of Fig. 8).
#[derive(Debug, Clone)]
pub struct MethodScore {
    /// Method display name.
    pub method: String,
    /// Whether the method measures reference profiles (▲ vs ● in Fig. 8).
    pub uses_references: bool,
    /// Success rate `S` over all unseen LLMs.
    pub success_rate: f64,
    /// Mean relative overspend `O` over successful recommendations
    /// (`NaN` when the method never succeeded).
    pub mean_overspend: f64,
    /// S/O score (Eq. 7).
    pub so_score: f64,
    /// Per-LLM detail.
    pub outcomes: Vec<LlmOutcome>,
}

/// Eq. (7): harmonic mean of the success rate and `max(0, 1 − O)`.
pub fn so_score(success_rate: f64, mean_overspend: f64) -> f64 {
    let inv = if mean_overspend.is_nan() { 0.0 } else { (1.0 - mean_overspend).max(0.0) };
    let denom = success_rate + inv;
    if denom <= 0.0 {
        0.0
    } else {
        2.0 * success_rate * inv / denom
    }
}

/// Evaluation context shared by all methods.
pub struct Evaluation<'a> {
    /// The characterization dataset.
    pub dataset: &'a CharacterizationDataset,
    /// Candidate GPU profiles `𝔾`.
    pub profiles: Vec<GpuProfile>,
    /// The recommendation request (load, SLA, user grid).
    pub request: RecommendationRequest,
    /// Memory-model constants for the per-LLM feasibility filter.
    pub mem_config: MemoryConfig,
}

impl<'a> Evaluation<'a> {
    /// Build an evaluation with the paper's defaults.
    pub fn new(dataset: &'a CharacterizationDataset, profiles: Vec<GpuProfile>) -> Self {
        Self {
            dataset,
            profiles,
            request: RecommendationRequest::paper_defaults(),
            mem_config: MemoryConfig::default(),
        }
    }

    /// Candidate profiles a given LLM can physically be deployed on — the
    /// memory feasibility every method (and the cluster admin) can check
    /// without any performance measurement.
    fn candidate_profiles(&self, llm: &str) -> Vec<GpuProfile> {
        let Some(spec) = llm_by_name(llm) else { return Vec::new() };
        self.profiles
            .iter()
            .filter(|p| {
                MemoryModel::new(spec.clone(), (*p).clone(), self.mem_config.clone())
                    .feasibility()
                    .is_feasible()
            })
            .cloned()
            .collect()
    }

    /// Judge one recommendation for one LLM against the ground truth.
    fn judge(&self, llm: &str, rec: Result<Recommendation, CoreError>) -> LlmOutcome {
        let candidates = self.candidate_profiles(llm);
        let oracle = oracle_recommendation(self.dataset, llm, &candidates, &self.request).ok();
        let recommendation = rec.ok();
        let (success, overspend) = match &recommendation {
            None => (false, None),
            Some(r) => {
                let success = true_u_max(self.dataset, llm, &r.profile, &self.request.constraints)
                    .is_some_and(|u| {
                        u64::from(r.pods) * u64::from(u) >= u64::from(self.request.total_users)
                    });
                let overspend = if success {
                    oracle.as_ref().map(|o| {
                        // Actual cost of the recommendation vs the oracle's.
                        (r.cost_per_hour - o.cost_per_hour) / o.cost_per_hour
                    })
                } else {
                    None
                };
                (success, overspend)
            }
        };
        LlmOutcome { llm: llm.to_string(), recommendation, oracle, success, overspend }
    }

    /// Evaluate one method over every unseen LLM (the outer leave-one-out
    /// loop), in parallel.
    pub fn evaluate(&self, method: &dyn Method) -> MethodScore {
        let llms = self.dataset.llms();
        let outcomes: Vec<LlmOutcome> = llms
            .par_iter()
            .map(|llm| {
                let spec = match llm_by_name(llm) {
                    Some(s) => s,
                    None => {
                        return LlmOutcome {
                            llm: llm.clone(),
                            recommendation: None,
                            oracle: None,
                            success: false,
                            overspend: None,
                        }
                    }
                };
                let candidates = self.candidate_profiles(llm);
                let train_rows = self.dataset.rows_excluding_llm(llm);
                let reference_rows: Vec<_> = if method.uses_reference_measurements() {
                    self.dataset
                        .rows_for_llm(llm)
                        .into_iter()
                        .filter(|r| REFERENCE_PROFILES.contains(&r.profile.as_str()))
                        .collect()
                } else {
                    Vec::new()
                };
                let input = MethodInput {
                    train_rows,
                    test_llm: &spec,
                    reference_rows,
                    profiles: &candidates,
                    request: &self.request,
                };
                self.judge(llm, method.recommend(&input))
            })
            .collect();

        let n = outcomes.len().max(1) as f64;
        let success_rate = outcomes.iter().filter(|o| o.success).count() as f64 / n;
        let spends: Vec<f64> = outcomes.iter().filter_map(|o| o.overspend).collect();
        let mean_overspend = if spends.is_empty() {
            f64::NAN
        } else {
            spends.iter().sum::<f64>() / spends.len() as f64
        };
        MethodScore {
            method: method.name().to_string(),
            uses_references: method.uses_reference_measurements(),
            success_rate,
            mean_overspend,
            so_score: so_score(success_rate, mean_overspend),
            outcomes,
        }
    }
}

/// Select the best static policy over a broad candidate grid by S/O score,
/// as the paper does for its Static baseline (Sec. V-C): "We have
/// considered a broad range of static policies and present the one which
/// achieved the highest S/O score." Returns the winning policy with its
/// score.
pub fn best_static_policy(eval: &Evaluation<'_>) -> (crate::baselines::StaticMethod, MethodScore) {
    let candidates = crate::baselines::StaticMethod::candidate_grid(&eval.profiles);
    candidates
        .into_iter()
        .map(|c| {
            let score = eval.evaluate(&c);
            (c, score)
        })
        .max_by(|a, b| {
            a.1.so_score
                .total_cmp(&b.1.so_score)
                // Deterministic tie-break: prefer fewer pods, then name.
                .then(b.0.pods.cmp(&a.0.pods))
                .then(b.0.profile.cmp(&a.0.profile))
        })
        .expect("candidate grid is nonempty")
}

/// Sanity helper for pods math exposed for tests and experiments: the
/// deployment a method with perfect knowledge would make on `profile`.
pub fn deployment_with_true_capacity(
    dataset: &CharacterizationDataset,
    llm: &str,
    profile: &GpuProfile,
    request: &RecommendationRequest,
) -> Option<Recommendation> {
    let cap = true_u_max(dataset, llm, &profile.name(), &request.constraints)?;
    let pods = pods_needed(request.total_users, cap);
    Some(Recommendation {
        profile: profile.name(),
        pods,
        u_max: cap,
        cost_per_hour: f64::from(pods) * profile.cost_per_hour(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::PerfRow;

    fn row(llm: &str, profile: &str, users: u32, nttft: f64, itl: f64) -> PerfRow {
        PerfRow {
            llm: llm.into(),
            profile: profile.into(),
            users,
            ttft_s: nttft * 100.0,
            nttft_s: nttft,
            itl_s: itl,
            throughput: f64::from(users) * 10.0,
        }
    }

    /// Synthetic dataset: "good" satisfies up to 64 users on H100, 16 on
    /// A100-40, never on T4.
    fn dataset() -> CharacterizationDataset {
        let mut ds = CharacterizationDataset::default();
        for users in [1u32, 2, 4, 8, 16, 32, 64, 128] {
            for (profile, cap) in [("1xH100-80GB", 64u32), ("1xA100-40GB", 16), ("1xT4-16GB", 0)] {
                let (nttft, itl) = if users <= cap { (0.01, 0.01) } else { (0.5, 0.5) };
                ds.rows.push(row("Llama-2-7b", profile, users, nttft, itl));
            }
        }
        ds
    }

    #[test]
    fn true_u_max_reads_measured_curve() {
        let ds = dataset();
        let c = LatencyConstraints::paper_defaults();
        assert_eq!(true_u_max(&ds, "Llama-2-7b", "1xH100-80GB", &c), Some(64));
        assert_eq!(true_u_max(&ds, "Llama-2-7b", "1xA100-40GB", &c), Some(16));
        assert_eq!(true_u_max(&ds, "Llama-2-7b", "1xT4-16GB", &c), None);
        assert_eq!(true_u_max(&ds, "nope", "1xT4-16GB", &c), None);
    }

    #[test]
    fn oracle_picks_cheapest_true_deployment() {
        let ds = dataset();
        let profiles = vec![
            llmpilot_sim::gpu::GpuProfile::new(llmpilot_sim::gpu::h100(), 1),
            llmpilot_sim::gpu::GpuProfile::new(llmpilot_sim::gpu::a100_40(), 1),
            llmpilot_sim::gpu::GpuProfile::new(llmpilot_sim::gpu::t4(), 1),
        ];
        let request = RecommendationRequest::paper_defaults();
        let oracle = oracle_recommendation(&ds, "Llama-2-7b", &profiles, &request).unwrap();
        // H100: ceil(200/64)=4 pods × 12.29 = 49.16; A100: 13 × 4.10 = 53.3.
        assert_eq!(oracle.profile, "1xH100-80GB");
        assert_eq!(oracle.pods, 4);
    }

    #[test]
    fn so_score_is_harmonic_mean() {
        assert!((so_score(0.8, 0.2) - 0.8).abs() < 1e-12);
        assert_eq!(so_score(0.0, 0.0), 0.0);
        assert_eq!(so_score(1.0, 1.0), 0.0); // overspend 100% → inv = 0
        assert_eq!(so_score(0.5, f64::NAN), 0.0);
        // Perfect method.
        assert!((so_score(1.0, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn judge_scores_success_and_overspend() {
        let ds = dataset();
        let profiles = vec![
            llmpilot_sim::gpu::GpuProfile::new(llmpilot_sim::gpu::h100(), 1),
            llmpilot_sim::gpu::GpuProfile::new(llmpilot_sim::gpu::a100_40(), 1),
        ];
        let eval = Evaluation::new(&ds, profiles.clone());
        // A recommendation matching the oracle: success, overspend 0.
        let oracle = oracle_recommendation(&ds, "Llama-2-7b", &profiles, &eval.request).unwrap();
        let out = eval.judge("Llama-2-7b", Ok(oracle.clone()));
        assert!(out.success);
        assert!(out.overspend.unwrap().abs() < 1e-12);

        // Under-provisioned: 1 pod on A100 (true capacity 16 < 200) → fail.
        let bad = Recommendation {
            profile: "1xA100-40GB".into(),
            pods: 1,
            u_max: 128,
            cost_per_hour: 4.10,
        };
        let out = eval.judge("Llama-2-7b", Ok(bad));
        assert!(!out.success);
        assert!(out.overspend.is_none());

        // Over-provisioned: 30 pods on A100 → success with high overspend.
        let over = Recommendation {
            profile: "1xA100-40GB".into(),
            pods: 30,
            u_max: 16,
            cost_per_hour: 30.0 * 4.10,
        };
        let out = eval.judge("Llama-2-7b", Ok(over));
        assert!(out.success);
        assert!(out.overspend.unwrap() > 1.0);
    }

    #[test]
    fn deployment_with_true_capacity_matches_math() {
        let ds = dataset();
        let request = RecommendationRequest::paper_defaults();
        let p = llmpilot_sim::gpu::GpuProfile::new(llmpilot_sim::gpu::a100_40(), 1);
        let d = deployment_with_true_capacity(&ds, "Llama-2-7b", &p, &request).unwrap();
        assert_eq!(d.pods, 13); // ceil(200/16)
        let t4 = llmpilot_sim::gpu::GpuProfile::new(llmpilot_sim::gpu::t4(), 1);
        assert!(deployment_with_true_capacity(&ds, "Llama-2-7b", &t4, &request).is_none());
    }
}
