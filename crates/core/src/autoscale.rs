//! Demand-driven pod autoscaling (Sec. II-C: "Load balancing is performed
//! across the pods of the deployment … and the number of pods can be
//! scaled up or down based on demand").
//!
//! This module simulates the *capacity level* of that control loop: given a
//! demand curve `U(t)` (concurrent users over time), a per-pod capacity
//! `u_max` (measured by the characterization tool or predicted by the
//! performance model), pod startup latency and scaling cooldowns, it plays
//! the reconciliation loop forward and reports SLA attainment and the cost
//! integral — the quantities an administrator trades off when sizing
//! `min/max` replicas.

use crate::error::CoreError;

/// Autoscaler policy knobs (the shape of a Kubernetes HPA on a custom
/// users-per-pod metric).
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalerConfig {
    /// Lower bound on ready+starting pods.
    pub min_pods: u32,
    /// Upper bound on ready+starting pods.
    pub max_pods: u32,
    /// Control-loop period, seconds.
    pub evaluation_interval_s: f64,
    /// Time for a new pod to become ready (image pull + model load).
    pub pod_startup_s: f64,
    /// Minimum time between consecutive scale-ups.
    pub scale_up_cooldown_s: f64,
    /// Minimum time between consecutive scale-downs (longer in practice, to
    /// avoid flapping).
    pub scale_down_cooldown_s: f64,
    /// Headroom factor: desired pods = ceil(U / (u_max / headroom)).
    /// 1.0 = size exactly to capacity; >1 leaves slack.
    pub headroom: f64,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        Self {
            min_pods: 1,
            max_pods: 64,
            evaluation_interval_s: 30.0,
            pod_startup_s: 120.0,
            scale_up_cooldown_s: 60.0,
            scale_down_cooldown_s: 300.0,
            headroom: 1.0,
        }
    }
}

/// One sample of the simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleSample {
    /// Time of the control tick, seconds.
    pub time_s: f64,
    /// Demand at the tick, concurrent users.
    pub users: u32,
    /// Pods ready to serve.
    pub ready_pods: u32,
    /// Pods still starting up.
    pub starting_pods: u32,
    /// Whether ready capacity covered the demand at this tick.
    pub sla_met: bool,
}

/// Result of an autoscaling simulation.
#[derive(Debug, Clone)]
pub struct AutoscaleOutcome {
    /// Per-tick timeline.
    pub timeline: Vec<AutoscaleSample>,
    /// Fraction of ticks where ready capacity covered demand.
    pub sla_attainment: f64,
    /// Pod-hours consumed (ready + starting pods both bill).
    pub pod_hours: f64,
    /// Number of scale-up events.
    pub scale_ups: u32,
    /// Number of scale-down events.
    pub scale_downs: u32,
}

impl AutoscaleOutcome {
    /// Total cost given a per-pod hourly price.
    pub fn cost(&self, pod_cost_per_hour: f64) -> f64 {
        self.pod_hours * pod_cost_per_hour
    }
}

/// Simulate the autoscaler against a demand curve.
///
/// `demand` maps time (seconds) to concurrent users; `u_max` is the per-pod
/// user capacity under the SLA (Eq. (3)); the loop runs for `duration_s`.
pub fn simulate_autoscaler<F>(
    config: &AutoscalerConfig,
    u_max: u32,
    duration_s: f64,
    demand: F,
) -> Result<AutoscaleOutcome, CoreError>
where
    F: Fn(f64) -> u32,
{
    if u_max == 0 {
        return Err(CoreError::InsufficientData("u_max must be >= 1".into()));
    }
    if config.min_pods == 0 || config.max_pods < config.min_pods {
        return Err(CoreError::InsufficientData("need 1 <= min_pods <= max_pods".into()));
    }
    if config.evaluation_interval_s <= 0.0 || duration_s <= 0.0 {
        return Err(CoreError::InsufficientData("interval and duration must be positive".into()));
    }
    if config.headroom < 1.0 {
        return Err(CoreError::InsufficientData("headroom must be >= 1.0".into()));
    }

    let effective_capacity = (f64::from(u_max) / config.headroom).max(1.0);
    let mut ready = config.min_pods;
    // Pods in flight: readiness times.
    let mut starting: Vec<f64> = Vec::new();
    let mut last_scale_up = f64::NEG_INFINITY;
    let mut last_scale_down = f64::NEG_INFINITY;

    let mut timeline = Vec::new();
    let mut pod_seconds = 0.0f64;
    let mut scale_ups = 0u32;
    let mut scale_downs = 0u32;

    let mut t = 0.0f64;
    while t < duration_s {
        // Pods finishing startup become ready.
        starting.retain(|&ready_at| {
            if ready_at <= t {
                ready += 1;
                false
            } else {
                true
            }
        });

        let users = demand(t);
        let desired = ((f64::from(users) / effective_capacity).ceil() as u32)
            .clamp(config.min_pods, config.max_pods);
        let committed = ready + starting.len() as u32;

        if desired > committed && t - last_scale_up >= config.scale_up_cooldown_s {
            for _ in 0..(desired - committed) {
                starting.push(t + config.pod_startup_s);
            }
            last_scale_up = t;
            scale_ups += 1;
        } else if desired < committed && t - last_scale_down >= config.scale_down_cooldown_s {
            // Scale down prefers killing not-yet-ready pods first.
            let mut to_remove = committed - desired;
            while to_remove > 0 && !starting.is_empty() {
                starting.pop();
                to_remove -= 1;
            }
            let removable = ready.saturating_sub(config.min_pods).min(to_remove);
            ready -= removable;
            last_scale_down = t;
            scale_downs += 1;
        }

        let sla_met = u64::from(ready) * u64::from(u_max) >= u64::from(users);
        timeline.push(AutoscaleSample {
            time_s: t,
            users,
            ready_pods: ready,
            starting_pods: starting.len() as u32,
            sla_met,
        });
        pod_seconds += (f64::from(ready) + starting.len() as f64) * config.evaluation_interval_s;
        t += config.evaluation_interval_s;
    }

    let met = timeline.iter().filter(|s| s.sla_met).count();
    Ok(AutoscaleOutcome {
        sla_attainment: met as f64 / timeline.len().max(1) as f64,
        pod_hours: pod_seconds / 3_600.0,
        scale_ups,
        scale_downs,
        timeline,
    })
}

/// A diurnal demand curve: `base + amplitude · max(0, sin)` shaped to peak
/// mid-day, the pattern of the production traces' arrival analysis.
pub fn diurnal_demand(base: u32, amplitude: u32) -> impl Fn(f64) -> u32 {
    move |t: f64| {
        let phase = (t / 86_400.0) * std::f64::consts::TAU - std::f64::consts::FRAC_PI_2;
        let s = phase.sin().max(0.0);
        base + (f64::from(amplitude) * s).round() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AutoscalerConfig {
        AutoscalerConfig {
            min_pods: 1,
            max_pods: 32,
            evaluation_interval_s: 30.0,
            pod_startup_s: 120.0,
            scale_up_cooldown_s: 30.0,
            scale_down_cooldown_s: 300.0,
            headroom: 1.0,
        }
    }

    #[test]
    fn constant_demand_settles_at_the_exact_pod_count() {
        let outcome = simulate_autoscaler(&config(), 16, 7_200.0, |_| 100).expect("valid config");
        let last = outcome.timeline.last().unwrap();
        assert_eq!(last.ready_pods, 7); // ceil(100/16)
        assert_eq!(last.starting_pods, 0);
        // After the first startup window, the SLA holds.
        let after_warm: Vec<_> = outcome.timeline.iter().filter(|s| s.time_s > 300.0).collect();
        assert!(after_warm.iter().all(|s| s.sla_met));
    }

    #[test]
    fn startup_latency_causes_a_transient_sla_gap_on_a_step() {
        // Demand steps from 10 to 200 at t=1h: the gap lasts about one pod
        // startup, then closes.
        let step = |t: f64| if t < 3_600.0 { 10 } else { 200 };
        let outcome = simulate_autoscaler(&config(), 16, 7_200.0, step).unwrap();
        let misses: Vec<f64> =
            outcome.timeline.iter().filter(|s| !s.sla_met).map(|s| s.time_s).collect();
        assert!(!misses.is_empty(), "a step must cause a transient miss");
        assert!(misses.iter().all(|&t| (3_600.0..3_600.0 + 300.0).contains(&t)));
        assert!(outcome.sla_attainment > 0.9);
    }

    #[test]
    fn pod_count_respects_bounds() {
        let cfg = AutoscalerConfig { min_pods: 2, max_pods: 5, ..config() };
        let outcome = simulate_autoscaler(&cfg, 4, 14_400.0, |_| 1_000).unwrap();
        for s in &outcome.timeline {
            let total = s.ready_pods + s.starting_pods;
            assert!((2..=5).contains(&total), "{s:?}");
        }
        // Demand far exceeds max capacity: the SLA cannot be met.
        assert_eq!(outcome.sla_attainment, 0.0);
    }

    #[test]
    fn headroom_buys_attainment_at_higher_cost() {
        let demand = diurnal_demand(20, 180);
        let tight = simulate_autoscaler(&config(), 16, 86_400.0, &demand).unwrap();
        let slack = simulate_autoscaler(
            &AutoscalerConfig { headroom: 1.5, ..config() },
            16,
            86_400.0,
            &demand,
        )
        .unwrap();
        assert!(slack.sla_attainment >= tight.sla_attainment);
        assert!(slack.pod_hours > tight.pod_hours);
    }

    #[test]
    fn scale_down_cooldown_limits_flapping() {
        // Demand oscillates every tick; scale-downs must be rate-limited.
        let flappy = |t: f64| if ((t / 30.0) as u64).is_multiple_of(2) { 10 } else { 100 };
        let outcome = simulate_autoscaler(&config(), 16, 3_600.0, flappy).unwrap();
        let max_downs = (3_600.0 / 300.0) as u32 + 1;
        assert!(
            outcome.scale_downs <= max_downs,
            "{} scale-downs exceed cooldown budget {max_downs}",
            outcome.scale_downs
        );
    }

    #[test]
    fn diurnal_demand_peaks_mid_window_and_respects_base() {
        let d = diurnal_demand(10, 100);
        assert_eq!(d(0.0), 10);
        let peak = d(86_400.0 / 2.0);
        assert!(peak > 100, "peak = {peak}");
        assert!(d(86_400.0 * 0.9) >= 10);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(simulate_autoscaler(&config(), 0, 100.0, |_| 1).is_err());
        let bad = AutoscalerConfig { min_pods: 5, max_pods: 2, ..config() };
        assert!(simulate_autoscaler(&bad, 4, 100.0, |_| 1).is_err());
        let bad = AutoscalerConfig { headroom: 0.5, ..config() };
        assert!(simulate_autoscaler(&bad, 4, 100.0, |_| 1).is_err());
        assert!(simulate_autoscaler(&config(), 4, -5.0, |_| 1).is_err());
    }

    #[test]
    fn cost_scales_with_pod_hours() {
        let outcome = simulate_autoscaler(&config(), 16, 7_200.0, |_| 100).unwrap();
        assert!((outcome.cost(2.0) - 2.0 * outcome.pod_hours).abs() < 1e-12);
        assert!(outcome.pod_hours > 0.0);
    }
}
