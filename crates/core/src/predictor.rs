//! LLM-Pilot's performance model (Sec. IV-B-2/3): one gradient-boosted
//! regressor per latency target (nTTFT and ITL), trained on the
//! characterization data with the Eq.-(4) constraint-proximity sample
//! weights and a monotonicity constraint on the number of concurrent
//! users, with hyperparameters tuned by leave-one-LLM-out cross-validation
//! minimizing the weighted MAPE.

use llmpilot_ml::{grid_search, leave_one_group_out, weighted_mape, Dataset, Gbdt, GbdtParams};
use llmpilot_obs::Recorder;
use llmpilot_sim::gpu::GpuProfile;
use llmpilot_sim::llm::{llm_by_name, LlmSpec};

use crate::dataset::PerfRow;
use crate::error::CoreError;
use crate::features::{featurize, monotone_constraints};
use crate::recommend::{parse_profile, LatencyConstraints};
use crate::weights::constraint_proximity_weights;

/// Which latency metric a regressor predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Normalized time to first token.
    Nttft,
    /// Inter-token latency.
    Itl,
}

impl Target {
    /// Read this target from a row.
    pub fn of(self, row: &PerfRow) -> f64 {
        match self {
            Target::Nttft => row.nttft_s,
            Target::Itl => row.itl_s,
        }
    }
}

/// Configuration of the LLM-Pilot predictor, with ablation switches for the
/// two design choices the paper motivates (sample weights, monotonicity).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorConfig {
    /// Apply the Eq.-(4) sample weights.
    pub use_sample_weights: bool,
    /// Apply the monotonicity constraint on concurrent users.
    pub use_monotone_constraint: bool,
    /// Fit the trees on log-latency (monotone transform; improves relative
    /// accuracy across the orders of magnitude latencies span).
    pub log_target: bool,
    /// Base GBDT hyperparameters (monotone vector is filled in here).
    pub gbdt: GbdtParams,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            use_sample_weights: true,
            use_monotone_constraint: true,
            log_target: true,
            gbdt: GbdtParams { n_trees: 200, max_depth: 5, ..GbdtParams::default() },
        }
    }
}

/// Build the regression dataset for one target from characterization rows.
fn build_dataset(
    rows: &[&PerfRow],
    target: Target,
    constraints: &LatencyConstraints,
    config: &PredictorConfig,
) -> Result<Dataset, CoreError> {
    if rows.is_empty() {
        return Err(CoreError::InsufficientData("no training rows".into()));
    }
    let mut feature_rows = Vec::with_capacity(rows.len());
    let mut targets = Vec::with_capacity(rows.len());
    for r in rows {
        let llm = llm_by_name(&r.llm)
            .ok_or_else(|| CoreError::Parse(format!("unknown LLM {:?}", r.llm)))?;
        let profile = parse_profile(&r.profile)
            .ok_or_else(|| CoreError::Parse(format!("unknown profile {:?}", r.profile)))?;
        feature_rows.push(featurize(&llm, &profile, r.users, true));
        let y = target.of(r).max(1e-9);
        targets.push(if config.log_target { y.ln() } else { y });
    }
    let mut ds = Dataset::from_rows(&feature_rows, targets)?;
    if config.use_sample_weights {
        ds = ds.with_weights(constraint_proximity_weights(rows, constraints))?;
    }
    Ok(ds)
}

/// A trained LLM-Pilot performance model.
#[derive(Debug, Clone)]
pub struct PerformancePredictor {
    nttft: Gbdt,
    itl: Gbdt,
    log_target: bool,
}

impl PerformancePredictor {
    /// Train both regressors on the given characterization rows.
    pub fn train(
        rows: &[&PerfRow],
        constraints: &LatencyConstraints,
        config: &PredictorConfig,
    ) -> Result<Self, CoreError> {
        Self::train_traced(rows, constraints, config, &Recorder::disabled())
    }

    /// [`PerformancePredictor::train`] with observability: the whole
    /// training runs under a `predictor.train` span with one
    /// `predictor.fit_target` span per latency target, and the underlying
    /// GBDT fits record their phase spans beneath it.
    pub fn train_traced(
        rows: &[&PerfRow],
        constraints: &LatencyConstraints,
        config: &PredictorConfig,
        recorder: &Recorder,
    ) -> Result<Self, CoreError> {
        let _train_span = recorder.span("predictor.train").arg("rows", rows.len());
        let mut gbdt = config.gbdt.clone();
        gbdt.monotone_constraints =
            if config.use_monotone_constraint { monotone_constraints(true) } else { Vec::new() };
        let fit = |target: Target| -> Result<Gbdt, CoreError> {
            let _target_span = recorder
                .span("predictor.fit_target")
                .arg("target", if target == Target::Nttft { "nttft" } else { "itl" });
            let ds = build_dataset(rows, target, constraints, config)?;
            Ok(Gbdt::fit_traced(&ds, &gbdt, recorder)?)
        };
        Ok(Self {
            nttft: fit(Target::Nttft)?,
            itl: fit(Target::Itl)?,
            log_target: config.log_target,
        })
    }

    /// Predict `(nTTFT, ITL)` in seconds for an LLM on a profile at a user
    /// count.
    pub fn predict(&self, llm: &LlmSpec, profile: &GpuProfile, users: u32) -> (f64, f64) {
        let x = featurize(llm, profile, users, true);
        let (a, b) = (self.nttft.predict_row(&x), self.itl.predict_row(&x));
        if self.log_target {
            (a.exp(), b.exp())
        } else {
            (a, b)
        }
    }
}

/// The hyperparameter grid searched by leave-one-LLM-out cross-validation
/// (the paper tunes tree count, depth, learning rate, subsampling and the
/// histogram bin count).
pub fn default_hp_grid(base: &GbdtParams) -> Vec<GbdtParams> {
    let mut grid = Vec::new();
    for &(n_trees, max_depth) in &[(100usize, 4usize), (200, 5), (300, 6)] {
        for &learning_rate in &[0.05, 0.1] {
            for &(subsample, max_bins) in &[(1.0, 64usize), (0.8, 32)] {
                grid.push(GbdtParams {
                    n_trees,
                    max_depth,
                    learning_rate,
                    subsample,
                    max_bins,
                    ..base.clone()
                });
            }
        }
    }
    grid
}

/// A compact grid for fast tests and examples.
pub fn small_hp_grid(base: &GbdtParams) -> Vec<GbdtParams> {
    vec![
        GbdtParams { n_trees: 100, max_depth: 4, ..base.clone() },
        GbdtParams { n_trees: 200, max_depth: 5, ..base.clone() },
    ]
}

/// Leave-one-LLM-out hyperparameter tuning (Sec. IV-B-3): every candidate is
/// scored by the Eq.-(4)-weighted MAPE on the held-out LLM, averaged over
/// folds and both latency targets; the best configuration is returned.
pub fn tune_hyperparameters(
    rows: &[&PerfRow],
    constraints: &LatencyConstraints,
    config: &PredictorConfig,
    grid: Vec<GbdtParams>,
) -> Result<GbdtParams, CoreError> {
    if rows.is_empty() {
        return Err(CoreError::InsufficientData("no rows for HP tuning".into()));
    }
    // Group labels: index of each row's LLM.
    let mut llms: Vec<&str> = rows.iter().map(|r| r.llm.as_str()).collect();
    llms.sort_unstable();
    llms.dedup();
    if llms.len() < 2 {
        return Err(CoreError::InsufficientData(
            "HP tuning needs at least two LLMs for leave-one-out splits".into(),
        ));
    }
    let groups: Vec<usize> =
        rows.iter().map(|r| llms.binary_search(&r.llm.as_str()).expect("llm present")).collect();
    let folds = leave_one_group_out(&groups);

    let all_weights = constraint_proximity_weights(rows, constraints);

    let result = grid_search(grid, &folds, |candidate, fold| {
        let train_rows: Vec<&PerfRow> = fold.train.iter().map(|&i| rows[i]).collect();
        if train_rows.is_empty() {
            return f64::NAN;
        }
        let fold_config = PredictorConfig { gbdt: candidate.clone(), ..config.clone() };
        let Ok(model) = PerformancePredictor::train(&train_rows, constraints, &fold_config) else {
            return f64::NAN;
        };
        let mut errors = 0.0;
        let mut targets_counted = 0.0;
        for target in [Target::Nttft, Target::Itl] {
            let mut y_true = Vec::new();
            let mut y_pred = Vec::new();
            let mut w = Vec::new();
            for &i in &fold.validation {
                let r = rows[i];
                let Some(llm) = llm_by_name(&r.llm) else { continue };
                let Some(profile) = parse_profile(&r.profile) else { continue };
                let (l1, l2) = model.predict(&llm, &profile, r.users);
                y_true.push(target.of(r));
                y_pred.push(match target {
                    Target::Nttft => l1,
                    Target::Itl => l2,
                });
                w.push(all_weights[i]);
            }
            let e = weighted_mape(&y_true, &y_pred, &w);
            if e.is_finite() {
                errors += e;
                targets_counted += 1.0;
            }
        }
        if targets_counted == 0.0 {
            f64::NAN
        } else {
            errors / targets_counted
        }
    });
    Ok(result.best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, CharacterizeConfig};
    use crate::dataset::CharacterizationDataset;
    use llmpilot_sim::gpu::{a100_40, h100, t4, GpuProfile};
    use llmpilot_sim::llm::{flan_t5_xl, flan_t5_xxl, llama2_13b, llama2_7b, starcoder};
    use llmpilot_traces::{Param, TraceGenerator, TraceGeneratorConfig};
    use llmpilot_workload::{WorkloadModel, WorkloadSampler};

    fn small_characterization() -> CharacterizationDataset {
        let traces = TraceGenerator::new(TraceGeneratorConfig {
            num_requests: 15_000,
            seed: 77,
            ..TraceGeneratorConfig::default()
        })
        .generate();
        let model = WorkloadModel::fit(
            &traces,
            &[Param::InputTokens, Param::OutputTokens, Param::BatchSize],
        )
        .unwrap();
        let sampler = WorkloadSampler::new(model);
        let llms = vec![flan_t5_xl(), flan_t5_xxl(), llama2_7b(), llama2_13b(), starcoder()];
        let profiles = vec![
            GpuProfile::new(t4(), 2),
            GpuProfile::new(a100_40(), 1),
            GpuProfile::new(h100(), 1),
        ];
        let config = CharacterizeConfig {
            duration_s: 30.0,
            user_sweep: vec![1, 4, 16, 64],
            ..CharacterizeConfig::default()
        };
        characterize(&llms, &profiles, &sampler, &config)
    }

    #[test]
    fn predictor_trains_and_interpolates() {
        let ds = small_characterization();
        let rows: Vec<&PerfRow> = ds.rows.iter().collect();
        let constraints = LatencyConstraints::paper_defaults();
        // Disable the Eq.-(4) weights for this check: they deliberately
        // sacrifice accuracy far from the constraints, while this test
        // measures the regressor's raw in-sample fit.
        let config = PredictorConfig { use_sample_weights: false, ..PredictorConfig::default() };
        let model = PerformancePredictor::train(&rows, &constraints, &config).unwrap();

        // In-sample sanity: predictions within a factor of ~3 of the truth
        // for most rows.
        let mut ok = 0;
        for r in &ds.rows {
            let llm = llm_by_name(&r.llm).unwrap();
            let profile = parse_profile(&r.profile).unwrap();
            let (nttft, itl) = model.predict(&llm, &profile, r.users);
            if nttft / r.nttft_s < 3.0
                && r.nttft_s / nttft < 3.0
                && itl / r.itl_s < 3.0
                && r.itl_s / itl < 3.0
            {
                ok += 1;
            }
        }
        assert!(ok * 10 >= ds.rows.len() * 8, "only {ok}/{} rows within 3x", ds.rows.len());
    }

    #[test]
    fn monotone_constraint_makes_predictions_nondecreasing_in_users() {
        let ds = small_characterization();
        let rows: Vec<&PerfRow> = ds.rows.iter().collect();
        let constraints = LatencyConstraints::paper_defaults();
        let model =
            PerformancePredictor::train(&rows, &constraints, &PredictorConfig::default()).unwrap();
        let llm = llama2_13b();
        let profile = GpuProfile::new(a100_40(), 1);
        let mut last = (0.0f64, 0.0f64);
        for users in [1u32, 2, 4, 8, 16, 32, 64, 128] {
            let p = model.predict(&llm, &profile, users);
            assert!(p.0 >= last.0 - 1e-12, "nTTFT decreased at {users} users");
            assert!(p.1 >= last.1 - 1e-12, "ITL decreased at {users} users");
            last = p;
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        let rows = [PerfRow {
            llm: "no-such-model".into(),
            profile: "1xT4-16GB".into(),
            users: 1,
            ttft_s: 0.1,
            nttft_s: 0.001,
            itl_s: 0.02,
            throughput: 10.0,
        }];
        let refs: Vec<&PerfRow> = rows.iter().collect();
        assert!(matches!(
            PerformancePredictor::train(
                &refs,
                &LatencyConstraints::paper_defaults(),
                &PredictorConfig::default()
            ),
            Err(CoreError::Parse(_))
        ));
    }

    #[test]
    fn hp_tuning_returns_a_grid_member() {
        let ds = small_characterization();
        let rows: Vec<&PerfRow> = ds.rows.iter().collect();
        let constraints = LatencyConstraints::paper_defaults();
        let config = PredictorConfig::default();
        let grid = small_hp_grid(&config.gbdt);
        let best = tune_hyperparameters(&rows, &constraints, &config, grid.clone()).unwrap();
        assert!(grid.contains(&best));
    }

    #[test]
    fn tuning_needs_two_llms() {
        let ds = small_characterization();
        let rows: Vec<&PerfRow> = ds.rows.iter().filter(|r| r.llm == "Llama-2-13b").collect();
        let config = PredictorConfig::default();
        assert!(matches!(
            tune_hyperparameters(
                &rows,
                &LatencyConstraints::paper_defaults(),
                &config,
                small_hp_grid(&config.gbdt)
            ),
            Err(CoreError::InsufficientData(_))
        ));
    }

    #[test]
    fn grids_have_expected_sizes() {
        let base = GbdtParams::default();
        assert_eq!(default_hp_grid(&base).len(), 12);
        assert_eq!(small_hp_grid(&base).len(), 2);
    }
}
