#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # llmpilot-core
//!
//! LLM-Pilot: a system for characterizing and predicting the performance of
//! LLM inference services (SC'24), reproduced in Rust.
//!
//! Two halves, matching the paper:
//!
//! * the **performance characterization tool** ([`mod@characterize`]) — deploys
//!   an inference service per `(LLM, GPU profile)` cell, tunes the maximum
//!   batch weight, and load-tests it under a realistic workload, producing a
//!   [`dataset::CharacterizationDataset`];
//! * the **GPU recommendation tool** ([`predictor`], [`mod@recommend`]) — learns
//!   a weighted, monotone-constrained gradient-boosted performance model
//!   from the characterization data and recommends the cheapest
//!   `(GPU profile, #pods)` meeting an unseen LLM's SLA, evaluated against
//!   the PARIS/RF/Selecta/Morphling/PerfNet/Static baselines
//!   ([`baselines`], [`evaluate`]).

pub mod autoscale;
pub mod baselines;
pub mod characterize;
pub mod dataset;
pub mod error;
pub mod evaluate;
pub mod features;
pub mod predictor;
pub mod recommend;
pub mod serving;
pub mod sweep;
pub mod weights;

pub use autoscale::{diurnal_demand, simulate_autoscaler, AutoscaleOutcome, AutoscalerConfig};
pub use characterize::{
    characterize, characterize_cell, characterize_cell_faulty, characterize_cell_faulty_traced,
    characterize_cell_observed, CellBudget, CellHists, CellOutcome, CharacterizeConfig,
    WorkloadRequestSource,
};
pub use dataset::{CharacterizationDataset, PerfRow};
pub use error::CoreError;
pub use evaluate::{so_score, true_u_max, Evaluation, MethodScore};
pub use predictor::{PerformancePredictor, PredictorConfig};
pub use recommend::{recommend, LatencyConstraints, Recommendation, RecommendationRequest};
pub use serving::{online_predictor_config, ServingModel};
pub use sweep::{
    CellStatus, CellTails, FlightOptions, SweepDriver, SweepDriverBuilder, SweepOptions,
    SweepReport,
};
