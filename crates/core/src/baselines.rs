//! The recommendation methods evaluated in Sec. V-C: LLM-Pilot itself and
//! the state-of-the-art baselines the paper reimplements.
//!
//! * **LLM-Pilot** — weighted + monotone GBDT ([`crate::predictor`]).
//! * **PARIS** \[55\] — random forest over application + hardware features,
//!   augmented with the unseen LLM's measured performance on two *reference*
//!   profiles (the weakest and strongest: 1×T4 and 4×H100).
//! * **RF** — PARIS without the reference measurements.
//! * **Selecta** \[18\] — collaborative filtering: biased matrix factorization
//!   over the sparse (LLM × configuration) performance matrix, with the
//!   unseen LLM observed only on the reference profiles.
//! * **Morphling** \[51\] — an MLP meta-trained on the historical LLMs and
//!   fine-tuned on the unseen LLM's reference measurements.
//! * **PerfNet / PerfNetV2** \[49\], \[50\] — MLP latency regressors from
//!   features alone.
//! * **Static** — no predictions: always recommend a fixed deployment.

use std::collections::HashMap;

use llmpilot_ml::{
    Dataset, ForestParams, MatrixFactorization, MfParams, Mlp, MlpParams, RandomForest,
};
use llmpilot_sim::gpu::GpuProfile;
use llmpilot_sim::llm::{llm_by_name, LlmSpec};

use crate::dataset::PerfRow;
use crate::error::CoreError;
use crate::features::featurize;
use crate::predictor::{tune_hyperparameters, PerformancePredictor, PredictorConfig, Target};
use crate::recommend::{parse_profile, recommend, Recommendation, RecommendationRequest};

/// The two reference profiles PARIS/Selecta/Morphling measure the unseen
/// LLM on: the weakest and the strongest of the paper's grid.
pub const REFERENCE_PROFILES: [&str; 2] = ["1xT4-16GB", "4xH100-80GB"];

/// Latency predictions for an unseen LLM over `(profile, users)`.
#[derive(Debug, Clone, Default)]
pub struct PredictionGrid {
    map: HashMap<(String, u32), (f64, f64)>,
}

impl PredictionGrid {
    /// Record a prediction.
    pub fn insert(&mut self, profile: &str, users: u32, nttft: f64, itl: f64) {
        self.map.insert((profile.to_string(), users), (nttft, itl));
    }

    /// Look up a prediction.
    pub fn get(&self, profile: &str, users: u32) -> Option<(f64, f64)> {
        self.map.get(&(profile.to_string(), users)).copied()
    }

    /// Number of predictions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Everything a method may use to make a recommendation for one unseen LLM.
pub struct MethodInput<'a> {
    /// Historical characterization rows (all LLMs except the unseen one).
    pub train_rows: Vec<&'a PerfRow>,
    /// The unseen LLM.
    pub test_llm: &'a LlmSpec,
    /// The unseen LLM's measurements on the [`REFERENCE_PROFILES`] — only
    /// methods with `uses_reference_measurements() == true` may read these.
    pub reference_rows: Vec<&'a PerfRow>,
    /// Candidate GPU profiles.
    pub profiles: &'a [GpuProfile],
    /// The recommendation request (load, SLA, user grid).
    pub request: &'a RecommendationRequest,
}

/// A recommendation method under evaluation.
pub trait Method: Sync {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Whether the method performs reference measurements of the unseen LLM
    /// (the ▲ markers in the paper's Fig. 8).
    fn uses_reference_measurements(&self) -> bool {
        false
    }

    /// Produce a recommendation for the unseen LLM.
    fn recommend(&self, input: &MethodInput<'_>) -> Result<Recommendation, CoreError>;
}

/// Solve Eq. (1)–(3) from a prediction grid.
fn recommend_from_grid(
    grid: &PredictionGrid,
    profiles: &[GpuProfile],
    request: &RecommendationRequest,
) -> Result<Recommendation, CoreError> {
    recommend(profiles, request, |p, u| grid.get(&p.name(), u))
}

// ---------------------------------------------------------------------------
// LLM-Pilot
// ---------------------------------------------------------------------------

/// LLM-Pilot's own method (Sec. IV-B).
pub struct LlmPilotMethod {
    /// Predictor configuration (ablation switches included).
    pub config: PredictorConfig,
    /// Hyperparameter grid for inner leave-one-LLM-out tuning; empty skips
    /// tuning and uses `config.gbdt` as-is.
    pub hp_grid: Vec<llmpilot_ml::GbdtParams>,
}

impl LlmPilotMethod {
    /// Default configuration without inner HP tuning (fast).
    pub fn untuned() -> Self {
        Self { config: PredictorConfig::default(), hp_grid: Vec::new() }
    }

    /// With inner HP tuning over the given grid.
    pub fn tuned(grid: Vec<llmpilot_ml::GbdtParams>) -> Self {
        Self { config: PredictorConfig::default(), hp_grid: grid }
    }
}

impl Method for LlmPilotMethod {
    fn name(&self) -> &'static str {
        "LLM-Pilot"
    }

    fn recommend(&self, input: &MethodInput<'_>) -> Result<Recommendation, CoreError> {
        let mut config = self.config.clone();
        if !self.hp_grid.is_empty() {
            config.gbdt = tune_hyperparameters(
                &input.train_rows,
                &input.request.constraints,
                &config,
                self.hp_grid.clone(),
            )?;
        }
        let model =
            PerformancePredictor::train(&input.train_rows, &input.request.constraints, &config)?;
        let mut grid = PredictionGrid::default();
        for p in input.profiles {
            for &u in &input.request.user_grid {
                let (l1, l2) = model.predict(input.test_llm, p, u);
                grid.insert(&p.name(), u, l1, l2);
            }
        }
        recommend_from_grid(&grid, input.profiles, input.request)
    }
}

// ---------------------------------------------------------------------------
// RF and PARIS
// ---------------------------------------------------------------------------

/// Fixed-length reference-measurement feature block for one LLM: for each
/// reference profile and user count, its (nTTFT, ITL, throughput), plus a
/// presence flag per profile; zeros when the combination was infeasible.
fn reference_features(rows: &[&PerfRow], user_grid: &[u32]) -> Vec<f64> {
    let mut out = Vec::with_capacity(REFERENCE_PROFILES.len() * (1 + user_grid.len() * 3));
    for ref_profile in REFERENCE_PROFILES {
        let profile_rows: Vec<&&PerfRow> =
            rows.iter().filter(|r| r.profile == ref_profile).collect();
        out.push(f64::from(u8::from(!profile_rows.is_empty())));
        for &u in user_grid {
            match profile_rows.iter().find(|r| r.users == u) {
                Some(r) => {
                    out.push(r.nttft_s);
                    out.push(r.itl_s);
                    out.push(r.throughput);
                }
                None => out.extend_from_slice(&[0.0, 0.0, 0.0]),
            }
        }
    }
    out
}

/// Random-forest regressor over LLM/GPU/user features; with
/// `use_references`, PARIS's reference-measurement block is appended.
pub struct RfMethod {
    /// Append reference measurements (PARIS) or not (plain RF)?
    pub use_references: bool,
    /// Forest hyperparameters.
    pub forest: ForestParams,
}

impl RfMethod {
    /// Forest defaults matching scikit-learn's `RandomForestRegressor`
    /// (PARIS's implementation): every feature is a split candidate, so the
    /// reference-measurement block keeps its full signal.
    fn forest_defaults() -> ForestParams {
        let mut params = ForestParams::default();
        params.tree.max_features = Some(usize::MAX); // clamped to all features
        params
    }

    /// The PARIS baseline.
    pub fn paris() -> Self {
        Self { use_references: true, forest: Self::forest_defaults() }
    }

    /// The plain-RF baseline (PARIS without reference measurements).
    pub fn plain() -> Self {
        Self { use_references: false, forest: Self::forest_defaults() }
    }

    fn fit_target(
        &self,
        input: &MethodInput<'_>,
        target: Target,
    ) -> Result<RandomForest, CoreError> {
        // Per-LLM reference blocks from the training data itself.
        let mut per_llm_refs: HashMap<&str, Vec<f64>> = HashMap::new();
        let mut rows_by_llm: HashMap<&str, Vec<&PerfRow>> = HashMap::new();
        for r in &input.train_rows {
            rows_by_llm.entry(r.llm.as_str()).or_default().push(r);
        }
        if self.use_references {
            for (llm, rows) in &rows_by_llm {
                per_llm_refs.insert(llm, reference_features(rows, &input.request.user_grid));
            }
        }
        let mut feature_rows = Vec::with_capacity(input.train_rows.len());
        let mut targets = Vec::with_capacity(input.train_rows.len());
        for r in &input.train_rows {
            let llm = llm_by_name(&r.llm)
                .ok_or_else(|| CoreError::Parse(format!("unknown LLM {:?}", r.llm)))?;
            let profile = parse_profile(&r.profile)
                .ok_or_else(|| CoreError::Parse(format!("unknown profile {:?}", r.profile)))?;
            let mut x = featurize(&llm, &profile, r.users, false);
            if self.use_references {
                x.extend_from_slice(&per_llm_refs[r.llm.as_str()]);
            }
            feature_rows.push(x);
            targets.push(target.of(r).max(1e-9).ln());
        }
        let ds = Dataset::from_rows(&feature_rows, targets)?;
        Ok(RandomForest::fit(&ds, &self.forest)?)
    }
}

impl Method for RfMethod {
    fn name(&self) -> &'static str {
        if self.use_references {
            "PARIS"
        } else {
            "RF"
        }
    }

    fn uses_reference_measurements(&self) -> bool {
        self.use_references
    }

    fn recommend(&self, input: &MethodInput<'_>) -> Result<Recommendation, CoreError> {
        let nttft = self.fit_target(input, Target::Nttft)?;
        let itl = self.fit_target(input, Target::Itl)?;
        let ref_block = if self.use_references {
            reference_features(&input.reference_rows, &input.request.user_grid)
        } else {
            Vec::new()
        };
        let mut grid = PredictionGrid::default();
        for p in input.profiles {
            for &u in &input.request.user_grid {
                let mut x = featurize(input.test_llm, p, u, false);
                x.extend_from_slice(&ref_block);
                grid.insert(&p.name(), u, nttft.predict_row(&x).exp(), itl.predict_row(&x).exp());
            }
        }
        recommend_from_grid(&grid, input.profiles, input.request)
    }
}

// ---------------------------------------------------------------------------
// Selecta
// ---------------------------------------------------------------------------

/// Selecta: collaborative filtering over the sparse LLM × (profile, users)
/// performance matrix, implemented with biased matrix factorization (the
/// algorithm of the Surprise library used by the original work).
pub struct SelectaMethod {
    /// Factorization hyperparameters.
    pub mf: MfParams,
}

impl SelectaMethod {
    /// Default configuration. The paper tunes baseline hyperparameters by
    /// leave-one-LLM-out CV; for the ~10-row LLM × configuration matrix a
    /// low-rank factorization generalizes best.
    pub fn new() -> Self {
        Self { mf: MfParams { n_factors: 6, n_epochs: 120, ..MfParams::default() } }
    }

    fn predict_target(
        &self,
        input: &MethodInput<'_>,
        target: Target,
    ) -> Result<HashMap<(String, u32), f64>, CoreError> {
        // Column index per (profile, users).
        let mut columns: Vec<(String, u32)> = Vec::new();
        for p in input.profiles {
            for &u in &input.request.user_grid {
                columns.push((p.name(), u));
            }
        }
        let col_of: HashMap<(String, u32), usize> =
            columns.iter().cloned().enumerate().map(|(i, c)| (c, i)).collect();

        // Row index per LLM; the unseen LLM is the last row.
        let mut llms: Vec<&str> = input.train_rows.iter().map(|r| r.llm.as_str()).collect();
        llms.sort_unstable();
        llms.dedup();
        let test_row = llms.len();

        let mut entries: Vec<(usize, usize, f64)> = Vec::new();
        for r in &input.train_rows {
            let Some(&col) = col_of.get(&(r.profile.clone(), r.users)) else { continue };
            let row = llms.binary_search(&r.llm.as_str()).expect("known llm");
            entries.push((row, col, target.of(r).max(1e-9).ln()));
        }
        for r in &input.reference_rows {
            let Some(&col) = col_of.get(&(r.profile.clone(), r.users)) else { continue };
            entries.push((test_row, col, target.of(r).max(1e-9).ln()));
        }
        let model = MatrixFactorization::fit(test_row + 1, columns.len(), &entries, &self.mf)?;
        Ok(columns
            .iter()
            .enumerate()
            .map(|(c, key)| (key.clone(), model.predict(test_row, c).exp()))
            .collect())
    }
}

impl Default for SelectaMethod {
    fn default() -> Self {
        Self::new()
    }
}

impl Method for SelectaMethod {
    fn name(&self) -> &'static str {
        "Selecta"
    }

    fn uses_reference_measurements(&self) -> bool {
        true
    }

    fn recommend(&self, input: &MethodInput<'_>) -> Result<Recommendation, CoreError> {
        let nttft = self.predict_target(input, Target::Nttft)?;
        let itl = self.predict_target(input, Target::Itl)?;
        let mut grid = PredictionGrid::default();
        for p in input.profiles {
            for &u in &input.request.user_grid {
                let key = (p.name(), u);
                if let (Some(&l1), Some(&l2)) = (nttft.get(&key), itl.get(&key)) {
                    grid.insert(&p.name(), u, l1, l2);
                }
            }
        }
        recommend_from_grid(&grid, input.profiles, input.request)
    }
}

// ---------------------------------------------------------------------------
// Neural baselines: PerfNet, PerfNetV2, Morphling
// ---------------------------------------------------------------------------

/// Which neural baseline an [`NnMethod`] instance realizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NnVariant {
    /// PerfNet \[49\]: a small MLP on raw latency.
    PerfNet,
    /// PerfNetV2 \[50\]: a deeper MLP on log-latency.
    PerfNetV2,
    /// Morphling \[51\]: PerfNetV2's architecture, meta-trained then
    /// fine-tuned on the unseen LLM's reference measurements.
    Morphling,
}

/// Neural-network latency predictor baseline.
pub struct NnMethod {
    /// Baseline variant.
    pub variant: NnVariant,
    /// Training epochs.
    pub epochs: usize,
}

impl NnMethod {
    /// Build the given variant with default training budget.
    pub fn new(variant: NnVariant) -> Self {
        Self { variant, epochs: 150 }
    }

    fn params(&self) -> MlpParams {
        match self.variant {
            NnVariant::PerfNet => {
                MlpParams { hidden_layers: vec![32], epochs: self.epochs, ..MlpParams::default() }
            }
            NnVariant::PerfNetV2 | NnVariant::Morphling => MlpParams {
                hidden_layers: vec![64, 32],
                epochs: self.epochs,
                ..MlpParams::default()
            },
        }
    }

    fn log_target(&self) -> bool {
        self.variant != NnVariant::PerfNet
    }

    fn build_dataset(&self, rows: &[&PerfRow], target: Target) -> Result<Dataset, CoreError> {
        let mut feature_rows = Vec::with_capacity(rows.len());
        let mut targets = Vec::with_capacity(rows.len());
        for r in rows {
            let llm = llm_by_name(&r.llm)
                .ok_or_else(|| CoreError::Parse(format!("unknown LLM {:?}", r.llm)))?;
            let profile = parse_profile(&r.profile)
                .ok_or_else(|| CoreError::Parse(format!("unknown profile {:?}", r.profile)))?;
            feature_rows.push(featurize(&llm, &profile, r.users, false));
            let y = target.of(r).max(1e-9);
            targets.push(if self.log_target() { y.ln() } else { y });
        }
        Ok(Dataset::from_rows(&feature_rows, targets)?)
    }

    fn fit_target(&self, input: &MethodInput<'_>, target: Target) -> Result<Mlp, CoreError> {
        let ds = self.build_dataset(&input.train_rows, target)?;
        let mut model = Mlp::fit(&ds, &self.params())?;
        if self.variant == NnVariant::Morphling && !input.reference_rows.is_empty() {
            let ref_ds = self.build_dataset(&input.reference_rows, target)?;
            model.fine_tune(&ref_ds, self.epochs / 2, 5e-4);
        }
        Ok(model)
    }
}

impl Method for NnMethod {
    fn name(&self) -> &'static str {
        match self.variant {
            NnVariant::PerfNet => "PerfNet",
            NnVariant::PerfNetV2 => "PerfNetV2",
            NnVariant::Morphling => "Morphling",
        }
    }

    fn uses_reference_measurements(&self) -> bool {
        self.variant == NnVariant::Morphling
    }

    fn recommend(&self, input: &MethodInput<'_>) -> Result<Recommendation, CoreError> {
        let nttft = self.fit_target(input, Target::Nttft)?;
        let itl = self.fit_target(input, Target::Itl)?;
        let mut grid = PredictionGrid::default();
        for p in input.profiles {
            for &u in &input.request.user_grid {
                let x = featurize(input.test_llm, p, u, false);
                let (mut l1, mut l2) = (nttft.predict_row(&x), itl.predict_row(&x));
                if self.log_target() {
                    l1 = l1.exp();
                    l2 = l2.exp();
                }
                grid.insert(&p.name(), u, l1.max(0.0), l2.max(0.0));
            }
        }
        recommend_from_grid(&grid, input.profiles, input.request)
    }
}

// ---------------------------------------------------------------------------
// Static policy
// ---------------------------------------------------------------------------

/// The naive baseline: no predictions, always the same deployment. The
/// paper reports the best static policy it found: 4 pods of 1×A100.
pub struct StaticMethod {
    /// The fixed profile name.
    pub profile: String,
    /// The fixed pod count.
    pub pods: u32,
}

impl StaticMethod {
    /// The paper's best static policy: 4 pods on 1×A100.
    pub fn paper_best() -> Self {
        Self { profile: "1xA100-40GB".into(), pods: 4 }
    }

    /// The candidate grid the best static policy is selected from ("We have
    /// considered a broad range of static policies and present the one which
    /// achieved the highest S/O score" — Sec. V-C).
    pub fn candidate_grid(profiles: &[GpuProfile]) -> Vec<StaticMethod> {
        let mut out = Vec::new();
        for p in profiles {
            for pods in [1u32, 2, 4, 8, 13, 16, 25, 32, 50] {
                out.push(StaticMethod { profile: p.name(), pods });
            }
        }
        out
    }
}

impl Method for StaticMethod {
    fn name(&self) -> &'static str {
        "Static"
    }

    fn recommend(&self, input: &MethodInput<'_>) -> Result<Recommendation, CoreError> {
        let profile = parse_profile(&self.profile)
            .ok_or_else(|| CoreError::Parse(format!("unknown profile {:?}", self.profile)))?;
        if !input.profiles.iter().any(|p| p.name() == self.profile) {
            return Err(CoreError::NoFeasibleRecommendation);
        }
        Ok(Recommendation {
            profile: self.profile.clone(),
            pods: self.pods,
            u_max: input.request.total_users.div_ceil(self.pods),
            cost_per_hour: f64::from(self.pods) * profile.cost_per_hour(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_grid_round_trips() {
        let mut g = PredictionGrid::default();
        assert!(g.is_empty());
        g.insert("1xT4-16GB", 4, 0.01, 0.02);
        assert_eq!(g.get("1xT4-16GB", 4), Some((0.01, 0.02)));
        assert_eq!(g.get("1xT4-16GB", 8), None);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn reference_features_have_fixed_length() {
        let grid = vec![1u32, 2, 4];
        let empty = reference_features(&[], &grid);
        assert_eq!(empty.len(), 2 * (1 + 3 * 3));
        assert!(empty.iter().all(|&v| v == 0.0));

        let row = PerfRow {
            llm: "m".into(),
            profile: "1xT4-16GB".into(),
            users: 2,
            ttft_s: 0.5,
            nttft_s: 0.005,
            itl_s: 0.03,
            throughput: 55.0,
        };
        let with = reference_features(&[&row], &grid);
        assert_eq!(with.len(), empty.len());
        assert_eq!(with[0], 1.0); // presence flag for 1xT4
                                  // The users=2 slot carries the metrics.
        assert!(with.contains(&0.005) && with.contains(&55.0));
    }

    #[test]
    fn method_names_and_reference_flags() {
        assert_eq!(LlmPilotMethod::untuned().name(), "LLM-Pilot");
        assert!(!LlmPilotMethod::untuned().uses_reference_measurements());
        assert_eq!(RfMethod::paris().name(), "PARIS");
        assert!(RfMethod::paris().uses_reference_measurements());
        assert_eq!(RfMethod::plain().name(), "RF");
        assert!(!RfMethod::plain().uses_reference_measurements());
        assert!(SelectaMethod::new().uses_reference_measurements());
        assert_eq!(NnMethod::new(NnVariant::Morphling).name(), "Morphling");
        assert!(NnMethod::new(NnVariant::Morphling).uses_reference_measurements());
        assert!(!NnMethod::new(NnVariant::PerfNet).uses_reference_measurements());
        assert_eq!(StaticMethod::paper_best().name(), "Static");
    }

    #[test]
    fn static_method_ignores_data() {
        let method = StaticMethod::paper_best();
        let profiles = llmpilot_sim::gpu::paper_profiles();
        let request = RecommendationRequest::paper_defaults();
        let llm = llmpilot_sim::llm::llama2_13b();
        let input = MethodInput {
            train_rows: vec![],
            test_llm: &llm,
            reference_rows: vec![],
            profiles: &profiles,
            request: &request,
        };
        let rec = method.recommend(&input).unwrap();
        assert_eq!(rec.profile, "1xA100-40GB");
        assert_eq!(rec.pods, 4);
        assert!((rec.cost_per_hour - 4.0 * 4.10).abs() < 1e-9);
    }

    #[test]
    fn static_method_requires_profile_in_candidates() {
        let method = StaticMethod::paper_best();
        let profiles = vec![GpuProfile::new(llmpilot_sim::gpu::t4(), 1)];
        let request = RecommendationRequest::paper_defaults();
        let llm = llmpilot_sim::llm::llama2_13b();
        let input = MethodInput {
            train_rows: vec![],
            test_llm: &llm,
            reference_rows: vec![],
            profiles: &profiles,
            request: &request,
        };
        assert!(method.recommend(&input).is_err());
    }
}
