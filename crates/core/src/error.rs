//! Error types of the core crate.

use std::fmt;

use llmpilot_ml::MlError;
use llmpilot_sim::error::SimError;
use llmpilot_workload::WorkloadError;

/// Errors of the characterization and recommendation pipelines.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Simulator-level failure.
    Sim(SimError),
    /// ML-substrate failure.
    Ml(MlError),
    /// Workload-model failure.
    Workload(WorkloadError),
    /// Malformed serialized data.
    Parse(String),
    /// Journal/file I/O failure.
    Io(String),
    /// Not enough data to train or evaluate.
    InsufficientData(String),
    /// A configuration value failed validation at build time.
    InvalidConfig(String),
    /// No GPU profile can satisfy the requirements.
    NoFeasibleRecommendation,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulator error: {e}"),
            CoreError::Ml(e) => write!(f, "ML error: {e}"),
            CoreError::Workload(e) => write!(f, "workload error: {e}"),
            CoreError::Parse(msg) => write!(f, "parse error: {msg}"),
            CoreError::Io(msg) => write!(f, "I/O error: {msg}"),
            CoreError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::NoFeasibleRecommendation => {
                write!(f, "no GPU profile satisfies the performance requirements")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<SimError> for CoreError {
    fn from(e: SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<MlError> for CoreError {
    fn from(e: MlError) -> Self {
        CoreError::Ml(e)
    }
}

impl From<WorkloadError> for CoreError {
    fn from(e: WorkloadError) -> Self {
        CoreError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = SimError::TuningFailed { llm: "m".into(), profile: "p".into() }.into();
        assert!(e.to_string().contains("simulator"));
        let e: CoreError = MlError::NotFitted.into();
        assert!(e.to_string().contains("ML"));
        let e: CoreError = WorkloadError::EmptyTraces.into();
        assert!(e.to_string().contains("workload"));
        assert!(CoreError::NoFeasibleRecommendation.to_string().contains("profile"));
    }
}
