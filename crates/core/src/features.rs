//! Feature engineering for the performance model (Sec. IV-B-1).
//!
//! The regressor's input concatenates: features describing the LLM (model
//! family, encoder-decoder vs decoder-only, parameter/layer/position/head
//! counts, flash attention, vocabulary size, relative-attention parameters,
//! training data type), features describing the GPU profile (GPU count,
//! memory capacity and bandwidth, architecture, Tensor/RT/CUDA core counts,
//! texture units, ROPs, SMs, TFLOPS, compute capability, interface
//! generation, form factor, NVLink), and the number of concurrent users.

//! Beyond the paper's list, LLM-Pilot's own feature engineering adds three
//! *derived* features — the weight footprint, the KV-cache bytes per token,
//! and the per-pod batch token budget — all computed from the spec sheets
//! alone (no measurement of the unseen LLM), sharpening the regressor's
//! picture of where each profile's memory-capacity knee sits. The baseline
//! methods keep the raw feature list of their original papers
//! (`include_derived = false`).

use llmpilot_sim::gpu::{FormFactor, GpuProfile};
use llmpilot_sim::llm::{DType, LlmArch, LlmSpec};
use llmpilot_sim::memory::{MemoryConfig, MemoryModel};

/// Known model families, one-hot encoded ("LLM type" in the paper).
pub const LLM_FAMILIES: &[&str] =
    &["t5", "mt5", "mpt", "codegen2", "llama", "gpt_neox", "gpt_bigcode"];

/// Feature names, aligned with [`featurize`]'s output. `include_derived`
/// appends LLM-Pilot's derived features (baselines use the raw list).
pub fn feature_names(include_derived: bool) -> Vec<String> {
    let mut names: Vec<String> = LLM_FAMILIES.iter().map(|f| format!("llm_family_{f}")).collect();
    names.extend(
        [
            "llm_encoder_decoder",
            "llm_num_parameters_b",
            "llm_num_layers",
            "llm_num_positions",
            "llm_num_heads",
            "llm_num_kv_heads",
            "llm_hidden_size",
            "llm_flash_attention",
            "llm_vocab_size_k",
            "llm_rel_attn_max_distance",
            "llm_rel_attn_num_buckets",
            "llm_dtype_bytes",
            "gpu_count",
            "gpu_memory_gib",
            "gpu_bandwidth_gbps",
            "gpu_arch",
            "gpu_tensor_cores",
            "gpu_rt_cores",
            "gpu_cuda_cores",
            "gpu_texture_units",
            "gpu_rops",
            "gpu_sm_count",
            "gpu_fp16_tflops",
            "gpu_fp32_tflops",
            "gpu_compute_capability",
            "gpu_pcie_gen",
            "gpu_form_factor_sxm",
            "gpu_nvlink",
        ]
        .iter()
        .map(|s| s.to_string()),
    );
    if include_derived {
        names.extend(
            ["derived_weight_gib", "derived_kv_kib_per_token", "derived_batch_token_budget_k"]
                .iter()
                .map(|s| s.to_string()),
        );
    }
    names.push("concurrent_users".to_string());
    names
}

/// Index of the `concurrent_users` feature — the column the paper's
/// monotonicity constraint applies to (Sec. IV-B-2).
pub fn users_feature_index(include_derived: bool) -> usize {
    feature_names(include_derived).len() - 1
}

/// Build the feature vector for `(LLM, GPU profile, #users)`.
pub fn featurize(
    llm: &LlmSpec,
    profile: &GpuProfile,
    users: u32,
    include_derived: bool,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(feature_names(include_derived).len());
    for family in LLM_FAMILIES {
        out.push(f64::from(u8::from(llm.family == *family)));
    }
    out.push(f64::from(u8::from(llm.arch == LlmArch::EncoderDecoder)));
    out.push(llm.num_parameters / 1e9);
    out.push(f64::from(llm.num_layers));
    out.push(f64::from(llm.num_positions));
    out.push(f64::from(llm.num_heads));
    out.push(f64::from(llm.num_kv_heads));
    out.push(f64::from(llm.hidden_size));
    out.push(f64::from(u8::from(llm.uses_flash_attention)));
    out.push(f64::from(llm.vocab_size) / 1e3);
    out.push(f64::from(llm.relative_attention_max_distance));
    out.push(f64::from(llm.relative_attention_num_buckets));
    out.push(match llm.dtype {
        DType::Fp16 | DType::Bf16 => 2.0,
        DType::Fp32 => 4.0,
    });

    let gpu = &profile.gpu;
    out.push(f64::from(profile.count));
    out.push(gpu.memory_gib);
    out.push(gpu.memory_bandwidth_gbps);
    out.push(f64::from(gpu.arch.code()));
    out.push(f64::from(gpu.tensor_cores));
    out.push(f64::from(gpu.rt_cores));
    out.push(f64::from(gpu.cuda_cores));
    out.push(f64::from(gpu.texture_units));
    out.push(f64::from(gpu.rops));
    out.push(f64::from(gpu.sm_count));
    out.push(gpu.fp16_tflops);
    out.push(gpu.fp32_tflops);
    out.push(gpu.compute_capability);
    out.push(f64::from(gpu.pcie_gen));
    out.push(f64::from(u8::from(gpu.form_factor == FormFactor::Sxm)));
    out.push(f64::from(u8::from(gpu.nvlink)));

    if include_derived {
        // Derived, measurement-free features (see module docs).
        let mem_model = MemoryModel::new(llm.clone(), profile.clone(), MemoryConfig::default());
        out.push(llm.weight_bytes() / (1024.0 * 1024.0 * 1024.0));
        out.push(llm.kv_bytes_per_token() / 1024.0);
        out.push((mem_model.batch_budget_bytes() / llm.kv_bytes_per_token()).max(0.0) / 1000.0);
    }

    out.push(f64::from(users));
    out
}

/// Monotone-constraint vector for the feature layout: `+1` on the
/// concurrent-users column, `0` elsewhere.
pub fn monotone_constraints(include_derived: bool) -> Vec<i8> {
    let mut v = vec![0i8; feature_names(include_derived).len()];
    v[users_feature_index(include_derived)] = 1;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpilot_sim::gpu::{a100_40, t4, GpuProfile};
    use llmpilot_sim::llm::{flan_t5_xxl, llm_catalog, starcoder};

    #[test]
    fn feature_vector_matches_names() {
        for derived in [false, true] {
            let v = featurize(&starcoder(), &GpuProfile::new(a100_40(), 2), 16, derived);
            assert_eq!(v.len(), feature_names(derived).len());
            assert!(v.iter().all(|x| x.is_finite()));
        }
        assert_eq!(feature_names(true).len(), feature_names(false).len() + 3);
    }

    #[test]
    fn every_catalog_family_is_known() {
        for llm in llm_catalog() {
            assert!(
                LLM_FAMILIES.contains(&llm.family),
                "family {} missing from one-hot",
                llm.family
            );
            // Exactly one family flag set.
            let v = featurize(&llm, &GpuProfile::new(t4(), 1), 1, true);
            let flags: f64 = v[..LLM_FAMILIES.len()].iter().sum();
            assert_eq!(flags, 1.0);
        }
    }

    #[test]
    fn users_is_the_last_feature() {
        for derived in [false, true] {
            let idx = users_feature_index(derived);
            let v = featurize(&flan_t5_xxl(), &GpuProfile::new(t4(), 1), 42, derived);
            assert_eq!(v[idx], 42.0);
            assert_eq!(feature_names(derived)[idx], "concurrent_users");
        }
    }

    #[test]
    fn monotone_vector_constrains_only_users() {
        for derived in [false, true] {
            let m = monotone_constraints(derived);
            assert_eq!(m.iter().filter(|&&c| c != 0).count(), 1);
            assert_eq!(m[users_feature_index(derived)], 1);
        }
    }

    #[test]
    fn enc_dec_flag_distinguishes_architectures() {
        let p = GpuProfile::new(t4(), 1);
        let t5 = featurize(&flan_t5_xxl(), &p, 1, false);
        let sc = featurize(&starcoder(), &p, 1, false);
        let flag = LLM_FAMILIES.len();
        assert_eq!(t5[flag], 1.0);
        assert_eq!(sc[flag], 0.0);
    }

    #[test]
    fn gpu_features_differ_across_profiles() {
        let llm = starcoder();
        let a = featurize(&llm, &GpuProfile::new(a100_40(), 1), 1, true);
        let b = featurize(&llm, &GpuProfile::new(t4(), 1), 1, true);
        assert_ne!(a, b);
        let c = featurize(&llm, &GpuProfile::new(a100_40(), 4), 1, true);
        // Only gpu_count and the derived batch-token budget differ between
        // a 1-GPU and a 4-GPU profile of the same type.
        let names = feature_names(true);
        let diff: Vec<String> = (0..a.len())
            .filter(|&i| (a[i] - c[i]).abs() > 1e-12)
            .map(|i| names[i].clone())
            .collect();
        assert_eq!(diff, vec!["gpu_count", "derived_batch_token_budget_k"]);
    }
}
