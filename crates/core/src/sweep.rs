//! Fault-tolerant, resumable characterization sweeps.
//!
//! On real hardware a full characterization sweep (Sec. V-B: hours of GPU
//! time) is exactly the kind of job that dies halfway: pods crash, deploys
//! fail transiently, a cell OOMs at the batch-weight boundary. The
//! [`SweepDriver`] wraps
//! [`characterize_cell_faulty`](crate::characterize::characterize_cell_faulty)
//! with per-cell retry
//! (exponential *virtual* backoff — no wall-clock sleeping in a simulator),
//! per-cell step/virtual-time budgets, and a CSV journal so an interrupted
//! sweep resumes where it left off without recomputing finished cells.
//!
//! Determinism guarantees, pinned by proptests in `tests/`:
//!
//! * a sweep with transient faults and enough retries produces a dataset
//!   **bit-identical** to a fault-free sweep (measurement seeds are
//!   attempt-independent; fault decisions are not);
//! * an interrupted sweep resumed from its journal produces a dataset
//!   **bit-identical** to a one-shot sweep (rows round-trip through the
//!   journal via shortest-round-trip float formatting).

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rayon::prelude::*;

use llmpilot_obs::events::EventSink;
use llmpilot_obs::flight::{self, FlightRecorder};
use llmpilot_obs::hist::{HistSummary, Histogram};
use llmpilot_obs::Recorder;
use llmpilot_sim::fault::FaultPlan;
use llmpilot_sim::gpu::GpuProfile;
use llmpilot_sim::llm::LlmSpec;
use llmpilot_workload::WorkloadSampler;

use crate::characterize::{
    characterize_cell_observed, CellBudget, CellHists, CellOutcome, CharacterizeConfig,
};
use crate::dataset::{CharacterizationDataset, PerfRow};
use crate::error::CoreError;

/// Options of a fault-tolerant sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Faults to inject ([`FaultPlan::none`] by default).
    pub plan: FaultPlan,
    /// Maximum attempts per cell (≥ 1); a cell failing this many times is
    /// recorded as failed.
    pub max_attempts: u32,
    /// Base of the exponential retry backoff, virtual seconds: attempt `k`
    /// (1-based retry) waits `backoff_base_s * 2^(k-1)`. Purely virtual —
    /// accumulated in the report, never slept.
    pub backoff_base_s: f64,
    /// Per-attempt engine-step budget across one cell's load tests.
    pub max_steps_per_cell: Option<u64>,
    /// Per-load-test virtual-time budget, seconds.
    pub max_virtual_s_per_cell: Option<f64>,
    /// Journal file: completed cells are appended here and skipped on the
    /// next run. `None` disables journaling.
    pub journal_path: Option<PathBuf>,
    /// Process at most this many *new* cells, then stop (simulates an
    /// interrupted sweep; used by the resume tests). `None` = all.
    pub max_cells_per_run: Option<usize>,
    /// Observability sink: per-cell/attempt/backoff spans are recorded here,
    /// and the engines of every load test inherit it. Disabled by default;
    /// tracing never changes the measured dataset.
    pub recorder: Recorder,
    /// Telemetry event stream (JSONL, see [`llmpilot_obs::events`]):
    /// `sweep.started` / `cell.*` / `sweep.finished` events with
    /// completeness and ETA. Disabled by default; events never change the
    /// measured dataset.
    pub events: EventSink,
    /// Flight recorder: when set, each cell's spans are captured in a
    /// bounded ring and dumped to `<dir>/flight-<llm>-<profile>.json` when
    /// the cell exhausts its retries (or a panic unwinds mid-cell).
    pub flight: Option<FlightOptions>,
}

/// Where (and how large) the per-cell flight recorder is.
#[derive(Debug, Clone)]
pub struct FlightOptions {
    /// Directory receiving `flight-<llm>-<profile>.json` dumps.
    pub dir: PathBuf,
    /// Ring capacity in spans (most recent are kept).
    pub capacity: usize,
}

impl FlightOptions {
    /// Flight recording into `dir` with the default ring capacity.
    pub fn new(dir: PathBuf) -> Self {
        Self { dir, capacity: flight::DEFAULT_CAPACITY }
    }
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            plan: FaultPlan::none(),
            max_attempts: 3,
            backoff_base_s: 10.0,
            max_steps_per_cell: None,
            max_virtual_s_per_cell: None,
            journal_path: None,
            max_cells_per_run: None,
            recorder: Recorder::disabled(),
            events: EventSink::disabled(),
            flight: None,
        }
    }
}

/// Final status of one cell, as recorded in the report and journal.
#[derive(Debug, Clone, PartialEq)]
pub enum CellStatus {
    /// Measured; `retries` is the number of failed attempts before success.
    Measured {
        /// Tuned maximum batch weight.
        max_batch_weight: u64,
        /// Measurement rows of the cell.
        rows: Vec<PerfRow>,
        /// Attempts consumed (1 = first try succeeded).
        attempts: u32,
    },
    /// Permanently infeasible (Table III × / − cell).
    Infeasible(String),
    /// All attempts errored; the last error, stringified.
    Failed {
        /// Display form of the final error.
        error: String,
        /// Attempts consumed.
        attempts: u32,
    },
}

/// Tail-latency summaries of one measured cell: true quantiles over every
/// individual sample of the cell's load tests (all values nanoseconds).
/// Deterministic — derived from virtual time, so repeat sweeps agree
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellTails {
    /// Normalized TTFT per tracked request.
    pub nttft: HistSummary,
    /// Inter-token latency per emitted token gap.
    pub itl: HistSummary,
    /// Engine prefill cost per admitted request.
    pub prefill: HistSummary,
    /// Engine decode-step cost per iteration.
    pub decode: HistSummary,
}

/// Aggregated result of a sweep: per-cell statuses in grid order plus
/// counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// `(llm, profile, status)` in grid order, for every cell processed so
    /// far (including cells restored from the journal).
    pub cells: Vec<(String, String, CellStatus)>,
    /// Cells of the grid not yet processed (interrupted run).
    pub pending: usize,
    /// Cells restored from the journal instead of recomputed.
    pub resumed: usize,
    /// Total virtual seconds of retry backoff accrued.
    pub backoff_virtual_s: f64,
    /// Tail quantiles per cell *measured in this run* (resumed cells carry
    /// no samples — histograms are not journaled), keyed by
    /// `(llm, profile)`.
    pub tails: BTreeMap<(String, String), CellTails>,
}

impl SweepReport {
    /// Number of measured cells.
    pub fn measured(&self) -> usize {
        self.cells.iter().filter(|(_, _, s)| matches!(s, CellStatus::Measured { .. })).count()
    }

    /// Number of infeasible cells.
    pub fn infeasible(&self) -> usize {
        self.cells.iter().filter(|(_, _, s)| matches!(s, CellStatus::Infeasible(_))).count()
    }

    /// Number of failed cells.
    pub fn failed(&self) -> usize {
        self.cells.iter().filter(|(_, _, s)| matches!(s, CellStatus::Failed { .. })).count()
    }

    /// Number of cells that needed more than one attempt.
    pub fn retried(&self) -> usize {
        self.cells
            .iter()
            .filter(|(_, _, s)| match s {
                CellStatus::Measured { attempts, .. } | CellStatus::Failed { attempts, .. } => {
                    *attempts > 1
                }
                CellStatus::Infeasible(_) => false,
            })
            .count()
    }

    /// Whether every cell of the grid has been processed.
    pub fn is_complete(&self) -> bool {
        self.pending == 0
    }

    /// Fraction of *feasible* cells that were measured, in `[0, 1]`
    /// (1.0 when there are no feasible cells).
    pub fn completeness(&self) -> f64 {
        let feasible = self.cells.len() - self.infeasible();
        if feasible == 0 {
            return 1.0;
        }
        self.measured() as f64 / feasible as f64
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sweep: {} cells ({} measured, {} infeasible, {} failed, {} pending)",
            self.cells.len() + self.pending,
            self.measured(),
            self.infeasible(),
            self.failed(),
            self.pending,
        )?;
        writeln!(
            f,
            "       {} retried, {} resumed from journal, {:.0}s virtual backoff",
            self.retried(),
            self.resumed,
            self.backoff_virtual_s,
        )?;
        for (llm, profile, status) in &self.cells {
            match status {
                CellStatus::Measured { max_batch_weight, rows, attempts } => {
                    if *attempts > 1 {
                        writeln!(
                            f,
                            "  [ok]        {llm} on {profile}: {} rows, weight {max_batch_weight} \
                             (after {attempts} attempts)",
                            rows.len()
                        )?;
                    }
                    if let Some(t) = self.tails.get(&(llm.clone(), profile.clone())) {
                        let ms = |ns: u64| ns as f64 / 1e6;
                        writeln!(
                            f,
                            "  [tails]     {llm} on {profile}: nttft p50/p95/p99 = \
                             {:.3}/{:.3}/{:.3} ms, itl p50/p95/p99 = {:.3}/{:.3}/{:.3} ms",
                            ms(t.nttft.p50),
                            ms(t.nttft.p95),
                            ms(t.nttft.p99),
                            ms(t.itl.p50),
                            ms(t.itl.p95),
                            ms(t.itl.p99),
                        )?;
                    }
                }
                CellStatus::Infeasible(reason) => {
                    writeln!(f, "  [infeasible] {llm} on {profile}: {reason}")?;
                }
                CellStatus::Failed { error, attempts } => {
                    writeln!(
                        f,
                        "  [FAILED]     {llm} on {profile} after {attempts} attempts: {error}"
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// One-line sanitization for journal text fields: the journal is
/// line-oriented, so embedded newlines must go.
fn sanitize(text: &str) -> String {
    text.replace(['\n', '\r'], " ")
}

/// Serialize one cell status as journal lines. Format (line-oriented CSV,
/// append-only):
///
/// ```csv
/// cell,<llm>,<profile>,measured,<weight>,<attempts>,<num_rows>
/// <llm>,<profile>,<users>,<ttft>,<nttft>,<itl>,<throughput>   # dataset rows
/// cell,<llm>,<profile>,infeasible,<reason>
/// cell,<llm>,<profile>,failed,<attempts>,<error>
/// ```
///
/// The measured marker carries its own row count so a reader can tell a
/// complete cell from one whose trailing rows were lost to a truncated
/// write — short windows legitimately yield fewer rows than user levels,
/// so the count cannot be inferred from the sweep config.
///
/// Row lines reuse the dataset CSV format of
/// [`CharacterizationDataset::to_csv`] verbatim, so floats round-trip
/// bit-exactly (shortest round-trip `Display`).
fn journal_lines(llm: &str, profile: &str, status: &CellStatus) -> String {
    let mut out = String::new();
    match status {
        CellStatus::Measured { max_batch_weight, rows, attempts } => {
            out.push_str(&format!(
                "cell,{llm},{profile},measured,{max_batch_weight},{attempts},{}\n",
                rows.len()
            ));
            for r in rows {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{}\n",
                    r.llm, r.profile, r.users, r.ttft_s, r.nttft_s, r.itl_s, r.throughput
                ));
            }
        }
        CellStatus::Infeasible(reason) => {
            out.push_str(&format!("cell,{llm},{profile},infeasible,{}\n", sanitize(reason)));
        }
        CellStatus::Failed { error, attempts } => {
            out.push_str(&format!("cell,{llm},{profile},failed,{attempts},{}\n", sanitize(error)));
        }
    }
    out
}

/// Parse a journal back into per-cell statuses. Tolerates a truncated final
/// record (a crash mid-append): a malformed *last* line is treated as the
/// torn tail of an interrupted write, and it — together with the cell it
/// belongs to — is dropped and recomputed. Malformed lines anywhere else in
/// the journal remain hard errors (the file is corrupt, not truncated).
/// Cell statuses keyed by `(llm, profile)`.
type CellMap = BTreeMap<(String, String), CellStatus>;

/// The second element is `true` when torn-tail tolerance had to discard
/// anything — the file on disk does not round-trip and must be rewritten,
/// not appended to (appending after a line without a trailing newline would
/// glue the next marker onto the torn fragment).
fn parse_journal(text: &str) -> Result<(CellMap, bool), CoreError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut cells = BTreeMap::new();
    let mut current: Option<JournalCell> = None;
    let mut dirty = false;
    for (lineno, raw) in lines.iter().enumerate() {
        match parse_journal_line(raw, lineno, &mut cells, &mut current) {
            Ok(()) => {}
            Err(_) if lineno + 1 == lines.len() => {
                // Torn tail: forget the partial line and the cell it was
                // part of; the driver recomputes that cell.
                current = None;
                dirty = true;
                break;
            }
            Err(e) => return Err(e),
        }
    }
    if let Some(cell) = current.take() {
        // A measured cell short of its declared row count at end-of-file is
        // the other truncation shape (cut exactly at a line boundary):
        // drop it for recomputation.
        if cell.is_complete() {
            cells.insert(cell.key, cell.status);
        } else {
            dirty = true;
        }
    }
    Ok((cells, dirty))
}

/// A cell being accumulated during journal parsing, together with the row
/// count its marker declared.
struct JournalCell {
    key: (String, String),
    status: CellStatus,
    declared_rows: usize,
}

impl JournalCell {
    fn is_complete(&self) -> bool {
        match &self.status {
            CellStatus::Measured { rows, .. } => rows.len() == self.declared_rows,
            _ => true,
        }
    }
}

/// Parse one journal line into the accumulating state; an `Err` means the
/// line is malformed (the caller decides whether that is fatal).
fn parse_journal_line(
    line: &str,
    lineno: usize,
    cells: &mut CellMap,
    current: &mut Option<JournalCell>,
) -> Result<(), CoreError> {
    let line = line.trim_end();
    if line.is_empty() {
        return Ok(());
    }
    let bad =
        |what: &str| CoreError::Parse(format!("journal line {}: {what}: {line:?}", lineno + 1));
    {
        if let Some(rest) = line.strip_prefix("cell,") {
            if let Some(cell) = current.take() {
                // Rows missing although the file kept going: corruption,
                // not truncation.
                if !cell.is_complete() {
                    return Err(bad("previous measured cell is missing rows"));
                }
                cells.insert(cell.key, cell.status);
            }
            let fields: Vec<&str> = rest.split(',').collect();
            if fields.len() < 3 {
                return Err(bad("short cell marker"));
            }
            let key = (fields[0].to_string(), fields[1].to_string());
            let (status, declared_rows) = match fields[2] {
                "measured" => {
                    if fields.len() < 6 {
                        return Err(bad("short measured marker"));
                    }
                    let status = CellStatus::Measured {
                        max_batch_weight: fields[3].parse().map_err(|_| bad("bad batch weight"))?,
                        rows: Vec::new(),
                        attempts: fields[4].parse().map_err(|_| bad("bad attempts"))?,
                    };
                    (status, fields[5].parse().map_err(|_| bad("bad row count"))?)
                }
                "infeasible" => (CellStatus::Infeasible(fields[3..].join(",")), 0),
                "failed" => {
                    if fields.len() < 5 {
                        return Err(bad("short failed marker"));
                    }
                    let status = CellStatus::Failed {
                        attempts: fields[3].parse().map_err(|_| bad("bad attempts"))?,
                        error: fields[4..].join(","),
                    };
                    (status, 0)
                }
                other => return Err(bad(&format!("unknown status {other:?}"))),
            };
            *current = Some(JournalCell { key, status, declared_rows });
        } else {
            // A dataset row belonging to the current measured cell.
            let Some(JournalCell { status: CellStatus::Measured { rows, .. }, .. }) =
                current.as_mut()
            else {
                return Err(bad("dataset row outside a measured cell"));
            };
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 7 {
                return Err(bad("expected 7 row fields"));
            }
            let parse_f = |s: &str| s.parse::<f64>().map_err(|_| bad(&format!("bad float {s:?}")));
            rows.push(PerfRow {
                llm: fields[0].to_string(),
                profile: fields[1].to_string(),
                users: fields[2].parse().map_err(|_| bad("bad users"))?,
                ttft_s: parse_f(fields[3])?,
                nttft_s: parse_f(fields[4])?,
                itl_s: parse_f(fields[5])?,
                throughput: parse_f(fields[6])?,
            });
        }
    }
    Ok(())
}

/// Shared progress state of one [`SweepDriver::run`]: completed-cell count
/// (cells resumed from the journal count as done), plus wall-clock cell
/// durations feeding the ETA estimate in `cell.finished` events.
struct SweepProgress {
    grid_cells: u64,
    done_cells: AtomicU64,
    cell_wall: Histogram,
}

impl SweepProgress {
    fn new(grid_cells: u64, resumed: u64) -> Self {
        Self { grid_cells, done_cells: AtomicU64::new(resumed), cell_wall: Histogram::default() }
    }

    /// Record one finished cell's wall time; returns the new done count.
    fn finish_cell(&self, wall_s: f64) -> u64 {
        self.cell_wall.record_secs(wall_s);
        self.done_cells.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Remaining cells × median observed cell duration, divided over the
    /// worker pool; 0 when done or before any cell has finished.
    fn eta_s(&self, done: u64) -> f64 {
        let remaining = self.grid_cells.saturating_sub(done);
        if remaining == 0 || self.cell_wall.is_empty() {
            return 0.0;
        }
        let p50_s = self.cell_wall.quantile(0.5) as f64 / 1e9;
        remaining as f64 * p50_s / rayon::current_num_threads().max(1) as f64
    }
}

/// Fault-tolerant, resumable driver of the characterization sweep.
pub struct SweepDriver<'a> {
    llms: &'a [LlmSpec],
    profiles: &'a [GpuProfile],
    sampler: &'a WorkloadSampler,
    config: CharacterizeConfig,
    options: SweepOptions,
}

/// Builder of a [`SweepDriver`]; validates the configuration at
/// [`build`](SweepDriverBuilder::build) and returns a typed
/// [`CoreError::InvalidConfig`] instead of panicking on bad options.
#[derive(Debug)]
pub struct SweepDriverBuilder<'a> {
    llms: &'a [LlmSpec],
    profiles: &'a [GpuProfile],
    sampler: &'a WorkloadSampler,
    config: CharacterizeConfig,
    options: SweepOptions,
}

impl<'a> SweepDriverBuilder<'a> {
    /// Set the characterization config (defaults to
    /// [`CharacterizeConfig::default`]).
    pub fn config(mut self, config: CharacterizeConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the sweep options (defaults to [`SweepOptions::default`]).
    pub fn options(mut self, options: SweepOptions) -> Self {
        self.options = options;
        self
    }

    /// Validate and build the driver.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when any option is out of range:
    /// `max_attempts` of 0, a negative or non-finite `backoff_base_s`, a
    /// zero step budget, a non-positive or non-finite virtual-time budget,
    /// or a non-positive load-test duration.
    pub fn build(self) -> Result<SweepDriver<'a>, CoreError> {
        let invalid = |msg: String| Err(CoreError::InvalidConfig(msg));
        let o = &self.options;
        if o.max_attempts < 1 {
            return invalid("max_attempts must be at least 1".into());
        }
        if !o.backoff_base_s.is_finite() || o.backoff_base_s < 0.0 {
            return invalid(format!(
                "backoff_base_s must be finite and non-negative, got {}",
                o.backoff_base_s
            ));
        }
        if o.max_steps_per_cell == Some(0) {
            return invalid("max_steps_per_cell must be at least 1 when set".into());
        }
        if let Some(v) = o.max_virtual_s_per_cell {
            if !v.is_finite() || v <= 0.0 {
                return invalid(format!(
                    "max_virtual_s_per_cell must be finite and positive when set, got {v}"
                ));
            }
        }
        if !self.config.duration_s.is_finite() || self.config.duration_s <= 0.0 {
            return invalid(format!(
                "duration_s must be finite and positive, got {}",
                self.config.duration_s
            ));
        }
        let Self { llms, profiles, sampler, config, options } = self;
        Ok(SweepDriver { llms, profiles, sampler, config, options })
    }
}

impl<'a> SweepDriver<'a> {
    /// Start building a driver over the `llms × profiles` grid. The config
    /// and options default to their `Default` values; the grid is borrowed,
    /// everything else is owned by the builder.
    pub fn builder(
        llms: &'a [LlmSpec],
        profiles: &'a [GpuProfile],
        sampler: &'a WorkloadSampler,
    ) -> SweepDriverBuilder<'a> {
        SweepDriverBuilder {
            llms,
            profiles,
            sampler,
            config: CharacterizeConfig::default(),
            options: SweepOptions::default(),
        }
    }

    /// Build a driver over the `llms × profiles` grid.
    ///
    /// # Panics
    ///
    /// Panics when the options fail validation. Prefer
    /// [`SweepDriver::builder`], which returns a typed error instead.
    #[deprecated(
        since = "0.3.0",
        note = "use `SweepDriver::builder(..).config(..).options(..).build()?` \
                for validated, non-panicking construction"
    )]
    pub fn new(
        llms: &'a [LlmSpec],
        profiles: &'a [GpuProfile],
        sampler: &'a WorkloadSampler,
        config: CharacterizeConfig,
        options: SweepOptions,
    ) -> Self {
        Self::builder(llms, profiles, sampler)
            .config(config)
            .options(options)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run one cell to completion: retry with exponential virtual backoff
    /// until measured, infeasible, or out of attempts. Returns the status,
    /// the backoff accrued, and the cell's tail quantiles.
    fn run_cell(
        &self,
        llm: &LlmSpec,
        profile: &GpuProfile,
        progress: &SweepProgress,
    ) -> (CellStatus, f64, CellTails) {
        let cell_start = Instant::now();
        let name = profile.name();
        let events = &self.options.events;
        events.cell_started(llm.name, &name, progress.grid_cells);

        let recorder = &self.options.recorder;
        let mut cell_span =
            recorder.span("sweep.cell").arg("llm", llm.name).arg("profile", name.as_str());
        // When flight recording is on, the cell's interior spans go to a
        // bounded per-cell ring instead of the sweep recorder, so a dump
        // holds exactly the failing cell's last moments. The armed guard
        // also dumps the ring if a panic unwinds through this cell.
        let flight = self.options.flight.as_ref().map(|opts| {
            flight::install_panic_hook();
            (
                FlightRecorder::new(opts.capacity),
                opts.dir.join(flight::dump_file_name(llm.name, &name)),
            )
        });
        let _armed = flight.as_ref().map(|(fl, path)| flight::arm(fl, path.clone()));
        let cell_rec: Recorder =
            flight.as_ref().map_or_else(|| recorder.clone(), |(fl, _)| fl.recorder().clone());

        let budget = CellBudget {
            max_steps: self.options.max_steps_per_cell,
            max_virtual_s: self.options.max_virtual_s_per_cell,
        };
        let hists = CellHists::default();
        let mut backoff = 0.0;
        let mut attempt = 0;
        let status = loop {
            events.cell_attempt(
                llm.name,
                &name,
                u64::from(attempt + 1),
                u64::from(self.options.max_attempts),
            );
            let outcome = {
                let _attempt_span = cell_rec.span("sweep.attempt").arg("attempt", attempt + 1);
                characterize_cell_observed(
                    llm,
                    profile,
                    self.sampler,
                    &self.config,
                    &self.options.plan,
                    attempt,
                    &budget,
                    &cell_rec,
                    Some(&hists),
                )
            };
            attempt += 1;
            match outcome {
                CellOutcome::Measured { max_batch_weight, rows } => {
                    cell_span.set_arg("attempts", attempt);
                    break CellStatus::Measured { max_batch_weight, rows, attempts: attempt };
                }
                CellOutcome::Infeasible(reason) => {
                    cell_span.set_arg("infeasible", true);
                    break CellStatus::Infeasible(reason);
                }
                CellOutcome::Failed { error, .. } => {
                    if attempt >= self.options.max_attempts {
                        cell_span.set_arg("failed", true);
                        cell_span.set_arg("attempts", attempt);
                        // Retries exhausted: dump the flight ring for
                        // post-mortem before reporting the failure.
                        if let Some((fl, path)) = &flight {
                            let _ = fl.dump_to(path);
                        }
                        break CellStatus::Failed { error: error.to_string(), attempts: attempt };
                    }
                    let step =
                        self.options.backoff_base_s * (2.0f64).powi((attempt - 1).min(60) as i32);
                    backoff += step;
                    events.cell_retried(
                        llm.name,
                        &name,
                        u64::from(attempt),
                        u64::from(self.options.max_attempts),
                        step,
                        &error.to_string(),
                    );
                    cell_rec.counter_add("sweep.retries", 1);
                    // Virtual backoff is never slept, so the span marks the
                    // decision point (zero wall-clock width) and carries the
                    // virtual wait as an argument.
                    drop(cell_rec.span("sweep.backoff").arg("backoff_virtual_s", step));
                }
            }
        };

        let tails = CellTails {
            nttft: hists.samples.nttft.summary(),
            itl: hists.samples.itl.summary(),
            prefill: hists.phases.prefill.summary(),
            decode: hists.phases.decode.summary(),
        };
        let done = progress.finish_cell(cell_start.elapsed().as_secs_f64());
        let status_str = match &status {
            CellStatus::Measured { .. } => "measured",
            CellStatus::Infeasible(_) => "infeasible",
            CellStatus::Failed { .. } => "failed",
        };
        let measured = matches!(status, CellStatus::Measured { .. });
        events.cell_finished(
            llm.name,
            &name,
            status_str,
            u64::from(attempt.max(1)),
            done,
            progress.grid_cells,
            progress.eta_s(done),
            measured.then_some(&tails.nttft),
            measured.then_some(&tails.itl),
        );
        (status, backoff, tails)
    }

    /// Run the sweep (or the next chunk of it, under
    /// [`SweepOptions::max_cells_per_run`]), resuming from the journal if
    /// one exists. Returns the dataset over every completed cell, assembled
    /// in grid order — so a resumed sweep's dataset is bit-identical to a
    /// one-shot sweep's, regardless of which run measured which cell.
    pub fn run(&self) -> Result<(CharacterizationDataset, SweepReport), CoreError> {
        let run_start = Instant::now();
        let grid: Vec<(&LlmSpec, &GpuProfile)> =
            self.llms.iter().flat_map(|m| self.profiles.iter().map(move |p| (m, p))).collect();
        let mut run_span =
            self.options.recorder.span("sweep.run").arg("grid_cells", grid.len() as u64);

        // Restore finished cells from the journal.
        let (mut done, journal_dirty): (CellMap, bool) = match &self.options.journal_path {
            Some(path) if path.exists() => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CoreError::Io(format!("reading journal {path:?}: {e}")))?;
                parse_journal(&text)?
            }
            _ => (BTreeMap::new(), false),
        };
        let resumed = done.len();
        run_span.set_arg("resumed", resumed as u64);
        self.options.events.sweep_started(
            grid.len() as u64,
            resumed as u64,
            u64::from(self.options.max_attempts),
        );

        // Cells still to process, in grid order, capped per run.
        let todo: Vec<(&LlmSpec, &GpuProfile)> = grid
            .iter()
            .filter(|(m, p)| !done.contains_key(&(m.name.to_string(), p.name())))
            .take(self.options.max_cells_per_run.unwrap_or(usize::MAX))
            .copied()
            .collect();

        /// What one `run_cell` call yields, keyed by `(llm, profile)`.
        type CellResult = ((String, String), (CellStatus, f64, CellTails));
        let progress = SweepProgress::new(grid.len() as u64, resumed as u64);
        let results: Vec<CellResult> = todo
            .par_iter()
            .map(|(llm, profile)| {
                ((llm.name.to_string(), profile.name()), self.run_cell(llm, profile, &progress))
            })
            .collect();

        // Append the new cells to the journal (grid order) before reporting.
        let mut backoff_virtual_s = 0.0;
        let mut journal_append = String::new();
        let mut tails = BTreeMap::new();
        for ((llm, profile), (status, backoff, cell_tails)) in results {
            backoff_virtual_s += backoff;
            journal_append.push_str(&journal_lines(&llm, &profile, &status));
            tails.insert((llm.clone(), profile.clone()), cell_tails);
            done.insert((llm, profile), status);
        }
        if let Some(path) = &self.options.journal_path {
            if journal_dirty {
                // Heal a torn journal: rewrite it whole from every known
                // cell rather than appending after the torn fragment.
                let mut full = String::new();
                for ((llm, profile), status) in &done {
                    full.push_str(&journal_lines(llm, profile, status));
                }
                std::fs::write(path, full)
                    .map_err(|e| CoreError::Io(format!("rewriting journal {path:?}: {e}")))?;
            } else if !journal_append.is_empty() {
                use std::io::Write as _;
                let mut file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| CoreError::Io(format!("opening journal {path:?}: {e}")))?;
                file.write_all(journal_append.as_bytes())
                    .map_err(|e| CoreError::Io(format!("appending journal {path:?}: {e}")))?;
            }
        }

        // Assemble dataset and report in grid order.
        let mut ds = CharacterizationDataset::default();
        let mut cells = Vec::with_capacity(done.len());
        let mut pending = 0;
        for (llm, profile) in &grid {
            let key = (llm.name.to_string(), profile.name());
            match done.get(&key) {
                Some(status) => {
                    if let CellStatus::Measured { max_batch_weight, rows, .. } = status {
                        ds.tuned_weights.insert(key.clone(), *max_batch_weight);
                        ds.rows.extend(rows.iter().cloned());
                    }
                    cells.push((key.0, key.1, status.clone()));
                }
                None => pending += 1,
            }
        }
        let report = SweepReport { cells, pending, resumed, backoff_virtual_s, tails };
        self.options.events.sweep_finished(
            grid.len() as u64,
            report.cells.len() as u64,
            report.measured() as u64,
            report.infeasible() as u64,
            report.failed() as u64,
            run_start.elapsed().as_secs_f64(),
        );
        Ok((ds, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpilot_sim::fault::FaultConfig;
    use llmpilot_sim::gpu::{a100_40, t4};
    use llmpilot_sim::llm::{flan_t5_xl, llama2_7b};
    use llmpilot_traces::{Param, TraceGenerator, TraceGeneratorConfig};
    use llmpilot_workload::WorkloadModel;

    fn sampler() -> WorkloadSampler {
        let traces = TraceGenerator::new(TraceGeneratorConfig {
            num_requests: 20_000,
            seed: 55,
            ..TraceGeneratorConfig::default()
        })
        .generate();
        let model = WorkloadModel::fit(
            &traces,
            &[Param::InputTokens, Param::OutputTokens, Param::BatchSize],
        )
        .unwrap();
        WorkloadSampler::new(model)
    }

    fn quick_config() -> CharacterizeConfig {
        CharacterizeConfig {
            duration_s: 15.0,
            user_sweep: vec![1, 8],
            ..CharacterizeConfig::default()
        }
    }

    fn grid() -> (Vec<LlmSpec>, Vec<GpuProfile>) {
        (
            vec![flan_t5_xl(), llama2_7b()],
            vec![GpuProfile::new(t4(), 1), GpuProfile::new(a100_40(), 1)],
        )
    }

    /// Shorthand: a validated driver, panicking on config errors (tests
    /// only pass valid configs here).
    fn driver<'a>(
        llms: &'a [LlmSpec],
        profiles: &'a [GpuProfile],
        sampler: &'a WorkloadSampler,
        config: CharacterizeConfig,
        options: SweepOptions,
    ) -> SweepDriver<'a> {
        SweepDriver::builder(llms, profiles, sampler)
            .config(config)
            .options(options)
            .build()
            .unwrap()
    }

    #[test]
    fn fault_free_sweep_equals_plain_characterize() {
        let s = sampler();
        let (llms, profiles) = grid();
        let driver = driver(&llms, &profiles, &s, quick_config(), SweepOptions::default());
        let (ds, report) = driver.run().unwrap();
        let plain = crate::characterize::characterize(&llms, &profiles, &s, &quick_config());
        assert_eq!(ds, plain);
        assert!(report.is_complete());
        assert_eq!(report.measured(), 3); // llama2-7b doesn't fit 1xT4
        assert_eq!(report.infeasible(), 1);
        assert_eq!(report.failed(), 0);
        assert_eq!(report.completeness(), 1.0);
    }

    #[test]
    fn transient_faults_with_retries_recover_the_full_dataset() {
        let s = sampler();
        let (llms, profiles) = grid();
        let clean =
            driver(&llms, &profiles, &s, quick_config(), SweepOptions::default()).run().unwrap().0;
        let options = SweepOptions {
            // p = 0.4 on deploy + tuning + two load tests leaves only a
            // ~13% success chance per attempt; 64 attempts push the
            // all-fail probability per cell below 2e-4.
            plan: FaultPlan::new(FaultConfig::transient(7, 0.4)),
            max_attempts: 64,
            ..SweepOptions::default()
        };
        let (ds, report) = driver(&llms, &profiles, &s, quick_config(), options).run().unwrap();
        assert_eq!(ds, clean, "recovered dataset must be bit-identical");
        assert_eq!(report.failed(), 0);
    }

    #[test]
    fn exhausted_retries_record_failed_cells() {
        let s = sampler();
        let (llms, profiles) = grid();
        let options = SweepOptions {
            plan: FaultPlan::new(FaultConfig {
                deploy_failure_prob: 1.0,
                ..FaultConfig::disabled()
            }),
            max_attempts: 2,
            ..SweepOptions::default()
        };
        let (ds, report) = driver(&llms, &profiles, &s, quick_config(), options).run().unwrap();
        assert!(ds.is_empty());
        assert_eq!(report.failed(), 3);
        assert_eq!(report.infeasible(), 1); // infeasibility checked pre-deploy
        assert_eq!(report.completeness(), 0.0);
        for (_, _, status) in &report.cells {
            if let CellStatus::Failed { error, attempts } = status {
                assert_eq!(*attempts, 2);
                assert!(error.contains("transient deployment failure"), "{error}");
            }
        }
        assert!(report.backoff_virtual_s > 0.0);
    }

    #[test]
    fn interrupted_sweep_resumes_bit_identically() {
        let s = sampler();
        let (llms, profiles) = grid();
        let one_shot =
            driver(&llms, &profiles, &s, quick_config(), SweepOptions::default()).run().unwrap().0;

        let dir = std::env::temp_dir().join(format!("llmpilot-sweep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("journal.csv");
        let _ = std::fs::remove_file(&journal);

        let options = SweepOptions {
            journal_path: Some(journal.clone()),
            max_cells_per_run: Some(1),
            ..SweepOptions::default()
        };
        let driver = driver(&llms, &profiles, &s, quick_config(), options);
        let mut runs = 0;
        let (ds, report) = loop {
            let (ds, report) = driver.run().unwrap();
            runs += 1;
            assert!(runs <= 8, "sweep failed to converge");
            if report.is_complete() {
                break (ds, report);
            }
        };
        assert_eq!(runs, 4, "one run per cell of the 2x2 grid");
        assert_eq!(report.resumed, 3);
        assert_eq!(ds, one_shot, "resumed dataset must be bit-identical");
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn journal_round_trips_all_statuses() {
        let row = PerfRow {
            llm: "m".into(),
            profile: "p".into(),
            users: 8,
            ttft_s: 0.1234567890123,
            nttft_s: 3.3e-4,
            itl_s: 0.025,
            throughput: 1234.5678,
        };
        let statuses = vec![
            (
                "m".to_string(),
                "p".to_string(),
                CellStatus::Measured { max_batch_weight: 42_000, rows: vec![row], attempts: 3 },
            ),
            ("m".to_string(), "q".to_string(), CellStatus::Infeasible("won't, ever".into())),
            (
                "n".to_string(),
                "p".to_string(),
                CellStatus::Failed { error: "crashed, badly".into(), attempts: 2 },
            ),
        ];
        let mut text = String::new();
        for (llm, profile, status) in &statuses {
            text.push_str(&journal_lines(llm, profile, status));
        }
        let (parsed, dirty) = parse_journal(&text).unwrap();
        assert!(!dirty);
        assert_eq!(parsed.len(), 3);
        for (llm, profile, status) in &statuses {
            assert_eq!(parsed[&(llm.clone(), profile.clone())], *status);
        }
    }

    #[test]
    fn journal_rejects_garbage_before_the_final_line() {
        // A malformed line anywhere but the tail means corruption, not
        // truncation: the valid trailing marker proves writes continued.
        let tail = "cell,m,q,infeasible,nope\n";
        assert!(parse_journal(&format!("m,p,8,0.1,0.2,0.3,4\n{tail}")).is_err());
        assert!(parse_journal(&format!("cell,m,p,bogus,1\n{tail}")).is_err());
        assert!(parse_journal(&format!("cell,m,p,measured\n{tail}")).is_err());
    }

    #[test]
    fn journal_tolerates_a_torn_tail() {
        let complete = "cell,m,p,infeasible,nope\n";
        // Torn mid-marker: the partial cell is dropped, the complete one kept.
        let (parsed, dirty) = parse_journal(&format!("{complete}cell,n,p,meas")).unwrap();
        assert!(dirty);
        assert_eq!(parsed.len(), 1);
        assert!(parsed.contains_key(&("m".to_string(), "p".to_string())));
        // Torn mid-row: the measured cell the row belongs to is dropped too.
        let torn = format!("{complete}cell,n,p,measured,1000,1,2\nn,p,8,0.1,0.2");
        let (parsed, dirty) = parse_journal(&torn).unwrap();
        assert!(dirty);
        assert_eq!(parsed.len(), 1);
        assert!(!parsed.contains_key(&("n".to_string(), "p".to_string())));
        // Torn exactly at a line boundary: the marker declares 2 rows but
        // only 1 survived — the cell is dropped for recomputation.
        let boundary = format!("{complete}cell,n,p,measured,1000,1,2\nn,p,1,0.1,0.2,0.3,4\n");
        let (parsed, dirty) = parse_journal(&boundary).unwrap();
        assert!(dirty);
        assert_eq!(parsed.len(), 1);
        assert!(!parsed.contains_key(&("n".to_string(), "p".to_string())));
        // A journal that is nothing but a torn tail parses to empty.
        let (parsed, dirty) = parse_journal("cell,m,p,measured\n").unwrap();
        assert!(dirty);
        assert!(parsed.is_empty());
        // An intact journal is not dirty.
        let (_, dirty) = parse_journal(complete).unwrap();
        assert!(!dirty);
    }

    #[test]
    fn journal_rejects_a_short_cell_mid_file() {
        // Rows missing while the file kept going is corruption, not a torn
        // tail — the parser must refuse rather than resume from bad data.
        // (Two trailing cells: were the short cell followed only by the
        // final line, the torn-tail rule would drop it instead.)
        let text = "cell,n,p,measured,1000,1,2\nn,p,1,0.1,0.2,0.3,4\n\
                    cell,m,p,infeasible,nope\ncell,m,q,infeasible,nope\n";
        assert!(parse_journal(text).is_err());
    }

    #[test]
    fn resume_recomputes_a_cell_truncated_at_a_line_boundary() {
        let sampler = sampler();
        let (llms, profiles) = grid();
        let config = quick_config();
        let dir = std::env::temp_dir().join(format!("sweep_torn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("torn.csv");
        let one_shot = driver(&llms, &profiles, &sampler, config.clone(), SweepOptions::default())
            .run()
            .unwrap()
            .0;
        // Run once journaled, then tear the journal: drop the last line (a
        // whole dataset row — the boundary case the parser cannot detect)
        // plus a few bytes of the one before.
        let opts =
            || SweepOptions { journal_path: Some(journal.clone()), ..SweepOptions::default() };
        driver(&llms, &profiles, &sampler, config.clone(), opts()).run().unwrap();
        let text = std::fs::read_to_string(&journal).unwrap();
        let keep: Vec<&str> = text.lines().collect();
        let torn =
            format!("{}\n{}", keep[..keep.len() - 2].join("\n"), &keep[keep.len() - 2][..10]);
        std::fs::write(&journal, torn).unwrap();
        // Resume must recompute the damaged cell and still match one-shot.
        let (ds, report) =
            driver(&llms, &profiles, &sampler, config.clone(), opts()).run().unwrap();
        assert_eq!(ds, one_shot, "post-tear resume must be bit-identical");
        assert_eq!(report.pending, 0);
        // The resume must also have healed the journal: it now parses clean
        // and a further resume recomputes nothing.
        let healed = std::fs::read_to_string(&journal).unwrap();
        let (_, dirty) = parse_journal(&healed).unwrap();
        assert!(!dirty, "journal must be rewritten whole after a tear");
        let (ds, report) = driver(&llms, &profiles, &sampler, config, opts()).run().unwrap();
        assert_eq!(ds, one_shot);
        assert_eq!(report.resumed, report.cells.len(), "all cells resume from the healed journal");
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn builder_rejects_invalid_options_with_typed_errors() {
        let s = sampler();
        let (llms, profiles) = grid();
        let build = |options: SweepOptions| {
            SweepDriver::builder(&llms, &profiles, &s)
                .config(quick_config())
                .options(options)
                .build()
                .map(|_| ())
        };
        let expect_invalid = |result: Result<(), CoreError>, needle: &str| match result {
            Err(CoreError::InvalidConfig(msg)) => {
                assert!(msg.contains(needle), "{msg:?} should mention {needle:?}")
            }
            other => panic!("expected InvalidConfig({needle}), got {other:?}"),
        };
        expect_invalid(
            build(SweepOptions { max_attempts: 0, ..SweepOptions::default() }),
            "max_attempts",
        );
        expect_invalid(
            build(SweepOptions { backoff_base_s: -1.0, ..SweepOptions::default() }),
            "backoff_base_s",
        );
        expect_invalid(
            build(SweepOptions { backoff_base_s: f64::NAN, ..SweepOptions::default() }),
            "backoff_base_s",
        );
        expect_invalid(
            build(SweepOptions { max_steps_per_cell: Some(0), ..SweepOptions::default() }),
            "max_steps_per_cell",
        );
        expect_invalid(
            build(SweepOptions { max_virtual_s_per_cell: Some(0.0), ..SweepOptions::default() }),
            "max_virtual_s_per_cell",
        );
        let bad_duration = SweepDriver::builder(&llms, &profiles, &s)
            .config(CharacterizeConfig { duration_s: 0.0, ..CharacterizeConfig::default() })
            .build()
            .map(|_| ());
        expect_invalid(bad_duration, "duration_s");
        // And valid defaults build fine.
        assert!(build(SweepOptions::default()).is_ok());
    }

    /// The deprecated positional constructor must keep forwarding to the
    /// builder (and keep panicking on bad options) until it is removed.
    #[test]
    #[allow(deprecated)]
    fn deprecated_new_forwards_to_the_builder() {
        let s = sampler();
        let (llms, profiles) = grid();
        let d = SweepDriver::new(&llms, &profiles, &s, quick_config(), SweepOptions::default());
        let (ds, report) = d.run().unwrap();
        assert!(report.is_complete());
        assert!(!ds.is_empty());
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            SweepDriver::new(
                &llms,
                &profiles,
                &s,
                quick_config(),
                SweepOptions { max_attempts: 0, ..SweepOptions::default() },
            )
        }));
        assert!(panicked.is_err(), "new() must panic on invalid options");
    }

    #[test]
    fn sweep_emits_a_valid_event_stream_with_full_completeness() {
        let s = sampler();
        let (llms, profiles) = grid();
        let (events, buffer) = EventSink::to_buffer();
        let options = SweepOptions { events, ..SweepOptions::default() };
        let (ds, report) = driver(&llms, &profiles, &s, quick_config(), options).run().unwrap();
        assert!(report.is_complete());

        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        let stats = llmpilot_obs::check::check_events(&text).expect("stream must validate");
        assert_eq!(stats.types.get("sweep.started"), Some(&1));
        assert_eq!(stats.types.get("sweep.finished"), Some(&1));
        assert_eq!(stats.types.get("cell.started"), Some(&4));
        assert_eq!(stats.types.get("cell.finished"), Some(&4));
        assert_eq!(stats.completeness_pct, Some(100.0));
        assert!(stats.finished);
        assert!(!stats.truncated_tail);
        // Measured cells carry their histogram snapshot.
        assert!(text.contains("nttft_p99_ms"));

        // The events never change the dataset.
        let plain =
            driver(&llms, &profiles, &s, quick_config(), SweepOptions::default()).run().unwrap().0;
        assert_eq!(ds, plain);
    }

    #[test]
    fn measured_cells_get_deterministic_tail_quantiles() {
        let s = sampler();
        let (llms, profiles) = grid();
        let run =
            || driver(&llms, &profiles, &s, quick_config(), SweepOptions::default()).run().unwrap();
        let (_, a) = run();
        let (_, b) = run();
        assert_eq!(a.tails, b.tails, "tails must be deterministic");
        assert_eq!(a.tails.len(), 4, "every fresh cell reports tails");
        for (llm, profile, status) in &a.cells {
            let t = &a.tails[&(llm.clone(), profile.clone())];
            if matches!(status, CellStatus::Measured { .. }) {
                assert!(t.nttft.count > 0);
                assert!(t.itl.count > 0);
                assert!(t.prefill.count > 0);
                assert!(t.decode.count > 0);
                assert!(t.itl.p99 >= t.itl.p50);
                assert!(t.nttft.p999 >= t.nttft.p99);
            } else {
                assert_eq!(t.nttft.count, 0, "unmeasured cells have no samples");
            }
        }
        // The report surfaces the quantiles (CI greps for a p99 line).
        let text = a.to_string();
        assert!(text.contains("p50/p95/p99"), "{text}");
    }

    #[test]
    fn flight_dumps_appear_for_exactly_the_failed_cells() {
        let s = sampler();
        let (llms, profiles) = grid();
        let dir = std::env::temp_dir().join(format!("llmpilot-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = SweepOptions {
            // Deploy always fails: every feasible cell exhausts its retries.
            plan: FaultPlan::new(FaultConfig {
                deploy_failure_prob: 1.0,
                ..FaultConfig::disabled()
            }),
            max_attempts: 2,
            flight: Some(FlightOptions::new(dir.clone())),
            ..SweepOptions::default()
        };
        let (_, report) = driver(&llms, &profiles, &s, quick_config(), options).run().unwrap();
        assert_eq!(report.failed(), 3);
        for (llm, profile, status) in &report.cells {
            let path = dir.join(flight::dump_file_name(llm, profile));
            match status {
                CellStatus::Failed { .. } => {
                    let doc = std::fs::read_to_string(&path)
                        .unwrap_or_else(|e| panic!("missing dump {path:?}: {e}"));
                    // Every dump is a valid chrome trace holding the failing
                    // cell's final spans.
                    let stats = llmpilot_obs::check::check_chrome_trace(&doc, &[]).unwrap();
                    assert!(stats.span_events > 0, "dump for {llm}/{profile} must hold spans");
                    assert!(doc.contains("sweep.attempt"), "dump holds the attempt spans");
                }
                _ => assert!(!path.exists(), "no dump for non-failed cell {llm}/{profile}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_recording_does_not_change_the_dataset() {
        let s = sampler();
        let (llms, profiles) = grid();
        let dir = std::env::temp_dir().join(format!("llmpilot-flight-ok-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plain =
            driver(&llms, &profiles, &s, quick_config(), SweepOptions::default()).run().unwrap();
        let options = SweepOptions {
            flight: Some(FlightOptions::new(dir.clone())),
            ..SweepOptions::default()
        };
        let flighted = driver(&llms, &profiles, &s, quick_config(), options).run().unwrap();
        assert_eq!(plain, flighted, "flight recording must not perturb the sweep");
        // All cells succeeded (or were infeasible): no dumps at all.
        let dumped = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        assert_eq!(dumped, 0, "successful sweeps leave no flight dumps");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_sweep_trace_has_one_cell_span_per_cell_including_retries() {
        let s = sampler();
        let (llms, profiles) = grid();
        let untraced = driver(
            &llms,
            &profiles,
            &s,
            quick_config(),
            SweepOptions {
                plan: FaultPlan::new(FaultConfig::transient(7, 0.4)),
                max_attempts: 64,
                ..SweepOptions::default()
            },
        )
        .run()
        .unwrap();
        let recorder = Recorder::enabled();
        let (ds, report) = driver(
            &llms,
            &profiles,
            &s,
            quick_config(),
            SweepOptions {
                plan: FaultPlan::new(FaultConfig::transient(7, 0.4)),
                max_attempts: 64,
                recorder: recorder.clone(),
                ..SweepOptions::default()
            },
        )
        .run()
        .unwrap();
        assert_eq!((ds, report.clone()), untraced, "tracing must not perturb the sweep");

        let trace = recorder.snapshot();
        let count = |name: &str| trace.events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("sweep.run"), 1);
        assert_eq!(count("sweep.cell"), 4, "one sweep.cell span per grid cell");
        // This fault plan retries at least one cell, and every retry means
        // an extra attempt span and a backoff marker.
        let attempts: u32 = report
            .cells
            .iter()
            .map(|(_, _, status)| match status {
                CellStatus::Measured { attempts, .. } | CellStatus::Failed { attempts, .. } => {
                    *attempts
                }
                // An infeasible cell burns exactly one attempt.
                CellStatus::Infeasible(_) => 1,
            })
            .sum();
        assert!(report.retried() >= 1, "fault plan was expected to force retries");
        assert_eq!(count("sweep.attempt"), attempts as usize);
        assert_eq!(count("sweep.backoff"), (attempts as usize) - 4);
        // Every cell span is parented to the sweep.run span, and load tests
        // nest below their cell's attempts.
        let run_id = trace.events.iter().find(|e| e.name == "sweep.run").unwrap().id;
        for e in trace.events.iter().filter(|e| e.name == "sweep.cell") {
            assert_eq!(e.parent, Some(run_id));
        }
        assert!(count("cell.load_test") >= report.measured() * 2);
        let retries = trace.counters.iter().find(|(k, _)| k == "sweep.retries").unwrap().1;
        assert_eq!(retries as usize, (attempts as usize) - 4);
    }
}
