//! The GPU recommendation problem and its solver (Sec. IV-A, Eq. (1)–(3)).
//!
//! Given latency predictions `l₁` (nTTFT) and `l₂` (ITL) for an unseen LLM
//! on every GPU profile and user count, LLM-Pilot estimates the maximum
//! number of concurrent users `u_max` a single pod can serve without
//! violating the constraints (Eq. 3), derives the number of pods
//! `n = ⌈U / u_max⌉` needed for the expected load (Eq. 2), and recommends
//! the profile minimizing total cost `n · c(G)` (Eq. 1).

use llmpilot_sim::gpu::{gpu_by_name, GpuProfile};

use crate::error::CoreError;

/// The latency constraints `L = (L₁, L₂)` of the user's SLA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyConstraints {
    /// Normalized-TTFT bound `L₁`, seconds per input token.
    pub nttft_s: f64,
    /// Inter-token latency bound `L₂`, seconds.
    pub itl_s: f64,
}

impl LatencyConstraints {
    /// The paper's evaluation defaults: `L₁ = 100 ms`, `L₂ = 50 ms`.
    pub fn paper_defaults() -> Self {
        Self { nttft_s: 0.100, itl_s: 0.050 }
    }

    /// Whether a latency pair satisfies both constraints.
    pub fn satisfied_by(&self, nttft_s: f64, itl_s: f64) -> bool {
        nttft_s <= self.nttft_s && itl_s <= self.itl_s
    }
}

/// A recommendation request: the expected load and SLA.
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendationRequest {
    /// Total number of concurrent users `U` the service must sustain.
    pub total_users: u32,
    /// Latency constraints `L`.
    pub constraints: LatencyConstraints,
    /// The considered per-pod user counts `𝕌` (ascending).
    pub user_grid: Vec<u32>,
}

impl RecommendationRequest {
    /// The paper's evaluation setting: `U = 200`, `L₁ = 100 ms`,
    /// `L₂ = 50 ms`, `𝕌 = {1, 2, 4, …, 128}`.
    pub fn paper_defaults() -> Self {
        Self {
            total_users: 200,
            constraints: LatencyConstraints::paper_defaults(),
            user_grid: (0..8).map(|i| 1u32 << i).collect(),
        }
    }
}

/// A deployment recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The recommended GPU profile `G*`.
    pub profile: String,
    /// Number of pods `n` to create.
    pub pods: u32,
    /// Estimated per-pod user capacity `u_max`.
    pub u_max: u32,
    /// Total deployment cost per hour, `n · c(G*)`.
    pub cost_per_hour: f64,
}

/// Eq. (3): the largest `u ∈ 𝕌` such that *every* `u' ≤ u` satisfies both
/// constraints under the latency estimates `(users, nttft, itl)`. Returns
/// `None` when even the smallest user count violates a constraint. The grid
/// must be ascending in users.
pub fn u_max(latencies: &[(u32, f64, f64)], constraints: &LatencyConstraints) -> Option<u32> {
    debug_assert!(latencies.windows(2).all(|w| w[0].0 < w[1].0), "grid must ascend");
    let mut best = None;
    for &(users, nttft, itl) in latencies {
        if constraints.satisfied_by(nttft, itl) {
            best = Some(users);
        } else {
            break; // the ∀ u' ≤ u condition fails for all larger u
        }
    }
    best
}

/// Eq. (2): pods needed for `total_users` at `u_max` users per pod.
pub fn pods_needed(total_users: u32, u_max: u32) -> u32 {
    assert!(u_max >= 1);
    total_users.div_ceil(u_max)
}

/// Parse a canonical profile name (`"2xA100-40GB"`) back into a
/// [`GpuProfile`].
pub fn parse_profile(name: &str) -> Option<GpuProfile> {
    let (count, gpu) = name.split_once('x')?;
    let count: u32 = count.parse().ok()?;
    if count == 0 {
        return None;
    }
    Some(GpuProfile::new(gpu_by_name(gpu)?, count))
}

/// Eq. (1): recommend the most cost-effective profile. `predict` supplies
/// the latency estimates `(nttft, itl)` for a profile and user count —
/// LLM-Pilot passes its performance model here; the oracle evaluation
/// passes the measured ground truth. Profiles whose predictions violate the
/// constraints even at the smallest user count are unusable; if all are,
/// the recommendation fails.
pub fn recommend<F>(
    profiles: &[GpuProfile],
    request: &RecommendationRequest,
    predict: F,
) -> Result<Recommendation, CoreError>
where
    F: Fn(&GpuProfile, u32) -> Option<(f64, f64)>,
{
    if profiles.is_empty() {
        return Err(CoreError::InsufficientData("no candidate GPU profiles".into()));
    }
    let mut best: Option<Recommendation> = None;
    for profile in profiles {
        let latencies: Vec<(u32, f64, f64)> = request
            .user_grid
            .iter()
            .filter_map(|&u| predict(profile, u).map(|(l1, l2)| (u, l1, l2)))
            .collect();
        if latencies.is_empty() {
            continue;
        }
        let Some(cap) = u_max(&latencies, &request.constraints) else {
            continue;
        };
        let pods = pods_needed(request.total_users, cap);
        let cost = f64::from(pods) * profile.cost_per_hour();
        let candidate =
            Recommendation { profile: profile.name(), pods, u_max: cap, cost_per_hour: cost };
        // Equal-cost candidates tie-break on the stable key (profile name,
        // then pods) so recommendations are reproducible regardless of the
        // order the candidate profiles were supplied in.
        let better = match &best {
            None => true,
            Some(b) => {
                cost < b.cost_per_hour - 1e-12
                    || ((cost - b.cost_per_hour).abs() <= 1e-12
                        && (candidate.profile.as_str(), candidate.pods)
                            < (b.profile.as_str(), b.pods))
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best.ok_or(CoreError::NoFeasibleRecommendation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpilot_sim::gpu::{a100_40, h100, t4};

    const L: LatencyConstraints = LatencyConstraints { nttft_s: 0.1, itl_s: 0.05 };

    #[test]
    fn u_max_scans_prefix() {
        let lat = vec![
            (1, 0.01, 0.02),
            (2, 0.02, 0.03),
            (4, 0.05, 0.04),
            (8, 0.2, 0.04),   // violates nTTFT
            (16, 0.01, 0.01), // satisfied again, but must NOT count (∀ u' ≤ u)
        ];
        assert_eq!(u_max(&lat, &L), Some(4));
    }

    #[test]
    fn u_max_none_when_first_violates() {
        let lat = vec![(1, 0.5, 0.02), (2, 0.01, 0.01)];
        assert_eq!(u_max(&lat, &L), None);
    }

    #[test]
    fn pods_needed_is_ceiling() {
        assert_eq!(pods_needed(200, 128), 2);
        assert_eq!(pods_needed(200, 100), 2);
        assert_eq!(pods_needed(200, 99), 3);
        assert_eq!(pods_needed(1, 128), 1);
    }

    #[test]
    fn parse_profile_round_trips() {
        for p in llmpilot_sim::gpu::paper_profiles() {
            let parsed = parse_profile(&p.name()).unwrap();
            assert_eq!(parsed.name(), p.name());
        }
        assert!(parse_profile("0xT4-16GB").is_none());
        assert!(parse_profile("banana").is_none());
        assert!(parse_profile("2xB200").is_none());
    }

    #[test]
    fn recommend_picks_cheapest_satisfying_profile() {
        let profiles = vec![
            GpuProfile::new(h100(), 1),
            GpuProfile::new(a100_40(), 1),
            GpuProfile::new(t4(), 1),
        ];
        let request = RecommendationRequest {
            total_users: 100,
            constraints: L,
            user_grid: vec![1, 2, 4, 8, 16, 32, 64, 128],
        };
        // H100 serves 64 users/pod, A100 serves 32, T4 violates at 1 user.
        let rec = recommend(&profiles, &request, |p, u| {
            let cap = match p.gpu.name {
                "H100-80GB" => 64,
                "A100-40GB" => 32,
                _ => 0,
            };
            Some(if u <= cap { (0.01, 0.01) } else { (1.0, 1.0) })
        })
        .unwrap();
        // H100: 2 pods × 12.29 = 24.58; A100: 4 pods × 4.10 = 16.40 → A100.
        assert_eq!(rec.profile, "1xA100-40GB");
        assert_eq!(rec.pods, 4);
        assert_eq!(rec.u_max, 32);
        assert!((rec.cost_per_hour - 4.0 * 4.10).abs() < 1e-9);
    }

    #[test]
    fn recommend_fails_when_nothing_satisfies() {
        let profiles = vec![GpuProfile::new(t4(), 1)];
        let request = RecommendationRequest::paper_defaults();
        let err = recommend(&profiles, &request, |_, _| Some((1.0, 1.0))).unwrap_err();
        assert_eq!(err, CoreError::NoFeasibleRecommendation);
    }

    #[test]
    fn recommend_skips_profiles_without_predictions() {
        let profiles = vec![GpuProfile::new(t4(), 1), GpuProfile::new(a100_40(), 1)];
        let request =
            RecommendationRequest { total_users: 10, constraints: L, user_grid: vec![1, 2] };
        let rec = recommend(&profiles, &request, |p, _| {
            if p.gpu.name == "T4-16GB" {
                None
            } else {
                Some((0.01, 0.01))
            }
        })
        .unwrap();
        assert_eq!(rec.profile, "1xA100-40GB");
    }

    #[test]
    fn tie_breaks_are_deterministic() {
        let profiles = vec![GpuProfile::new(a100_40(), 1), GpuProfile::new(a100_40(), 1)];
        let request = RecommendationRequest { total_users: 1, constraints: L, user_grid: vec![1] };
        let rec = recommend(&profiles, &request, |_, _| Some((0.0, 0.0))).unwrap();
        assert_eq!(rec.profile, "1xA100-40GB");
    }

    #[test]
    fn equal_cost_tie_breaks_by_profile_name_then_pods_order_independently() {
        // 1×T4 at $0.53/h serving 1 user/pod needs 2 pods for 2 users
        // ($1.06/h); 2×T4 at $1.06/h serving 2 users/pod needs 1 pod
        // ($1.06/h). Exact cost tie — the stable key picks "1xT4-16GB"
        // (lexicographically smaller name), independent of candidate order.
        let request =
            RecommendationRequest { total_users: 2, constraints: L, user_grid: vec![1, 2] };
        let predict = |p: &GpuProfile, u: u32| {
            let cap = p.count; // u_max equals the GPU count in this setup
            Some(if u <= cap { (0.01, 0.01) } else { (1.0, 1.0) })
        };
        let forward = vec![GpuProfile::new(t4(), 1), GpuProfile::new(t4(), 2)];
        let reverse = vec![GpuProfile::new(t4(), 2), GpuProfile::new(t4(), 1)];
        let a = recommend(&forward, &request, predict).unwrap();
        let b = recommend(&reverse, &request, predict).unwrap();
        assert_eq!(a, b, "recommendation must not depend on candidate order");
        assert_eq!(a.profile, "1xT4-16GB");
        assert_eq!(a.pods, 2);
        assert!((a.cost_per_hour - 2.0 * 0.53).abs() < 1e-9);
    }

    #[test]
    fn paper_defaults_match_section_5c() {
        let r = RecommendationRequest::paper_defaults();
        assert_eq!(r.total_users, 200);
        assert_eq!(r.user_grid, vec![1, 2, 4, 8, 16, 32, 64, 128]);
        assert!((r.constraints.nttft_s - 0.1).abs() < 1e-12);
        assert!((r.constraints.itl_s - 0.05).abs() < 1e-12);
    }
}
