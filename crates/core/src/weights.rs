//! Constraint-proximity sample weights (Eq. (4) of the paper).
//!
//! The regressor's purpose is to estimate the maximum number of users a
//! pod can serve under the latency constraints, so it must be most accurate
//! for the data points whose latencies sit *near* the constraints. Each
//! training point gets weight `1 − |l − L| / max_v |l(v) − L|`, where the
//! maximum runs over the user counts of the same `(LLM, GPU profile)` cell;
//! the nTTFT-based and ITL-based weights are combined by arithmetic mean.

use std::collections::HashMap;

use crate::dataset::PerfRow;
use crate::recommend::LatencyConstraints;

/// Compute the combined Eq.-(4) weights for a set of rows. Rows are grouped
/// by `(llm, profile)` for the per-cell normalization. A degenerate cell
/// whose latencies all sit exactly at the constraint gets weight 1.
pub fn constraint_proximity_weights(
    rows: &[&PerfRow],
    constraints: &LatencyConstraints,
) -> Vec<f64> {
    // Per-cell maxima of |l − L|.
    let mut max_d1: HashMap<(&str, &str), f64> = HashMap::new();
    let mut max_d2: HashMap<(&str, &str), f64> = HashMap::new();
    for r in rows {
        let key = (r.llm.as_str(), r.profile.as_str());
        let d1 = (r.nttft_s - constraints.nttft_s).abs();
        let d2 = (r.itl_s - constraints.itl_s).abs();
        let e1 = max_d1.entry(key).or_insert(0.0);
        *e1 = e1.max(d1);
        let e2 = max_d2.entry(key).or_insert(0.0);
        *e2 = e2.max(d2);
    }
    rows.iter()
        .map(|r| {
            let key = (r.llm.as_str(), r.profile.as_str());
            let w1 = weight_term((r.nttft_s - constraints.nttft_s).abs(), max_d1[&key]);
            let w2 = weight_term((r.itl_s - constraints.itl_s).abs(), max_d2[&key]);
            0.5 * (w1 + w2)
        })
        .collect()
}

fn weight_term(distance: f64, max_distance: f64) -> f64 {
    if max_distance <= 0.0 {
        1.0
    } else {
        1.0 - distance / max_distance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(llm: &str, profile: &str, users: u32, nttft: f64, itl: f64) -> PerfRow {
        PerfRow {
            llm: llm.into(),
            profile: profile.into(),
            users,
            ttft_s: nttft * 100.0,
            nttft_s: nttft,
            itl_s: itl,
            throughput: 1.0,
        }
    }

    const L: LatencyConstraints = LatencyConstraints { nttft_s: 0.1, itl_s: 0.05 };

    #[test]
    fn rows_at_the_constraint_get_weight_one() {
        let rows = [
            row("m", "p", 1, 0.1, 0.05), // exactly at both constraints
            row("m", "p", 2, 0.5, 0.25), // far from both
        ];
        let refs: Vec<&PerfRow> = rows.iter().collect();
        let w = constraint_proximity_weights(&refs, &L);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn weights_decrease_with_distance() {
        let rows =
            [row("m", "p", 1, 0.09, 0.049), row("m", "p", 2, 0.2, 0.1), row("m", "p", 4, 0.8, 0.4)];
        let refs: Vec<&PerfRow> = rows.iter().collect();
        let w = constraint_proximity_weights(&refs, &L);
        assert!(w[0] > w[1]);
        assert!(w[1] > w[2]);
        assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn normalization_is_per_cell() {
        // Two cells with very different latency scales: the nearest point of
        // each cell must get the cell's top weight.
        let rows = [
            row("m", "p", 1, 0.11, 0.05),
            row("m", "p", 2, 1.0, 0.5),
            row("m", "q", 1, 0.5, 0.2),
            row("m", "q", 2, 50.0, 20.0),
        ];
        let refs: Vec<&PerfRow> = rows.iter().collect();
        let w = constraint_proximity_weights(&refs, &L);
        assert!(w[0] > 0.9);
        assert!(w[2] > 0.9, "near point of the slow cell: {}", w[2]);
        assert!(w[1] < 0.2);
        assert!(w[3] < 0.2);
    }

    #[test]
    fn degenerate_cell_gets_weight_one() {
        let rows = [row("m", "p", 1, 0.1, 0.05), row("m", "p", 2, 0.1, 0.05)];
        let refs: Vec<&PerfRow> = rows.iter().collect();
        let w = constraint_proximity_weights(&refs, &L);
        assert_eq!(w, vec![1.0, 1.0]);
    }

    #[test]
    fn combined_weight_is_mean_of_both_terms() {
        // First row: at the nTTFT constraint but far on ITL; second the
        // reverse; third far on both.
        let rows =
            [row("m", "p", 1, 0.1, 0.5), row("m", "p", 2, 1.0, 0.05), row("m", "p", 4, 1.0, 0.5)];
        let refs: Vec<&PerfRow> = rows.iter().collect();
        let w = constraint_proximity_weights(&refs, &L);
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
        assert!(w[2] < 1e-12);
    }
}
