//! The non-parametric joint model of requests (Sec. III-B-1).
//!
//! Each request parameter is binned ([`crate::binning`]); a
//! *multi-dimensional bin* is a distinct combination of per-parameter bin
//! assignments. The model stores the sparse histogram of multi-dimensional
//! bins observed in the traces: because the parameters are strongly
//! correlated, the overwhelming majority of theoretically possible
//! combinations never occur (the paper observes 46.5k non-empty bins out of
//! 10.7 *billion* possible), so the model is tiny compared to the traces it
//! summarizes and stays roughly the same size however many traces are
//! collected.

use std::collections::HashMap;

use llmpilot_traces::{Param, TraceDataset};

use crate::binning::{BinSpec, DEFAULT_MAX_BINS};
use crate::error::WorkloadError;

/// A request produced by the workload generator: one value per modeled
/// parameter (bin centers of the sampled multi-dimensional bin).
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedRequest {
    params: Vec<Param>,
    values: Vec<f64>,
}

impl GeneratedRequest {
    pub(crate) fn new(params: Vec<Param>, values: Vec<f64>) -> Self {
        debug_assert_eq!(params.len(), values.len());
        Self { params, values }
    }

    /// Value of a modeled parameter, if present.
    pub fn get(&self, param: Param) -> Option<f64> {
        self.params.iter().position(|&p| p == param).map(|i| self.values[i])
    }

    /// All `(parameter, value)` pairs.
    pub fn entries(&self) -> impl Iterator<Item = (Param, f64)> + '_ {
        self.params.iter().copied().zip(self.values.iter().copied())
    }

    /// Prompt length, if `InputTokens` is modeled (≥ 1).
    pub fn input_tokens(&self) -> Option<u32> {
        self.get(Param::InputTokens).map(|v| (v.round() as u32).max(1))
    }

    /// Output length, if `OutputTokens` is modeled (≥ 1).
    pub fn output_tokens(&self) -> Option<u32> {
        self.get(Param::OutputTokens).map(|v| (v.round() as u32).max(1))
    }

    /// Client batch size, if `BatchSize` is modeled (≥ 1).
    pub fn batch_size(&self) -> Option<u32> {
        self.get(Param::BatchSize).map(|v| (v.round() as u32).max(1))
    }
}

/// The fitted joint model: per-parameter binnings plus the sparse histogram
/// over multi-dimensional bins.
#[derive(Debug, Clone)]
pub struct WorkloadModel {
    params: Vec<Param>,
    bins: Vec<BinSpec>,
    /// Flattened bin-assignment keys of the non-empty multi-dimensional
    /// bins: entry `i` occupies `keys[i*d .. (i+1)*d]`.
    keys: Vec<u16>,
    /// Occurrence count of each non-empty multi-dimensional bin.
    counts: Vec<u64>,
}

impl WorkloadModel {
    /// Fit the model to a trace collection over the given parameters with at
    /// most `max_bins` bins per parameter.
    pub fn fit_with_bins(
        traces: &TraceDataset,
        params: &[Param],
        max_bins: usize,
    ) -> Result<Self, WorkloadError> {
        if traces.is_empty() {
            return Err(WorkloadError::EmptyTraces);
        }
        if params.is_empty() {
            return Err(WorkloadError::NoParameters);
        }
        let columns: Vec<Vec<f64>> = params.iter().map(|&p| traces.column(p)).collect();
        let bins: Vec<BinSpec> = columns.iter().map(|c| BinSpec::fit(c, max_bins)).collect();

        let d = params.len();
        let n = traces.len();
        let mut histogram: HashMap<Vec<u16>, u64> = HashMap::new();
        let mut key = vec![0u16; d];
        for row in 0..n {
            for (j, column) in columns.iter().enumerate() {
                key[j] = bins[j].bin_of(column[row]) as u16;
            }
            *histogram.entry(key.clone()).or_insert(0) += 1;
        }

        let mut entries: Vec<(Vec<u16>, u64)> = histogram.into_iter().collect();
        // Deterministic layout regardless of hash order.
        entries.sort_unstable();
        let mut keys = Vec::with_capacity(entries.len() * d);
        let mut counts = Vec::with_capacity(entries.len());
        for (k, c) in entries {
            keys.extend_from_slice(&k);
            counts.push(c);
        }

        Ok(Self { params: params.to_vec(), bins, keys, counts })
    }

    /// Fit with the paper's default of 64 bins per parameter.
    pub fn fit(traces: &TraceDataset, params: &[Param]) -> Result<Self, WorkloadError> {
        Self::fit_with_bins(traces, params, DEFAULT_MAX_BINS)
    }

    /// The modeled parameters, in key order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Per-parameter binning specs, in key order.
    pub fn bins(&self) -> &[BinSpec] {
        &self.bins
    }

    /// Number of non-empty multi-dimensional bins.
    pub fn num_nonempty_bins(&self) -> usize {
        self.counts.len()
    }

    /// Number of theoretically possible multi-dimensional bins (product of
    /// per-parameter bin counts), as `f64` since it overflows integers.
    pub fn num_possible_bins(&self) -> f64 {
        self.bins.iter().map(|b| b.num_bins() as f64).product()
    }

    /// Occurrence counts of the non-empty bins.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of requests the model was fitted on.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `j`-th parameter's bin index of non-empty bin `i`.
    pub fn bin_key(&self, i: usize, j: usize) -> u16 {
        self.keys[i * self.params.len() + j]
    }

    /// Rebuild a model from serialized parts (see [`crate::serialize`]).
    /// Invariants (key ranges, entry counts) must already be validated.
    pub(crate) fn from_parts(
        params: Vec<Param>,
        bins: Vec<BinSpec>,
        keys: Vec<u16>,
        counts: Vec<u64>,
    ) -> Self {
        debug_assert_eq!(params.len(), bins.len());
        debug_assert_eq!(keys.len(), counts.len() * params.len());
        Self { params, bins, keys, counts }
    }

    /// The bin-center value vector of non-empty bin `i`.
    pub fn bin_values(&self, i: usize) -> Vec<f64> {
        let d = self.params.len();
        self.keys[i * d..(i + 1) * d]
            .iter()
            .enumerate()
            .map(|(j, &b)| self.bins[j].center(usize::from(b)))
            .collect()
    }

    /// Materialize non-empty bin `i` as a request.
    pub fn request_from_bin(&self, i: usize) -> GeneratedRequest {
        GeneratedRequest::new(self.params.clone(), self.bin_values(i))
    }

    /// Marginal histogram of one modeled parameter: `(bin center,
    /// probability)` pairs, summed out of the joint model.
    pub fn marginal_histogram(&self, param: Param) -> Option<Vec<(f64, f64)>> {
        let j = self.params.iter().position(|&p| p == param)?;
        let d = self.params.len();
        let total = self.total_count() as f64;
        let mut mass = vec![0.0f64; self.bins[j].num_bins()];
        for (i, &c) in self.counts.iter().enumerate() {
            let b = usize::from(self.keys[i * d + j]);
            mass[b] += c as f64 / total;
        }
        Some(
            mass.iter()
                .enumerate()
                .filter(|&(_, &m)| m > 0.0)
                .map(|(b, &m)| (self.bins[j].center(b), m))
                .collect(),
        )
    }

    /// Approximate in-memory/serialized size of the model, bytes: the
    /// quantity the paper compares against the raw traces (<1 MB model vs
    /// 1.6 GB of traces).
    pub fn approx_size_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<u16>()
            + self.counts.len() * std::mem::size_of::<u64>()
            + self.bins.iter().map(BinSpec::approx_size_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpilot_traces::{TraceGenerator, TraceGeneratorConfig};

    fn traces(n: usize) -> TraceDataset {
        TraceGenerator::new(TraceGeneratorConfig {
            num_requests: n,
            seed: 21,
            ..TraceGeneratorConfig::default()
        })
        .generate()
    }

    #[test]
    fn fit_produces_sparse_histogram() {
        let ds = traces(30_000);
        let model = WorkloadModel::fit(&ds, &Param::core()).unwrap();
        assert!(model.num_nonempty_bins() > 100);
        // Sparsity: non-empty bins are a vanishing share of possible ones.
        assert!(
            (model.num_nonempty_bins() as f64) < 0.001 * model.num_possible_bins(),
            "{} of {}",
            model.num_nonempty_bins(),
            model.num_possible_bins()
        );
        assert_eq!(model.total_count(), 30_000);
    }

    #[test]
    fn model_is_much_smaller_than_traces() {
        let ds = traces(50_000);
        let model = WorkloadModel::fit(&ds, &Param::core()).unwrap();
        let model_size = model.approx_size_bytes();
        let trace_size = ds.approx_storage_bytes();
        assert!(model_size * 5 < trace_size, "model {model_size} B vs traces {trace_size} B");
    }

    #[test]
    fn bin_values_are_within_observed_ranges() {
        let ds = traces(10_000);
        let model = WorkloadModel::fit(&ds, &Param::core()).unwrap();
        for i in 0..model.num_nonempty_bins() {
            let r = model.request_from_bin(i);
            let input = r.input_tokens().unwrap();
            let output = r.output_tokens().unwrap();
            let batch = r.batch_size().unwrap();
            assert!((1..=4093).contains(&input));
            assert!((1..=1500).contains(&output));
            assert!((1..=5).contains(&batch));
        }
    }

    #[test]
    fn marginal_histogram_sums_to_one() {
        let ds = traces(10_000);
        let model = WorkloadModel::fit(&ds, &Param::core()).unwrap();
        for p in Param::core() {
            let h = model.marginal_histogram(p).unwrap();
            let total: f64 = h.iter().map(|&(_, m)| m).sum();
            assert!((total - 1.0).abs() < 1e-9, "{p:?} sums to {total}");
        }
        assert!(model.marginal_histogram(Param::Aux(0)).is_none());
    }

    #[test]
    fn empty_traces_and_params_are_errors() {
        let empty = TraceDataset::default();
        assert!(matches!(
            WorkloadModel::fit(&empty, &Param::core()),
            Err(WorkloadError::EmptyTraces)
        ));
        let ds = traces(100);
        assert!(matches!(WorkloadModel::fit(&ds, &[]), Err(WorkloadError::NoParameters)));
    }

    #[test]
    fn deterministic_layout() {
        let ds = traces(5_000);
        let a = WorkloadModel::fit(&ds, &Param::core()).unwrap();
        let b = WorkloadModel::fit(&ds, &Param::core()).unwrap();
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.bin_values(0), b.bin_values(0));
    }

    #[test]
    fn generated_request_accessors() {
        let r = GeneratedRequest::new(
            vec![Param::InputTokens, Param::OutputTokens, Param::Temperature],
            vec![100.4, 50.6, 0.7],
        );
        assert_eq!(r.input_tokens(), Some(100));
        assert_eq!(r.output_tokens(), Some(51));
        assert_eq!(r.batch_size(), None);
        assert_eq!(r.get(Param::Temperature), Some(0.7));
        assert_eq!(r.entries().count(), 3);
    }

    #[test]
    fn growing_traces_do_not_grow_the_model_much() {
        // The paper: the generator "will remain approximately the same size
        // even if a much larger amount of traces is collected". The full
        // 8-parameter histogram is still discovering bins at these corpus
        // sizes, so growth must at least be clearly sub-linear…
        let small = WorkloadModel::fit(&traces(20_000), &Param::core()).unwrap();
        let large = WorkloadModel::fit(&traces(80_000), &Param::core()).unwrap();
        let ratio = large.approx_size_bytes() as f64 / small.approx_size_bytes() as f64;
        assert!(ratio < 3.6, "model grew {ratio}x for 4x traces");
        // …while a lower-dimensional model saturates outright.
        let low = &Param::core()[..3];
        let small = WorkloadModel::fit(&traces(20_000), low).unwrap();
        let large = WorkloadModel::fit(&traces(80_000), low).unwrap();
        let ratio = large.approx_size_bytes() as f64 / small.approx_size_bytes() as f64;
        assert!(ratio < 1.6, "low-dim model grew {ratio}x for 4x traces");
    }
}
