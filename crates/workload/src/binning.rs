//! Equal-frequency binning of request parameters (Sec. III-B-1).
//!
//! For each parameter the generator divides the value range into at most 64
//! bins, "defined such that they all contain an approximately equal number
//! of requests"; when a parameter's cardinality is lower than the bin budget
//! every unique value becomes its own bin. True values are replaced by their
//! bin's representative value.

/// Default number of bins per parameter (the paper uses 64).
pub const DEFAULT_MAX_BINS: usize = 64;

/// Binning of one parameter: ascending cut points between bins plus a
/// representative value per bin.
#[derive(Debug, Clone, PartialEq)]
pub struct BinSpec {
    /// Upper-exclusive cut points between consecutive bins; `cuts.len() + 1`
    /// bins total. A value `v` lands in the first bin whose cut exceeds it.
    cuts: Vec<f64>,
    /// Representative value of each bin: the mean of the training values
    /// assigned to it (always inside the bin's interval).
    centers: Vec<f64>,
}

impl BinSpec {
    /// Fit an equal-frequency binning to a column. `max_bins ≥ 1`; the
    /// resulting bin count is `min(max_bins, #unique values)` (possibly
    /// fewer when quantile cut points collide on heavy ties).
    pub fn fit(values: &[f64], max_bins: usize) -> Self {
        assert!(max_bins >= 1, "need at least one bin");
        assert!(!values.is_empty(), "cannot bin an empty column");
        assert!(values.iter().all(|v| v.is_finite()), "column must be finite");

        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

        let mut unique = sorted.clone();
        unique.dedup();

        let cuts: Vec<f64> = if unique.len() <= max_bins {
            // Low-cardinality: one bin per unique value, cuts at midpoints.
            unique.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect()
        } else {
            // Equal-frequency quantile cuts, deduplicated.
            let n = sorted.len();
            let mut cuts = Vec::with_capacity(max_bins - 1);
            for k in 1..max_bins {
                let idx = (k * n) / max_bins;
                let cut = sorted[idx.min(n - 1)];
                if cuts.last().is_none_or(|&last| cut > last) {
                    cuts.push(cut);
                }
            }
            cuts
        };

        // Representative value per bin: mean of member values.
        let num_bins = cuts.len() + 1;
        let mut sums = vec![0.0f64; num_bins];
        let mut counts = vec![0u64; num_bins];
        for &v in &sorted {
            let b = Self::bin_for(&cuts, v);
            sums[b] += v;
            counts[b] += 1;
        }
        let mut centers: Vec<f64> = sums
            .iter()
            .zip(&counts)
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { f64::NAN })
            .collect();
        // Bins left empty by cut-point dedup still need a finite
        // representative (they are never sampled, but the spec must stay
        // serializable): use the midpoint of the surrounding cuts, falling
        // back to the nearest cut at the edges.
        for (b, center) in centers.iter_mut().enumerate() {
            if !center.is_finite() {
                *center = match (b.checked_sub(1).map(|i| cuts[i]), cuts.get(b)) {
                    (Some(lo), Some(&hi)) => 0.5 * (lo + hi),
                    (Some(lo), None) => lo,
                    (None, Some(&hi)) => hi,
                    (None, None) => 0.0,
                };
            }
        }

        Self { cuts, centers }
    }

    fn bin_for(cuts: &[f64], v: f64) -> usize {
        // First cut strictly greater than v; values above all cuts land in
        // the last bin.
        cuts.partition_point(|&c| c <= v)
    }

    /// Bin index of a value.
    pub fn bin_of(&self, v: f64) -> usize {
        Self::bin_for(&self.cuts, v)
    }

    /// Representative value of a bin.
    pub fn center(&self, bin: usize) -> f64 {
        self.centers[bin]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.centers.len()
    }

    /// Approximate serialized size of this spec, bytes (two `f64` per bin).
    pub fn approx_size_bytes(&self) -> usize {
        (self.cuts.len() + self.centers.len()) * std::mem::size_of::<f64>()
    }

    /// The cut points (for serialization).
    pub fn cuts(&self) -> &[f64] {
        &self.cuts
    }

    /// The representative values (for serialization).
    pub fn centers(&self) -> &[f64] {
        &self.centers
    }

    /// Rebuild a spec from serialized parts. `cuts` must be strictly
    /// ascending and one shorter than `centers`.
    pub fn from_parts(cuts: Vec<f64>, centers: Vec<f64>) -> Option<Self> {
        if centers.is_empty() || cuts.len() + 1 != centers.len() {
            return None;
        }
        if cuts.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        if cuts.iter().chain(centers.iter()).any(|v| !v.is_finite()) {
            return None;
        }
        Some(Self { cuts, centers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_cardinality_gets_one_bin_per_value() {
        let values = vec![1.0, 2.0, 2.0, 3.0, 1.0, 3.0, 3.0];
        let spec = BinSpec::fit(&values, 64);
        assert_eq!(spec.num_bins(), 3);
        assert_eq!(spec.bin_of(1.0), 0);
        assert_eq!(spec.bin_of(2.0), 1);
        assert_eq!(spec.bin_of(3.0), 2);
        // Centers are exactly the unique values.
        assert_eq!(spec.center(0), 1.0);
        assert_eq!(spec.center(1), 2.0);
        assert_eq!(spec.center(2), 3.0);
    }

    #[test]
    fn high_cardinality_uses_max_bins() {
        let values: Vec<f64> = (0..10_000).map(f64::from).collect();
        let spec = BinSpec::fit(&values, 64);
        assert_eq!(spec.num_bins(), 64);
    }

    #[test]
    fn equal_frequency_property() {
        let values: Vec<f64> = (0..6_400).map(f64::from).collect();
        let spec = BinSpec::fit(&values, 64);
        let mut counts = vec![0usize; spec.num_bins()];
        for &v in &values {
            counts[spec.bin_of(v)] += 1;
        }
        let expected = values.len() / spec.num_bins();
        for &c in &counts {
            assert!(
                c >= expected / 2 && c <= expected * 2,
                "bin count {c} far from expected {expected}"
            );
        }
    }

    #[test]
    fn heavy_ties_collapse_cuts_without_panicking() {
        // 90% of the mass on one value: quantile cuts collide.
        let mut values = vec![5.0; 9_000];
        values.extend((0..1_000).map(f64::from));
        let spec = BinSpec::fit(&values, 64);
        assert!(spec.num_bins() <= 64);
        assert!(spec.num_bins() >= 2);
        // Every training value maps to a bin with a finite center.
        for &v in &values {
            assert!(spec.center(spec.bin_of(v)).is_finite());
        }
    }

    #[test]
    fn centers_preserve_mean_approximately() {
        let values: Vec<f64> = (0..5_000).map(|i| f64::from(i % 997)).collect();
        let spec = BinSpec::fit(&values, 64);
        let true_mean = values.iter().sum::<f64>() / values.len() as f64;
        let binned_mean =
            values.iter().map(|&v| spec.center(spec.bin_of(v))).sum::<f64>() / values.len() as f64;
        assert!(
            (true_mean - binned_mean).abs() / true_mean < 0.02,
            "true {true_mean} binned {binned_mean}"
        );
    }

    #[test]
    fn out_of_range_values_land_in_edge_bins() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let spec = BinSpec::fit(&values, 10);
        assert_eq!(spec.bin_of(-100.0), 0);
        assert_eq!(spec.bin_of(1e9), spec.num_bins() - 1);
    }

    #[test]
    fn single_value_column() {
        let spec = BinSpec::fit(&[7.0; 50], 64);
        assert_eq!(spec.num_bins(), 1);
        assert_eq!(spec.center(0), 7.0);
        assert_eq!(spec.bin_of(7.0), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_column_panics() {
        let _ = BinSpec::fit(&[], 64);
    }

    #[test]
    fn size_estimate_is_small() {
        let values: Vec<f64> = (0..100_000).map(f64::from).collect();
        let spec = BinSpec::fit(&values, 64);
        assert!(spec.approx_size_bytes() < 4_096);
    }
}
