//! Synthetic text corpus for request payloads (Sec. III-B-2).
//!
//! The paper generates the input text of each request from "some designated
//! corpus of texts, truncated to match the number of input tokens indicated
//! by the request's parameters". This module provides a deterministic
//! corpus: prompts are built from a fixed vocabulary, seeded by a document
//! index, and truncated to an exact token count (one token per word).

/// Fixed vocabulary of the synthetic corpus.
const VOCAB: &[&str] = &[
    "the",
    "model",
    "server",
    "request",
    "token",
    "batch",
    "user",
    "latency",
    "memory",
    "cache",
    "decode",
    "prompt",
    "stream",
    "output",
    "input",
    "sample",
    "search",
    "layer",
    "weight",
    "tensor",
    "parallel",
    "cluster",
    "service",
    "deploy",
    "measure",
    "predict",
    "schedule",
    "queue",
    "compute",
    "bandwidth",
    "profile",
    "throughput",
];

/// Deterministic synthetic text corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    seed: u64,
}

impl Corpus {
    /// Corpus with a document-selection seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Produce a prompt of exactly `tokens` whitespace-separated tokens for
    /// document `doc`. Deterministic in `(seed, doc, tokens)`.
    pub fn prompt(&self, doc: u64, tokens: u32) -> String {
        assert!(tokens >= 1, "a prompt needs at least one token");
        // SplitMix64 over (seed, doc) picks the starting offset and stride.
        let mut x = self.seed ^ doc.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let start = (next() % VOCAB.len() as u64) as usize;
        let stride = 1 + (next() % (VOCAB.len() as u64 - 1)) as usize;
        let mut out = String::with_capacity(tokens as usize * 8);
        for i in 0..tokens as usize {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(VOCAB[(start + i * stride) % VOCAB.len()]);
        }
        out
    }

    /// Count the tokens of a prompt produced by this corpus.
    pub fn count_tokens(text: &str) -> u32 {
        text.split_whitespace().count() as u32
    }
}

impl Default for Corpus {
    fn default() -> Self {
        Self::new(0x5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompt_has_exact_token_count() {
        let c = Corpus::default();
        for tokens in [1u32, 2, 7, 64, 500, 4093] {
            let p = c.prompt(3, tokens);
            assert_eq!(Corpus::count_tokens(&p), tokens);
        }
    }

    #[test]
    fn prompts_are_deterministic() {
        let c = Corpus::new(9);
        assert_eq!(c.prompt(5, 20), c.prompt(5, 20));
    }

    #[test]
    fn different_documents_differ() {
        let c = Corpus::new(9);
        assert_ne!(c.prompt(1, 50), c.prompt(2, 50));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(Corpus::new(1).prompt(0, 50), Corpus::new(2).prompt(0, 50));
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_token_prompt_panics() {
        let _ = Corpus::default().prompt(0, 0);
    }
}
