#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # llmpilot-workload
//!
//! The paper's workload generator (Sec. III-B): a non-parametric joint
//! model of inference-request parameters. Parameters are equal-frequency
//! binned (≤64 bins each); the sparse histogram over multi-dimensional bins
//! preserves the strong inter-parameter correlations of production traffic;
//! sampling is O(1) per request via the alias method — much faster and
//! vastly smaller than resampling the raw traces.

pub mod binning;
pub mod corpus;
pub mod error;
pub mod model;
pub mod sampler;
pub mod serialize;

pub use binning::{BinSpec, DEFAULT_MAX_BINS};
pub use corpus::Corpus;
pub use error::WorkloadError;
pub use model::{GeneratedRequest, WorkloadModel};
pub use sampler::{AliasTable, IndependentSampler, TraceResampler, WorkloadSampler};
