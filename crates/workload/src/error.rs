//! Error types of the workload crate.

use std::fmt;

/// Errors produced when fitting, sampling or deserializing the workload
/// model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The trace collection was empty.
    EmptyTraces,
    /// No parameters were selected for modeling.
    NoParameters,
    /// Malformed serialized model.
    Parse(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::EmptyTraces => write!(f, "cannot fit a workload model to empty traces"),
            WorkloadError::NoParameters => {
                write!(f, "workload model needs at least one parameter")
            }
            WorkloadError::Parse(msg) => write!(f, "malformed workload model: {msg}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(WorkloadError::EmptyTraces.to_string().contains("empty"));
        assert!(WorkloadError::NoParameters.to_string().contains("parameter"));
    }
}
