//! Request sampling (Sec. III-B-2).
//!
//! Samples a multi-dimensional bin with probability proportional to its
//! occurrence count in the traces, then materializes a request from the bin
//! centers. Sampling is O(1) per draw via Walker's alias method — the
//! property behind the paper's 35× speedup over resampling raw traces.
//!
//! Also provided:
//!
//! * [`IndependentSampler`] — the ablation of Sec. V-A: samples every
//!   parameter from its *marginal* distribution independently, destroying
//!   the correlations while preserving each marginal exactly;
//! * [`TraceResampler`] — the baseline the paper compares against: draws
//!   whole historical requests uniformly from the trace collection.

use rand::Rng;

use llmpilot_traces::{Param, TraceDataset};

use crate::model::{GeneratedRequest, WorkloadModel};

/// Walker's alias table for O(1) weighted sampling.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights (at least one positive).
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0 && total.is_finite(), "weights must sum to a positive finite value");
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();

        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Residuals (floating-point slack) stay as certain draws.
        for &s in small.iter().chain(large.iter()) {
            prob[s as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Draw an index with probability proportional to its weight.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

/// The workload generator's sampler: draws requests from the joint model.
#[derive(Debug, Clone)]
pub struct WorkloadSampler {
    model: WorkloadModel,
    table: AliasTable,
}

impl WorkloadSampler {
    /// Build the sampler from a fitted model.
    pub fn new(model: WorkloadModel) -> Self {
        let weights: Vec<f64> = model.counts().iter().map(|&c| c as f64).collect();
        let table = AliasTable::new(&weights);
        Self { model, table }
    }

    /// The underlying model.
    pub fn model(&self) -> &WorkloadModel {
        &self.model
    }

    /// Draw one request from the joint distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> GeneratedRequest {
        let bin = self.table.sample(rng);
        self.model.request_from_bin(bin)
    }
}

/// Ablation sampler: draws every parameter independently from its marginal
/// histogram (Sec. V-A, "parameter correlation" experiment). Marginals match
/// the joint model exactly; the correlations do not.
#[derive(Debug, Clone)]
pub struct IndependentSampler {
    params: Vec<Param>,
    /// Per-parameter `(centers, alias table)`.
    marginals: Vec<(Vec<f64>, AliasTable)>,
}

impl IndependentSampler {
    /// Build from a fitted joint model.
    pub fn new(model: &WorkloadModel) -> Self {
        let params = model.params().to_vec();
        let marginals = params
            .iter()
            .map(|&p| {
                let hist = model.marginal_histogram(p).expect("param is modeled");
                let centers: Vec<f64> = hist.iter().map(|&(c, _)| c).collect();
                let weights: Vec<f64> = hist.iter().map(|&(_, m)| m).collect();
                (centers, AliasTable::new(&weights))
            })
            .collect();
        Self { params, marginals }
    }

    /// Draw one request with independently sampled parameters.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> GeneratedRequest {
        let values =
            self.marginals.iter().map(|(centers, table)| centers[table.sample(rng)]).collect();
        GeneratedRequest::new(self.params.clone(), values)
    }
}

/// Baseline sampler: draw whole historical requests uniformly from the raw
/// trace collection (what prior benchmarking tools do; slower and requires
/// keeping the full traces resident).
#[derive(Debug)]
pub struct TraceResampler<'a> {
    traces: &'a TraceDataset,
    params: Vec<Param>,
}

impl<'a> TraceResampler<'a> {
    /// Resample the given parameters from a trace collection.
    pub fn new(traces: &'a TraceDataset, params: &[Param]) -> Self {
        assert!(!traces.is_empty(), "cannot resample empty traces");
        Self { traces, params: params.to_vec() }
    }

    /// Draw one historical request.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> GeneratedRequest {
        let i = rng.random_range(0..self.traces.len());
        let record = &self.traces.records[i];
        let values = self.params.iter().map(|&p| p.value(record)).collect();
        GeneratedRequest::new(self.params.clone(), values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmpilot_traces::{spearman, TraceGenerator, TraceGeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn traces(n: usize) -> TraceDataset {
        TraceGenerator::new(TraceGeneratorConfig {
            num_requests: n,
            seed: 33,
            ..TraceGeneratorConfig::default()
        })
        .generate()
    }

    #[test]
    fn alias_table_matches_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = AliasTable::new(&[1.0, 2.0, 7.0]);
        let mut counts = [0usize; 3];
        for _ in 0..100_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / 100_000.0 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / 100_000.0 - 0.2).abs() < 0.01);
        assert!((counts[2] as f64 / 100_000.0 - 0.7).abs() < 0.01);
    }

    #[test]
    fn alias_table_single_category() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = AliasTable::new(&[5.0]);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_table_zero_weight_category_never_sampled() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = AliasTable::new(&[0.0, 1.0, 0.0]);
        for _ in 0..1_000 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn joint_sampler_reproduces_marginal_means() {
        let ds = traces(40_000);
        let model = WorkloadModel::fit(&ds, &Param::core()).unwrap();
        let sampler = WorkloadSampler::new(model);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 40_000;
        let mean_in_gen: f64 = (0..n)
            .map(|_| f64::from(sampler.sample(&mut rng).input_tokens().unwrap()))
            .sum::<f64>()
            / n as f64;
        let col = ds.column(Param::InputTokens);
        let mean_in_emp: f64 = col.iter().sum::<f64>() / col.len() as f64;
        let rel = (mean_in_gen - mean_in_emp).abs() / mean_in_emp;
        assert!(rel < 0.05, "generator mean {mean_in_gen} vs empirical {mean_in_emp}");
    }

    #[test]
    fn joint_sampler_preserves_correlation_independent_destroys_it() {
        let ds = traces(40_000);
        let model = WorkloadModel::fit(&ds, &Param::core()).unwrap();
        let joint = WorkloadSampler::new(model.clone());
        let indep = IndependentSampler::new(&model);
        let mut rng = StdRng::seed_from_u64(5);
        let draw = |f: &mut dyn FnMut(&mut StdRng) -> GeneratedRequest, rng: &mut StdRng| {
            let mut ins = Vec::new();
            let mut outs = Vec::new();
            for _ in 0..20_000 {
                let r = f(rng);
                ins.push(f64::from(r.input_tokens().unwrap()));
                outs.push(f64::from(r.output_tokens().unwrap()));
            }
            spearman(&ins, &outs)
        };
        let rho_joint = draw(&mut |rng| joint.sample(rng), &mut rng);
        let rho_indep = draw(&mut |rng| indep.sample(rng), &mut rng);
        let rho_emp = spearman(&ds.column(Param::InputTokens), &ds.column(Param::OutputTokens));
        assert!((rho_joint - rho_emp).abs() < 0.1, "joint rho {rho_joint} vs empirical {rho_emp}");
        assert!(rho_indep.abs() < 0.1, "independent rho {rho_indep}");
    }

    #[test]
    fn trace_resampler_returns_historical_values() {
        let ds = traces(1_000);
        let rs = TraceResampler::new(&ds, &Param::core());
        let mut rng = StdRng::seed_from_u64(6);
        let inputs: std::collections::HashSet<u64> =
            ds.records.iter().map(|r| u64::from(r.input_tokens)).collect();
        for _ in 0..200 {
            let r = rs.sample(&mut rng);
            assert!(inputs.contains(&u64::from(r.input_tokens().unwrap())));
        }
    }

    #[test]
    fn samplers_are_deterministic_given_seed() {
        let ds = traces(5_000);
        let model = WorkloadModel::fit(&ds, &Param::core()).unwrap();
        let sampler = WorkloadSampler::new(model);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut a), sampler.sample(&mut b));
        }
    }
}
