//! Plain-text serialization of the fitted workload model.
//!
//! The paper open-sources its workload generator so that others can
//! reproduce realistic load without access to the raw traces; this module
//! provides the equivalent: a fitted [`WorkloadModel`] round-trips through
//! a compact, line-oriented, versioned text format (and stays tiny — the
//! whole point of the binned representation).
//!
//! Format (`llmpilot-workload v1`):
//!
//! ```text
//! llmpilot-workload v1
//! params <d>
//! param <name>
//! cuts <c0> <c1> …          # one line per parameter, may be empty
//! centers <v0> <v1> …       # one line per parameter
//! entries <k>
//! e <bin0> … <bin(d-1)> <count>
//! ```

use llmpilot_traces::Param;

use crate::binning::BinSpec;
use crate::error::WorkloadError;
use crate::model::WorkloadModel;

impl WorkloadModel {
    /// Serialize the model to the versioned text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("llmpilot-workload v1\n");
        writeln!(out, "params {}", self.params().len()).expect("write to String");
        for (param, bins) in self.params().iter().zip(self.bins()) {
            writeln!(out, "param {}", param.name()).expect("write to String");
            out.push_str("cuts");
            for c in bins.cuts() {
                write!(out, " {c}").expect("write to String");
            }
            out.push('\n');
            out.push_str("centers");
            for c in bins.centers() {
                write!(out, " {c}").expect("write to String");
            }
            out.push('\n');
        }
        writeln!(out, "entries {}", self.num_nonempty_bins()).expect("write to String");
        let d = self.params().len();
        for i in 0..self.num_nonempty_bins() {
            out.push('e');
            for j in 0..d {
                write!(out, " {}", self.bin_key(i, j)).expect("write to String");
            }
            writeln!(out, " {}", self.counts()[i]).expect("write to String");
        }
        out
    }

    /// Parse a model from the text format produced by [`Self::to_text`].
    pub fn from_text(text: &str) -> Result<Self, WorkloadError> {
        let mut lines = text.lines();
        let parse = |msg: &str| WorkloadError::Parse(msg.to_string());

        if lines.next() != Some("llmpilot-workload v1") {
            return Err(parse("bad or missing header"));
        }
        let d: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("params "))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse("bad params line"))?;
        if d == 0 {
            return Err(WorkloadError::NoParameters);
        }

        let mut params = Vec::with_capacity(d);
        let mut bins = Vec::with_capacity(d);
        for _ in 0..d {
            let name = lines
                .next()
                .and_then(|l| l.strip_prefix("param "))
                .ok_or_else(|| parse("missing param line"))?;
            let param = Param::from_name(name).ok_or_else(|| parse("unknown parameter name"))?;
            let cuts = parse_f64_list(lines.next(), "cuts").map_err(WorkloadError::Parse)?;
            let centers = parse_f64_list(lines.next(), "centers").map_err(WorkloadError::Parse)?;
            let spec =
                BinSpec::from_parts(cuts, centers).ok_or_else(|| parse("inconsistent bin spec"))?;
            params.push(param);
            bins.push(spec);
        }

        let k: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("entries "))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse("bad entries line"))?;
        let mut keys = Vec::with_capacity(k * d);
        let mut counts = Vec::with_capacity(k);
        for _ in 0..k {
            let line = lines.next().ok_or_else(|| parse("missing entry line"))?;
            let mut fields = line
                .strip_prefix("e ")
                .ok_or_else(|| parse("malformed entry line"))?
                .split_ascii_whitespace();
            for dim_bins in bins.iter().take(d) {
                let bin: u16 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse("bad bin index"))?;
                if usize::from(bin) >= dim_bins.num_bins() {
                    return Err(parse("bin index out of range"));
                }
                keys.push(bin);
            }
            let count: u64 =
                fields.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse("bad count"))?;
            if count == 0 || fields.next().is_some() {
                return Err(parse("malformed entry line"));
            }
            counts.push(count);
        }
        if counts.is_empty() {
            return Err(WorkloadError::EmptyTraces);
        }
        Ok(WorkloadModel::from_parts(params, bins, keys, counts))
    }
}

fn parse_f64_list(line: Option<&str>, prefix: &str) -> Result<Vec<f64>, String> {
    let line = line.ok_or_else(|| format!("missing {prefix} line"))?;
    let rest = line.strip_prefix(prefix).ok_or_else(|| format!("malformed {prefix} line"))?;
    rest.split_ascii_whitespace()
        .map(|s| s.parse::<f64>().map_err(|_| format!("bad float in {prefix}: {s:?}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::WorkloadSampler;
    use llmpilot_traces::{TraceGenerator, TraceGeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> WorkloadModel {
        let traces = TraceGenerator::new(TraceGeneratorConfig {
            num_requests: 10_000,
            seed: 61,
            ..TraceGeneratorConfig::default()
        })
        .generate();
        WorkloadModel::fit(&traces, &Param::core()).unwrap()
    }

    #[test]
    fn text_round_trip_is_exact() {
        let original = model();
        let text = original.to_text();
        let parsed = WorkloadModel::from_text(&text).unwrap();
        assert_eq!(parsed.params(), original.params());
        assert_eq!(parsed.counts(), original.counts());
        assert_eq!(parsed.num_nonempty_bins(), original.num_nonempty_bins());
        for i in 0..original.num_nonempty_bins() {
            assert_eq!(parsed.bin_values(i), original.bin_values(i));
        }
        // And re-serializing is byte-identical (canonical form).
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn round_tripped_model_samples_identically() {
        let original = model();
        let restored = WorkloadModel::from_text(&original.to_text()).unwrap();
        let a = WorkloadSampler::new(original);
        let b = WorkloadSampler::new(restored);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        for _ in 0..500 {
            assert_eq!(a.sample(&mut r1), b.sample(&mut r2));
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(WorkloadModel::from_text("").is_err());
        assert!(WorkloadModel::from_text("wrong header\n").is_err());
        let valid = model().to_text();
        // Truncation.
        let half = &valid[..valid.len() / 2];
        assert!(WorkloadModel::from_text(half).is_err());
        // Corrupt a count.
        let corrupted = valid.replace("llmpilot-workload v1", "llmpilot-workload v2");
        assert!(WorkloadModel::from_text(&corrupted).is_err());
    }

    #[test]
    fn serialized_size_stays_small() {
        let m = model();
        let text = m.to_text();
        assert!(text.len() < 4 * 1024 * 1024, "serialized {} bytes", text.len());
    }
}
