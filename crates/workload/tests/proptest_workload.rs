//! Property-based invariants of binning, the joint model and the samplers.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use llmpilot_workload::{AliasTable, BinSpec, WorkloadModel, WorkloadSampler};

use llmpilot_traces::{Param, TraceGenerator, TraceGeneratorConfig};

proptest! {
    /// Every training value maps to a valid bin whose representative lies
    /// within the observed value range.
    #[test]
    fn binning_is_total_and_centers_in_range(
        values in prop::collection::vec(-1e6f64..1e6, 1..300),
        max_bins in 1usize..100
    ) {
        let spec = BinSpec::fit(&values, max_bins);
        prop_assert!(spec.num_bins() >= 1);
        prop_assert!(spec.num_bins() <= max_bins.max(1));
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &v in &values {
            let b = spec.bin_of(v);
            prop_assert!(b < spec.num_bins());
            let c = spec.center(b);
            prop_assert!(c >= lo - 1e-9 && c <= hi + 1e-9, "center {c} outside [{lo}, {hi}]");
        }
    }

    /// Binning is monotone: larger values never land in smaller bins.
    #[test]
    fn binning_is_monotone(
        mut values in prop::collection::vec(-1e3f64..1e3, 2..200),
        max_bins in 2usize..64
    ) {
        let spec = BinSpec::fit(&values, max_bins);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0usize;
        for &v in &values {
            let b = spec.bin_of(v);
            prop_assert!(b >= last);
            last = b;
        }
    }

    /// The alias table never emits a zero-weight category and always emits
    /// valid indices.
    #[test]
    fn alias_table_support_is_exact(
        weights in prop::collection::vec(0.0f64..10.0, 1..50),
        seed in 0u64..1000
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..500 {
            let i = table.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight category {i}");
        }
    }
}

#[test]
fn model_total_count_matches_traces_and_samples_hit_nonempty_bins() {
    let traces = TraceGenerator::new(TraceGeneratorConfig {
        num_requests: 8_000,
        seed: 5,
        ..TraceGeneratorConfig::default()
    })
    .generate();
    let model = WorkloadModel::fit(&traces, &Param::core()).unwrap();
    assert_eq!(model.total_count(), 8_000);

    // Every sampled request equals the values of some non-empty bin.
    let all_bins: std::collections::HashSet<String> =
        (0..model.num_nonempty_bins()).map(|i| format!("{:?}", model.bin_values(i))).collect();
    let sampler = WorkloadSampler::new(model);
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..2_000 {
        let req = sampler.sample(&mut rng);
        let values: Vec<f64> = req.entries().map(|(_, v)| v).collect();
        assert!(all_bins.contains(&format!("{values:?}")));
    }
}
