#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Structured tracing and metrics for the LLM-Pilot reproduction.
//!
//! The build environment is fully offline, so this crate implements a
//! minimal `tracing`-like substrate on `std` alone:
//!
//! * [`Recorder`] — a lock-light event sink. Each thread that opens a span
//!   registers a private buffer once (one uncontended mutex per thread);
//!   parent links come from a thread-local span stack, so nesting needs no
//!   shared state at all. [`Recorder::disabled`] is a true no-op: opening a
//!   span does not even read the clock.
//! * [`Span`] — an RAII guard. The span is recorded when the guard drops;
//!   typed arguments ([`ArgValue`]) attach via [`Span::arg`].
//! * [`Counter`] / [`Recorder::counter_add`] / [`Recorder::gauge_set`] —
//!   atomic counters and gauges, exported as Chrome `"C"` events.
//! * [`chrome`] — Chrome `trace_event` JSON export (loadable in
//!   `chrome://tracing` and Perfetto), [`summary`] — a plain-text
//!   hierarchical profile, [`json`] — a tiny JSON parser plus the shared
//!   [`json::JsonWriter`] emitter, and [`check`] — the structural
//!   validators behind the `trace-check` binary.
//! * [`hist`] — a log-linear HDR histogram (lock-free `AtomicU64`
//!   buckets, ≤1% relative quantile error at the default resolution),
//!   the single histogram type across the workspace.
//! * [`events`] — a versioned JSONL telemetry stream ([`events::EventSink`])
//!   plus the `llm-pilot watch` progress renderer.
//! * [`flight`] — a bounded ring-buffer flight recorder (built on
//!   [`Recorder::ring`]) for post-mortem dumps of failed sweep cells.
//!
//! Worker pools are safe by construction: `rayon`-style workers each
//! register their own buffer on first use, and [`Recorder::snapshot`]
//! merges all buffers into one time-ordered [`Trace`].

pub mod check;
pub mod chrome;
pub mod events;
pub mod flight;
pub mod hist;
pub mod json;
pub mod summary;

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// A typed span/counter argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One completed span, as recorded when its guard dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (e.g. `"engine.step"`).
    pub name: Cow<'static, str>,
    /// Unique span id within the recorder (never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Logical thread id (dense, assigned in registration order).
    pub tid: u64,
    /// Begin timestamp, nanoseconds since the recorder was created.
    pub begin_ns: u64,
    /// End timestamp, nanoseconds since the recorder was created.
    pub end_ns: u64,
    /// Typed key/value arguments attached via [`Span::arg`].
    pub args: Vec<(Cow<'static, str>, ArgValue)>,
}

impl SpanEvent {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.begin_ns)
    }
}

/// A merged, time-ordered view of everything a [`Recorder`] captured.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All completed spans, sorted by `(begin_ns, id)`.
    pub events: Vec<SpanEvent>,
    /// Final counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Final gauge values, sorted by name.
    pub gauges: Vec<(String, i64)>,
}

impl Trace {
    /// Whether the trace holds no spans, counters, or gauges.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.counters.is_empty() && self.gauges.is_empty()
    }
}

#[derive(Debug)]
struct ThreadBuf {
    tid: u64,
    events: Mutex<VecDeque<SpanEvent>>,
}

#[derive(Debug)]
struct Inner {
    /// Globally unique recorder id; keys the thread-local registry.
    id: u64,
    start: Instant,
    next_span: AtomicU64,
    next_tid: AtomicU64,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    spans_recorded: AtomicU64,
    /// `Some(n)`: each thread buffer keeps only the most recent `n`
    /// completed spans (ring-buffer mode, used by [`flight`]).
    per_thread_capacity: Option<usize>,
}

struct LocalState {
    buf: Arc<ThreadBuf>,
    stack: Vec<u64>,
}

thread_local! {
    /// Per-thread state, keyed by recorder id: this thread's event buffer
    /// and its stack of open span ids (the parent chain).
    static LOCAL: RefCell<HashMap<u64, LocalState>> = RefCell::new(HashMap::new());
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

impl Inner {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Register the calling thread: allocate a dense tid and a buffer.
    fn register_thread(&self) -> LocalState {
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        let buf = Arc::new(ThreadBuf { tid, events: Mutex::new(VecDeque::new()) });
        self.threads.lock().unwrap_or_else(PoisonError::into_inner).push(Arc::clone(&buf));
        LocalState { buf, stack: Vec::new() }
    }

    fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(cell) = map.get(name) {
            return Arc::clone(cell);
        }
        let cell = Arc::new(AtomicU64::new(0));
        map.insert(name.to_string(), Arc::clone(&cell));
        cell
    }

    fn gauge_cell(&self, name: &str) -> Arc<AtomicI64> {
        let mut map = self.gauges.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(cell) = map.get(name) {
            return Arc::clone(cell);
        }
        let cell = Arc::new(AtomicI64::new(0));
        map.insert(name.to_string(), Arc::clone(&cell));
        cell
    }
}

/// A lock-light structured trace recorder.
///
/// Cloning is cheap (an `Arc`); all clones feed the same trace. The
/// [`Recorder::disabled`] recorder never touches the clock or any shared
/// state — instrumented hot loops cost a branch on `Option`.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder that captures spans, counters, and gauges.
    pub fn enabled() -> Self {
        Recorder::build(None)
    }

    /// A bounded recorder: each thread's buffer keeps only the most
    /// recent `capacity` completed spans, older spans are evicted FIFO.
    /// This is the storage behind [`flight::FlightRecorder`]; counters
    /// and gauges are unaffected by the bound.
    pub fn ring(capacity: usize) -> Self {
        Recorder::build(Some(capacity.max(1)))
    }

    fn build(per_thread_capacity: Option<usize>) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                start: Instant::now(),
                next_span: AtomicU64::new(1),
                next_tid: AtomicU64::new(1),
                threads: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                spans_recorded: AtomicU64::new(0),
                per_thread_capacity,
            })),
        }
    }

    /// The no-op recorder. Spans, counters, and gauges all short-circuit;
    /// opening a span does not read the clock.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether this recorder captures anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span. The span is recorded when the returned guard drops;
    /// spans opened while the guard is live (on the same thread) become its
    /// children.
    #[must_use = "a span is recorded when its guard drops; binding to _ drops it immediately"]
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> Span {
        let Some(inner) = &self.inner else {
            return Span { state: None };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let begin_ns = inner.now_ns();
        let parent = LOCAL.with(|local| {
            let mut map = local.borrow_mut();
            let state = map.entry(inner.id).or_insert_with(|| inner.register_thread());
            let parent = state.stack.last().copied();
            state.stack.push(id);
            parent
        });
        Span {
            state: Some(SpanState {
                inner: Arc::clone(inner),
                name: name.into(),
                id,
                parent,
                begin_ns,
                args: Vec::new(),
            }),
        }
    }

    /// A reusable handle to a named counter (no map lookup per add).
    pub fn counter(&self, name: &str) -> Counter {
        Counter { cell: self.inner.as_ref().map(|inner| inner.counter_cell(name)) }
    }

    /// Add `delta` to the named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.counter_cell(name).fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Set the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: i64) {
        if let Some(inner) = &self.inner {
            inner.gauge_cell(name).store(value, Ordering::Relaxed);
        }
    }

    /// Number of spans recorded so far (completed guards).
    pub fn spans_recorded(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.spans_recorded.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Merge every thread's buffer into one time-ordered [`Trace`].
    ///
    /// Non-destructive: buffers keep their events, so a long-lived service
    /// can snapshot periodically. Spans whose guards are still open are not
    /// included.
    pub fn snapshot(&self) -> Trace {
        let Some(inner) = &self.inner else {
            return Trace::default();
        };
        let mut events = Vec::new();
        let bufs: Vec<Arc<ThreadBuf>> =
            inner.threads.lock().unwrap_or_else(PoisonError::into_inner).clone();
        for buf in bufs {
            events
                .extend(buf.events.lock().unwrap_or_else(PoisonError::into_inner).iter().cloned());
        }
        events.sort_by_key(|e| (e.begin_ns, e.id));
        let counters = inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        Trace { events, counters, gauges }
    }
}

struct SpanState {
    inner: Arc<Inner>,
    name: Cow<'static, str>,
    id: u64,
    parent: Option<u64>,
    begin_ns: u64,
    args: Vec<(Cow<'static, str>, ArgValue)>,
}

/// RAII guard for an open span; records the span when dropped.
#[must_use = "a span is recorded when its guard drops; binding to _ drops it immediately"]
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// Attach a typed argument (no-op on a disabled recorder's span).
    pub fn arg(mut self, key: impl Into<Cow<'static, str>>, value: impl Into<ArgValue>) -> Self {
        if let Some(state) = &mut self.state {
            state.args.push((key.into(), value.into()));
        }
        self
    }

    /// Attach a typed argument through a mutable reference.
    pub fn set_arg(&mut self, key: impl Into<Cow<'static, str>>, value: impl Into<ArgValue>) {
        if let Some(state) = &mut self.state {
            state.args.push((key.into(), value.into()));
        }
    }

    /// The span id, if recording (useful as an external correlation id).
    pub fn id(&self) -> Option<u64> {
        self.state.as_ref().map(|s| s.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else { return };
        let end_ns = state.inner.now_ns();
        let event = SpanEvent {
            name: state.name,
            id: state.id,
            parent: state.parent,
            tid: 0, // patched below from the thread buffer
            begin_ns: state.begin_ns,
            end_ns,
            args: state.args,
        };
        LOCAL.with(|local| {
            let mut map = local.borrow_mut();
            let thread_state =
                map.entry(state.inner.id).or_insert_with(|| state.inner.register_thread());
            // Guards normally drop LIFO; tolerate out-of-order drops by
            // removing this id wherever it sits in the stack.
            if let Some(pos) = thread_state.stack.iter().rposition(|&id| id == state.id) {
                thread_state.stack.remove(pos);
            }
            let mut event = event;
            event.tid = thread_state.buf.tid;
            let mut events = thread_state.buf.events.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(cap) = state.inner.per_thread_capacity {
                while events.len() >= cap {
                    events.pop_front();
                }
            }
            events.push_back(event);
        });
        state.inner.spans_recorded.fetch_add(1, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.state {
            Some(s) => write!(f, "Span({} #{})", s.name, s.id),
            None => write!(f, "Span(disabled)"),
        }
    }
}

/// A cached handle to one named counter of a [`Recorder`].
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Add `delta` to the counter (no-op for a disabled recorder).
    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current counter value (0 for a disabled recorder).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        {
            let _root = rec.span("root").arg("k", 1u64);
            rec.counter_add("c", 5);
            rec.gauge_set("g", -2);
        }
        assert!(!rec.is_enabled());
        assert_eq!(rec.spans_recorded(), 0);
        assert!(rec.snapshot().is_empty());
    }

    #[test]
    fn spans_nest_via_thread_local_stack() {
        let rec = Recorder::enabled();
        {
            let _a = rec.span("a");
            {
                let _b = rec.span("b");
                let _c = rec.span("c");
            }
            let _d = rec.span("d");
        }
        let trace = rec.snapshot();
        assert_eq!(trace.events.len(), 4);
        let by_name: HashMap<&str, &SpanEvent> =
            trace.events.iter().map(|e| (e.name.as_ref(), e)).collect();
        let a = by_name["a"];
        assert_eq!(a.parent, None);
        assert_eq!(by_name["b"].parent, Some(a.id));
        assert_eq!(by_name["c"].parent, Some(by_name["b"].id));
        assert_eq!(by_name["d"].parent, Some(a.id));
        for e in &trace.events {
            assert!(e.end_ns >= e.begin_ns);
        }
        // Children begin no earlier than their parent and end no later.
        assert!(by_name["b"].begin_ns >= a.begin_ns);
        assert!(by_name["b"].end_ns <= a.end_ns);
    }

    #[test]
    fn out_of_order_drop_does_not_corrupt_the_stack() {
        let rec = Recorder::enabled();
        let a = rec.span("a");
        let b = rec.span("b");
        drop(a); // non-LIFO: a dropped while b still open
        let c = rec.span("c");
        drop(c);
        drop(b);
        let trace = rec.snapshot();
        let by_name: HashMap<&str, &SpanEvent> =
            trace.events.iter().map(|e| (e.name.as_ref(), e)).collect();
        // c opened while b was the top of the stack.
        assert_eq!(by_name["c"].parent, Some(by_name["b"].id));
        assert_eq!(by_name["b"].parent, Some(by_name["a"].id));
    }

    #[test]
    fn counters_and_gauges_snapshot() {
        let rec = Recorder::enabled();
        let c = rec.counter("steps");
        c.add(3);
        c.add(4);
        rec.counter_add("steps", 1);
        rec.gauge_set("depth", 7);
        rec.gauge_set("depth", -1);
        let trace = rec.snapshot();
        assert_eq!(trace.counters, vec![("steps".to_string(), 8)]);
        assert_eq!(trace.gauges, vec![("depth".to_string(), -1)]);
        assert_eq!(c.get(), 8);
    }

    #[test]
    fn threads_merge_into_one_trace() {
        let rec = Recorder::enabled();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let rec = rec.clone();
            handles.push(std::thread::spawn(move || {
                let _outer = rec.span("worker").arg("t", t);
                let _inner = rec.span("inner");
                rec.counter_add("work", 1);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let trace = rec.snapshot();
        assert_eq!(trace.events.len(), 8);
        assert_eq!(trace.counters, vec![("work".to_string(), 4)]);
        // Each worker's inner span is parented to that worker's own span.
        for e in trace.events.iter().filter(|e| e.name == "inner") {
            let parent = trace.events.iter().find(|p| Some(p.id) == e.parent).unwrap();
            assert_eq!(parent.name, "worker");
            assert_eq!(parent.tid, e.tid);
        }
        // Distinct threads got distinct tids.
        let tids: std::collections::BTreeSet<u64> = trace.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn ring_recorder_keeps_only_the_most_recent_spans() {
        let rec = Recorder::ring(3);
        for i in 0..10u64 {
            let _s = rec.span("s").arg("i", i);
        }
        let trace = rec.snapshot();
        assert_eq!(trace.events.len(), 3);
        let kept: Vec<u64> = trace
            .events
            .iter()
            .map(|e| match &e.args[0].1 {
                ArgValue::U64(v) => *v,
                other => panic!("unexpected arg {other:?}"),
            })
            .collect();
        assert_eq!(kept, vec![7, 8, 9], "eviction must be FIFO");
        // All ten drops were still counted.
        assert_eq!(rec.spans_recorded(), 10);
    }

    #[test]
    fn snapshot_is_time_ordered_and_non_destructive() {
        let rec = Recorder::enabled();
        for i in 0..10u64 {
            let _s = rec.span("s").arg("i", i);
        }
        let first = rec.snapshot();
        let second = rec.snapshot();
        assert_eq!(first, second);
        assert!(first.events.windows(2).all(|w| w[0].begin_ns <= w[1].begin_ns));
        assert_eq!(rec.spans_recorded(), 10);
    }
}
