//! A minimal recursive-descent JSON parser.
//!
//! The offline build has no `serde`; the trace checker and the round-trip
//! tests only need to *read back* the JSON this crate emits, so a small
//! strict parser (UTF-8 input, `f64` numbers, `\uXXXX` escapes incl.
//! surrogate pairs) is enough.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` — duplicate keys keep the last value.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = text.parse().map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number {text:?} at byte {start}"));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low surrogate.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err("lone high surrogate".to_string());
                            }
                            let lo = parse_hex4(bytes, *pos + 3)?;
                            *pos += 6;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".to_string());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| "invalid unicode escape".to_string())?,
                        );
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err(format!("raw control byte {b:#04x} in string")),
            Some(_) => {
                // Copy a maximal run of plain bytes in one go. The stop
                // bytes ('"', '\\', and controls) are all ASCII and can
                // never occur inside a multi-byte UTF-8 scalar, and the
                // input came from a `&str`, so the run is valid UTF-8.
                let start = *pos;
                while *pos < bytes.len()
                    && bytes[*pos] != b'"'
                    && bytes[*pos] != b'\\'
                    && bytes[*pos] >= 0x20
                {
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(run);
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let slice = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    let text = std::str::from_utf8(slice).map_err(|e| e.to_string())?;
    u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape {text:?}"))
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

/// Escape `text` as the body of a JSON string literal (no quotes added).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An incremental JSON document writer: the single escaping/formatting
/// path shared by the Chrome-trace exporter, the JSONL telemetry stream,
/// the flight recorder, and the serve daemon's HTTP responses.
///
/// Commas are inserted automatically; the caller supplies structure:
///
/// ```
/// use llmpilot_obs::json::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("name");
/// w.string("A100");
/// w.key("pods");
/// w.u64(3);
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"name":"A100","pods":3}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: whether a comma is due before the
    /// next key/value at that level.
    needs_comma: Vec<bool>,
    /// A key was just written; the next value completes the pair.
    after_key: bool,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// A writer with a pre-reserved output buffer.
    pub fn with_capacity(bytes: usize) -> Self {
        JsonWriter { out: String::with_capacity(bytes), ..JsonWriter::default() }
    }

    fn before_item(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(due) = self.needs_comma.last_mut() {
            if std::mem::replace(due, true) {
                self.out.push(',');
            }
        }
    }

    /// Open an object (`{`).
    pub fn begin_object(&mut self) {
        self.before_item();
        self.out.push('{');
        self.needs_comma.push(false);
    }

    /// Close the innermost object (`}`).
    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.out.push('}');
    }

    /// Open an array (`[`).
    pub fn begin_array(&mut self) {
        self.before_item();
        self.out.push('[');
        self.needs_comma.push(false);
    }

    /// Close the innermost array (`]`).
    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.out.push(']');
    }

    /// Write an object key (escaped); the next value completes the pair.
    pub fn key(&mut self, key: &str) {
        self.before_item();
        self.out.push('"');
        self.out.push_str(&escape(key));
        self.out.push_str("\":");
        self.after_key = true;
    }

    /// Write a string value (escaped and quoted).
    pub fn string(&mut self, value: &str) {
        self.before_item();
        self.out.push('"');
        self.out.push_str(&escape(value));
        self.out.push('"');
    }

    /// Write an unsigned integer value.
    pub fn u64(&mut self, value: u64) {
        self.before_item();
        self.out.push_str(&value.to_string());
    }

    /// Write a signed integer value.
    pub fn i64(&mut self, value: i64) {
        self.before_item();
        self.out.push_str(&value.to_string());
    }

    /// Write a float value. Integral floats gain a `.0` so they read back
    /// as numbers; JSON has no NaN/Inf, so non-finite values are emitted
    /// as their string form to keep the document valid.
    pub fn f64(&mut self, value: f64) {
        if !value.is_finite() {
            self.string(&value.to_string());
            return;
        }
        self.before_item();
        let mut s = format!("{value}");
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        self.out.push_str(&s);
    }

    /// Write a boolean value.
    pub fn bool(&mut self, value: bool) {
        self.before_item();
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Write `null`.
    pub fn null(&mut self) {
        self.before_item();
        self.out.push_str("null");
    }

    /// Write a pre-rendered JSON value verbatim (escape hatch for exact
    /// decimal timestamps the `f64` path would round).
    pub fn raw(&mut self, rendered: &str) {
        self.before_item();
        self.out.push_str(rendered);
    }

    /// Insert a raw newline into the output (cosmetic only; legal JSON
    /// whitespace between values).
    pub fn newline(&mut self) {
        self.out.push('\n');
    }

    /// Finish and return the document text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = r#"{"a": [1, -2.5, 1e3], "b": {"t": true, "n": null}, "s": "x\ny"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_f64(), Some(1.0));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(-2.5));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(1000.0));
        assert_eq!(v.get("b").unwrap().get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("n"), Some(&Json::Null));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn escape_round_trips() {
        for original in ["plain", "quo\"te", "back\\slash", "new\nline", "tab\t", "µs → ns"] {
            let doc = format!("\"{}\"", escape(original));
            assert_eq!(parse(&doc).unwrap().as_str(), Some(original), "doc = {doc}");
        }
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""µs""#).unwrap().as_str(), Some("µs"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated", "[1]]"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn as_u64_guards_range_and_fraction() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn writer_output_parses_back() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("items");
        w.begin_array();
        w.u64(1);
        w.string("two\n");
        w.f64(3.0);
        w.bool(false);
        w.null();
        w.begin_object();
        w.key("nested");
        w.i64(-4);
        w.end_object();
        w.end_array();
        w.key("raw");
        w.raw("12.345");
        w.end_object();
        let doc = w.finish();
        let v = parse(&doc).unwrap();
        let items = v.get("items").unwrap().as_array().unwrap();
        assert_eq!(items.len(), 6);
        assert_eq!(items[1].as_str(), Some("two\n"));
        assert_eq!(items[2].as_f64(), Some(3.0));
        assert_eq!(items[5].get("nested").unwrap().as_f64(), Some(-4.0));
        assert_eq!(v.get("raw").unwrap().as_f64(), Some(12.345));
    }

    #[test]
    fn writer_handles_empty_containers_and_nonfinite_floats() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("empty_arr");
        w.begin_array();
        w.end_array();
        w.key("empty_obj");
        w.begin_object();
        w.end_object();
        w.key("nan");
        w.f64(f64::NAN);
        w.end_object();
        let doc = w.finish();
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("empty_arr").unwrap().as_array().unwrap().len(), 0);
        assert_eq!(v.get("nan").unwrap().as_str(), Some("NaN"));
    }
}
