//! Structural validation of Chrome `trace_event` documents.
//!
//! Shared by the `trace-check` binary (CI smoke gate) and the round-trip
//! property tests. A document passes when it parses as JSON, every
//! complete (`"X"`) event carries the required fields, begin/end intervals
//! are strictly nested per thread, and every recorded `parent` id refers
//! to an existing span that actually encloses the child.

use std::collections::{BTreeSet, HashMap};

use crate::json::{parse, Json};

/// Interval-comparison slack in microseconds; covers `f64` addition
/// rounding on values that were exact decimals in the document.
const EPS_US: f64 = 0.002;

/// What a successful validation saw.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckStats {
    /// Number of complete (`"ph":"X"`) span events.
    pub span_events: usize,
    /// Number of distinct thread ids among span events.
    pub threads: usize,
    /// Number of counter (`"ph":"C"`) events.
    pub counter_events: usize,
    /// Deepest parent-chain length observed.
    pub max_depth: usize,
}

struct SpanRow {
    name: String,
    id: u64,
    parent: Option<u64>,
    tid: u64,
    ts: f64,
    end: f64,
}

fn field_f64(event: &Json, key: &str, idx: usize) -> Result<f64, String> {
    event
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("event #{idx}: missing or non-numeric {key:?}"))
}

fn span_row(event: &Json, idx: usize) -> Result<SpanRow, String> {
    let name = event
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("event #{idx}: missing or non-string \"name\""))?
        .to_string();
    let ts = field_f64(event, "ts", idx)?;
    let dur = field_f64(event, "dur", idx)?;
    if ts < 0.0 || dur < 0.0 {
        return Err(format!("event #{idx} ({name}): negative ts or dur"));
    }
    field_f64(event, "pid", idx)?;
    let tid = event
        .get("tid")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("event #{idx} ({name}): missing or non-integer \"tid\""))?;
    let args =
        event.get("args").ok_or_else(|| format!("event #{idx} ({name}): missing \"args\""))?;
    let id = args
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("event #{idx} ({name}): missing args.id"))?;
    let parent = match args.get("parent") {
        None | Some(Json::Null) => None,
        Some(p) => Some(
            p.as_u64().ok_or_else(|| format!("event #{idx} ({name}): non-integer args.parent"))?,
        ),
    };
    Ok(SpanRow { name, id, parent, tid, ts, end: ts + dur })
}

/// Validate `document` (a Chrome trace JSON string). `required_spans`
/// lists span names that must each occur at least once.
pub fn check_chrome_trace(document: &str, required_spans: &[&str]) -> Result<CheckStats, String> {
    let root = parse(document).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("top level must be an object with a \"traceEvents\" array")?;

    let mut spans = Vec::new();
    let mut counter_events = 0usize;
    for (idx, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event #{idx}: missing or non-string \"ph\""))?;
        match ph {
            "X" => spans.push(span_row(event, idx)?),
            "C" => counter_events += 1,
            "M" => {}
            other => return Err(format!("event #{idx}: unsupported phase {other:?}")),
        }
    }

    // Unique ids; parent links resolve and enclose.
    let mut by_id: HashMap<u64, usize> = HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        if by_id.insert(s.id, i).is_some() {
            return Err(format!("duplicate span id {}", s.id));
        }
    }
    for s in &spans {
        if let Some(pid) = s.parent {
            let Some(&pi) = by_id.get(&pid) else {
                return Err(format!("span {} ({}) has orphan parent {pid}", s.id, s.name));
            };
            let p = &spans[pi];
            if p.tid != s.tid {
                return Err(format!(
                    "span {} ({}) on tid {} has parent {} on tid {}",
                    s.id, s.name, s.tid, pid, p.tid
                ));
            }
            if s.ts + EPS_US < p.ts || s.end > p.end + EPS_US {
                return Err(format!(
                    "span {} ({}) [{:.3}, {:.3}] escapes parent {} [{:.3}, {:.3}]",
                    s.id, s.name, s.ts, s.end, pid, p.ts, p.end
                ));
            }
        }
    }

    // Per-thread strict nesting: no two spans on one thread may partially
    // overlap. Sweep in (ts, -dur) order with a stack of open intervals.
    let tids: BTreeSet<u64> = spans.iter().map(|s| s.tid).collect();
    for &tid in &tids {
        let mut rows: Vec<&SpanRow> = spans.iter().filter(|s| s.tid == tid).collect();
        rows.sort_by(|a, b| {
            a.ts.total_cmp(&b.ts).then(b.end.total_cmp(&a.end)).then(a.id.cmp(&b.id))
        });
        let mut open: Vec<f64> = Vec::new();
        for row in rows {
            while let Some(&top_end) = open.last() {
                if top_end <= row.ts + EPS_US {
                    open.pop();
                } else {
                    break;
                }
            }
            if let Some(&top_end) = open.last() {
                if row.end > top_end + EPS_US {
                    return Err(format!(
                        "span {} ({}) [{:.3}, {:.3}] on tid {tid} partially overlaps an \
                         enclosing span ending at {top_end:.3}",
                        row.id, row.name, row.ts, row.end
                    ));
                }
            }
            open.push(row.end);
        }
    }

    // Depth of each parent chain (also proves the links are acyclic,
    // since ids are unique and chains are bounded by the span count).
    let mut max_depth = 0usize;
    for s in &spans {
        let mut depth = 1usize;
        let mut cursor = s.parent;
        while let Some(pid) = cursor {
            depth += 1;
            if depth > spans.len() {
                return Err(format!("parent cycle reached from span {}", s.id));
            }
            cursor = spans[by_id[&pid]].parent;
        }
        max_depth = max_depth.max(depth);
    }

    for required in required_spans {
        if !spans.iter().any(|s| s.name == *required) {
            return Err(format!("required span {required:?} not found in trace"));
        }
    }

    Ok(CheckStats { span_events: spans.len(), threads: tids.len(), counter_events, max_depth })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::to_chrome_json;
    use crate::Recorder;

    #[test]
    fn real_recorder_output_passes() {
        let rec = Recorder::enabled();
        {
            let _a = rec.span("sweep.cell").arg("llm", "x");
            let _b = rec.span("tuner.ramp");
        }
        rec.counter_add("probes", 3);
        let doc = to_chrome_json(&rec.snapshot());
        let stats = check_chrome_trace(&doc, &["sweep.cell", "tuner.ramp"]).unwrap();
        assert_eq!(stats.span_events, 2);
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.counter_events, 1);
        assert_eq!(stats.max_depth, 2);
    }

    #[test]
    fn missing_required_span_fails() {
        let rec = Recorder::enabled();
        {
            let _a = rec.span("a");
        }
        let doc = to_chrome_json(&rec.snapshot());
        let err = check_chrome_trace(&doc, &["sweep.cell"]).unwrap_err();
        assert!(err.contains("sweep.cell"), "{err}");
    }

    #[test]
    fn orphan_parent_fails() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":5,"pid":1,"tid":1,"args":{"id":1,"parent":99}}
        ]}"#;
        let err = check_chrome_trace(doc, &[]).unwrap_err();
        assert!(err.contains("orphan parent"), "{err}");
    }

    #[test]
    fn partial_overlap_fails() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1,"args":{"id":1}},
            {"name":"b","ph":"X","ts":5,"dur":10,"pid":1,"tid":1,"args":{"id":2}}
        ]}"#;
        let err = check_chrome_trace(doc, &[]).unwrap_err();
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn child_escaping_parent_fails() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1,"args":{"id":1}},
            {"name":"b","ph":"X","ts":8,"dur":10,"pid":1,"tid":1,"args":{"id":2,"parent":1}}
        ]}"#;
        let err = check_chrome_trace(doc, &[]).unwrap_err();
        assert!(err.contains("escapes parent") || err.contains("overlap"), "{err}");
    }

    #[test]
    fn duplicate_ids_fail() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"id":1}},
            {"name":"b","ph":"X","ts":2,"dur":1,"pid":1,"tid":1,"args":{"id":1}}
        ]}"#;
        assert!(check_chrome_trace(doc, &[]).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn invalid_json_fails() {
        assert!(check_chrome_trace("{not json", &[]).is_err());
        assert!(check_chrome_trace("[]", &[]).is_err());
    }

    #[test]
    fn siblings_touching_at_a_boundary_pass() {
        let doc = r#"{"traceEvents":[
            {"name":"p","ph":"X","ts":0,"dur":10,"pid":1,"tid":1,"args":{"id":1}},
            {"name":"a","ph":"X","ts":0,"dur":5,"pid":1,"tid":1,"args":{"id":2,"parent":1}},
            {"name":"b","ph":"X","ts":5,"dur":5,"pid":1,"tid":1,"args":{"id":3,"parent":1}}
        ]}"#;
        let stats = check_chrome_trace(doc, &["p", "a", "b"]).unwrap();
        assert_eq!(stats.max_depth, 2);
    }
}
