//! Structural validation of Chrome `trace_event` documents and JSONL
//! telemetry event streams.
//!
//! Shared by the `trace-check` binary (CI smoke gate) and the round-trip
//! property tests. A trace document passes when it parses as JSON, every
//! complete (`"X"`) event carries the required fields, begin/end intervals
//! are strictly nested per thread, and every recorded `parent` id refers
//! to an existing span that actually encloses the child.
//! [`check_events`] is the mirror-image validator for the
//! [`crate::events`] JSONL stream.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::events::{required_fields, SCHEMA_VERSION};
use crate::json::{parse, Json};

/// Interval-comparison slack in microseconds; covers `f64` addition
/// rounding on values that were exact decimals in the document.
const EPS_US: f64 = 0.002;

/// What a successful validation saw.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckStats {
    /// Number of complete (`"ph":"X"`) span events.
    pub span_events: usize,
    /// Number of distinct thread ids among span events.
    pub threads: usize,
    /// Number of counter (`"ph":"C"`) events.
    pub counter_events: usize,
    /// Deepest parent-chain length observed.
    pub max_depth: usize,
}

struct SpanRow {
    name: String,
    id: u64,
    parent: Option<u64>,
    tid: u64,
    ts: f64,
    end: f64,
}

fn field_f64(event: &Json, key: &str, idx: usize) -> Result<f64, String> {
    event
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("event #{idx}: missing or non-numeric {key:?}"))
}

fn span_row(event: &Json, idx: usize) -> Result<SpanRow, String> {
    let name = event
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("event #{idx}: missing or non-string \"name\""))?
        .to_string();
    let ts = field_f64(event, "ts", idx)?;
    let dur = field_f64(event, "dur", idx)?;
    if ts < 0.0 || dur < 0.0 {
        return Err(format!("event #{idx} ({name}): negative ts or dur"));
    }
    field_f64(event, "pid", idx)?;
    let tid = event
        .get("tid")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("event #{idx} ({name}): missing or non-integer \"tid\""))?;
    let args =
        event.get("args").ok_or_else(|| format!("event #{idx} ({name}): missing \"args\""))?;
    let id = args
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("event #{idx} ({name}): missing args.id"))?;
    let parent = match args.get("parent") {
        None | Some(Json::Null) => None,
        Some(p) => Some(
            p.as_u64().ok_or_else(|| format!("event #{idx} ({name}): non-integer args.parent"))?,
        ),
    };
    Ok(SpanRow { name, id, parent, tid, ts, end: ts + dur })
}

/// Validate `document` (a Chrome trace JSON string). `required_spans`
/// lists span names that must each occur at least once.
pub fn check_chrome_trace(document: &str, required_spans: &[&str]) -> Result<CheckStats, String> {
    check_chrome_trace_full(document, required_spans, &[])
}

/// Like [`check_chrome_trace`], additionally requiring each name in
/// `required_counters` to occur as a counter (`"C"`) event. On a
/// requirement failure the error lists *every* missing span and counter,
/// so the CI log says exactly what to go look for.
pub fn check_chrome_trace_full(
    document: &str,
    required_spans: &[&str],
    required_counters: &[&str],
) -> Result<CheckStats, String> {
    let root = parse(document).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("top level must be an object with a \"traceEvents\" array")?;

    let mut spans = Vec::new();
    let mut counter_events = 0usize;
    let mut counter_names: BTreeSet<String> = BTreeSet::new();
    for (idx, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event #{idx}: missing or non-string \"ph\""))?;
        match ph {
            "X" => spans.push(span_row(event, idx)?),
            "C" => {
                counter_events += 1;
                if let Some(name) = event.get("name").and_then(Json::as_str) {
                    counter_names.insert(name.to_string());
                }
            }
            "M" => {}
            other => return Err(format!("event #{idx}: unsupported phase {other:?}")),
        }
    }

    // Unique ids; parent links resolve and enclose.
    let mut by_id: HashMap<u64, usize> = HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        if by_id.insert(s.id, i).is_some() {
            return Err(format!("duplicate span id {}", s.id));
        }
    }
    for s in &spans {
        if let Some(pid) = s.parent {
            let Some(&pi) = by_id.get(&pid) else {
                return Err(format!("span {} ({}) has orphan parent {pid}", s.id, s.name));
            };
            let p = &spans[pi];
            if p.tid != s.tid {
                return Err(format!(
                    "span {} ({}) on tid {} has parent {} on tid {}",
                    s.id, s.name, s.tid, pid, p.tid
                ));
            }
            if s.ts + EPS_US < p.ts || s.end > p.end + EPS_US {
                return Err(format!(
                    "span {} ({}) [{:.3}, {:.3}] escapes parent {} [{:.3}, {:.3}]",
                    s.id, s.name, s.ts, s.end, pid, p.ts, p.end
                ));
            }
        }
    }

    // Per-thread strict nesting: no two spans on one thread may partially
    // overlap. Sweep in (ts, -dur) order with a stack of open intervals.
    let tids: BTreeSet<u64> = spans.iter().map(|s| s.tid).collect();
    for &tid in &tids {
        let mut rows: Vec<&SpanRow> = spans.iter().filter(|s| s.tid == tid).collect();
        rows.sort_by(|a, b| {
            a.ts.total_cmp(&b.ts).then(b.end.total_cmp(&a.end)).then(a.id.cmp(&b.id))
        });
        let mut open: Vec<f64> = Vec::new();
        for row in rows {
            while let Some(&top_end) = open.last() {
                if top_end <= row.ts + EPS_US {
                    open.pop();
                } else {
                    break;
                }
            }
            if let Some(&top_end) = open.last() {
                if row.end > top_end + EPS_US {
                    return Err(format!(
                        "span {} ({}) [{:.3}, {:.3}] on tid {tid} partially overlaps an \
                         enclosing span ending at {top_end:.3}",
                        row.id, row.name, row.ts, row.end
                    ));
                }
            }
            open.push(row.end);
        }
    }

    // Depth of each parent chain (also proves the links are acyclic,
    // since ids are unique and chains are bounded by the span count).
    let mut max_depth = 0usize;
    for s in &spans {
        let mut depth = 1usize;
        let mut cursor = s.parent;
        while let Some(pid) = cursor {
            depth += 1;
            if depth > spans.len() {
                return Err(format!("parent cycle reached from span {}", s.id));
            }
            cursor = spans[by_id[&pid]].parent;
        }
        max_depth = max_depth.max(depth);
    }

    // Requirement failures list everything that is missing at once, so a
    // single CI run tells the whole story.
    let span_names: BTreeSet<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    let missing_spans: Vec<&str> =
        required_spans.iter().copied().filter(|name| !span_names.contains(name)).collect();
    let missing_counters: Vec<&str> =
        required_counters.iter().copied().filter(|name| !counter_names.contains(*name)).collect();
    if !missing_spans.is_empty() || !missing_counters.is_empty() {
        let mut parts = Vec::new();
        if !missing_spans.is_empty() {
            parts.push(format!("required span(s) not found: {missing_spans:?}"));
        }
        if !missing_counters.is_empty() {
            parts.push(format!("required counter(s) not found: {missing_counters:?}"));
        }
        return Err(format!(
            "{} (trace has {} span name(s), {} counter name(s))",
            parts.join("; "),
            span_names.len(),
            counter_names.len()
        ));
    }

    Ok(CheckStats { span_events: spans.len(), threads: tids.len(), counter_events, max_depth })
}

/// What a successful [`check_events`] validation saw.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventsStats {
    /// Number of well-formed event lines.
    pub events: usize,
    /// Event counts per event type.
    pub types: BTreeMap<String, usize>,
    /// Whether the final line was unparseable (a torn tail from an
    /// interrupted writer — tolerated, like the sweep journal's).
    pub truncated_tail: bool,
    /// The last `completeness_pct` value seen, if any.
    pub completeness_pct: Option<f64>,
    /// Whether a `sweep.finished` event was seen.
    pub finished: bool,
}

/// Validate a JSONL telemetry stream (see [`crate::events`]).
///
/// Every line must parse as a JSON object with a valid envelope — a `v`
/// no newer than [`SCHEMA_VERSION`], a well-formed `event` name, and a
/// monotone non-decreasing non-negative `ts_ms` — and known event types
/// must carry their required fields. Unknown event types only need the
/// envelope (forward compatibility). A single unparseable *final* line is
/// tolerated as a torn tail and reported in
/// [`EventsStats::truncated_tail`]; garbage anywhere else is an error
/// naming the 1-based line number.
pub fn check_events(document: &str) -> Result<EventsStats, String> {
    let mut stats = EventsStats::default();
    let lines: Vec<(usize, &str)> = document
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty())
        .collect();
    let mut last_ts = f64::NEG_INFINITY;
    for (pos, &(line_no, line)) in lines.iter().enumerate() {
        let is_last = pos + 1 == lines.len();
        let value = match parse(line) {
            Ok(v) => v,
            Err(e) => {
                if is_last {
                    stats.truncated_tail = true;
                    break;
                }
                return Err(format!("line {line_no}: invalid JSON: {e}"));
            }
        };
        if !matches!(value, Json::Obj(_)) {
            if is_last {
                stats.truncated_tail = true;
                break;
            }
            return Err(format!("line {line_no}: event must be a JSON object"));
        }
        let v = value
            .get("v")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {line_no}: missing or non-integer \"v\""))?;
        if v == 0 || v > SCHEMA_VERSION {
            return Err(format!(
                "line {line_no}: unsupported schema version {v} (this reader understands <= {SCHEMA_VERSION})"
            ));
        }
        let event = value
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {line_no}: missing or non-string \"event\""))?;
        if event.is_empty()
            || !event
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ".-_".contains(c))
        {
            return Err(format!("line {line_no}: malformed event name {event:?}"));
        }
        let ts = value
            .get("ts_ms")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("line {line_no}: missing or non-numeric \"ts_ms\""))?;
        if ts < 0.0 {
            return Err(format!("line {line_no}: negative ts_ms {ts}"));
        }
        if ts < last_ts {
            return Err(format!("line {line_no}: ts_ms went backwards ({ts} after {last_ts})"));
        }
        last_ts = ts;
        if let Some(required) = required_fields(event) {
            let missing: Vec<&str> =
                required.iter().copied().filter(|f| value.get(f).is_none()).collect();
            if !missing.is_empty() {
                return Err(format!(
                    "line {line_no}: {event:?} missing required field(s): {missing:?}"
                ));
            }
        }
        if let Some(c) = value.get("completeness_pct").and_then(Json::as_f64) {
            stats.completeness_pct = Some(c);
        }
        if event == "sweep.finished" {
            stats.finished = true;
        }
        stats.events += 1;
        *stats.types.entry(event.to_string()).or_insert(0) += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::to_chrome_json;
    use crate::Recorder;

    #[test]
    fn real_recorder_output_passes() {
        let rec = Recorder::enabled();
        {
            let _a = rec.span("sweep.cell").arg("llm", "x");
            let _b = rec.span("tuner.ramp");
        }
        rec.counter_add("probes", 3);
        let doc = to_chrome_json(&rec.snapshot());
        let stats = check_chrome_trace(&doc, &["sweep.cell", "tuner.ramp"]).unwrap();
        assert_eq!(stats.span_events, 2);
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.counter_events, 1);
        assert_eq!(stats.max_depth, 2);
    }

    #[test]
    fn missing_required_span_fails() {
        let rec = Recorder::enabled();
        {
            let _a = rec.span("a");
        }
        let doc = to_chrome_json(&rec.snapshot());
        let err = check_chrome_trace(&doc, &["sweep.cell"]).unwrap_err();
        assert!(err.contains("sweep.cell"), "{err}");
    }

    #[test]
    fn orphan_parent_fails() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":5,"pid":1,"tid":1,"args":{"id":1,"parent":99}}
        ]}"#;
        let err = check_chrome_trace(doc, &[]).unwrap_err();
        assert!(err.contains("orphan parent"), "{err}");
    }

    #[test]
    fn partial_overlap_fails() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1,"args":{"id":1}},
            {"name":"b","ph":"X","ts":5,"dur":10,"pid":1,"tid":1,"args":{"id":2}}
        ]}"#;
        let err = check_chrome_trace(doc, &[]).unwrap_err();
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn child_escaping_parent_fails() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1,"args":{"id":1}},
            {"name":"b","ph":"X","ts":8,"dur":10,"pid":1,"tid":1,"args":{"id":2,"parent":1}}
        ]}"#;
        let err = check_chrome_trace(doc, &[]).unwrap_err();
        assert!(err.contains("escapes parent") || err.contains("overlap"), "{err}");
    }

    #[test]
    fn duplicate_ids_fail() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"id":1}},
            {"name":"b","ph":"X","ts":2,"dur":1,"pid":1,"tid":1,"args":{"id":1}}
        ]}"#;
        assert!(check_chrome_trace(doc, &[]).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn invalid_json_fails() {
        assert!(check_chrome_trace("{not json", &[]).is_err());
        assert!(check_chrome_trace("[]", &[]).is_err());
    }

    #[test]
    fn missing_names_are_all_listed() {
        let rec = Recorder::enabled();
        {
            let _a = rec.span("present.span");
        }
        rec.counter_add("present.counter", 1);
        let doc = to_chrome_json(&rec.snapshot());
        let err = check_chrome_trace_full(
            &doc,
            &["present.span", "ghost.one", "ghost.two"],
            &["present.counter", "ghost.counter"],
        )
        .unwrap_err();
        assert!(err.contains("ghost.one") && err.contains("ghost.two"), "{err}");
        assert!(err.contains("ghost.counter"), "{err}");
        assert!(!err.contains("\"present.span\""), "{err}");
        check_chrome_trace_full(&doc, &["present.span"], &["present.counter"]).unwrap();
    }

    #[test]
    fn check_events_accepts_a_real_stream() {
        use crate::events::EventSink;
        let (sink, buf) = EventSink::to_buffer();
        sink.sweep_started(2, 0, 3);
        sink.cell_started("m", "p", 2);
        sink.cell_attempt("m", "p", 1, 3);
        sink.cell_finished("m", "p", "measured", 1, 1, 2, 0.0, None, None);
        sink.sweep_finished(2, 2, 2, 0, 0, 0.5);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let stats = check_events(&text).unwrap();
        assert_eq!(stats.events, 5);
        assert!(stats.finished);
        assert!(!stats.truncated_tail);
        assert_eq!(stats.completeness_pct, Some(100.0));
        assert_eq!(stats.types["cell.attempt"], 1);
    }

    #[test]
    fn check_events_tolerates_torn_tail_but_not_midstream_garbage() {
        use crate::events::EventSink;
        let (sink, buf) = EventSink::to_buffer();
        sink.sweep_started(1, 0, 1);
        let mut text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let good = text.clone();
        text.push_str("{\"v\":1,\"ts_ms\":9,\"event\":\"cell.sta"); // torn
        let stats = check_events(&text).unwrap();
        assert!(stats.truncated_tail);
        assert_eq!(stats.events, 1);
        // The same garbage mid-stream is fatal, with the line number.
        let bad = String::from("{torn\n") + &good;
        let err = check_events(&bad).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn check_events_rejects_bad_envelopes() {
        // Future schema version.
        let e1 = format!(
            "{{\"v\":{},\"ts_ms\":1,\"event\":\"x\"}}\n{{}}",
            crate::events::SCHEMA_VERSION + 1
        );
        assert!(check_events(&e1).unwrap_err().contains("schema version"));
        // Backwards timestamps.
        let e2 = "{\"v\":1,\"ts_ms\":5,\"event\":\"a\"}\n\
                  {\"v\":1,\"ts_ms\":4,\"event\":\"b\"}\n\
                  {\"v\":1,\"ts_ms\":6,\"event\":\"c\"}";
        assert!(check_events(e2).unwrap_err().contains("backwards"));
        // Known type missing required fields.
        let e3 = "{\"v\":1,\"ts_ms\":1,\"event\":\"sweep.started\"}\n\
                  {\"v\":1,\"ts_ms\":2,\"event\":\"x\"}";
        let err = check_events(e3).unwrap_err();
        assert!(err.contains("grid_cells"), "{err}");
        // Unknown event types need only the envelope.
        let e4 = "{\"v\":1,\"ts_ms\":1,\"event\":\"custom.thing\",\"whatever\":true}";
        assert_eq!(check_events(e4).unwrap().events, 1);
        // Empty stream is fine.
        assert_eq!(check_events("").unwrap().events, 0);
    }

    #[test]
    fn siblings_touching_at_a_boundary_pass() {
        let doc = r#"{"traceEvents":[
            {"name":"p","ph":"X","ts":0,"dur":10,"pid":1,"tid":1,"args":{"id":1}},
            {"name":"a","ph":"X","ts":0,"dur":5,"pid":1,"tid":1,"args":{"id":2,"parent":1}},
            {"name":"b","ph":"X","ts":5,"dur":5,"pid":1,"tid":1,"args":{"id":3,"parent":1}}
        ]}"#;
        let stats = check_chrome_trace(doc, &["p", "a", "b"]).unwrap();
        assert_eq!(stats.max_depth, 2);
    }
}
