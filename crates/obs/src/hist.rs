//! Log-linear HDR histogram with lock-free recording.
//!
//! The layout follows the classic HdrHistogram design: values are grouped
//! into exponent "buckets", each split into `2^k` linear sub-buckets, so
//! every recorded value lands in a slot whose width is at most
//! `value / 2^(k-1)`. With the default two significant digits
//! (`k = 8`, 256 sub-buckets) the midpoint of any slot is within
//! `1/256 ≈ 0.4%` of every value the slot can hold, which keeps
//! [`Histogram::quantile`] within the advertised ≤1% relative error of the
//! exact nearest-rank answer on the underlying samples.
//!
//! Recording is a single `fetch_add` on an `AtomicU64` slot (plus atomic
//! count/sum/min/max bookkeeping), so one histogram can be shared across a
//! `rayon` pool with no locks. [`Histogram::merge`] adds another
//! histogram's slots in, which is exactly equivalent to having recorded
//! the union of both sample sets.
//!
//! Values are plain `u64`s; callers decide the unit. Throughout this
//! repository latencies are recorded in **nanoseconds** (virtual or wall),
//! via [`Histogram::record_secs`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Significant decimal digits supported; clamped by [`Histogram::new`].
pub const MIN_SIGFIGS: u8 = 1;
/// Upper bound on significant digits (5 → 2^18 sub-buckets, 16 MiB).
pub const MAX_SIGFIGS: u8 = 5;

/// A log-linear HDR histogram of `u64` values covering the full `u64`
/// range, with lock-free `AtomicU64` slots.
#[derive(Debug)]
pub struct Histogram {
    sigfigs: u8,
    /// `2^k` sub-buckets per exponent group.
    sub_bucket_count: u64,
    sub_bucket_half_count: u64,
    /// `k`: log2 of `sub_bucket_count`.
    sub_bucket_shift: u32,
    /// `k - 1`: log2 of `sub_bucket_half_count`.
    sub_bucket_half_shift: u32,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    /// Saturating sum of raw recorded values (for the exact mean).
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A plain-data summary of a histogram, cheap to clone and compare.
///
/// All value fields carry the same unit the samples were recorded in
/// (nanoseconds everywhere in this repository).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Exact arithmetic mean of the recorded values (0.0 when empty).
    pub mean: f64,
    /// Median (q = 0.50).
    pub p50: u64,
    /// q = 0.90.
    pub p90: u64,
    /// q = 0.95.
    pub p95: u64,
    /// q = 0.99.
    pub p99: u64,
    /// q = 0.999.
    pub p999: u64,
}

impl Histogram {
    /// A histogram with `sigfigs` significant decimal digits of value
    /// resolution (clamped to `1..=5`). Two digits give ≤1% (in fact
    /// ≤0.4%) relative quantile error in ~58 KiB.
    pub fn new(sigfigs: u8) -> Self {
        let sigfigs = sigfigs.clamp(MIN_SIGFIGS, MAX_SIGFIGS);
        // Smallest power of two with at least 2 * 10^sigfigs sub-buckets.
        let needed = 2 * 10u64.pow(u32::from(sigfigs));
        let sub_bucket_count = needed.next_power_of_two();
        let sub_bucket_shift = sub_bucket_count.trailing_zeros();
        // Exponent groups needed so that the last group's top reaches
        // u64::MAX: group i covers values below sub_bucket_count << i.
        let bucket_count = (64 - sub_bucket_shift) as u64 + 1;
        let slots = ((bucket_count + 1) * (sub_bucket_count / 2)) as usize;
        Histogram {
            sigfigs,
            sub_bucket_count,
            sub_bucket_half_count: sub_bucket_count / 2,
            sub_bucket_shift,
            sub_bucket_half_shift: sub_bucket_shift - 1,
            counts: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The configured significant digits.
    pub fn sigfigs(&self) -> u8 {
        self.sigfigs
    }

    /// Slot index for `value` (always in range: the layout covers `u64`).
    fn index_for(&self, value: u64) -> usize {
        // Exponent group: position of the highest set bit beyond the
        // linear range. Values below `sub_bucket_count` map to group 0.
        let pow2 = 64 - (value | (self.sub_bucket_count - 1)).leading_zeros();
        let bucket = pow2 - self.sub_bucket_shift;
        let sub = value >> bucket; // in [half, count) for bucket > 0
        let base = (u64::from(bucket) + 1) << self.sub_bucket_half_shift;
        (base + sub - self.sub_bucket_half_count) as usize
    }

    /// Lowest value that maps to slot `index`, and the slot's width.
    fn slot_bounds(&self, index: usize) -> (u64, u64) {
        let index = index as u64;
        let mut bucket = (index >> self.sub_bucket_half_shift) as i64 - 1;
        let mut sub = (index & (self.sub_bucket_half_count - 1)) + self.sub_bucket_half_count;
        if bucket < 0 {
            bucket = 0;
            sub -= self.sub_bucket_half_count;
        }
        let lowest = sub << bucket;
        let width = 1u64 << bucket;
        (lowest, width)
    }

    /// Record one sample. Lock-free; safe to call from any thread.
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` occurrences of `value`.
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[self.index_for(value)].fetch_add(n, Ordering::Relaxed);
        self.total.fetch_add(n, Ordering::Relaxed);
        let add = value.saturating_mul(n);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| Some(s.saturating_add(add)));
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration given in seconds as integer nanoseconds.
    /// Non-finite or negative inputs are ignored.
    pub fn record_secs(&self, seconds: f64) {
        if seconds.is_finite() && seconds >= 0.0 {
            self.record((seconds * 1e9).round().min(u64::MAX as f64) as u64);
        }
    }

    /// Add every sample of `other` into `self`. Exactly equivalent to
    /// having recorded the union of both sample sets.
    ///
    /// Both histograms must have the same `sigfigs` (same layout).
    pub fn merge(&self, other: &Histogram) {
        assert_eq!(self.sigfigs, other.sigfigs, "merging histograms of different resolution");
        for (slot, theirs) in self.counts.iter().zip(&other.counts) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.total.fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        let add = other.sum.load(Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| Some(s.saturating_add(add)));
        self.min.fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Exact arithmetic mean of the recorded values (0.0 when empty).
    /// The internal sum saturates at `u64::MAX`.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.is_empty() {
            0
        } else {
            m
        }
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0, 1]`, within the configured
    /// relative error of the exact nearest-rank answer (`q` is clamped).
    ///
    /// `quantile(0.0)` and `quantile(1.0)` return the exact recorded
    /// min/max. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the ceil(q*n)-th smallest sample, 1-based.
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        // The extremes are tracked exactly.
        if rank == 1 {
            return self.min();
        }
        if rank == n {
            return self.max();
        }
        let mut seen = 0u64;
        for (i, slot) in self.counts.iter().enumerate() {
            let c = slot.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                let (lowest, width) = self.slot_bounds(i);
                // Midpoint halves the worst-case error; clamp into the
                // observed range so q=0/q=1 are exact.
                let mid = lowest.saturating_add(width / 2);
                return mid.clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// A plain-data summary snapshot (count, min/max, mean, tail
    /// quantiles). Cheap enough to take per cell.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }

    /// Count of samples recorded at values indistinguishable from or
    /// below `value` (i.e. in slots no higher than `value`'s slot).
    ///
    /// Used to render cumulative Prometheus buckets; off by at most the
    /// slot resolution (≤1% of `value` at two significant digits).
    pub fn count_le(&self, value: u64) -> u64 {
        let hi = self.index_for(value);
        self.counts[..=hi].iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The non-empty slots as `(lowest_equivalent_value, count)` pairs in
    /// ascending value order. Exposes the exact internal state for tests
    /// and compact serialization.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                if n == 0 {
                    None
                } else {
                    Some((self.slot_bounds(i).0, n))
                }
            })
            .collect()
    }
}

impl Default for Histogram {
    /// Two significant digits: ≤1% relative quantile error in ~58 KiB.
    fn default() -> Self {
        Histogram::new(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    }

    fn assert_within_1pct(got: u64, want: u64, what: &str) {
        let err = (got as f64 - want as f64).abs();
        let tol = (want as f64 * 0.01).max(1.0);
        assert!(err <= tol, "{what}: got {got}, want {want} (err {err:.1} > tol {tol:.1})");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::default();
        for v in 0..200u64 {
            h.record(v);
        }
        // Everything below sub_bucket_count lands in a width-1 slot, so
        // quantiles are exact: nearest rank ceil(0.5 * 200) = 100 → 99.
        assert_eq!(h.quantile(0.5), 99);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 199);
        assert_eq!(h.count(), 200);
        assert_eq!(h.mean(), (0..200u64).sum::<u64>() as f64 / 200.0);
    }

    #[test]
    fn quantiles_track_exact_reference_within_one_percent() {
        let h = Histogram::default();
        // Log-uniform-ish spread over nine decades.
        let mut v = 1u64;
        let mut samples = Vec::new();
        for i in 0..50_000u64 {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let s = (v >> (i % 40)) % 1_000_000_000 + 1;
            samples.push(s);
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
            assert_within_1pct(h.quantile(q), exact_nearest_rank(&samples, q), &format!("q={q}"));
        }
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::default();
        let b = Histogram::default();
        let union = Histogram::default();
        for i in 0..1000u64 {
            let v = i * i * 37 + 5;
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), union.count());
        assert_eq!(a.min(), union.min());
        assert_eq!(a.max(), union.max());
        assert_eq!(a.nonzero_buckets(), union.nonzero_buckets());
        assert_eq!(a.summary(), union.summary());
    }

    #[test]
    fn count_le_is_cumulative_and_monotone() {
        let h = Histogram::default();
        for v in [50_000u64, 400_000, 2_000_000] {
            h.record(v);
        }
        assert_eq!(h.count_le(100_000), 1);
        assert_eq!(h.count_le(500_000), 2);
        assert_eq!(h.count_le(u64::MAX), 3);
        assert_eq!(h.count_le(10), 0);
        // Exact boundary: a recorded value counts as ≤ itself.
        assert!(h.count_le(50_000) >= 1);
    }

    #[test]
    fn record_secs_converts_and_filters() {
        let h = Histogram::default();
        h.record_secs(0.001); // 1 ms
        h.record_secs(f64::NAN);
        h.record_secs(-1.0);
        assert_eq!(h.count(), 1);
        assert_within_1pct(h.quantile(0.5), 1_000_000, "1ms in ns");
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let h = Histogram::new(3);
        h.record(u64::MAX);
        h.record(0);
        h.record(1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
        // Sum saturates instead of wrapping.
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::default());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = std::sync::Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.record(t * 1_000_000 + i);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn sigfigs_controls_resolution() {
        for sf in [1u8, 2, 3] {
            let h = Histogram::new(sf);
            assert_eq!(h.sigfigs(), sf);
            h.record(123_456_789);
            let q = h.quantile(0.5) as f64;
            let tol = 123_456_789.0 * 10f64.powi(-i32::from(sf));
            assert!((q - 123_456_789.0).abs() <= tol, "sigfigs {sf}: {q}");
        }
    }
}
