//! Bounded ring-buffer flight recorder for crash forensics.
//!
//! PR 1's fault injection makes sweep cells fail on purpose; PR 3's span
//! trace is only written at clean shutdown, so until now the evidence of
//! *why* a cell failed died with the run. A [`FlightRecorder`] is a
//! [`Recorder`](crate::Recorder) in ring-buffer mode
//! ([`Recorder::ring`](crate::Recorder::ring)): every thread keeps only
//! its most recent `capacity` completed spans, so memory stays bounded no
//! matter how long a cell runs, and the *latest* spans — the ones leading
//! up to the failure — are always retained.
//!
//! `SweepDriver` arms one flight recorder per cell and dumps it to
//! `<journal-dir>/flight-<cell>.json` (a Chrome `trace_event` document
//! that `trace-check` accepts) when:
//!
//! 1. the cell exhausts its retry budget and escalates to
//!    `CellStatus::Failed`, or
//! 2. a panic unwinds through the sweep — [`install_panic_hook`] chains a
//!    process-wide hook that dumps whatever recorder the panicking thread
//!    had [`arm`]ed.
//!
//! Because eviction can drop a retained span's parent (or the parent may
//! still be open at dump time), [`FlightRecorder::dump_chrome_json`]
//! detaches dangling parent links so the dump always validates.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, Once, OnceLock, PoisonError};
use std::thread::ThreadId;

use crate::chrome::to_chrome_json;
use crate::{Recorder, Trace};

/// Default per-thread span capacity for a cell's flight ring.
pub const DEFAULT_CAPACITY: usize = 4096;

/// A bounded recorder whose snapshot is always a small, valid
/// Chrome-trace document of the most recent activity.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    recorder: Recorder,
    capacity: usize,
}

impl FlightRecorder {
    /// A flight recorder retaining the most recent `capacity` spans per
    /// thread.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder { recorder: Recorder::ring(capacity), capacity }
    }

    /// The underlying recorder; hand clones of this to instrumented code.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The configured per-thread span capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot the ring with dangling parent links detached (eviction or
    /// still-open parents would otherwise leave orphans).
    pub fn sanitized_trace(&self) -> Trace {
        let mut trace = self.recorder.snapshot();
        let ids: HashSet<u64> = trace.events.iter().map(|e| e.id).collect();
        for event in &mut trace.events {
            if let Some(parent) = event.parent {
                if !ids.contains(&parent) {
                    event.parent = None;
                }
            }
        }
        trace
    }

    /// Render the ring as a Chrome `trace_event` JSON document that
    /// [`crate::check::check_chrome_trace`] accepts.
    pub fn dump_chrome_json(&self) -> String {
        to_chrome_json(&self.sanitized_trace())
    }

    /// Write the dump to `path` (parent directories are created).
    pub fn dump_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.dump_chrome_json())
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

/// The flight dump file name for one sweep cell: `flight-<llm>-<profile>.json`
/// with path-hostile characters replaced by `_`.
pub fn dump_file_name(llm: &str, profile: &str) -> String {
    let sanitize = |s: &str| -> String {
        s.chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
            .collect()
    };
    format!("flight-{}-{}.json", sanitize(llm), sanitize(profile))
}

struct ArmedEntry {
    flight: FlightRecorder,
    dump_path: PathBuf,
}

fn armed_registry() -> &'static Mutex<HashMap<ThreadId, ArmedEntry>> {
    static REGISTRY: OnceLock<Mutex<HashMap<ThreadId, ArmedEntry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Disarms the calling thread's flight recorder on drop.
#[must_use = "dropping the guard disarms the flight recorder"]
pub struct ArmedGuard {
    thread: ThreadId,
}

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        armed_registry().lock().unwrap_or_else(PoisonError::into_inner).remove(&self.thread);
    }
}

/// Arm `flight` for the calling thread: if a panic unwinds through this
/// thread while the returned guard is live (and [`install_panic_hook`]
/// was called), the ring is dumped to `dump_path` before unwinding.
pub fn arm(flight: &FlightRecorder, dump_path: PathBuf) -> ArmedGuard {
    let thread = std::thread::current().id();
    armed_registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(thread, ArmedEntry { flight: flight.clone(), dump_path });
    ArmedGuard { thread }
}

/// Install the process-wide panic hook (idempotent; chains the previous
/// hook, so normal panic reporting is preserved).
pub fn install_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let thread = std::thread::current().id();
            let entry = {
                let registry = armed_registry().lock().unwrap_or_else(PoisonError::into_inner);
                registry.get(&thread).map(|e| (e.flight.clone(), e.dump_path.clone()))
            };
            if let Some((flight, path)) = entry {
                if flight.dump_to(&path).is_ok() {
                    eprintln!(
                        "flight recorder: dumped {} spans to {}",
                        flight.recorder().spans_recorded().min(flight.capacity() as u64),
                        path.display()
                    );
                }
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_chrome_trace;

    #[test]
    fn ring_dump_is_bounded_and_valid() {
        let flight = FlightRecorder::new(16);
        let rec = flight.recorder().clone();
        {
            let _outer = rec.span("cell");
            for i in 0..100u64 {
                let _s = rec.span("attempt").arg("i", i);
            }
        }
        rec.counter_add("retries", 3);
        let doc = flight.dump_chrome_json();
        let stats = check_chrome_trace(&doc, &["attempt"]).unwrap();
        assert!(stats.span_events <= 16, "ring must bound the dump: {}", stats.span_events);
        assert_eq!(stats.counter_events, 1);
    }

    #[test]
    fn dangling_parents_are_detached_not_fatal() {
        let flight = FlightRecorder::new(2);
        let rec = flight.recorder().clone();
        let outer = rec.span("outer");
        {
            // Children overflow the ring while the parent is still open.
            for _ in 0..5 {
                let _inner = rec.span("inner");
            }
        }
        // Dump while `outer` is open: retained children have no parent in
        // the snapshot.
        let doc = flight.dump_chrome_json();
        check_chrome_trace(&doc, &["inner"]).unwrap();
        drop(outer);
    }

    #[test]
    fn panic_hook_dumps_the_armed_ring() {
        install_panic_hook();
        let dir = std::env::temp_dir().join(format!("llmpilot-flight-test-{}", std::process::id()));
        let path = dir.join(dump_file_name("Llama-2-7b", "weird profile/x"));
        let flight = FlightRecorder::new(32);
        let rec = flight.recorder().clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = arm(&flight, path.clone());
            let _span = rec.span("doomed.work");
            {
                let _prep = rec.span("doomed.prep");
            }
            panic!("injected test panic");
        }));
        assert!(result.is_err());
        let doc = std::fs::read_to_string(&path).expect("panic hook should have dumped");
        let stats = check_chrome_trace(&doc, &["doomed.prep"]).unwrap();
        assert!(stats.span_events >= 1);
        // Disarmed after unwinding: a fresh panic elsewhere won't rewrite.
        assert!(armed_registry().lock().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_file_names_are_path_safe() {
        assert_eq!(dump_file_name("Llama-2-7b", "gx2-16x1"), "flight-Llama-2-7b-gx2-16x1.json");
        assert_eq!(dump_file_name("a/b", "c d"), "flight-a_b-c_d.json");
    }
}
