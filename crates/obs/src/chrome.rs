//! Chrome `trace_event` JSON export.
//!
//! Emits the "JSON object format" (`{"traceEvents": [...]}`) understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one complete
//! (`"ph":"X"`) event per span with microsecond `ts`/`dur`, thread-name
//! metadata (`"ph":"M"`) per logical thread, and one counter (`"ph":"C"`)
//! sample per recorder counter/gauge. Span `args` carry the typed span
//! arguments plus the span `id`/`parent` links so tooling (and our own
//! checker) can rebuild the tree exactly.

use crate::json::JsonWriter;
use crate::{ArgValue, Trace};

/// Process id used for every event (a trace covers one process).
pub const PID: u64 = 1;

fn fmt_us(ns: u64) -> String {
    // Exact µs with nanosecond fraction; avoids f64 rounding entirely.
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn write_arg(w: &mut JsonWriter, value: &ArgValue) {
    match value {
        ArgValue::U64(v) => w.u64(*v),
        ArgValue::I64(v) => w.i64(*v),
        // JsonWriter stringifies NaN/Inf, keeping the document valid.
        ArgValue::F64(v) => w.f64(*v),
        ArgValue::Bool(v) => w.bool(*v),
        ArgValue::Str(s) => w.string(s),
    }
}

fn write_counter_event(w: &mut JsonWriter, name: &str, value: &str, ts_us: &str) {
    w.newline();
    w.begin_object();
    w.key("name");
    w.string(name);
    w.key("ph");
    w.string("C");
    w.key("ts");
    w.raw(ts_us);
    w.key("pid");
    w.u64(PID);
    w.key("args");
    w.begin_object();
    w.key("value");
    // Pre-rendered so u64 counters and i64 gauges both stay exact.
    w.raw(value);
    w.end_object();
    w.end_object();
}

/// Render `trace` as a Chrome `trace_event` JSON document.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut w = JsonWriter::with_capacity(64 + trace.events.len() * 160);
    w.begin_object();
    w.key("traceEvents");
    w.begin_array();

    // Thread-name metadata so Perfetto labels tracks "worker-<tid>".
    let mut tids: Vec<u64> = trace.events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in &tids {
        w.newline();
        w.begin_object();
        w.key("name");
        w.string("thread_name");
        w.key("ph");
        w.string("M");
        w.key("pid");
        w.u64(PID);
        w.key("tid");
        w.u64(*tid);
        w.key("args");
        w.begin_object();
        w.key("name");
        w.string(&format!("worker-{tid}"));
        w.end_object();
        w.end_object();
    }

    for e in &trace.events {
        w.newline();
        w.begin_object();
        w.key("name");
        w.string(&e.name);
        w.key("cat");
        w.string("obs");
        w.key("ph");
        w.string("X");
        w.key("ts");
        w.raw(&fmt_us(e.begin_ns));
        w.key("dur");
        w.raw(&fmt_us(e.duration_ns()));
        w.key("pid");
        w.u64(PID);
        w.key("tid");
        w.u64(e.tid);
        w.key("args");
        w.begin_object();
        w.key("id");
        w.u64(e.id);
        if let Some(parent) = e.parent {
            w.key("parent");
            w.u64(parent);
        }
        for (key, value) in &e.args {
            w.key(key);
            write_arg(&mut w, value);
        }
        w.end_object();
        w.end_object();
    }

    // Counters and gauges as single counter samples at the trace end.
    let end_ns = trace.events.iter().map(|e| e.end_ns).max().unwrap_or(0);
    let end_us = fmt_us(end_ns);
    for (name, value) in &trace.counters {
        write_counter_event(&mut w, name, &value.to_string(), &end_us);
    }
    for (name, value) in &trace.gauges {
        write_counter_event(&mut w, name, &value.to_string(), &end_us);
    }

    w.newline();
    w.end_array();
    w.key("displayTimeUnit");
    w.string("ms");
    w.end_object();
    let mut out = w.finish();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::Recorder;

    #[test]
    fn exported_trace_is_valid_json_with_expected_shape() {
        let rec = Recorder::enabled();
        {
            let _a = rec.span("outer").arg("llm", "Llama-2-7b").arg("users", 8u32);
            let _b = rec.span("inner").arg("ratio", 0.5f64).arg("ok", true);
        }
        rec.counter_add("steps", 11);
        rec.gauge_set("depth", -3);
        let doc = to_chrome_json(&rec.snapshot());
        let v = parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 1 metadata + 2 spans + 1 counter + 1 gauge.
        assert_eq!(events.len(), 5);
        let spans: Vec<&Json> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
        assert_eq!(spans.len(), 2);
        for s in &spans {
            assert!(s.get("ts").unwrap().as_f64().is_some());
            assert!(s.get("dur").unwrap().as_f64().is_some());
            assert_eq!(s.get("pid").unwrap().as_u64(), Some(PID));
            assert!(s.get("args").unwrap().get("id").unwrap().as_u64().is_some());
        }
        let inner =
            spans.iter().find(|s| s.get("name").and_then(Json::as_str) == Some("inner")).unwrap();
        assert!(inner.get("args").unwrap().get("parent").unwrap().as_u64().is_some());
        assert_eq!(inner.get("args").unwrap().get("ok"), Some(&Json::Bool(true)));
        let counters: Vec<&Json> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("C")).collect();
        assert_eq!(counters.len(), 2);
    }

    #[test]
    fn timestamps_are_exact_microseconds() {
        assert_eq!(fmt_us(0), "0.000");
        assert_eq!(fmt_us(1), "0.001");
        assert_eq!(fmt_us(1_234_567), "1234.567");
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let doc = to_chrome_json(&Trace::default());
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn names_with_quotes_survive_export() {
        let rec = Recorder::enabled();
        {
            let _s = rec.span("weird \"name\"\n").arg("k\"ey", "v\\al");
        }
        let doc = to_chrome_json(&rec.snapshot());
        let v = parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("weird \"name\"\n")));
    }
}
