//! Plain-text hierarchical span summary.
//!
//! Groups spans by their *name path* (root span name → … → span name) and
//! reports, per path: call count, total inclusive time, and p50/p95/p99
//! **self-time** — the span's duration minus the duration of its direct
//! children, i.e. time actually spent in that phase rather than delegated.
//! Self-times feed an [`hist::Histogram`], so the percentiles are true
//! tail quantiles (≤1% relative error), and the table is sorted by
//! cumulative (inclusive) time descending so the most expensive subtree
//! reads first.

use std::collections::{BTreeMap, HashMap};

use crate::hist::Histogram;
use crate::Trace;

/// Guard against corrupted parent links; real traces nest far shallower.
const MAX_DEPTH: usize = 64;

#[derive(Default)]
struct Node {
    count: u64,
    total_ns: u64,
    self_times: Option<Histogram>,
    children: BTreeMap<String, Node>,
}

impl Node {
    /// Inclusive time used for ordering: a node that never recorded
    /// itself (e.g. an `<orphan>` placeholder) sorts by its subtree.
    fn sort_total(&self) -> u64 {
        if self.count > 0 {
            self.total_ns
        } else {
            self.children.values().map(Node::sort_total).sum()
        }
    }
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

fn fmt_us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e3)
}

fn render(out: &mut String, name: &str, node: &Node, depth: usize) {
    if node.count > 0 {
        let label = format!("{}{}", "  ".repeat(depth), name);
        let hist = node.self_times.as_ref();
        let q = |q: f64| hist.map_or(0, |h| h.quantile(q));
        out.push_str(&format!(
            "{:<52} {:>9} {:>12} {:>13} {:>13} {:>13}\n",
            label,
            node.count,
            fmt_ms(node.total_ns),
            fmt_us(q(0.50)),
            fmt_us(q(0.95)),
            fmt_us(q(0.99)),
        ));
    }
    // Children by cumulative time descending; name breaks ties stably.
    let mut children: Vec<(&String, &Node)> = node.children.iter().collect();
    children.sort_by(|a, b| b.1.sort_total().cmp(&a.1.sort_total()).then(a.0.cmp(b.0)));
    for (child_name, child) in children {
        render(out, child_name, child, depth + 1);
    }
}

/// Render the hierarchical summary of `trace` as aligned plain text.
pub fn summarize(trace: &Trace) -> String {
    let index: HashMap<u64, usize> =
        trace.events.iter().enumerate().map(|(i, e)| (e.id, i)).collect();

    // Sum of direct children's inclusive durations, per parent id.
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for e in &trace.events {
        if let Some(parent) = e.parent {
            *child_ns.entry(parent).or_insert(0) += e.duration_ns();
        }
    }

    // Fold every span into the path tree; parent links are walked
    // bounded and cycle-safe.
    let mut root = Node::default();
    for e in &trace.events {
        let mut path = vec![e.name.to_string()];
        let mut cursor = e.parent;
        while let Some(pid) = cursor {
            if path.len() >= MAX_DEPTH {
                break;
            }
            match index.get(&pid) {
                Some(&i) => {
                    path.push(trace.events[i].name.to_string());
                    cursor = trace.events[i].parent;
                }
                None => {
                    path.push("<orphan>".to_string());
                    break;
                }
            }
        }
        path.reverse();
        let mut node = &mut root;
        for part in path {
            node = node.children.entry(part).or_default();
        }
        node.count += 1;
        node.total_ns += e.duration_ns();
        let self_ns = e.duration_ns().saturating_sub(child_ns.get(&e.id).copied().unwrap_or(0));
        node.self_times.get_or_insert_with(Histogram::default).record(self_ns);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{:<52} {:>9} {:>12} {:>13} {:>13} {:>13}\n",
        "span", "count", "total ms", "p50 self µs", "p95 self µs", "p99 self µs"
    ));
    let mut top: Vec<(&String, &Node)> = root.children.iter().collect();
    top.sort_by(|a, b| b.1.sort_total().cmp(&a.1.sort_total()).then(a.0.cmp(b.0)));
    for (name, node) in top {
        render(&mut out, name, node, 0);
    }

    if !trace.counters.is_empty() || !trace.gauges.is_empty() {
        out.push_str("\ncounters:\n");
        for (name, value) in &trace.counters {
            out.push_str(&format!("  {name:<50} {value:>12}\n"));
        }
        for (name, value) in &trace.gauges {
            out.push_str(&format!("  {name:<50} {value:>12} (gauge)\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn groups_by_path_and_indents_children() {
        let rec = Recorder::enabled();
        for _ in 0..3 {
            let _outer = rec.span("outer");
            let _inner = rec.span("inner");
        }
        rec.counter_add("things", 42);
        let text = summarize(&rec.snapshot());
        let outer_line = text.lines().find(|l| l.trim_start().starts_with("outer")).unwrap();
        let inner_line = text.lines().find(|l| l.trim_start().starts_with("inner")).unwrap();
        assert!(outer_line.starts_with("outer"));
        assert!(inner_line.starts_with("  inner"), "child should be indented: {inner_line:?}");
        assert!(outer_line.split_whitespace().any(|w| w == "3"));
        assert!(text.contains("things"));
        assert!(text.contains("42"));
        assert!(text.contains("p95 self µs"));
    }

    #[test]
    fn self_time_excludes_children() {
        use crate::{SpanEvent, Trace};
        use std::borrow::Cow;
        let mk = |name: &str, id, parent, begin_ns, end_ns| SpanEvent {
            name: Cow::Owned(name.to_string()),
            id,
            parent,
            tid: 1,
            begin_ns,
            end_ns,
            args: vec![],
        };
        let trace = Trace {
            events: vec![
                mk("root", 1, None, 0, 10_000_000),            // 10 ms inclusive
                mk("child", 2, Some(1), 1_000_000, 9_000_000), // 8 ms
            ],
            counters: vec![],
            gauges: vec![],
        };
        let text = summarize(&trace);
        // Root self time = 10 - 8 = 2 ms = 2000 µs, within the ≤1%
        // histogram resolution.
        let root_line = text.lines().find(|l| l.starts_with("root")).unwrap();
        let p50: f64 = root_line.split_whitespace().nth(3).unwrap().parse().unwrap();
        assert!((p50 - 2000.0).abs() <= 20.0, "expected ≈2000 µs self time: {root_line:?}");
    }

    #[test]
    fn orphan_parents_are_grouped_not_crashed() {
        use crate::{SpanEvent, Trace};
        use std::borrow::Cow;
        let trace = Trace {
            events: vec![SpanEvent {
                name: Cow::Borrowed("lost"),
                id: 5,
                parent: Some(999),
                tid: 1,
                begin_ns: 0,
                end_ns: 10,
                args: vec![],
            }],
            counters: vec![],
            gauges: vec![],
        };
        let text = summarize(&trace);
        assert!(text.contains("lost"));
    }

    #[test]
    fn table_is_sorted_by_cumulative_time_descending() {
        use crate::{SpanEvent, Trace};
        use std::borrow::Cow;
        let mk = |name: &str, id, begin_ns, end_ns| SpanEvent {
            name: Cow::Owned(name.to_string()),
            id,
            parent: None,
            tid: 1,
            begin_ns,
            end_ns,
            args: vec![],
        };
        let trace = Trace {
            // "cheap" first in time, but "expensive" must print first.
            events: vec![
                mk("cheap", 1, 0, 1_000),
                mk("expensive", 2, 2_000, 50_000_000),
                mk("middling", 3, 1_000, 2_000_000),
            ],
            counters: vec![],
            gauges: vec![],
        };
        let text = summarize(&trace);
        let pos = |name: &str| text.find(name).unwrap();
        assert!(pos("expensive") < pos("middling"), "{text}");
        assert!(pos("middling") < pos("cheap"), "{text}");
    }
}
