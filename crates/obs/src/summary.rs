//! Plain-text hierarchical span summary.
//!
//! Groups spans by their *name path* (root span name → … → span name) and
//! reports, per path: call count, total inclusive time, and p50/p99
//! **self-time** — the span's duration minus the duration of its direct
//! children, i.e. time actually spent in that phase rather than delegated.

use std::collections::{BTreeMap, HashMap};

use crate::Trace;

/// Guard against corrupted parent links; real traces nest far shallower.
const MAX_DEPTH: usize = 64;

#[derive(Default)]
struct PathStats {
    count: u64,
    total_ns: u64,
    self_ns: Vec<u64>,
}

fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    // Nearest-rank on the sorted sample.
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

fn fmt_us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e3)
}

/// Render the hierarchical summary of `trace` as aligned plain text.
pub fn summarize(trace: &Trace) -> String {
    let index: HashMap<u64, usize> =
        trace.events.iter().enumerate().map(|(i, e)| (e.id, i)).collect();

    // Sum of direct children's inclusive durations, per parent id.
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for e in &trace.events {
        if let Some(parent) = e.parent {
            *child_ns.entry(parent).or_insert(0) += e.duration_ns();
        }
    }

    // Name path per span: walk parent links (bounded, cycle-safe).
    let mut stats: BTreeMap<Vec<String>, PathStats> = BTreeMap::new();
    for e in &trace.events {
        let mut path = vec![e.name.to_string()];
        let mut cursor = e.parent;
        while let Some(pid) = cursor {
            if path.len() >= MAX_DEPTH {
                break;
            }
            match index.get(&pid) {
                Some(&i) => {
                    path.push(trace.events[i].name.to_string());
                    cursor = trace.events[i].parent;
                }
                None => {
                    path.push("<orphan>".to_string());
                    break;
                }
            }
        }
        path.reverse();
        let entry = stats.entry(path).or_default();
        entry.count += 1;
        entry.total_ns += e.duration_ns();
        entry
            .self_ns
            .push(e.duration_ns().saturating_sub(child_ns.get(&e.id).copied().unwrap_or(0)));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{:<52} {:>9} {:>12} {:>13} {:>13}\n",
        "span", "count", "total ms", "p50 self µs", "p99 self µs"
    ));
    for (path, s) in &mut stats {
        s.self_ns.sort_unstable();
        let depth = path.len() - 1;
        let label =
            format!("{}{}", "  ".repeat(depth), path.last().map(String::as_str).unwrap_or("?"));
        out.push_str(&format!(
            "{:<52} {:>9} {:>12} {:>13} {:>13}\n",
            label,
            s.count,
            fmt_ms(s.total_ns),
            fmt_us(percentile_ns(&s.self_ns, 50.0)),
            fmt_us(percentile_ns(&s.self_ns, 99.0)),
        ));
    }

    if !trace.counters.is_empty() || !trace.gauges.is_empty() {
        out.push_str("\ncounters:\n");
        for (name, value) in &trace.counters {
            out.push_str(&format!("  {name:<50} {value:>12}\n"));
        }
        for (name, value) in &trace.gauges {
            out.push_str(&format!("  {name:<50} {value:>12} (gauge)\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn groups_by_path_and_indents_children() {
        let rec = Recorder::enabled();
        for _ in 0..3 {
            let _outer = rec.span("outer");
            let _inner = rec.span("inner");
        }
        rec.counter_add("things", 42);
        let text = summarize(&rec.snapshot());
        let outer_line = text.lines().find(|l| l.trim_start().starts_with("outer")).unwrap();
        let inner_line = text.lines().find(|l| l.trim_start().starts_with("inner")).unwrap();
        assert!(outer_line.starts_with("outer"));
        assert!(inner_line.starts_with("  inner"), "child should be indented: {inner_line:?}");
        assert!(outer_line.split_whitespace().any(|w| w == "3"));
        assert!(text.contains("things"));
        assert!(text.contains("42"));
    }

    #[test]
    fn self_time_excludes_children() {
        use crate::{SpanEvent, Trace};
        use std::borrow::Cow;
        let mk = |name: &str, id, parent, begin_ns, end_ns| SpanEvent {
            name: Cow::Owned(name.to_string()),
            id,
            parent,
            tid: 1,
            begin_ns,
            end_ns,
            args: vec![],
        };
        let trace = Trace {
            events: vec![
                mk("root", 1, None, 0, 10_000_000),            // 10 ms inclusive
                mk("child", 2, Some(1), 1_000_000, 9_000_000), // 8 ms
            ],
            counters: vec![],
            gauges: vec![],
        };
        let text = summarize(&trace);
        // Root self time = 10 - 8 = 2 ms = 2000 µs.
        let root_line = text.lines().find(|l| l.starts_with("root")).unwrap();
        assert!(root_line.contains("2000.0"), "expected 2000 µs self time: {root_line:?}");
    }

    #[test]
    fn orphan_parents_are_grouped_not_crashed() {
        use crate::{SpanEvent, Trace};
        use std::borrow::Cow;
        let trace = Trace {
            events: vec![SpanEvent {
                name: Cow::Borrowed("lost"),
                id: 5,
                parent: Some(999),
                tid: 1,
                begin_ns: 0,
                end_ns: 10,
                args: vec![],
            }],
            counters: vec![],
            gauges: vec![],
        };
        let text = summarize(&trace);
        assert!(text.contains("lost"));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&sorted, 50.0), 50);
        assert_eq!(percentile_ns(&sorted, 99.0), 99);
        assert_eq!(percentile_ns(&[7], 99.0), 7);
        assert_eq!(percentile_ns(&[], 50.0), 0);
    }
}
