//! Versioned JSONL telemetry stream.
//!
//! A characterization sweep can run for hours; this module gives it a
//! live, append-only event stream (`--events-out <path|->`) that other
//! processes can tail. Each line is one self-contained JSON object:
//!
//! ```json
//! {"v":1,"ts_ms":1234.567,"event":"cell.finished","llm":"Llama-2-7b",...}
//! ```
//!
//! * `v` — the schema version ([`SCHEMA_VERSION`]). Readers accept any
//!   stream with `v <=` their own version and must ignore unknown fields
//!   and unknown event types; writers bump `v` only when a field changes
//!   meaning or a required field is removed.
//! * `ts_ms` — milliseconds since the sink was opened, monotone
//!   non-decreasing (timestamps are taken under the writer lock).
//! * `event` — the event type. The sweep emits `sweep.started`,
//!   `cell.started`, `cell.attempt`, `cell.retried`, `cell.finished`
//!   (with completeness %, retry budget, ETA, and the cell's histogram
//!   snapshot), and `sweep.finished`.
//!
//! [`EventSink`] mirrors [`crate::Recorder`]: cloning is cheap, the
//! disabled sink is a true no-op, and emission never fails the run (I/O
//! errors are swallowed). [`WatchState`] is the line-per-cell progress
//! renderer behind `llm-pilot watch`; the structural validator lives in
//! [`crate::check::check_events`].

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::hist::HistSummary;
use crate::json::{parse, Json, JsonWriter};
use crate::ArgValue;

/// Current event schema version (the `v` field of every line).
pub const SCHEMA_VERSION: u64 = 1;

struct SinkInner {
    start: Instant,
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for SinkInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinkInner").field("start", &self.start).finish_non_exhaustive()
    }
}

/// A shared handle to a JSONL telemetry stream.
///
/// Cloning is cheap (an `Arc`); all clones append to the same stream.
/// [`EventSink::disabled`] short-circuits everything.
#[derive(Debug, Clone, Default)]
pub struct EventSink {
    inner: Option<Arc<SinkInner>>,
}

/// The writer behind [`EventSink::to_buffer`], for tests.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl EventSink {
    /// The no-op sink: emission does not read the clock or take a lock.
    pub fn disabled() -> Self {
        EventSink { inner: None }
    }

    /// A sink that appends JSONL lines to `out`, flushing after each line
    /// so external tails see events promptly.
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        EventSink {
            inner: Some(Arc::new(SinkInner { start: Instant::now(), out: Mutex::new(out) })),
        }
    }

    /// A sink writing to `path`, or to stdout when `path` is `"-"`.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let out: Box<dyn Write + Send> = if path == "-" {
            Box::new(std::io::stdout())
        } else {
            Box::new(std::fs::File::create(path)?)
        };
        Ok(EventSink::to_writer(out))
    }

    /// A sink writing into a shared in-memory buffer (for tests).
    pub fn to_buffer() -> (Self, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (EventSink::to_writer(Box::new(SharedBuf(Arc::clone(&buf)))), buf)
    }

    /// Whether this sink writes anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Append one event line. `fields` follow the envelope (`v`, `ts_ms`,
    /// `event`); I/O errors are swallowed — telemetry never fails a run.
    pub fn emit(&self, event: &str, fields: &[(&str, ArgValue)]) {
        let Some(inner) = &self.inner else { return };
        let mut out = inner.out.lock().unwrap_or_else(PoisonError::into_inner);
        // Timestamp under the lock: lines are monotone by construction.
        let ts_ms = inner.start.elapsed().as_nanos() as f64 / 1e6;
        let mut w = JsonWriter::with_capacity(160);
        w.begin_object();
        w.key("v");
        w.u64(SCHEMA_VERSION);
        w.key("ts_ms");
        w.f64((ts_ms * 1000.0).round() / 1000.0);
        w.key("event");
        w.string(event);
        for (key, value) in fields {
            w.key(key);
            match value {
                ArgValue::U64(v) => w.u64(*v),
                ArgValue::I64(v) => w.i64(*v),
                ArgValue::F64(v) => w.f64(*v),
                ArgValue::Bool(v) => w.bool(*v),
                ArgValue::Str(v) => w.string(v),
            }
        }
        w.end_object();
        let line = w.finish();
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
        let _ = out.flush();
    }

    /// `sweep.started`: the grid size, how many cells the journal already
    /// covered, and the per-cell retry budget.
    pub fn sweep_started(&self, grid_cells: u64, resumed: u64, max_attempts: u64) {
        self.emit(
            "sweep.started",
            &[
                ("grid_cells", grid_cells.into()),
                ("resumed", resumed.into()),
                ("max_attempts", max_attempts.into()),
            ],
        );
    }

    /// `cell.started`: work on one grid cell began.
    pub fn cell_started(&self, llm: &str, profile: &str, grid_cells: u64) {
        self.emit(
            "cell.started",
            &[("llm", llm.into()), ("profile", profile.into()), ("grid_cells", grid_cells.into())],
        );
    }

    /// `cell.attempt`: one attempt (1-based) out of the retry budget.
    pub fn cell_attempt(&self, llm: &str, profile: &str, attempt: u64, max_attempts: u64) {
        self.emit(
            "cell.attempt",
            &[
                ("llm", llm.into()),
                ("profile", profile.into()),
                ("attempt", attempt.into()),
                ("max_attempts", max_attempts.into()),
            ],
        );
    }

    /// `cell.retried`: an attempt failed and the cell will be retried
    /// after `backoff_s` of virtual time.
    pub fn cell_retried(
        &self,
        llm: &str,
        profile: &str,
        attempt: u64,
        max_attempts: u64,
        backoff_s: f64,
        error: &str,
    ) {
        self.emit(
            "cell.retried",
            &[
                ("llm", llm.into()),
                ("profile", profile.into()),
                ("attempt", attempt.into()),
                ("max_attempts", max_attempts.into()),
                ("backoff_s", backoff_s.into()),
                ("error", error.into()),
            ],
        );
    }

    /// `cell.finished`: terminal status for one cell, with sweep-level
    /// progress and the cell's latency histogram snapshot.
    #[allow(clippy::too_many_arguments)]
    pub fn cell_finished(
        &self,
        llm: &str,
        profile: &str,
        status: &str,
        attempts: u64,
        done_cells: u64,
        grid_cells: u64,
        eta_s: f64,
        nttft: Option<&HistSummary>,
        itl: Option<&HistSummary>,
    ) {
        let completeness =
            if grid_cells == 0 { 100.0 } else { done_cells as f64 * 100.0 / grid_cells as f64 };
        let mut fields: Vec<(&str, ArgValue)> = vec![
            ("llm", llm.into()),
            ("profile", profile.into()),
            ("status", status.into()),
            ("attempts", attempts.into()),
            ("done_cells", done_cells.into()),
            ("grid_cells", grid_cells.into()),
            ("completeness_pct", ((completeness * 10.0).round() / 10.0).into()),
            ("eta_s", ((eta_s * 10.0).round() / 10.0).into()),
        ];
        let ms = |ns: u64| (ns as f64 / 1e6 * 1000.0).round() / 1000.0;
        if let Some(h) = nttft {
            fields.push(("nttft_samples", h.count.into()));
            fields.push(("nttft_p50_ms", ms(h.p50).into()));
            fields.push(("nttft_p95_ms", ms(h.p95).into()));
            fields.push(("nttft_p99_ms", ms(h.p99).into()));
        }
        if let Some(h) = itl {
            fields.push(("itl_p50_ms", ms(h.p50).into()));
            fields.push(("itl_p95_ms", ms(h.p95).into()));
            fields.push(("itl_p99_ms", ms(h.p99).into()));
        }
        self.emit("cell.finished", &fields);
    }

    /// `sweep.finished`: the run completed (possibly with failed cells).
    pub fn sweep_finished(
        &self,
        grid_cells: u64,
        done_cells: u64,
        measured: u64,
        infeasible: u64,
        failed: u64,
        wall_s: f64,
    ) {
        let completeness =
            if grid_cells == 0 { 100.0 } else { done_cells as f64 * 100.0 / grid_cells as f64 };
        self.emit(
            "sweep.finished",
            &[
                ("grid_cells", grid_cells.into()),
                ("done_cells", done_cells.into()),
                ("measured", measured.into()),
                ("infeasible", infeasible.into()),
                ("failed", failed.into()),
                ("completeness_pct", ((completeness * 10.0).round() / 10.0).into()),
                ("wall_s", ((wall_s * 100.0).round() / 100.0).into()),
            ],
        );
    }
}

/// Required (beyond-envelope) fields per known event type; the
/// [`crate::check::check_events`] validator enforces these. Unknown event
/// types only need a valid envelope (forward compatibility).
pub fn required_fields(event: &str) -> Option<&'static [&'static str]> {
    match event {
        "sweep.started" => Some(&["grid_cells", "resumed", "max_attempts"]),
        "cell.started" => Some(&["llm", "profile", "grid_cells"]),
        "cell.attempt" => Some(&["llm", "profile", "attempt", "max_attempts"]),
        "cell.retried" => {
            Some(&["llm", "profile", "attempt", "max_attempts", "backoff_s", "error"])
        }
        "cell.finished" => Some(&[
            "llm",
            "profile",
            "status",
            "attempts",
            "done_cells",
            "grid_cells",
            "completeness_pct",
            "eta_s",
        ]),
        "sweep.finished" => Some(&[
            "grid_cells",
            "done_cells",
            "measured",
            "infeasible",
            "failed",
            "completeness_pct",
        ]),
        _ => None,
    }
}

#[derive(Debug, Clone, Default)]
struct CellRow {
    status: String,
    attempts: u64,
    detail: String,
}

/// Incremental consumer of an event stream that renders the live
/// single-line-per-cell progress view behind `llm-pilot watch`.
///
/// Ingestion is tolerant: unparseable lines (e.g. a torn tail while the
/// writer is mid-line) are counted and skipped, never fatal.
#[derive(Debug, Clone, Default)]
pub struct WatchState {
    grid_cells: u64,
    done_cells: u64,
    completeness_pct: f64,
    eta_s: Option<f64>,
    finished: bool,
    cells: BTreeMap<String, CellRow>,
    events: usize,
    bad_lines: usize,
}

fn num(v: &Json, key: &str) -> Option<f64> {
    v.get(key).and_then(Json::as_f64)
}

impl WatchState {
    /// An empty watcher.
    pub fn new() -> Self {
        WatchState::default()
    }

    /// Whether a `sweep.finished` event has been seen.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Number of events ingested so far.
    pub fn events(&self) -> usize {
        self.events
    }

    /// Consume one JSONL line (tolerant of garbage).
    pub fn ingest(&mut self, line: &str) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        let Ok(v) = parse(line) else {
            self.bad_lines += 1;
            return;
        };
        let Some(event) = v.get("event").and_then(Json::as_str) else {
            self.bad_lines += 1;
            return;
        };
        self.events += 1;
        let cell_key = || -> Option<String> {
            let llm = v.get("llm").and_then(Json::as_str)?;
            let profile = v.get("profile").and_then(Json::as_str)?;
            Some(format!("{llm}/{profile}"))
        };
        match event {
            "sweep.started" => {
                if let Some(g) = num(&v, "grid_cells") {
                    self.grid_cells = g as u64;
                }
                if let Some(r) = num(&v, "resumed") {
                    self.done_cells = self.done_cells.max(r as u64);
                }
            }
            "cell.started" => {
                if let Some(key) = cell_key() {
                    let row = self.cells.entry(key).or_default();
                    row.status = "running".to_string();
                }
            }
            "cell.attempt" => {
                if let Some(key) = cell_key() {
                    let row = self.cells.entry(key).or_default();
                    row.status = "running".to_string();
                    row.attempts = num(&v, "attempt").map_or(row.attempts, |a| a as u64);
                }
            }
            "cell.retried" => {
                if let Some(key) = cell_key() {
                    let row = self.cells.entry(key).or_default();
                    row.status = "retrying".to_string();
                    if let Some(err) = v.get("error").and_then(Json::as_str) {
                        row.detail = err.chars().take(40).collect();
                    }
                }
            }
            "cell.finished" => {
                if let Some(key) = cell_key() {
                    let row = self.cells.entry(key).or_default();
                    row.status =
                        v.get("status").and_then(Json::as_str).unwrap_or("finished").to_string();
                    row.attempts = num(&v, "attempts").map_or(row.attempts, |a| a as u64);
                    let mut parts = Vec::new();
                    if let Some(p99) = num(&v, "nttft_p99_ms") {
                        parts.push(format!("nttft_p99={p99:.1}ms"));
                    }
                    if let Some(p99) = num(&v, "itl_p99_ms") {
                        parts.push(format!("itl_p99={p99:.1}ms"));
                    }
                    row.detail = parts.join(" ");
                }
                if let Some(d) = num(&v, "done_cells") {
                    self.done_cells = self.done_cells.max(d as u64);
                }
                if let Some(g) = num(&v, "grid_cells") {
                    self.grid_cells = g as u64;
                }
                if let Some(c) = num(&v, "completeness_pct") {
                    self.completeness_pct = self.completeness_pct.max(c);
                }
                self.eta_s = num(&v, "eta_s").or(self.eta_s);
            }
            "sweep.finished" => {
                self.finished = true;
                if let Some(c) = num(&v, "completeness_pct") {
                    self.completeness_pct = c;
                }
                if let Some(d) = num(&v, "done_cells") {
                    self.done_cells = d as u64;
                }
                if let Some(g) = num(&v, "grid_cells") {
                    self.grid_cells = g as u64;
                }
                self.eta_s = None;
            }
            _ => {}
        }
    }

    /// Consume a whole document (every line of `text`).
    pub fn ingest_document(&mut self, text: &str) {
        for line in text.lines() {
            self.ingest(line);
        }
    }

    /// Render the current progress view: a sweep header, one line per
    /// cell, and a final status line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let pct = if self.grid_cells > 0 && self.completeness_pct == 0.0 {
            self.done_cells as f64 * 100.0 / self.grid_cells as f64
        } else {
            self.completeness_pct
        };
        out.push_str(&format!(
            "sweep: {}/{} cells done ({pct:.1}% complete)",
            self.done_cells, self.grid_cells
        ));
        if let Some(eta) = self.eta_s {
            out.push_str(&format!(", eta {eta:.1}s"));
        }
        out.push('\n');
        for (key, row) in &self.cells {
            out.push_str(&format!(
                "  {:<44} {:<10} attempts={} {}\n",
                key,
                if row.status.is_empty() { "pending" } else { &row.status },
                row.attempts.max(1),
                row.detail
            ));
        }
        if self.finished {
            out.push_str("sweep finished\n");
        }
        if self.bad_lines > 0 {
            out.push_str(&format!("({} unparseable line(s) skipped)\n", self.bad_lines));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(buf: &Arc<Mutex<Vec<u8>>>) -> String {
        String::from_utf8(buf.lock().unwrap().clone()).unwrap()
    }

    #[test]
    fn disabled_sink_is_a_noop() {
        let sink = EventSink::disabled();
        assert!(!sink.is_enabled());
        sink.emit("x", &[("k", 1u64.into())]);
        sink.sweep_started(1, 0, 3);
    }

    #[test]
    fn emitted_lines_are_valid_json_with_envelope() {
        let (sink, buf) = EventSink::to_buffer();
        sink.sweep_started(4, 1, 3);
        sink.cell_started("Llama-2-7b", "gx2-16x1", 4);
        sink.cell_attempt("Llama-2-7b", "gx2-16x1", 1, 3);
        sink.cell_retried("Llama-2-7b", "gx2-16x1", 1, 3, 0.5, "injected \"oom\"");
        let text = drain(&buf);
        assert_eq!(text.lines().count(), 4);
        for line in text.lines() {
            let v = parse(line).unwrap();
            assert_eq!(v.get("v").and_then(Json::as_u64), Some(SCHEMA_VERSION));
            assert!(v.get("ts_ms").and_then(Json::as_f64).unwrap() >= 0.0);
            let event = v.get("event").and_then(Json::as_str).unwrap();
            for field in required_fields(event).unwrap() {
                assert!(v.get(field).is_some(), "{event} missing {field}");
            }
        }
    }

    #[test]
    fn timestamps_are_monotone() {
        let (sink, buf) = EventSink::to_buffer();
        for i in 0..50u64 {
            sink.emit("tick", &[("i", i.into())]);
        }
        let text = drain(&buf);
        let mut last = -1.0f64;
        for line in text.lines() {
            let ts = parse(line).unwrap().get("ts_ms").and_then(Json::as_f64).unwrap();
            assert!(ts >= last, "ts went backwards: {ts} < {last}");
            last = ts;
        }
    }

    #[test]
    fn watch_renders_completeness_and_cells() {
        let (sink, buf) = EventSink::to_buffer();
        sink.sweep_started(2, 0, 3);
        sink.cell_started("m1", "p1", 2);
        sink.cell_finished("m1", "p1", "measured", 1, 1, 2, 4.2, None, None);
        sink.cell_started("m2", "p2", 2);
        sink.cell_finished("m2", "p2", "failed", 3, 2, 2, 0.0, None, None);
        sink.sweep_finished(2, 2, 1, 0, 1, 1.25);
        let mut watch = WatchState::new();
        watch.ingest_document(&drain(&buf));
        assert!(watch.finished());
        let view = watch.render();
        assert!(view.contains("2/2 cells"), "{view}");
        assert!(view.contains("100.0% complete"), "{view}");
        assert!(view.contains("m1/p1"), "{view}");
        assert!(view.contains("failed"), "{view}");
        assert!(view.contains("sweep finished"), "{view}");
    }

    #[test]
    fn watch_tolerates_garbage_lines() {
        let mut watch = WatchState::new();
        watch.ingest("{torn json");
        watch.ingest("");
        watch.ingest("[1,2,3]");
        let view = watch.render();
        assert!(view.contains("unparseable"), "{view}");
        assert_eq!(watch.events(), 0);
    }
}
