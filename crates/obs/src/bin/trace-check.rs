//! `trace-check` — validate a Chrome `trace_event` JSON file.
//!
//! ```text
//! trace-check FILE [--require-span NAME]...
//! ```
//!
//! Exits 0 when `FILE` parses as JSON, every span event is well-formed,
//! begin/end intervals nest strictly per thread, parent links resolve and
//! enclose their children, and every `--require-span` name occurs at least
//! once. Exits 1 with a diagnostic otherwise, 2 on usage errors. Used by
//! CI to gate `llm-pilot characterize --trace-out` output.

use std::process::exit;

use llmpilot_obs::check::check_chrome_trace;

fn usage() -> ! {
    eprintln!("usage: trace-check FILE [--require-span NAME]...");
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut required: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--require-span" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("missing value for --require-span");
                    usage();
                };
                required.push(name.clone());
                i += 2;
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}");
                usage();
            }
            path => {
                if file.replace(path.to_string()).is_some() {
                    eprintln!("multiple input files given");
                    usage();
                }
                i += 1;
            }
        }
    }
    let Some(file) = file else { usage() };

    let document = match std::fs::read_to_string(&file) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            exit(1)
        }
    };
    let required_refs: Vec<&str> = required.iter().map(String::as_str).collect();
    match check_chrome_trace(&document, &required_refs) {
        Ok(stats) => {
            println!(
                "{file}: OK — {} spans on {} thread(s), {} counter event(s), max depth {}",
                stats.span_events, stats.threads, stats.counter_events, stats.max_depth
            );
        }
        Err(e) => {
            eprintln!("error: {file}: {e}");
            exit(1)
        }
    }
}
