//! `trace-check` — validate a Chrome `trace_event` JSON file or a JSONL
//! telemetry event stream.
//!
//! ```text
//! trace-check FILE [--require-span NAME]... [--require-counter NAME]...
//! trace-check --events FILE
//! ```
//!
//! In trace mode, exits 0 when `FILE` parses as JSON, every span event is
//! well-formed, begin/end intervals nest strictly per thread, parent
//! links resolve and enclose their children, and every `--require-span`
//! / `--require-counter` name occurs at least once; on failure the
//! diagnostic lists *every* missing required name. In `--events` mode,
//! validates the JSONL stream written by `--events-out` (schema version,
//! envelope fields, monotone timestamps, per-type required fields; a torn
//! final line is tolerated and reported). Exits 1 with a diagnostic
//! otherwise, 2 on usage errors. Used by CI to gate both
//! `llm-pilot characterize --trace-out` and `--events-out` output.

use std::process::exit;

use llmpilot_obs::check::{check_chrome_trace_full, check_events};

fn usage() -> ! {
    eprintln!(
        "usage: trace-check FILE [--require-span NAME]... [--require-counter NAME]...\n\
         \x20      trace-check --events FILE"
    );
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut required_spans: Vec<String> = Vec::new();
    let mut required_counters: Vec<String> = Vec::new();
    let mut events_mode = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--require-span" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("missing value for --require-span");
                    usage();
                };
                required_spans.push(name.clone());
                i += 2;
            }
            "--require-counter" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("missing value for --require-counter");
                    usage();
                };
                required_counters.push(name.clone());
                i += 2;
            }
            "--events" => {
                events_mode = true;
                i += 1;
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') && flag != "-" => {
                eprintln!("unknown flag {flag}");
                usage();
            }
            path => {
                if file.replace(path.to_string()).is_some() {
                    eprintln!("multiple input files given");
                    usage();
                }
                i += 1;
            }
        }
    }
    let Some(file) = file else { usage() };
    if events_mode && (!required_spans.is_empty() || !required_counters.is_empty()) {
        eprintln!("--require-span/--require-counter do not apply to --events mode");
        usage();
    }

    let document = match std::fs::read_to_string(&file) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            exit(1)
        }
    };

    if events_mode {
        match check_events(&document) {
            Ok(stats) => {
                let types: Vec<String> =
                    stats.types.iter().map(|(name, n)| format!("{name}×{n}")).collect();
                println!(
                    "{file}: OK — {} event(s) [{}]{}{}{}",
                    stats.events,
                    types.join(", "),
                    stats
                        .completeness_pct
                        .map(|c| format!(", completeness {c:.1}%"))
                        .unwrap_or_default(),
                    if stats.finished { ", finished" } else { "" },
                    if stats.truncated_tail { ", torn tail tolerated" } else { "" },
                );
            }
            Err(e) => {
                eprintln!("error: {file}: {e}");
                exit(1)
            }
        }
        return;
    }

    let span_refs: Vec<&str> = required_spans.iter().map(String::as_str).collect();
    let counter_refs: Vec<&str> = required_counters.iter().map(String::as_str).collect();
    match check_chrome_trace_full(&document, &span_refs, &counter_refs) {
        Ok(stats) => {
            println!(
                "{file}: OK — {} spans on {} thread(s), {} counter event(s), max depth {}",
                stats.span_events, stats.threads, stats.counter_events, stats.max_depth
            );
        }
        Err(e) => {
            eprintln!("error: {file}: {e}");
            exit(1)
        }
    }
}
