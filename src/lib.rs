#![forbid(unsafe_code)]
//! # llm-pilot
//!
//! Facade crate of the LLM-Pilot reproduction (SC'24): re-exports the five
//! member crates so applications can depend on a single package.
//!
//! * [`sim`] — GPU/LLM catalogs and the inference-service simulator.
//! * [`traces`] — synthetic production traces and analytics.
//! * [`workload`] — the binned joint-histogram workload generator.
//! * [`ml`] — the from-scratch ML substrate (trees, GBDT, MLP, MF, CV).
//! * [`core`] — the characterization pipeline and GPU recommendation tool.
//! * [`serve`] — the online GPU-recommendation daemon (llmpilot-serve).
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/experiments.rs` for the paper's tables/figures.

pub use llmpilot_core as core;
pub use llmpilot_ml as ml;
pub use llmpilot_placement as placement;
pub use llmpilot_serve as serve;
pub use llmpilot_sim as sim;
pub use llmpilot_traces as traces;
pub use llmpilot_workload as workload;
