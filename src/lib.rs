#![forbid(unsafe_code)]
//! # llm-pilot
//!
//! Facade crate of the LLM-Pilot reproduction (SC'24): re-exports the five
//! member crates so applications can depend on a single package.
//!
//! * [`sim`] — GPU/LLM catalogs and the inference-service simulator.
//! * [`traces`] — synthetic production traces and analytics.
//! * [`workload`] — the binned joint-histogram workload generator.
//! * [`ml`] — the from-scratch ML substrate (trees, GBDT, MLP, MF, CV).
//! * [`core`] — the characterization pipeline and GPU recommendation tool.
//! * [`serve`] — the online GPU-recommendation daemon (llmpilot-serve).
//! * [`obs`] — structured spans, counters, and Chrome-trace export.
//! * [`cli`] — the typed command-line parser shared by the binaries.
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/experiments.rs` for the paper's tables/figures.

pub use llmpilot_cli as cli;
pub use llmpilot_core as core;
pub use llmpilot_ml as ml;
pub use llmpilot_obs as obs;
pub use llmpilot_placement as placement;
pub use llmpilot_serve as serve;
pub use llmpilot_sim as sim;
pub use llmpilot_traces as traces;
pub use llmpilot_workload as workload;

/// The unified error of the facade: every sub-crate error converts into
/// it via `From`, so application code (and the `llm-pilot` binary) can
/// use one `Result<_, llm_pilot::Error>` end to end and render every
/// failure as a single consistent `error: …` line.
#[derive(Debug)]
pub enum Error {
    /// Characterization/recommendation pipeline failure ([`core`]).
    Core(llmpilot_core::CoreError),
    /// Simulator failure ([`sim`]).
    Sim(llmpilot_sim::error::SimError),
    /// ML-substrate failure ([`ml`]).
    Ml(llmpilot_ml::MlError),
    /// Workload-model failure ([`workload`]).
    Workload(llmpilot_workload::WorkloadError),
    /// Serving-daemon failure ([`serve`]).
    Serve(llmpilot_serve::ServeError),
    /// File or socket I/O failure.
    Io(std::io::Error),
    /// Invalid input that no sub-crate owns (bad CSV text, unknown
    /// LLM/profile names, …).
    Invalid(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Core(e) => write!(f, "{e}"),
            Error::Sim(e) => write!(f, "{e}"),
            Error::Ml(e) => write!(f, "{e}"),
            Error::Workload(e) => write!(f, "{e}"),
            Error::Serve(e) => write!(f, "{e}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Ml(e) => Some(e),
            Error::Workload(e) => Some(e),
            Error::Serve(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Invalid(_) => None,
        }
    }
}

impl From<llmpilot_core::CoreError> for Error {
    fn from(e: llmpilot_core::CoreError) -> Self {
        Error::Core(e)
    }
}
impl From<llmpilot_sim::error::SimError> for Error {
    fn from(e: llmpilot_sim::error::SimError) -> Self {
        Error::Sim(e)
    }
}
impl From<llmpilot_ml::MlError> for Error {
    fn from(e: llmpilot_ml::MlError) -> Self {
        Error::Ml(e)
    }
}
impl From<llmpilot_workload::WorkloadError> for Error {
    fn from(e: llmpilot_workload::WorkloadError) -> Self {
        Error::Workload(e)
    }
}
impl From<llmpilot_serve::ServeError> for Error {
    fn from(e: llmpilot_serve::ServeError) -> Self {
        Error::Serve(e)
    }
}
impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}
impl From<String> for Error {
    fn from(msg: String) -> Self {
        Error::Invalid(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::Error;

    #[test]
    fn every_sub_crate_error_converts_and_displays_without_prefix_noise() {
        let core: Error = llmpilot_core::CoreError::NoFeasibleRecommendation.into();
        assert!(core.to_string().contains("no GPU profile"));
        let ml: Error = llmpilot_ml::MlError::NotFitted.into();
        assert!(!ml.to_string().is_empty());
        let io: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
        let invalid: Error = String::from("unknown LLM \"x\"").into();
        assert_eq!(invalid.to_string(), "unknown LLM \"x\"");
        // `source()` gives callers the typed cause for the wrapped cases.
        use std::error::Error as _;
        assert!(core.source().is_some());
        assert!(invalid.source().is_none());
    }
}
