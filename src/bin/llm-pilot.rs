//! `llm-pilot` — command-line front end for the LLM-Pilot reproduction.
//!
//! ```text
//! llm-pilot traces      --requests 100000 --out traces.csv
//! llm-pilot workload    fit --traces traces.csv --out model.txt
//! llm-pilot workload    sample --model model.txt -n 10
//! llm-pilot feasibility
//! llm-pilot characterize --out data.csv [--duration 120] [--llm NAME]
//!                       [--trace-out trace.json] [--trace-summary]
//!                       [--events-out events.jsonl|-] [--flight-dir DIR]
//! llm-pilot recommend   --data data.csv --llm NAME [--users 200]
//!                       [--nttft-ms 100] [--itl-ms 50] [--events-out FILE]
//! llm-pilot serve       --data data.csv [--addr 127.0.0.1:8008] [--workers 4]
//!                       [--queue 128] [--cache 4096] [--watch-secs 2]
//!                       [--events-out FILE]
//! llm-pilot watch       events.jsonl [--follow] [--interval-ms 200]
//! ```
//!
//! Every subcommand declares typed flags via [`llm_pilot::cli`] (generated
//! `--help`, exit 2 on usage errors) and reports runtime failures through
//! [`llm_pilot::Error`] as one `error: …` line (exit 1).

use std::path::PathBuf;
use std::process::exit;

use rand::rngs::StdRng;
use rand::SeedableRng;

use llm_pilot::cli::{Command, Flag, Parsed};
use llm_pilot::core::recommend::{recommend, LatencyConstraints, RecommendationRequest};
use llm_pilot::core::{
    CharacterizationDataset, CharacterizeConfig, FlightOptions, PerformancePredictor,
    PredictorConfig, SweepDriver, SweepOptions,
};
use llm_pilot::obs::events::{EventSink, WatchState};
use llm_pilot::obs::Recorder;
use llm_pilot::sim::fault::{FaultConfig, FaultPlan};
use llm_pilot::sim::gpu::paper_profiles;
use llm_pilot::sim::llm::{llm_by_name, llm_catalog};
use llm_pilot::sim::memory::{feasibility_matrix, MemoryConfig, MemoryModel};
use llm_pilot::traces::{self, Param, TraceGenerator, TraceGeneratorConfig};
use llm_pilot::workload::{WorkloadModel, WorkloadSampler};
use llm_pilot::Error;

const COMMANDS: &str = "\
commands:
  traces        generate synthetic production traces
  workload      fit or sample the workload model (fit | sample)
  feasibility   print the LLM x GPU memory-feasibility matrix
  characterize  run the characterization sweep
  recommend     recommend the cheapest deployment for one LLM
  serve         run the online recommendation daemon
  watch         render live progress from a sweep telemetry stream";

fn root_usage(code: i32) -> ! {
    eprintln!("usage: llm-pilot <command> [flags]\n{COMMANDS}");
    eprintln!("\nrun `llm-pilot <command> --help` for per-command flags");
    exit(code)
}

// ---------------------------------------------------------------------------
// Tracing flags, shared by the long-running subcommands.
// ---------------------------------------------------------------------------

/// Where a traced run should deliver its spans.
struct TraceOpts {
    recorder: Recorder,
    out: Option<PathBuf>,
    summary: bool,
}

fn trace_flags(cmd: &mut Command) -> (Flag<Option<PathBuf>>, Flag<bool>) {
    let out = cmd.optional::<PathBuf>(
        "trace-out",
        "FILE",
        "write a Chrome trace_event JSON of the run (open in about:tracing / Perfetto)",
    );
    let summary =
        cmd.switch("trace-summary", "print a hierarchical span summary when the run ends");
    (out, summary)
}

fn trace_opts(parsed: &Parsed, out: Flag<Option<PathBuf>>, summary: Flag<bool>) -> TraceOpts {
    let out = parsed.get(&out);
    let summary = parsed.get(&summary);
    let recorder =
        if out.is_some() || summary { Recorder::enabled() } else { Recorder::disabled() };
    TraceOpts { recorder, out, summary }
}

impl TraceOpts {
    /// Export whatever the recorder captured. No-op when tracing is off.
    fn finish(self) -> Result<(), Error> {
        if self.out.is_none() && !self.summary {
            return Ok(());
        }
        let trace = self.recorder.snapshot();
        if let Some(path) = &self.out {
            std::fs::write(path, llm_pilot::obs::chrome::to_chrome_json(&trace))?;
            eprintln!("wrote trace to {}", path.display());
        }
        if self.summary {
            print!("{}", llm_pilot::obs::summary::summarize(&trace));
        }
        Ok(())
    }
}

/// Declare the shared `--events-out` flag.
fn events_flag(cmd: &mut Command) -> Flag<Option<String>> {
    cmd.optional::<String>(
        "events-out",
        "FILE",
        "append versioned JSONL telemetry events here (use - for stdout)",
    )
}

/// Open the telemetry sink behind `--events-out` (disabled when absent).
fn events_sink(parsed: &Parsed, flag: Flag<Option<String>>) -> Result<EventSink, Error> {
    match parsed.get(&flag) {
        Some(path) => Ok(EventSink::create(&path)?),
        None => Ok(EventSink::disabled()),
    }
}

// ---------------------------------------------------------------------------
// Subcommands.
// ---------------------------------------------------------------------------

fn cmd_traces(args: &[String]) -> Result<(), Error> {
    let mut cmd = Command::new("llm-pilot traces", "generate synthetic production traces");
    let requests = cmd.flag("requests", "N", "number of requests", 100_000usize);
    let out = cmd.required::<String>("out", "FILE", "output CSV path");
    let seed = cmd.flag("seed", "S", "RNG seed", 0xC0FFEEu64);
    let p = cmd.parse_or_exit(args);

    let requests = p.get(&requests);
    let out = p.get(&out);
    let ds = TraceGenerator::new(TraceGeneratorConfig {
        num_requests: requests,
        seed: p.get(&seed),
        ..TraceGeneratorConfig::default()
    })
    .generate();
    std::fs::write(&out, traces::to_csv(&ds))?;
    println!("wrote {requests} trace records to {out}");
    Ok(())
}

fn cmd_workload_fit(args: &[String]) -> Result<(), Error> {
    let mut cmd = Command::new("llm-pilot workload fit", "fit the workload model to a trace CSV");
    let traces_path = cmd.required::<String>("traces", "FILE", "input traces CSV");
    let out = cmd.required::<String>("out", "FILE", "output model path");
    let p = cmd.parse_or_exit(args);

    let traces_path = p.get(&traces_path);
    let out = p.get(&out);
    let text = std::fs::read_to_string(&traces_path)?;
    let ds = traces::from_csv(&text).map_err(|e| format!("bad traces CSV: {e}"))?;
    let model = WorkloadModel::fit(&ds, &Param::core())?;
    println!(
        "fitted: {} non-empty bins of {:.2e} possible ({} bytes)",
        model.num_nonempty_bins(),
        model.num_possible_bins(),
        model.approx_size_bytes()
    );
    std::fs::write(&out, model.to_text())?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_workload_sample(args: &[String]) -> Result<(), Error> {
    let mut cmd = Command::new("llm-pilot workload sample", "sample requests from a fitted model");
    let model_path = cmd.required::<String>("model", "FILE", "fitted model path");
    let n = cmd.flag("n", "N", "number of samples", 10usize);
    let seed = cmd.flag("seed", "S", "RNG seed", 7u64);
    let p = cmd.parse_or_exit(args);

    let text = std::fs::read_to_string(p.get(&model_path))?;
    let model = WorkloadModel::from_text(&text)?;
    let sampler = WorkloadSampler::new(model);
    let mut rng = StdRng::seed_from_u64(p.get(&seed));
    println!("input_tokens,output_tokens,batch_size");
    for _ in 0..p.get(&n) {
        let r = sampler.sample(&mut rng);
        println!(
            "{},{},{}",
            r.input_tokens().unwrap_or(1),
            r.output_tokens().unwrap_or(1),
            r.batch_size().unwrap_or(1)
        );
    }
    Ok(())
}

fn cmd_workload(args: &[String]) -> Result<(), Error> {
    match args.first().map(String::as_str) {
        Some("fit") => cmd_workload_fit(&args[1..]),
        Some("sample") => cmd_workload_sample(&args[1..]),
        _ => {
            eprintln!("usage: llm-pilot workload <fit|sample> [flags]");
            exit(2)
        }
    }
}

fn cmd_feasibility(args: &[String]) -> Result<(), Error> {
    let cmd =
        Command::new("llm-pilot feasibility", "print the LLM x GPU memory-feasibility matrix");
    let _ = cmd.parse_or_exit(args);

    let llms = llm_catalog();
    let profiles = paper_profiles();
    let matrix = feasibility_matrix(&llms, &profiles, &MemoryConfig::default());
    print!("{:<26}", "LLM");
    for p in &profiles {
        print!(" {:>4}", p.name().split('-').next().unwrap_or("?"));
    }
    println!();
    for (i, llm) in llms.iter().enumerate() {
        print!("{:<26}", llm.name);
        for cell in &matrix[i] {
            print!(" {:>4}", cell.glyph());
        }
        println!();
    }
    Ok(())
}

fn build_sampler(seed: u64) -> WorkloadSampler {
    let ds = TraceGenerator::new(TraceGeneratorConfig {
        num_requests: 60_000,
        seed,
        ..TraceGeneratorConfig::default()
    })
    .generate();
    WorkloadSampler::new(WorkloadModel::fit(&ds, &Param::core()).expect("non-empty traces"))
}

fn cmd_characterize(args: &[String]) -> Result<(), Error> {
    let mut cmd = Command::new("llm-pilot characterize", "run the characterization sweep");
    let out = cmd.required::<String>("out", "FILE", "output dataset CSV path");
    let duration = cmd.flag_checked(
        "duration",
        "SECS",
        "virtual seconds per load test",
        120.0f64,
        |v| v.is_finite() && *v > 0.0,
        "a positive number of seconds",
    );
    let seed = cmd.flag("seed", "S", "workload RNG seed", 0xC0FFEEu64);
    let llm = cmd.optional::<String>("llm", "NAME", "restrict the sweep to one LLM");
    let journal = cmd.optional::<PathBuf>("journal", "FILE", "resumable sweep journal path");
    let retries = cmd.flag_checked(
        "retries",
        "N",
        "load-test attempts per cell",
        3u32,
        |v| *v >= 1,
        "a nonzero retry budget",
    );
    let fault_prob = cmd.flag_checked(
        "fault-prob",
        "P",
        "per-load-test transient fault probability",
        0.0f64,
        |v| (0.0..=1.0).contains(v),
        "a probability in [0, 1]",
    );
    let fault_seed = cmd.flag("fault-seed", "S", "fault-injection seed", 1u64);
    let max_steps = cmd.optional::<u64>("max-steps", "N", "step budget per cell");
    let events_out = events_flag(&mut cmd);
    let flight_dir = cmd.optional::<PathBuf>(
        "flight-dir",
        "DIR",
        "dump a flight-recorder trace here for every cell that fails",
    );
    let (trace_out, trace_summary) = trace_flags(&mut cmd);
    let p = cmd.parse_or_exit(args);

    let topts = trace_opts(&p, trace_out, trace_summary);
    let events = events_sink(&p, events_out)?;
    let flight = match p.get(&flight_dir) {
        Some(dir) => {
            std::fs::create_dir_all(&dir)?;
            Some(FlightOptions::new(dir))
        }
        None => None,
    };
    let sampler = build_sampler(p.get(&seed));
    let llms = match p.get(&llm) {
        Some(name) => {
            vec![llm_by_name(&name).ok_or_else(|| format!("unknown LLM {name:?}"))?]
        }
        None => llm_catalog(),
    };
    let config =
        CharacterizeConfig { duration_s: p.get(&duration), ..CharacterizeConfig::default() };

    let fault_prob = p.get(&fault_prob);
    let plan = if fault_prob > 0.0 {
        FaultPlan::new(FaultConfig::transient(p.get(&fault_seed), fault_prob))
    } else {
        FaultPlan::none()
    };
    let options = SweepOptions {
        plan,
        max_attempts: p.get(&retries),
        journal_path: p.get(&journal),
        max_steps_per_cell: p.get(&max_steps),
        recorder: topts.recorder.clone(),
        events,
        flight,
        ..SweepOptions::default()
    };
    let profiles = paper_profiles();
    let driver =
        SweepDriver::builder(&llms, &profiles, &sampler).config(config).options(options).build()?;
    let (ds, report) = driver.run()?;
    print!("{report}");
    println!("{} rows over {} measured cells", ds.len(), ds.tuned_weights.len());
    let out = p.get(&out);
    std::fs::write(&out, ds.to_csv())?;
    println!("wrote {out}");
    topts.finish()
}

fn cmd_recommend(args: &[String]) -> Result<(), Error> {
    let mut cmd =
        Command::new("llm-pilot recommend", "recommend the cheapest deployment for one LLM");
    let data = cmd.required::<String>("data", "FILE", "characterization dataset CSV");
    let llm = cmd.required::<String>("llm", "NAME", "the LLM to deploy");
    let users = cmd.flag("users", "N", "total concurrent users", 200u32);
    let nttft_ms = cmd.flag("nttft-ms", "MS", "normalized time-to-first-token SLA", 100.0f64);
    let itl_ms = cmd.flag("itl-ms", "MS", "inter-token latency SLA", 50.0f64);
    let events_out = events_flag(&mut cmd);
    let (trace_out, trace_summary) = trace_flags(&mut cmd);
    let p = cmd.parse_or_exit(args);

    let topts = trace_opts(&p, trace_out, trace_summary);
    let events = events_sink(&p, events_out)?;
    let llm_name = p.get(&llm);
    let llm = llm_by_name(&llm_name).ok_or_else(|| format!("unknown LLM {llm_name:?}"))?;
    let text = std::fs::read_to_string(p.get(&data))?;
    let dataset =
        CharacterizationDataset::from_csv(&text).map_err(|e| format!("bad dataset CSV: {e}"))?;
    let train_rows: Vec<_> = dataset.rows_excluding_llm(&llm_name);
    if train_rows.is_empty() {
        return Err("dataset has no rows from other LLMs to learn from".to_string().into());
    }
    let request = RecommendationRequest {
        total_users: p.get(&users),
        constraints: LatencyConstraints {
            nttft_s: p.get(&nttft_ms) / 1e3,
            itl_s: p.get(&itl_ms) / 1e3,
        },
        user_grid: (0..8).map(|i| 1u32 << i).collect(),
    };
    let candidates: Vec<_> = paper_profiles()
        .into_iter()
        .filter(|profile| {
            MemoryModel::new(llm.clone(), profile.clone(), MemoryConfig::default())
                .feasibility()
                .is_feasible()
        })
        .collect();

    // The LLM-Pilot method without inner HP tuning: train on every other
    // LLM's rows, predict over the user grid, solve Eq. (1)–(3).
    events.emit(
        "recommend.started",
        &[
            ("llm", llm.name.into()),
            ("users", request.total_users.into()),
            ("train_rows", train_rows.len().into()),
        ],
    );
    let _run_span = topts.recorder.span("recommend.run").arg("llm", llm.name);
    let predictor = PerformancePredictor::train_traced(
        &train_rows,
        &request.constraints,
        &PredictorConfig::default(),
        &topts.recorder,
    )?;
    let rec =
        recommend(&candidates, &request, |profile, u| Some(predictor.predict(&llm, profile, u)))?;
    println!(
        "{}: {} pods of {} (predicted {} users/pod), ${:.2}/h",
        llm.name, rec.pods, rec.profile, rec.u_max, rec.cost_per_hour
    );
    events.emit(
        "recommend.finished",
        &[
            ("llm", llm.name.into()),
            ("profile", rec.profile.as_str().into()),
            ("pods", rec.pods.into()),
            ("u_max", rec.u_max.into()),
            ("cost_per_hour", rec.cost_per_hour.into()),
        ],
    );
    drop(_run_span);
    topts.finish()
}

fn cmd_serve(args: &[String]) -> Result<(), Error> {
    let mut cmd = Command::new("llm-pilot serve", "run the online recommendation daemon");
    let data = cmd.required::<String>("data", "FILE", "characterization dataset CSV");
    let addr = cmd.flag("addr", "HOST:PORT", "listen address", "127.0.0.1:8008".to_string());
    let workers =
        cmd.flag_checked("workers", "N", "worker threads", 4usize, |v| *v >= 1, "at least 1");
    let queue = cmd.flag_checked(
        "queue",
        "N",
        "admission queue capacity",
        128usize,
        |v| *v >= 1,
        "at least 1",
    );
    let cache = cmd.flag("cache", "N", "response cache capacity", 4096usize);
    let watch_secs = cmd.flag_checked(
        "watch-secs",
        "S",
        "dataset mtime watch interval (0 disables)",
        2.0f64,
        |v| v.is_finite() && *v >= 0.0,
        "a non-negative number of seconds",
    );
    let events_out = events_flag(&mut cmd);
    let (trace_out, trace_summary) = trace_flags(&mut cmd);
    let p = cmd.parse_or_exit(args);

    let topts = trace_opts(&p, trace_out, trace_summary);
    let data = p.get(&data);
    let mut config = llm_pilot::serve::ServeConfig::new(&data);
    config.events = events_sink(&p, events_out)?;
    config.addr = p.get(&addr);
    config.workers = p.get(&workers);
    config.queue_capacity = p.get(&queue);
    config.cache_capacity = p.get(&cache);
    let watch_secs = p.get(&watch_secs);
    config.watch_interval =
        (watch_secs > 0.0).then(|| std::time::Duration::from_secs_f64(watch_secs));
    config.recorder = topts.recorder.clone();
    config.trace_out = topts.out.clone();
    config.trace_summary = topts.summary;

    eprintln!("loading {data} and training the initial model...");
    let handle = llm_pilot::serve::Server::start(config)?;
    println!("llm-pilot serving recommendations on http://{}", handle.addr());
    // Serve until killed; the trace (if any) is exported on graceful
    // shutdown by embedders holding the handle.
    loop {
        std::thread::park();
    }
}

fn cmd_watch(args: &[String]) -> Result<(), Error> {
    let mut cmd =
        Command::new("llm-pilot watch", "render live progress from a sweep telemetry stream");
    cmd.positionals(1, "EVENTS_FILE");
    let follow = cmd.switch("follow", "keep polling the file until the sweep finishes");
    let interval_ms = cmd.flag_checked(
        "interval-ms",
        "MS",
        "poll interval while following",
        200u64,
        |v| *v >= 1,
        "at least 1 millisecond",
    );
    let p = cmd.parse_or_exit(args);
    let Some(path) = p.positionals().first().cloned() else {
        eprintln!("error: missing events file");
        eprintln!("usage: llm-pilot watch EVENTS_FILE [--follow] [--interval-ms MS]");
        exit(2)
    };
    let follow = p.get(&follow);
    let interval = std::time::Duration::from_millis(p.get(&interval_ms));

    let mut state = WatchState::new();
    if !follow {
        state.ingest_document(&std::fs::read_to_string(&path)?);
        print!("{}", state.render());
        return Ok(());
    }

    // Follow mode: poll for appended bytes, feed only complete lines (the
    // writer may be mid-line), re-render on change, stop at sweep.finished.
    // The file may not exist yet when the watcher starts before the sweep.
    let mut offset = 0usize;
    let mut pending = String::new();
    loop {
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                std::thread::sleep(interval);
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        let mut changed = false;
        if bytes.len() > offset {
            pending.push_str(&String::from_utf8_lossy(&bytes[offset..]));
            offset = bytes.len();
            while let Some(nl) = pending.find('\n') {
                let line: String = pending.drain(..=nl).collect();
                state.ingest(&line);
                changed = true;
            }
        }
        if changed {
            print!("{}", state.render());
        }
        if state.finished() {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else { root_usage(2) };
    let rest = &args[1..];
    let result = match command.as_str() {
        "traces" => cmd_traces(rest),
        "workload" => cmd_workload(rest),
        "feasibility" => cmd_feasibility(rest),
        "characterize" => cmd_characterize(rest),
        "recommend" => cmd_recommend(rest),
        "serve" => cmd_serve(rest),
        "watch" => cmd_watch(rest),
        "--help" | "-h" | "help" => {
            println!("usage: llm-pilot <command> [flags]\n{COMMANDS}");
            println!("\nrun `llm-pilot <command> --help` for per-command flags");
            return;
        }
        other => {
            eprintln!("error: unknown command {other:?}");
            root_usage(2)
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1)
    }
}
