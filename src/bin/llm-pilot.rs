//! `llm-pilot` — command-line front end for the LLM-Pilot reproduction.
//!
//! ```text
//! llm-pilot traces      --requests 100000 --out traces.csv
//! llm-pilot workload    fit --traces traces.csv --out model.txt
//! llm-pilot workload    sample --model model.txt -n 10
//! llm-pilot feasibility
//! llm-pilot characterize --out data.csv [--duration 120] [--llm NAME]
//! llm-pilot recommend   --data data.csv --llm NAME [--users 200]
//!                       [--nttft-ms 100] [--itl-ms 50]
//! llm-pilot serve       --data data.csv [--addr 127.0.0.1:8008] [--workers 4]
//!                       [--queue 128] [--cache 4096] [--watch-secs 2]
//! ```

use std::collections::HashMap;
use std::process::exit;

use rand::rngs::StdRng;
use rand::SeedableRng;

use llm_pilot::core::baselines::{LlmPilotMethod, Method, MethodInput};
use llm_pilot::core::recommend::{LatencyConstraints, RecommendationRequest};
use llm_pilot::core::{CharacterizationDataset, CharacterizeConfig, SweepDriver, SweepOptions};
use llm_pilot::sim::fault::{FaultConfig, FaultPlan};
use llm_pilot::sim::gpu::paper_profiles;
use llm_pilot::sim::llm::{llm_by_name, llm_catalog};
use llm_pilot::sim::memory::{feasibility_matrix, MemoryConfig, MemoryModel};
use llm_pilot::traces::{self, Param, TraceGenerator, TraceGeneratorConfig};
use llm_pilot::workload::{WorkloadModel, WorkloadSampler};

fn usage() -> ! {
    eprintln!(
        "usage:\n  llm-pilot traces --requests N --out FILE\n  \
         llm-pilot workload fit --traces FILE --out FILE\n  \
         llm-pilot workload sample --model FILE [-n N]\n  \
         llm-pilot feasibility\n  \
         llm-pilot characterize --out FILE [--duration SECS] [--llm NAME]\n      \
             [--journal FILE] [--retries N] [--fault-prob P] [--fault-seed S] [--max-steps N]\n  \
         llm-pilot recommend --data FILE --llm NAME [--users N] [--nttft-ms MS] [--itl-ms MS]\n  \
         llm-pilot serve --data FILE [--addr HOST:PORT] [--workers N] [--queue N]\n      \
             [--cache N] [--watch-secs S]"
    );
    exit(2)
}

/// Parse `--key value` pairs and positional words.
fn parse_args(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 >= args.len() {
                eprintln!("missing value for --{key}");
                usage();
            }
            flags.insert(key.to_string(), args[i + 1].clone());
            i += 2;
        } else if let Some(key) = args[i].strip_prefix('-') {
            if i + 1 >= args.len() {
                eprintln!("missing value for -{key}");
                usage();
            }
            flags.insert(key.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (positional, flags)
}

fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("bad value for --{key}: {raw:?}");
            usage()
        }),
        None => default,
    }
}

fn required(flags: &HashMap<String, String>, key: &str) -> String {
    flags.get(key).cloned().unwrap_or_else(|| {
        eprintln!("missing required --{key}");
        usage()
    })
}

/// Parse `--key`, apply `check`, and exit with a clear message naming the
/// violated `constraint` instead of propagating nonsense into the sweep.
fn checked_flag<T: std::str::FromStr + Copy>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
    check: impl Fn(T) -> bool,
    constraint: &str,
) -> T {
    let value = flag(flags, key, default);
    if !check(value) {
        eprintln!(
            "--{key} must be {constraint}, got {:?}",
            flags.get(key).map(String::as_str).unwrap_or("<default>")
        );
        exit(2)
    }
    value
}

fn cmd_traces(flags: &HashMap<String, String>) {
    let requests: usize = flag(flags, "requests", 100_000);
    let out = required(flags, "out");
    let seed: u64 = flag(flags, "seed", 0xC0FFEE);
    let ds = TraceGenerator::new(TraceGeneratorConfig {
        num_requests: requests,
        seed,
        ..TraceGeneratorConfig::default()
    })
    .generate();
    std::fs::write(&out, traces::to_csv(&ds)).expect("write traces CSV");
    println!("wrote {requests} trace records to {out}");
}

fn cmd_workload(positional: &[String], flags: &HashMap<String, String>) {
    match positional.first().map(String::as_str) {
        Some("fit") => {
            let traces_path = required(flags, "traces");
            let out = required(flags, "out");
            let text = std::fs::read_to_string(&traces_path).expect("read traces CSV");
            let ds = traces::from_csv(&text).unwrap_or_else(|e| {
                eprintln!("bad traces CSV: {e}");
                exit(1)
            });
            let model = WorkloadModel::fit(&ds, &Param::core()).expect("non-empty traces");
            println!(
                "fitted: {} non-empty bins of {:.2e} possible ({} bytes)",
                model.num_nonempty_bins(),
                model.num_possible_bins(),
                model.approx_size_bytes()
            );
            std::fs::write(&out, model.to_text()).expect("write model");
            println!("wrote {out}");
        }
        Some("sample") => {
            let model_path = required(flags, "model");
            let n: usize = flag(flags, "n", 10);
            let seed: u64 = flag(flags, "seed", 7);
            let text = std::fs::read_to_string(&model_path).expect("read model");
            let model = WorkloadModel::from_text(&text).unwrap_or_else(|e| {
                eprintln!("bad model file: {e}");
                exit(1)
            });
            let sampler = WorkloadSampler::new(model);
            let mut rng = StdRng::seed_from_u64(seed);
            println!("input_tokens,output_tokens,batch_size");
            for _ in 0..n {
                let r = sampler.sample(&mut rng);
                println!(
                    "{},{},{}",
                    r.input_tokens().unwrap_or(1),
                    r.output_tokens().unwrap_or(1),
                    r.batch_size().unwrap_or(1)
                );
            }
        }
        _ => usage(),
    }
}

fn cmd_feasibility() {
    let llms = llm_catalog();
    let profiles = paper_profiles();
    let matrix = feasibility_matrix(&llms, &profiles, &MemoryConfig::default());
    print!("{:<26}", "LLM");
    for p in &profiles {
        print!(" {:>4}", p.name().split('-').next().unwrap_or("?"));
    }
    println!();
    for (i, llm) in llms.iter().enumerate() {
        print!("{:<26}", llm.name);
        for cell in &matrix[i] {
            print!(" {:>4}", cell.glyph());
        }
        println!();
    }
}

fn build_sampler(seed: u64) -> WorkloadSampler {
    let ds = TraceGenerator::new(TraceGeneratorConfig {
        num_requests: 60_000,
        seed,
        ..TraceGeneratorConfig::default()
    })
    .generate();
    WorkloadSampler::new(WorkloadModel::fit(&ds, &Param::core()).expect("non-empty traces"))
}

fn cmd_characterize(flags: &HashMap<String, String>) {
    let out = required(flags, "out");
    let duration: f64 = checked_flag(
        flags,
        "duration",
        120.0,
        |v: f64| v.is_finite() && v > 0.0,
        "a positive number of seconds",
    );
    let sampler = build_sampler(flag(flags, "seed", 0xC0FFEE));
    let llms = match flags.get("llm") {
        Some(name) => vec![llm_by_name(name).unwrap_or_else(|| {
            eprintln!("unknown LLM {name:?}");
            exit(1)
        })],
        None => llm_catalog(),
    };
    let config = CharacterizeConfig { duration_s: duration, ..CharacterizeConfig::default() };

    let fault_prob: f64 = checked_flag(
        flags,
        "fault-prob",
        0.0,
        |v: f64| (0.0..=1.0).contains(&v),
        "a probability in [0, 1]",
    );
    let plan = if fault_prob > 0.0 {
        FaultPlan::new(FaultConfig::transient(flag(flags, "fault-seed", 1), fault_prob))
    } else {
        FaultPlan::none()
    };
    let max_steps = flags
        .get("max-steps")
        .map(|_| checked_flag(flags, "max-steps", 1u64, |v| v >= 1, "a nonzero step budget"));
    let options = SweepOptions {
        plan,
        max_attempts: checked_flag(flags, "retries", 3u32, |v| v >= 1, "a nonzero retry budget"),
        journal_path: flags.get("journal").map(std::path::PathBuf::from),
        max_steps_per_cell: max_steps,
        ..SweepOptions::default()
    };
    let profiles = paper_profiles();
    let driver = SweepDriver::new(&llms, &profiles, &sampler, config, options);
    let (ds, report) = driver.run().unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        exit(1)
    });
    print!("{report}");
    println!("{} rows over {} measured cells", ds.len(), ds.tuned_weights.len());
    std::fs::write(&out, ds.to_csv()).expect("write dataset CSV");
    println!("wrote {out}");
}

fn cmd_recommend(flags: &HashMap<String, String>) {
    let data = required(flags, "data");
    let llm_name = required(flags, "llm");
    let users: u32 = flag(flags, "users", 200);
    let nttft_ms: f64 = flag(flags, "nttft-ms", 100.0);
    let itl_ms: f64 = flag(flags, "itl-ms", 50.0);

    let Some(llm) = llm_by_name(&llm_name) else {
        eprintln!("unknown LLM {llm_name:?}");
        exit(1)
    };
    let text = std::fs::read_to_string(&data).expect("read dataset CSV");
    let dataset = CharacterizationDataset::from_csv(&text).unwrap_or_else(|e| {
        eprintln!("bad dataset CSV: {e}");
        exit(1)
    });
    let train_rows: Vec<_> = dataset.rows_excluding_llm(&llm_name);
    if train_rows.is_empty() {
        eprintln!("dataset has no rows from other LLMs to learn from");
        exit(1)
    }
    let request = RecommendationRequest {
        total_users: users,
        constraints: LatencyConstraints { nttft_s: nttft_ms / 1e3, itl_s: itl_ms / 1e3 },
        user_grid: (0..8).map(|i| 1u32 << i).collect(),
    };
    let candidates: Vec<_> = paper_profiles()
        .into_iter()
        .filter(|p| {
            MemoryModel::new(llm.clone(), p.clone(), MemoryConfig::default())
                .feasibility()
                .is_feasible()
        })
        .collect();
    let input = MethodInput {
        train_rows,
        test_llm: &llm,
        reference_rows: vec![],
        profiles: &candidates,
        request: &request,
    };
    match LlmPilotMethod::untuned().recommend(&input) {
        Ok(rec) => println!(
            "{}: {} pods of {} (predicted {} users/pod), ${:.2}/h",
            llm.name, rec.pods, rec.profile, rec.u_max, rec.cost_per_hour
        ),
        Err(e) => {
            eprintln!("no feasible recommendation: {e}");
            exit(1)
        }
    }
}

fn cmd_serve(flags: &HashMap<String, String>) {
    let data = required(flags, "data");
    let mut config = llm_pilot::serve::ServeConfig::new(&data);
    if let Some(addr) = flags.get("addr") {
        config.addr = addr.clone();
    }
    config.workers = checked_flag(flags, "workers", config.workers, |v| v >= 1, "at least 1");
    config.queue_capacity =
        checked_flag(flags, "queue", config.queue_capacity, |v| v >= 1, "at least 1");
    config.cache_capacity =
        checked_flag(flags, "cache", config.cache_capacity, |_| true, "a non-negative count");
    let watch_secs: f64 = checked_flag(
        flags,
        "watch-secs",
        2.0,
        |v: f64| v.is_finite() && v >= 0.0,
        "a non-negative number of seconds",
    );
    config.watch_interval =
        (watch_secs > 0.0).then(|| std::time::Duration::from_secs_f64(watch_secs));

    eprintln!("loading {data} and training the initial model...");
    let handle = llm_pilot::serve::Server::start(config).unwrap_or_else(|e| {
        eprintln!("serve failed to start: {e}");
        exit(1)
    });
    println!("llm-pilot serving recommendations on http://{}", handle.addr());
    loop {
        std::thread::park();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else { usage() };
    let (positional, flags) = parse_args(&args[1..]);
    match command.as_str() {
        "traces" => cmd_traces(&flags),
        "workload" => cmd_workload(&positional, &flags),
        "feasibility" => cmd_feasibility(),
        "characterize" => cmd_characterize(&flags),
        "recommend" => cmd_recommend(&flags),
        "serve" => cmd_serve(&flags),
        _ => usage(),
    }
}
