//! Integration: the full recommendation pipeline — characterize a fleet,
//! hold out one LLM, train LLM-Pilot, recommend, and judge against the
//! measured ground truth (the Fig. 8 machinery at small scale).

use llm_pilot::core::baselines::{LlmPilotMethod, Method, MethodInput, StaticMethod};
use llm_pilot::core::evaluate::{
    best_static_policy, oracle_recommendation, so_score, true_u_max, Evaluation,
};
use llm_pilot::core::recommend::RecommendationRequest;
use llm_pilot::core::{characterize, CharacterizationDataset, CharacterizeConfig};
use llm_pilot::sim::gpu::{a10, a100_40, h100, t4, GpuProfile};
use llm_pilot::sim::llm::{flan_t5_xl, flan_t5_xxl, llama2_13b, llama2_7b, starcoder};
use llm_pilot::traces::{Param, TraceGenerator, TraceGeneratorConfig};
use llm_pilot::workload::{WorkloadModel, WorkloadSampler};

fn profiles() -> Vec<GpuProfile> {
    vec![
        GpuProfile::new(t4(), 2),
        GpuProfile::new(a10(), 2),
        GpuProfile::new(a100_40(), 1),
        GpuProfile::new(h100(), 1),
    ]
}

fn dataset() -> CharacterizationDataset {
    let traces = TraceGenerator::new(TraceGeneratorConfig {
        num_requests: 25_000,
        seed: 41,
        ..TraceGeneratorConfig::default()
    })
    .generate();
    let sampler = WorkloadSampler::new(WorkloadModel::fit(&traces, &Param::core()).unwrap());
    let llms = vec![flan_t5_xl(), flan_t5_xxl(), llama2_7b(), llama2_13b(), starcoder()];
    characterize(
        &llms,
        &profiles(),
        &sampler,
        &CharacterizeConfig {
            duration_s: 120.0,
            user_sweep: vec![1, 2, 4, 8, 16, 32, 64, 128],
            ..CharacterizeConfig::default()
        },
    )
}

#[test]
fn evaluation_invariants_hold_for_llm_pilot() {
    let ds = dataset();
    let eval = Evaluation::new(&ds, profiles());
    let score = eval.evaluate(&LlmPilotMethod::untuned());

    assert_eq!(score.outcomes.len(), ds.llms().len());
    assert!((0.0..=1.0).contains(&score.success_rate));
    for o in &score.outcomes {
        // Eq. (6): a successful recommendation can never undercut the
        // oracle, which already takes the cheapest truly-viable deployment.
        if let Some(spend) = o.overspend {
            assert!(o.success);
            assert!(spend >= -1e-9, "{}: overspend {spend}", o.llm);
        }
        // A successful outcome implies the oracle existed.
        if o.success {
            assert!(o.oracle.is_some(), "{}: success without oracle", o.llm);
        }
        // Recommendations only name candidate profiles.
        if let Some(rec) = &o.recommendation {
            assert!(
                profiles().iter().any(|p| p.name() == rec.profile),
                "{}: unknown profile {}",
                o.llm,
                rec.profile
            );
            assert!(rec.pods >= 1);
        }
    }
    assert_eq!(score.so_score, so_score(score.success_rate, score.mean_overspend));
}

#[test]
fn oracle_is_optimal_among_true_deployments() {
    let ds = dataset();
    let request = RecommendationRequest::paper_defaults();
    for llm in ds.llms() {
        let Ok(oracle) = oracle_recommendation(&ds, &llm, &profiles(), &request) else {
            continue;
        };
        // The oracle's pod count must be exactly the ceiling for its true
        // per-pod capacity…
        let cap = true_u_max(&ds, &llm, &oracle.profile, &request.constraints).unwrap();
        assert_eq!(oracle.pods, request.total_users.div_ceil(cap));
        // …and no other profile can beat its cost using true capacities.
        for p in profiles() {
            if let Some(c) = true_u_max(&ds, &llm, &p.name(), &request.constraints) {
                let cost = f64::from(request.total_users.div_ceil(c)) * p.cost_per_hour();
                assert!(
                    cost >= oracle.cost_per_hour - 1e-9,
                    "{llm}: {} at {cost} beats oracle {}",
                    p.name(),
                    oracle.cost_per_hour
                );
            }
        }
    }
}

#[test]
fn llm_pilot_produces_recommendations_for_every_holdout() {
    let ds = dataset();
    let request = RecommendationRequest::paper_defaults();
    let method = LlmPilotMethod::untuned();
    let mut produced = 0;
    for llm in ds.llms() {
        let spec = llm_pilot::sim::llm::llm_by_name(&llm).unwrap();
        let input = MethodInput {
            train_rows: ds.rows_excluding_llm(&llm),
            test_llm: &spec,
            reference_rows: vec![],
            profiles: &profiles(),
            request: &request,
        };
        if method.recommend(&input).is_ok() {
            produced += 1;
        }
    }
    // Every cell of this grid has viable deployments; a trained model
    // should find one for most hold-outs.
    assert!(produced >= 3, "only {produced}/5 hold-outs got a recommendation");
}

#[test]
fn best_static_policy_beats_fixed_paper_guess_or_ties() {
    let ds = dataset();
    let eval = Evaluation::new(&ds, profiles());
    let (policy, score) = best_static_policy(&eval);
    assert!(policy.pods >= 1);
    // By construction the selected policy is at least as good as any fixed
    // candidate, including the paper's own 4-pod guess when present.
    let fixed = StaticMethod { profile: "1xA100-40GB".into(), pods: 4 };
    let fixed_score = eval.evaluate(&fixed);
    assert!(score.so_score >= fixed_score.so_score - 1e-12);
}

#[test]
fn reference_rows_are_only_reference_profiles() {
    let ds = dataset();
    // REFERENCE_PROFILES are 1xT4 / 4xH100, neither in this grid, so the
    // filter must produce nothing — and reference-using methods must cope.
    let refs: Vec<_> = ds
        .rows_for_llm("Llama-2-13b")
        .into_iter()
        .filter(|r| llm_pilot::core::baselines::REFERENCE_PROFILES.contains(&r.profile.as_str()))
        .collect();
    assert!(refs.is_empty());
    let eval = Evaluation::new(&ds, profiles());
    let score = eval.evaluate(&llm_pilot::core::baselines::SelectaMethod::new());
    assert_eq!(score.outcomes.len(), ds.llms().len());
}
