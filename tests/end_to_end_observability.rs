//! End-to-end exercise of the observability layer on a real sweep:
//!
//! * a fault-injected sweep that exhausts its retry budget leaves a
//!   flight-recorder dump for **exactly** the failed cells, and each dump
//!   is a structurally valid Chrome trace holding the failing cell's
//!   final spans;
//! * the same sweep's `--events-out` stream validates end to end and the
//!   `watch` consumer renders it at 100% completeness (failed cells are
//!   still *done* cells — the sweep completed over the whole grid);
//! * a healthy sweep emits tail quantiles on every measured cell and
//!   leaves no flight dumps behind.

use std::sync::OnceLock;

use llm_pilot::core::sweep::{CellStatus, SweepDriver, SweepOptions};
use llm_pilot::core::{CharacterizeConfig, FlightOptions};
use llm_pilot::obs::check::{check_chrome_trace, check_events};
use llm_pilot::obs::events::{EventSink, WatchState};
use llm_pilot::obs::flight;
use llm_pilot::sim::fault::{FaultConfig, FaultPlan};
use llm_pilot::sim::gpu::{a100_40, t4, GpuProfile};
use llm_pilot::sim::llm::{flan_t5_xl, llama2_7b, LlmSpec};
use llm_pilot::traces::{Param, TraceGenerator, TraceGeneratorConfig};
use llm_pilot::workload::{WorkloadModel, WorkloadSampler};

fn sampler() -> &'static WorkloadSampler {
    static SAMPLER: OnceLock<WorkloadSampler> = OnceLock::new();
    SAMPLER.get_or_init(|| {
        let traces = TraceGenerator::new(TraceGeneratorConfig {
            num_requests: 8_000,
            seed: 55,
            ..TraceGeneratorConfig::default()
        })
        .generate();
        let model = WorkloadModel::fit(
            &traces,
            &[Param::InputTokens, Param::OutputTokens, Param::BatchSize],
        )
        .unwrap();
        WorkloadSampler::new(model)
    })
}

fn quick_config() -> CharacterizeConfig {
    CharacterizeConfig { duration_s: 8.0, user_sweep: vec![1, 4], ..CharacterizeConfig::default() }
}

fn grid() -> (Vec<LlmSpec>, Vec<GpuProfile>) {
    // llama2-7b on 1xT4 is infeasible, so the grid exercises every
    // outcome kind.
    (vec![flan_t5_xl(), llama2_7b()], vec![GpuProfile::new(t4(), 1), GpuProfile::new(a100_40(), 1)])
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("llmpilot-e2e-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn failed_sweep_leaves_valid_flight_dumps_and_a_watchable_event_stream() {
    let s = sampler();
    let (llms, profiles) = grid();
    let dir = scratch_dir("fail");
    let events_path = dir.join("events.jsonl");
    let options = SweepOptions {
        // Deployment always fails: every feasible cell exhausts retries.
        plan: FaultPlan::new(FaultConfig { deploy_failure_prob: 1.0, ..FaultConfig::disabled() }),
        max_attempts: 2,
        flight: Some(FlightOptions::new(dir.clone())),
        events: EventSink::create(events_path.to_str().unwrap()).unwrap(),
        ..SweepOptions::default()
    };
    let driver = SweepDriver::builder(&llms, &profiles, s)
        .config(quick_config())
        .options(options)
        .build()
        .unwrap();
    let (dataset, report) = driver.run().unwrap();
    assert!(dataset.is_empty(), "nothing measured when every deploy fails");
    assert!(report.failed() > 0);

    // Flight dumps for exactly the failed cells; each is a valid Chrome
    // trace containing the failing cell's final attempt spans.
    for (llm, profile, status) in &report.cells {
        let dump = dir.join(flight::dump_file_name(llm, profile));
        match status {
            CellStatus::Failed { .. } => {
                let doc = std::fs::read_to_string(&dump)
                    .unwrap_or_else(|e| panic!("missing flight dump {dump:?}: {e}"));
                let stats = check_chrome_trace(&doc, &[]).unwrap();
                assert!(stats.span_events > 0, "dump for {llm}/{profile} holds spans");
                assert!(doc.contains("sweep.attempt"), "dump holds the cell's attempt spans");
            }
            _ => assert!(!dump.exists(), "unexpected dump for non-failed cell {llm}/{profile}"),
        }
    }

    // The event stream validates and covers the whole grid: a sweep that
    // visited every cell is 100% complete even when cells failed.
    let doc = std::fs::read_to_string(&events_path).unwrap();
    let stats = check_events(&doc).unwrap();
    assert!(stats.finished, "sweep.finished must be emitted");
    assert!(!stats.truncated_tail);
    assert_eq!(stats.completeness_pct, Some(100.0));
    assert_eq!(stats.types["cell.retried"], report.failed());

    // The `watch` consumer renders the same picture.
    let mut watch = WatchState::new();
    watch.ingest_document(&doc);
    assert!(watch.finished());
    let rendered = watch.render();
    assert!(rendered.contains("100.0% complete"), "got:\n{rendered}");
    assert!(rendered.contains("sweep finished"), "got:\n{rendered}");
    assert!(rendered.contains("failed"), "failed cells are visible:\n{rendered}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn healthy_sweep_reports_tails_and_arms_no_dumps() {
    let s = sampler();
    let (llms, profiles) = grid();
    let dir = scratch_dir("ok");
    let events_path = dir.join("events.jsonl");
    let options = SweepOptions {
        flight: Some(FlightOptions::new(dir.clone())),
        events: EventSink::create(events_path.to_str().unwrap()).unwrap(),
        ..SweepOptions::default()
    };
    let driver = SweepDriver::builder(&llms, &profiles, s)
        .config(quick_config())
        .options(options)
        .build()
        .unwrap();
    let (dataset, report) = driver.run().unwrap();
    assert!(!dataset.is_empty());
    assert_eq!(report.failed(), 0);

    // No failures → no flight dumps, only the event stream in the dir.
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("flight-"))
        .collect();
    assert!(dumps.is_empty(), "healthy sweep must not dump: {dumps:?}");

    // Every measured cell carries true tail quantiles, and they surface
    // both in the report text (the CI greps for p99) and in the stream.
    let rendered = format!("{report}");
    assert!(rendered.contains("p99"), "report prints tail quantiles:\n{rendered}");
    for (llm, profile, status) in &report.cells {
        if matches!(status, CellStatus::Measured { .. }) {
            let tails = &report.tails[&(llm.clone(), profile.clone())];
            assert!(tails.nttft.count > 0, "{llm}/{profile} has nTTFT samples");
            assert!(tails.itl.count > 0, "{llm}/{profile} has ITL samples");
            assert!(tails.nttft.p99 >= tails.nttft.p50);
            assert!(tails.itl.p99 >= tails.itl.p50);
            assert!(tails.prefill.count > 0 && tails.decode.count > 0);
        }
    }
    let doc = std::fs::read_to_string(&events_path).unwrap();
    let stats = check_events(&doc).unwrap();
    assert!(stats.finished);
    assert!(doc.contains("nttft_p99_ms"), "measured cells stream their tails");

    let _ = std::fs::remove_dir_all(&dir);
}
