//! Property-based guarantees of the JSONL telemetry stream
//! (`obs::events` + `obs::check::check_events`):
//!
//! 1. any sequence of typed emitter calls produces a document the checker
//!    accepts, with per-type counts that round-trip exactly, and that the
//!    `watch` consumer ingests without ever counting a bad line;
//! 2. the checker never panics — not on garbage bytes, not on a document
//!    whose tail was torn mid-line by a crashed writer (that case is
//!    reported as `truncated_tail`, not an error).

use proptest::prelude::*;

use llm_pilot::obs::check::check_events;
use llm_pilot::obs::events::{EventSink, WatchState};

/// One scripted emitter call, decoded from a generated tuple:
/// `(kind, llm index, attempt, progress)`.
type Call = (u8, u8, u64, u64);

const KINDS: u8 = 6;
const LLMS: [&str; 3] = ["Llama-2-7b", "google/flan-t5-xl", "µ \"quoted\"\nllm"];

/// The event name a call emits, for counting.
fn kind_name(kind: u8) -> &'static str {
    match kind % KINDS {
        0 => "sweep.started",
        1 => "cell.started",
        2 => "cell.attempt",
        3 => "cell.retried",
        4 => "cell.finished",
        _ => "sweep.finished",
    }
}

/// Replay `calls` on a buffered sink; returns the emitted document.
fn emit(calls: &[Call]) -> String {
    let (sink, buf) = EventSink::to_buffer();
    for &(kind, llm, attempt, n) in calls {
        let llm = LLMS[(llm as usize) % LLMS.len()];
        match kind % KINDS {
            0 => sink.sweep_started(n, 0, 3),
            1 => sink.cell_started(llm, "1xA100-40GB", 8),
            2 => sink.cell_attempt(llm, "1xA100-40GB", attempt, 3),
            3 => sink.cell_retried(
                llm,
                "1xA100-40GB",
                attempt,
                3,
                0.5,
                "deploy failed: transient\ninjected \"fault\"",
            ),
            4 => sink.cell_finished(llm, "1xA100-40GB", "measured", 1, n, 20, 1.5, None, None),
            _ => sink.sweep_finished(n, n, n, 0, 0, 2.0),
        }
    }
    let bytes = buf.lock().unwrap().clone();
    String::from_utf8(bytes).expect("sink emits UTF-8")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Emit → check round-trip: the stats mirror exactly what was emitted.
    #[test]
    fn emitted_documents_round_trip_through_the_checker(
        calls in prop::collection::vec((0u8..KINDS, 0u8..3, 1u64..4, 0u64..20), 0..40),
    ) {
        let doc = emit(&calls);
        let stats = check_events(&doc).expect("typed emitters produce valid documents");
        prop_assert_eq!(stats.events as usize, calls.len());
        prop_assert!(!stats.truncated_tail);
        for kind in 0..KINDS {
            let name = kind_name(kind);
            let want = calls.iter().filter(|c| c.0 == kind).count();
            prop_assert_eq!(stats.types.get(name).copied().unwrap_or(0) as usize, want);
        }
        let any_finished = calls.iter().any(|c| c.0 % KINDS == 5);
        prop_assert_eq!(stats.finished, any_finished);

        // The live consumer agrees and flags nothing as unparseable.
        let mut watch = WatchState::new();
        watch.ingest_document(&doc);
        prop_assert_eq!(watch.events(), calls.len());
        prop_assert_eq!(watch.finished(), stats.finished);
        watch.render(); // must not panic on any state
    }

    /// Tearing the final line anywhere (a crashed writer) downgrades to
    /// `truncated_tail`; every complete line before it still counts.
    #[test]
    fn torn_tails_are_reported_not_fatal(
        calls in prop::collection::vec((0u8..KINDS, 0u8..3, 1u64..4, 0u64..20), 1..20),
        cut in 1usize..200,
    ) {
        let doc = emit(&calls);
        let last = doc.lines().last().unwrap();
        let cut = cut.min(last.len() - 1);
        let boundary = doc.len() - 1 - last.len() + cut;
        if !doc.is_char_boundary(boundary) {
            return Ok(());
        }
        let torn = &doc[..boundary];
        let stats = check_events(torn).expect("a torn tail is never a hard error");
        prop_assert!(stats.truncated_tail || stats.events as usize == calls.len());
        prop_assert_eq!(stats.events as usize, calls.len() - 1);
    }

    /// Arbitrary bytes: the checker and the watch consumer return, never
    /// panic.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..400)) {
        let doc = String::from_utf8_lossy(&bytes);
        let _ = check_events(&doc);
        let mut watch = WatchState::new();
        watch.ingest_document(&doc);
        watch.render();
    }

    /// Printable JSONL-shaped garbage (many short lines): never panics,
    /// and a bad interior line is reported with its 1-based line number.
    #[test]
    fn line_garbage_is_reported_with_line_numbers(
        lines in prop::collection::vec(prop::collection::vec(32u8..127, 0..40), 2..20),
    ) {
        let lines: Vec<String> =
            lines.into_iter().map(|l| String::from_utf8(l).unwrap()).collect();
        let doc = lines.join("\n");
        if let Err(e) = check_events(&doc) {
            prop_assert!(e.starts_with("line "), "error must name a line: {}", e);
        }
        let mut watch = WatchState::new();
        watch.ingest_document(&doc);
        watch.render();
    }
}
