//! Integration: traces → workload generator → simulator → characterization
//! dataset, spanning four crates.

use llm_pilot::core::{characterize, CharacterizationDataset, CharacterizeConfig};
use llm_pilot::sim::gpu::{a100_40, h100, t4, GpuProfile};
use llm_pilot::sim::llm::{flan_t5_xl, flan_ul2, llama2_13b, llama2_7b};
use llm_pilot::sim::memory::{MemoryConfig, MemoryModel};
use llm_pilot::traces::{Param, TraceGenerator, TraceGeneratorConfig};
use llm_pilot::workload::{WorkloadModel, WorkloadSampler};

fn sampler() -> WorkloadSampler {
    let traces = TraceGenerator::new(TraceGeneratorConfig {
        num_requests: 20_000,
        seed: 99,
        ..TraceGeneratorConfig::default()
    })
    .generate();
    WorkloadSampler::new(WorkloadModel::fit(&traces, &Param::core()).unwrap())
}

fn small_config() -> CharacterizeConfig {
    CharacterizeConfig {
        duration_s: 40.0,
        user_sweep: vec![1, 8, 64],
        ..CharacterizeConfig::default()
    }
}

fn small_grid() -> CharacterizationDataset {
    let llms = vec![flan_t5_xl(), llama2_7b(), llama2_13b(), flan_ul2()];
    let profiles =
        vec![GpuProfile::new(t4(), 1), GpuProfile::new(a100_40(), 1), GpuProfile::new(h100(), 2)];
    characterize(&llms, &profiles, &sampler(), &small_config())
}

#[test]
fn characterization_covers_exactly_the_feasible_cells() {
    let ds = small_grid();
    let llms = vec![flan_t5_xl(), llama2_7b(), llama2_13b(), flan_ul2()];
    let profiles =
        vec![GpuProfile::new(t4(), 1), GpuProfile::new(a100_40(), 1), GpuProfile::new(h100(), 2)];
    for llm in &llms {
        for profile in &profiles {
            let feasible = MemoryModel::new(llm.clone(), profile.clone(), MemoryConfig::default())
                .feasibility()
                .is_feasible();
            assert_eq!(
                ds.cell_feasible(llm.name, &profile.name()),
                feasible,
                "{} on {}",
                llm.name,
                profile
            );
        }
    }
}

#[test]
fn all_metrics_are_positive_and_finite() {
    let ds = small_grid();
    assert!(!ds.is_empty());
    for r in &ds.rows {
        assert!(r.ttft_s > 0.0 && r.ttft_s.is_finite(), "{r:?}");
        assert!(r.nttft_s > 0.0 && r.nttft_s.is_finite(), "{r:?}");
        assert!(r.itl_s > 0.0 && r.itl_s.is_finite(), "{r:?}");
        assert!(r.throughput > 0.0 && r.throughput.is_finite(), "{r:?}");
    }
}

#[test]
fn bigger_gpus_tune_bigger_weights_for_the_same_llm() {
    let ds = small_grid();
    let key = |p: &str| (String::from("Llama-2-7b"), String::from(p));
    // (Llama-2-7b does not fit 1xT4 — an × cell — so only the larger
    // profiles appear in the tuned-weight map.)
    assert!(!ds.tuned_weights.contains_key(&key("1xT4-16GB")));
    let a100_weight = ds.tuned_weights[&key("1xA100-40GB")];
    let h100_weight = ds.tuned_weights[&key("2xH100-80GB")];
    assert!(h100_weight > a100_weight);
}

#[test]
fn csv_round_trips_through_disk_format() {
    let ds = small_grid();
    let parsed = CharacterizationDataset::from_csv(&ds.to_csv()).unwrap();
    assert_eq!(parsed.rows, ds.rows);
}

#[test]
fn latency_degrades_and_throughput_grows_with_load() {
    let ds = small_grid();
    for llm in ds.llms() {
        for profile in ds.profiles() {
            let rows: Vec<_> =
                ds.rows.iter().filter(|r| r.llm == llm && r.profile == profile).collect();
            if rows.len() < 3 {
                continue;
            }
            let first = rows.iter().find(|r| r.users == 1).unwrap();
            let last = rows.iter().find(|r| r.users == 64).unwrap();
            assert!(
                last.ttft_s >= first.ttft_s * 0.8,
                "{llm} on {profile}: TTFT fell from {} to {}",
                first.ttft_s,
                last.ttft_s
            );
            assert!(last.throughput > first.throughput, "{llm} on {profile}: no throughput gain");
        }
    }
}
